//! Umbrella crate for the SE-PrivGEmb workspace.
//!
//! Re-exports every crate in the workspace so that the root-level
//! `examples/` and `tests/` can exercise the full public API through a
//! single dependency, mirroring how a downstream user would consume the
//! published crates.

pub use se_privgemb as core;
pub use sp_attack as attack;
pub use sp_baselines as baselines;
pub use sp_datasets as datasets;
pub use sp_dp as dp;
pub use sp_dynamic as dynamic;
pub use sp_eval as eval;
pub use sp_fault as fault;
pub use sp_graph as graph;
pub use sp_linalg as linalg;
pub use sp_model as model;
pub use sp_nn as nn;
pub use sp_parallel as parallel;
pub use sp_proximity as proximity;
pub use sp_serve as serve;
pub use sp_skipgram as skipgram;
