//! Auditing the privacy protection: membership-inference attacks
//! against the published embeddings (the paper's §III-A threat model,
//! made measurable).
//!
//! A white-box adversary holding the published model tries to decide
//! whether a candidate edge was in the training graph. The attack AUC
//! is ~0.5 when nothing leaks; the gap between the non-private and DP
//! models is the protection you bought with ε.
//!
//! ```text
//! cargo run --release --example privacy_audit
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use se_privgemb_suite::attack::{edge_membership_scored, node_membership};
use se_privgemb_suite::core::{PerturbStrategy, ProximityKind, SePrivGEmb};
use se_privgemb_suite::datasets::generators;

fn main() {
    let mut rng = StdRng::seed_from_u64(17);
    let g = generators::barabasi_albert(400, 4, &mut rng);
    println!(
        "target graph: {} nodes, {} edges",
        g.num_nodes(),
        g.num_edges()
    );
    println!();
    println!(
        "{:>22}  {:>12}  {:>12}  {:>12}",
        "model", "edge-MI AUC", "advantage", "node-MI AUC"
    );

    for (label, strategy, eps) in [
        ("non-private", PerturbStrategy::None, f64::INFINITY),
        ("SE-PrivGEmb eps=3.5", PerturbStrategy::NonZero, 3.5),
        ("SE-PrivGEmb eps=1.0", PerturbStrategy::NonZero, 1.0),
    ] {
        let mut b = SePrivGEmb::builder()
            .dim(64)
            .epochs(300)
            .learning_rate(0.3)
            .strategy(strategy)
            .proximity(ProximityKind::deepwalk_default())
            .seed(5);
        if eps.is_finite() {
            b = b.epsilon(eps);
        }
        let result = b.build().fit(&g);
        let model = &result.model;

        // White-box edge attack: score with the fitted statistic
        // v_u·w_v + v_v·w_u over both published matrices.
        let mut arng = StdRng::seed_from_u64(23);
        let edge = edge_membership_scored(
            &g,
            |u, v| model.inner(u, v) + model.inner(v, u),
            500,
            &mut arng,
        );
        let node = node_membership(&g, result.embeddings(), 200, &mut arng);
        println!(
            "{label:>22}  {:>12.4}  {:>12.4}  {:>12.4}",
            edge.auc,
            edge.advantage(),
            node.auc
        );
    }

    println!();
    println!("Expected reading: the non-private model leaks edges strongly —");
    println!("its objective literally fits the membership statistic. The DP");
    println!("models push the attack towards coin-flipping, more so at small ε.");
}
