//! Continual publishing of a growing graph under one total privacy
//! budget — the paper's named future-work scenario (§VIII).
//!
//! A data owner re-publishes node embeddings as the network grows.
//! Each version must be private, and the *sequence* must respect one
//! total (ε, δ). This example compares uniform vs decayed budget
//! allocation and shows the warm-start trick keeping versions stable.
//!
//! ```text
//! cargo run --release --example dynamic_publishing
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use se_privgemb_suite::datasets::generators;
use se_privgemb_suite::dynamic::{evolve_graph, BudgetAllocation, DynamicConfig, DynamicEmbedder};
use se_privgemb_suite::eval::{struc_equ, PairSelection};
use se_privgemb_suite::skipgram::TrainConfig;

fn main() {
    let mut rng = StdRng::seed_from_u64(41);
    let g0 = generators::barabasi_albert(300, 3, &mut rng);
    let snapshots = evolve_graph(&g0, 4, 150, &mut rng);
    println!(
        "publishing {} versions of a growing graph:",
        snapshots.len()
    );
    for (t, s) in snapshots.iter().enumerate() {
        println!("  v{t}: {} edges", s.num_edges());
    }

    let base = TrainConfig {
        dim: 48,
        epochs: 40,
        ..TrainConfig::default()
    };

    for (label, allocation, warm) in [
        ("uniform + warm start", BudgetAllocation::Uniform, true),
        ("uniform + cold start", BudgetAllocation::Uniform, false),
        (
            "decay(0.6) + warm start",
            BudgetAllocation::GeometricDecay { rho: 0.6 },
            true,
        ),
    ] {
        let embedder = DynamicEmbedder::new(DynamicConfig {
            base: base.clone(),
            total_epsilon: 3.5,
            allocation,
            warm_start: warm,
            ..DynamicConfig::default()
        });
        let results = embedder.fit(&snapshots);
        println!("\n--- {label} (total ε = 3.5, δ = 1e-5) ---");
        println!(
            "{:>4}  {:>8}  {:>10}  {:>10}  {:>10}",
            "ver", "ε alloc", "ε spent", "StrucEqu", "drift"
        );
        let mut total_spent = 0.0;
        for (t, r) in results.iter().enumerate() {
            let s = struc_equ(
                &snapshots[t],
                &r.model.w_in,
                PairSelection::Auto { seed: 1 },
            )
            .unwrap_or(f64::NAN);
            total_spent += r.report.epsilon_spent;
            println!(
                "{t:>4}  {:>8.3}  {:>10.3}  {:>10.4}  {:>10.4}",
                r.epsilon_allocated, r.report.epsilon_spent, s, r.drift
            );
        }
        println!("total ε spent across versions: {total_spent:.3} ≤ 3.5");
    }

    println!();
    println!("Warm starts reuse the previous *published* (already-DP) model,");
    println!("which is free post-processing — versions drift less and later");
    println!("snapshots keep improving instead of relearning from scratch.");
}
