//! Private link prediction on a collaboration network (Fig. 4's task).
//!
//! Given a snapshot of a co-authorship graph, predict which missing
//! author pairs are most likely to collaborate — without the published
//! embeddings leaking any individual's presence. Demonstrates the full
//! protocol: 90/10 split, training on the train graph only, scoring
//! held-out pairs by embedding inner product, rank-AUC.
//!
//! ```text
//! cargo run --release --example link_prediction
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use se_privgemb_suite::core::{PerturbStrategy, ProximityKind, SePrivGEmb};
use se_privgemb_suite::datasets::PaperDataset;
use se_privgemb_suite::eval::LinkSplit;

fn main() {
    // A 20% Arxiv stand-in: power-law collaboration network with
    // triadic clustering (Holme–Kim).
    let g = PaperDataset::Arxiv.generate(0.2, 23);
    println!(
        "collaboration graph: {} nodes, {} edges",
        g.num_nodes(),
        g.num_edges()
    );

    let mut rng = StdRng::seed_from_u64(5);
    let split = LinkSplit::new(&g, 0.1, &mut rng);
    println!(
        "split: {} train edges, {} held-out edges, {} sampled non-edges",
        split.train.num_edges(),
        split.test_pos.len(),
        split.test_neg.len()
    );
    println!();
    println!("{:>28}  {:>8}  {:>8}", "model", "eps", "AUC");

    // Structure preference matters: DW (random-walk) proximity vs the
    // degree preference, each privately and non-privately.
    let configs = [
        (
            "SE-PrivGEmb (DW)",
            ProximityKind::deepwalk_default(),
            PerturbStrategy::NonZero,
            2.0,
        ),
        (
            "SE-PrivGEmb (Deg)",
            ProximityKind::Degree,
            PerturbStrategy::NonZero,
            2.0,
        ),
        (
            "SE-GEmb (DW, non-private)",
            ProximityKind::deepwalk_default(),
            PerturbStrategy::None,
            f64::INFINITY,
        ),
        (
            "SE-GEmb (Deg, non-private)",
            ProximityKind::Degree,
            PerturbStrategy::None,
            f64::INFINITY,
        ),
    ];
    for (name, prox, strategy, eps) in configs {
        let mut builder = SePrivGEmb::builder()
            .dim(64)
            .proximity(prox)
            .strategy(strategy)
            .epochs(150)
            .seed(9);
        if strategy == PerturbStrategy::NonZero {
            builder = builder.epsilon(eps);
        }
        let result = builder.build().fit(&split.train);
        let auc = split.auc(result.embeddings()).unwrap();
        let eps_label = if eps.is_finite() {
            format!("{eps}")
        } else {
            "∞".to_string()
        };
        println!("{name:>28}  {eps_label:>8}  {auc:>8.4}");
    }

    println!();
    println!("The top-scoring unseen pairs are the model's collaboration");
    println!("recommendations; by Theorem 2 any such post-processing of the");
    println!("private embeddings keeps the (ε, δ) guarantee.");
}
