//! Publishing embeddings of a social network under DP — the paper's
//! motivating scenario.
//!
//! A platform wants to release node vectors of its follower graph so
//! third parties can run analytics, without letting an attacker infer
//! whether a given user (node) was present. This example sweeps the
//! privacy budget on a BlogCatalog-style stand-in and compares
//! SE-PrivGEmb against an aggregation-perturbation baseline (ProGAP)
//! at each ε.
//!
//! ```text
//! cargo run --release --example private_social_embedding
//! ```

use se_privgemb_suite::baselines::{BaselineConfig, Embedder, ProGap};
use se_privgemb_suite::core::{ProximityKind, SePrivGEmb};
use se_privgemb_suite::datasets::PaperDataset;
use se_privgemb_suite::eval::{struc_equ, PairSelection};

fn main() {
    // A 5% BlogCatalog stand-in (516 nodes, ~16.7k edges): dense
    // social topology with strong hubs.
    let g = PaperDataset::BlogCatalog.generate(0.05, 11);
    println!(
        "social graph stand-in: {} nodes, {} edges (avg degree {:.1})",
        g.num_nodes(),
        g.num_edges(),
        g.avg_degree()
    );
    println!();
    println!(
        "{:>6}  {:>18}  {:>12}  {:>14}",
        "eps", "SE-PrivGEmb (DW)", "ProGAP", "epochs afforded"
    );

    for eps in [0.5, 1.0, 2.0, 3.5] {
        let ours = SePrivGEmb::builder()
            .dim(64)
            .proximity(ProximityKind::deepwalk_default())
            .epsilon(eps)
            .epochs(60)
            .seed(3)
            .build()
            .fit(&g);
        let s_ours =
            struc_equ(&g, ours.embeddings(), PairSelection::Auto { seed: 1 }).unwrap_or(f64::NAN);

        let progap = ProGap::new(BaselineConfig {
            dim: 64,
            epsilon: eps,
            seed: 3,
            ..BaselineConfig::default()
        });
        let (emb, _) = progap.embed(&g);
        let s_progap = struc_equ(&g, &emb, PairSelection::Auto { seed: 1 }).unwrap_or(f64::NAN);

        println!(
            "{eps:>6}  {s_ours:>18.4}  {s_progap:>12.4}  {:>14}",
            ours.report.epochs_run
        );
    }

    println!();
    println!("Reading the table: a larger ε lets the RDP accountant afford more");
    println!("training before the (ε, δ) budget binds, so utility rises with ε;");
    println!("the skip-gram mechanism with non-zero perturbation dominates the");
    println!("aggregation-perturbation baseline across the whole grid (Fig. 3).");
}
