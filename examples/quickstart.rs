//! Quickstart: embed a small graph under differential privacy and
//! evaluate both downstream tasks.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use se_privgemb_suite::core::{PerturbStrategy, ProximityKind, SePrivGEmb};
use se_privgemb_suite::datasets::generators;
use se_privgemb_suite::eval::{struc_equ, LinkSplit, PairSelection};

fn main() {
    // 1. A synthetic scale-free graph (stand-in for any edge list you
    //    might load with sp_graph::io::read_edge_list_file).
    let mut rng = StdRng::seed_from_u64(7);
    let g = generators::barabasi_albert(500, 5, &mut rng);
    println!(
        "graph: {} nodes, {} edges, max degree {}",
        g.num_nodes(),
        g.num_edges(),
        g.max_degree()
    );

    // 2. Train SE-PrivGEmb with the paper's defaults at ε = 3.5.
    let result = SePrivGEmb::builder()
        .dim(64)
        .proximity(ProximityKind::deepwalk_default())
        .epsilon(3.5)
        .delta(1e-5)
        .epochs(100)
        .seed(42)
        .build()
        .fit(&g);

    println!(
        "training: {} epochs run ({} steps), stopped by budget: {}",
        result.report.epochs_run, result.report.steps_run, result.report.stopped_by_budget
    );
    println!(
        "privacy:  ε spent = {:.3} (target 3.5), δ̂ = {:.2e} (target 1e-5)",
        result.report.epsilon_spent, result.report.delta_spent
    );

    // 3. Task 1: structural equivalence.
    let strucequ =
        struc_equ(&g, result.embeddings(), PairSelection::Auto { seed: 1 }).unwrap_or(f64::NAN);
    println!("StrucEqu: {strucequ:.4}");

    // 4. Task 2: link prediction on a fresh 90/10 split.
    //    (Retrain on the train graph so no test edge leaks.)
    let split = LinkSplit::new(&g, 0.1, &mut rng);
    let lp = SePrivGEmb::builder()
        .dim(64)
        .epsilon(3.5)
        .epochs(100)
        .seed(42)
        .build()
        .fit(&split.train);
    println!(
        "link-prediction AUC: {:.4}",
        split.auc(lp.embeddings()).unwrap()
    );

    // 5. The non-private reference (SE-GEmb) for comparison —
    //    trained to convergence since it has no budget to respect.
    let nonpriv = SePrivGEmb::builder()
        .dim(64)
        .strategy(PerturbStrategy::None)
        .epochs(400)
        .learning_rate(0.3)
        .seed(42)
        .build()
        .fit(&g);
    let s_np =
        struc_equ(&g, nonpriv.embeddings(), PairSelection::Auto { seed: 1 }).unwrap_or(f64::NAN);
    println!("non-private StrucEqu reference: {s_np:.4}");
}
