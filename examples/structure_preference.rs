//! Structure preference in action: Theorem 3 end to end.
//!
//! The paper's second contribution is that skip-gram, with the right
//! negative-sampling design, preserves *arbitrary* node proximities:
//! the optimal inner products are `x_ij = log(p_ij / (k·min P))`.
//! This example (1) verifies the closed form by directly minimising
//! the deterministic objective, and (2) trains real embeddings under
//! two different structure preferences and shows each embedding aligns
//! best with its *own* preference — the "choose the structure that
//! matches your mining objective" workflow.
//!
//! ```text
//! cargo run --release --example structure_preference
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use se_privgemb_suite::core::{PerturbStrategy, ProximityKind, SePrivGEmb};
use se_privgemb_suite::datasets::generators;
use se_privgemb_suite::proximity::proximity_matrix;
use se_privgemb_suite::skipgram::theory;

fn main() {
    let mut rng = StdRng::seed_from_u64(31);
    let g = generators::holme_kim(300, 3, 0.6, &mut rng);
    println!(
        "graph: {} nodes, {} edges (clustered power-law)",
        g.num_nodes(),
        g.num_edges()
    );

    // Part 1: the closed form is what the objective actually minimises.
    println!("\n-- Theorem 3: closed form vs direct optimisation --");
    let k = 5;
    for kind in [
        ProximityKind::DeepWalk { window: 2 },
        ProximityKind::Ppr {
            alpha: 0.15,
            iters: 6,
        },
    ] {
        let p = proximity_matrix(&g, kind);
        let min_p = p.min_positive().expect("non-empty proximity");
        let gd = theory::optimize_objective(&p, k, 4000, 0.4);
        let max_err = gd
            .iter()
            .map(|&(i, j, x)| (x - theory::theorem3_optimal(p.get(i, j), k, min_p)).abs())
            .fold(0.0f64, f64::max);
        println!(
            "  {:<4}  {} optimised pairs, max |x_gd - x*| = {max_err:.2e}",
            kind.label(),
            gd.len()
        );
    }

    // Part 2: trained embeddings align with their own preference.
    println!("\n-- Trained embeddings vs structure preference --");
    println!(
        "{:>24}  {:>16}  {:>16}",
        "trained with", "align(DW matrix)", "align(CN matrix)"
    );
    let dw_matrix = proximity_matrix(&g, ProximityKind::DeepWalk { window: 2 });
    let cn_matrix = proximity_matrix(&g, ProximityKind::CommonNeighbors);
    for (label, kind) in [
        ("DeepWalk preference", ProximityKind::DeepWalk { window: 2 }),
        ("CommonNeighbors pref.", ProximityKind::CommonNeighbors),
    ] {
        let result = SePrivGEmb::builder()
            .dim(64)
            .proximity(kind)
            .strategy(PerturbStrategy::None) // isolate the preference effect
            .epochs(300)
            .learning_rate(0.3)
            .seed(13)
            .build()
            .fit(&g);
        let a_dw = theory::proximity_alignment(&result.model, &dw_matrix, 50_000).unwrap_or(0.0);
        let a_cn = theory::proximity_alignment(&result.model, &cn_matrix, 50_000).unwrap_or(0.0);
        println!("{label:>24}  {a_dw:>16.4}  {a_cn:>16.4}");
    }
    println!();
    println!("Read column-wise: for each proximity matrix, the model *trained on*");
    println!("that preference aligns with it best — switching the preference");
    println!("reshapes what the embedding space preserves, which is Theorem 3's");
    println!("point. (CN has sparse support on this graph, so its absolute");
    println!("alignments are smaller, but the ordering within the column holds.)");
}
