//! The TCP front-end contract, end to end: every `SPSERVE 1` answer
//! must be **bit-identical** to the same query answered in-process,
//! and no input a client can send — truncated, oversized, binary
//! garbage, half-open, idle — may kill the server or tear a reload.
//!
//! The suite drives a real [`Server`] bound to a loopback port in
//! every test, mixing the typed [`ServeClient`] with raw
//! [`TcpStream`]s that deliberately violate the protocol.

use rand::rngs::StdRng;
use rand::SeedableRng;
use se_privgemb_suite::model::{ModelFile, Provenance};
use se_privgemb_suite::serve::{
    synthetic, EmbeddingStore, IvfConfig, IvfIndex, ServeClient, Server, ServerConfig,
    ServerMetrics, ServingStore, ShutdownHandle,
};
use se_privgemb_suite::skipgram::SkipGramModel;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

const NODES: usize = 200;
const DIM: usize = 8;
const SEED: u64 = 0xC0DE;

fn store() -> EmbeddingStore {
    EmbeddingStore::from_f32(
        synthetic::clustered_embedding(NODES, DIM, 10, SEED),
        Provenance::non_private(SEED),
    )
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sp_served_tcp_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Binds a server on an ephemeral loopback port and runs it on its own
/// thread; the join handle yields the drain report, and the metrics
/// handle lets tests assert the STATS accounting invariants.
fn start(
    config: ServerConfig,
    serving: Arc<ServingStore>,
) -> (
    SocketAddr,
    ShutdownHandle,
    std::thread::JoinHandle<se_privgemb_suite::serve::ServerReport>,
    Arc<ServerMetrics>,
) {
    let server = Server::bind("127.0.0.1:0", serving, config).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.shutdown_handle();
    let metrics = server.metrics();
    let join = std::thread::spawn(move || server.run().unwrap());
    (addr, handle, join, metrics)
}

/// Asserts the STATS accounting invariant that holds by construction:
/// every counted request is either a parsed command or malformed.
fn assert_stats_invariant(metrics: &ServerMetrics) {
    let s = metrics.snapshot();
    let per_command_sum: u64 = s.per_command.iter().map(|&(_, c)| c).sum();
    assert_eq!(
        s.requests,
        per_command_sum + s.malformed,
        "requests != sum(per_command) + malformed: {s:?}"
    );
}

/// A raw protocol-violating connection: greeting consumed, everything
/// else up to the caller.
fn raw_conn(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut greeting = String::new();
    reader.read_line(&mut greeting).unwrap();
    assert_eq!(greeting.trim_end(), "SPSERVE 1 READY");
    (stream, reader)
}

fn read_response_line(reader: &mut BufReader<TcpStream>) -> String {
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    line.trim_end().to_string()
}

#[test]
fn tcp_answers_are_bit_identical_to_in_process() {
    // Exercise both query paths: the exact oracle and the IVF index.
    for use_ivf in [false, true] {
        let base = store();
        let index = use_ivf.then(|| {
            IvfIndex::build(
                &base,
                IvfConfig {
                    nlist: 8,
                    nprobe: 4,
                    ..IvfConfig::default()
                },
                Some(1),
            )
        });
        let serving = Arc::new(ServingStore::new(store(), index));
        let (addr, handle, join, _metrics) = start(ServerConfig::default(), Arc::clone(&serving));

        let mut client = ServeClient::connect(addr).unwrap();
        let snapshot = serving.snapshot();
        for node in [0u32, 7, 63, 199] {
            let (version, tcp) = client.top_k(node, 10).unwrap();
            assert_eq!(version, snapshot.version);
            let local = snapshot.try_top_k_node(node, 10).unwrap();
            assert_eq!(tcp.len(), local.len(), "node {node} answer length");
            for (a, b) in tcp.iter().zip(local.iter()) {
                assert_eq!(a.node, b.node, "node {node}: neighbour mismatch");
                assert_eq!(
                    a.score.to_bits(),
                    b.score.to_bits(),
                    "node {node}: score bits differ over TCP (ivf={use_ivf})"
                );
            }
        }
        for (u, v) in [(0u32, 1u32), (5, 180), (199, 3)] {
            let (_, tcp_score) = client.link(u, v).unwrap();
            let local_score = snapshot.try_link_score(u, v).unwrap();
            assert_eq!(tcp_score.to_bits(), local_score.to_bits());
        }
        let info = client.info().unwrap();
        assert_eq!(info.nodes, NODES);
        assert_eq!(info.dim, DIM);
        assert_eq!(info.seed, SEED);
        assert_eq!(
            info.index,
            if use_ivf {
                "ivf(nlist=8,nprobe=4)"
            } else {
                "exact"
            }
        );
        client.quit().unwrap();
        handle.shutdown();
        join.join().unwrap();
    }
}

#[test]
fn malformed_input_never_kills_the_server() {
    let serving = Arc::new(ServingStore::new(store(), None));
    let config = ServerConfig {
        max_line_bytes: 128,
        ..ServerConfig::default()
    };
    let (addr, handle, join, metrics) = start(config, serving);

    // Unknown command → ERR 400, connection stays usable.
    {
        let (mut stream, mut reader) = raw_conn(addr);
        stream.write_all(b"FROB 1 2\n").unwrap();
        assert!(read_response_line(&mut reader).starts_with("ERR 400 "));
        stream.write_all(b"TOPK 0 1\n").unwrap();
        assert!(read_response_line(&mut reader).starts_with("OK TOPK "));
    }

    // Binary garbage (invalid UTF-8) → ERR 400.
    {
        let (mut stream, mut reader) = raw_conn(addr);
        stream.write_all(b"\xff\xfe\x00garbage\x80\n").unwrap();
        assert!(read_response_line(&mut reader).starts_with("ERR 400 "));
    }

    // Oversized line → ERR 400 and the connection closes.
    {
        let (mut stream, mut reader) = raw_conn(addr);
        let huge = vec![b'A'; 4096];
        stream.write_all(&huge).unwrap();
        stream.write_all(b"\n").unwrap();
        assert!(read_response_line(&mut reader).starts_with("ERR 400 "));
        // The server closes the connection; with unread bytes still in
        // flight that close may surface as a reset rather than EOF.
        let mut rest = Vec::new();
        match reader.read_to_end(&mut rest) {
            Ok(_) => assert!(rest.is_empty(), "server must close after an oversized line"),
            Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::ConnectionReset),
        }
    }

    // Bad argument shapes → ERR 400; out-of-range node → ERR 404.
    {
        let (mut stream, mut reader) = raw_conn(addr);
        for (req, code) in [
            ("TOPK abc 5", "ERR 400 "),
            ("TOPK 0", "ERR 400 "),
            ("LINK 0", "ERR 400 "),
            ("TOPK 0 0", "ERR 400 "),
            ("TOPK 999999 5", "ERR 404 "),
            ("LINK 0 999999", "ERR 404 "),
            ("RELOAD", "ERR 400 "), // no --model path configured
        ] {
            stream.write_all(req.as_bytes()).unwrap();
            stream.write_all(b"\n").unwrap();
            let line = read_response_line(&mut reader);
            assert!(
                line.starts_with(code),
                "{req:?} should answer {code:?}, got {line:?}"
            );
        }
    }

    // Truncated request (no terminator, then close) and a half-open
    // connection that never sends anything: both just go away.
    {
        let (mut stream, _reader) = raw_conn(addr);
        stream.write_all(b"TOPK 0").unwrap();
        drop(stream);
        let (_stream, _reader) = raw_conn(addr);
        // dropped immediately
    }

    // After all that abuse a typed client still gets exact answers.
    let mut client = ServeClient::connect(addr).unwrap();
    let (_, answer) = client.top_k(0, 5).unwrap();
    assert_eq!(answer.len(), 5);
    client.quit().unwrap();
    handle.shutdown();
    let report = join.join().unwrap();

    // Accounting after the barrage: every request above is either a
    // parsed command or malformed — never both, never dropped.
    // Malformed: FROB, binary garbage, the oversized line, and the
    // four bad-argument shapes that fail `Request::parse` (TOPK abc 5,
    // TOPK 0, LINK 0, TOPK 0 0). The 404s and the RELOAD parsed fine —
    // they are command errors, counted under their command.
    assert_stats_invariant(&metrics);
    let s = metrics.snapshot();
    assert_eq!(s.malformed, 7, "malformed census changed: {s:?}");
    assert_eq!(s.requests, report.requests);
    assert_eq!(s.conns_rejected, 0, "nothing hit the capacity bound");
}

#[test]
fn idle_connection_times_out_with_408() {
    let serving = Arc::new(ServingStore::new(store(), None));
    let config = ServerConfig {
        read_timeout: Duration::from_millis(200),
        ..ServerConfig::default()
    };
    let (addr, handle, join, metrics) = start(config, serving);

    let (_stream, mut reader) = raw_conn(addr);
    // Say nothing: the server must evict us with ERR 408, then close.
    let line = read_response_line(&mut reader);
    assert!(line.starts_with("ERR 408 "), "got {line:?}");
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty());

    handle.shutdown();
    join.join().unwrap();

    // The eviction is counted as a malformed request, but since no
    // request line was ever read there is nothing to time — the
    // latency histogram must stay empty rather than absorb a
    // fabricated 0µs sample that would drag p50 to the floor.
    assert_stats_invariant(&metrics);
    let s = metrics.snapshot();
    assert_eq!(s.malformed, 1, "{s:?}");
    assert_eq!(s.requests, 1, "{s:?}");
    assert_eq!(
        s.p50_us, 0,
        "timeout eviction must not fabricate latency samples: {s:?}"
    );
}

fn write_model(path: &std::path::Path, seed: u64) -> ModelFile {
    let mut rng = StdRng::seed_from_u64(seed);
    let model = SkipGramModel::new(60, DIM, &mut rng);
    let file = ModelFile::from_skipgram(&model, Provenance::non_private(seed));
    file.write_atomic(path).unwrap();
    file
}

#[test]
fn reload_swaps_complete_generations_and_rejects_torn_files() {
    let dir = temp_dir("reload");
    let path = dir.join("model.spm");
    write_model(&path, 1);
    let base = EmbeddingStore::open(&path).unwrap();
    let serving = Arc::new(ServingStore::new(base, None));
    let config = ServerConfig {
        model_path: Some(path.clone()),
        ..ServerConfig::default()
    };
    let (addr, handle, join, _metrics) = start(config, Arc::clone(&serving));

    let mut client = ServeClient::connect(addr).unwrap();

    // Concurrent republish: a writer keeps atomically replacing the
    // file while this client reloads and queries. Every reload must
    // land on a complete model (the atomic write + fsync contract) and
    // every answer must come from one whole generation.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writer = {
        let path = path.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut seed = 2u64;
            while !stop.load(std::sync::atomic::Ordering::Acquire) {
                write_model(&path, seed);
                seed += 1;
            }
        })
    };
    let mut last_version = 1u64;
    for _ in 0..20 {
        let version = client.reload().unwrap();
        assert!(version > last_version, "reload must advance the generation");
        last_version = version;
        let (answer_version, answer) = client.top_k(0, 5).unwrap();
        assert_eq!(answer_version, version);
        assert_eq!(answer.len(), 5);
        let info = client.info().unwrap();
        assert_eq!(info.nodes, 60, "reload must never expose a torn model");
    }
    stop.store(true, std::sync::atomic::Ordering::Release);
    writer.join().unwrap();

    // A torn publish on disk (simulated with a direct, non-atomic
    // truncated write) must fail RELOAD with ERR 500 and leave the
    // previous generation serving.
    let good = ModelFile::read(&path).unwrap();
    let bytes = good.to_bytes();
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
    let err = client.reload().unwrap_err();
    match err {
        se_privgemb_suite::serve::ClientError::Server { code, .. } => assert_eq!(code, 500),
        other => panic!("expected ERR 500 from a torn model file, got {other}"),
    }
    let (version, answer) = client.top_k(0, 5).unwrap();
    assert_eq!(version, last_version, "failed reload must not swap");
    assert_eq!(answer.len(), 5);

    // Restoring a complete file makes RELOAD work again.
    se_privgemb_suite::model::write_bytes_atomic(&path, &bytes).unwrap();
    let version = client.reload().unwrap();
    assert!(version > last_version);

    client.quit().unwrap();
    handle.shutdown();
    join.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn failed_reload_keeps_last_good_generation_and_counts_reload_failed() {
    let dir = temp_dir("reload_failed");
    let path = dir.join("model.spm");
    write_model(&path, 5);
    let base = EmbeddingStore::open(&path).unwrap();
    let serving = Arc::new(ServingStore::new(base, None));
    let config = ServerConfig {
        model_path: Some(path.clone()),
        ..ServerConfig::default()
    };
    let (addr, handle, join, metrics) = start(config, Arc::clone(&serving));

    let mut client = ServeClient::connect(addr).unwrap();
    let (version_before, baseline) = client.top_k(0, 5).unwrap();
    assert_eq!(metrics.snapshot().reload_failed, 0);

    // Tear the file on disk (a non-atomic publisher would do this),
    // then fail RELOAD twice: the counter must track every failure.
    let good = ModelFile::read(&path).unwrap().to_bytes();
    std::fs::write(&path, &good[..good.len() / 3]).unwrap();
    for expected_failures in 1..=2u64 {
        match client.reload().unwrap_err() {
            se_privgemb_suite::serve::ClientError::Server { code, .. } => assert_eq!(code, 500),
            other => panic!("expected ERR 500 from a torn model file, got {other}"),
        }
        assert_eq!(metrics.snapshot().reload_failed, expected_failures);
    }

    // The last-good generation keeps answering, bit for bit.
    let (version_after, after) = client.top_k(0, 5).unwrap();
    assert_eq!(version_after, version_before, "failed reload must not swap");
    for (a, b) in baseline.iter().zip(after.iter()) {
        assert_eq!(a.node, b.node, "degraded answer changed neighbours");
        assert_eq!(
            a.score.to_bits(),
            b.score.to_bits(),
            "degraded answer changed score bits"
        );
    }

    // The counter is visible over the wire in STATS, and the request
    // invariant is untouched: the failed RELOADs are still ordinary
    // counted requests.
    let (mut stream, mut reader) = raw_conn(addr);
    stream.write_all(b"STATS\n").unwrap();
    let head = read_response_line(&mut reader);
    assert!(
        head.contains(" reload_failed=2"),
        "STATS must expose the failure count: {head:?}"
    );
    loop {
        if read_response_line(&mut reader) == "END" {
            break;
        }
    }
    assert_stats_invariant(&metrics);

    // A repaired file recovers without a restart.
    se_privgemb_suite::model::write_bytes_atomic(&path, &good).unwrap();
    assert!(client.reload().unwrap() > version_before);
    assert_eq!(
        metrics.snapshot().reload_failed,
        2,
        "success must not count"
    );

    client.quit().unwrap();
    handle.shutdown();
    join.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn connect_with_retry_survives_dropped_connections() {
    use se_privgemb_suite::fault::retry::RetryPolicy;

    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let flaky = std::thread::spawn(move || {
        // A restarting server: the first two connections die before the
        // greeting, the third serves a minimal session.
        for _ in 0..2 {
            let (stream, _) = listener.accept().unwrap();
            drop(stream);
        }
        let (mut stream, _) = listener.accept().unwrap();
        stream.write_all(b"SPSERVE 1 READY\n").unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim_end(), "QUIT");
        stream.write_all(b"OK BYE\n").unwrap();
    });

    // A single attempt fails (the greeting read hits EOF/reset — a
    // transient error), but the bounded deterministic retry reaches the
    // healthy third connection.
    let policy = RetryPolicy {
        attempts: 5,
        base: Duration::from_millis(1),
        cap: Duration::from_millis(20),
        seed: 7,
    };
    let client = ServeClient::connect_with_retry(addr, Duration::from_secs(10), &policy).unwrap();
    client.quit().unwrap();
    flaky.join().unwrap();
}

#[test]
fn shutdown_drains_and_refuses_new_connections() {
    let serving = Arc::new(ServingStore::new(store(), None));
    let (addr, _handle, join, _metrics) = start(ServerConfig::default(), serving);

    // An idle bystander connection is open when SHUTDOWN arrives.
    let (_bystander, mut bystander_reader) = raw_conn(addr);

    let mut client = ServeClient::connect(addr).unwrap();
    let (_, answer) = client.top_k(3, 4).unwrap();
    assert_eq!(answer.len(), 4);
    client.shutdown_server().unwrap();

    // The server drains: run() returns with the requests counted, the
    // bystander is closed without a response, and fresh connections
    // are refused.
    let report = join.join().unwrap();
    assert!(report.requests >= 1);
    assert_eq!(report.errors, 0);
    let mut rest = Vec::new();
    bystander_reader.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "drain closes idle connections silently");
    assert!(
        TcpStream::connect(addr).is_err()
            || TcpStream::connect(addr)
                .and_then(|mut s| {
                    let mut byte = [0u8; 1];
                    s.read(&mut byte).map(|n| n == 0)
                })
                .unwrap_or(true),
        "a drained server must not accept new work"
    );
}
