//! Determinism contract of the out-of-core (blocked/streamed) pipeline.
//!
//! The blocked execution path — row-banded proximity, the two-pass
//! streaming alias builder, walk-corpus bands, and the edge-sharded
//! trainer — promises output **bit-identical** to the materialised
//! path for *any* band/shard/chunk height and *any* thread count.
//! This suite pins that promise over the cross-product
//! `heights {1, 7, 64, n} × threads {1, 4}`, and separately shows the
//! memory claim itself: the tracked blocked working set stays under a
//! budget that the materialised matrix provably exceeds.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sp_datasets::generators;
use sp_graph::Graph;
use sp_linalg::{CsrMatrix, CsrRowBlock};
use sp_mem::MemTracker;
use sp_proximity::band::WedgeBander;
use sp_proximity::{proximity_matrix_threads, EdgeProximity, ProximityKind};
use sp_skipgram::walks::{corpus_pairs_band, corpus_pairs_seeded, WalkConfig};
use sp_skipgram::{
    AliasTable, AliasTableBuilder, NegativeSampling, PerturbStrategy, TrainConfig, Trainer,
};

/// Band/shard/chunk heights exercised everywhere: degenerate (1), odd
/// (7), round (64), and "everything in one band" (n, substituted per
/// test).
const HEIGHTS: [usize; 3] = [1, 7, 64];
const THREADS: [usize; 2] = [1, 4];

const WEDGE_KINDS: [ProximityKind; 3] = [
    ProximityKind::CommonNeighbors,
    ProximityKind::AdamicAdar,
    ProximityKind::ResourceAllocation,
];

/// Small fixed scale-free graph: enough hub structure that wedge rows
/// have very uneven nnz, which is what makes band boundaries
/// interesting.
fn scale_free_graph() -> Graph {
    let mut rng = StdRng::seed_from_u64(7);
    generators::barabasi_albert(40, 3, &mut rng)
}

/// Ring + chords for the trainer runs (same family as the golden
/// trainer fixture, sized so batches cross shard boundaries).
fn ring_with_chords(n: usize) -> Graph {
    let mut edges: Vec<(u32, u32)> = (0..n).map(|i| (i as u32, ((i + 1) % n) as u32)).collect();
    for i in (0..n).step_by(5) {
        edges.push((i as u32, ((i + n / 2) % n) as u32));
    }
    Graph::from_edges(n, edges)
}

fn bits_equal(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Structural + bitwise equality of two CSR matrices (CsrMatrix's
/// `PartialEq` uses float value equality, which would call `-0.0` and
/// `0.0` equal; the blocked contract is stronger).
fn matrices_bit_identical(a: &CsrMatrix, b: &CsrMatrix) -> bool {
    a.nnz() == b.nnz()
        && a.iter().zip(b.iter()).all(|((i1, j1, v1), (i2, j2, v2))| {
            i1 == i2 && j1 == j2 && v1.to_bits() == v2.to_bits()
        })
}

fn assemble_banded(g: &Graph, kind: ProximityKind, band_rows: usize, threads: usize) -> CsrMatrix {
    let bander = WedgeBander::new(g, kind).expect("wedge kind");
    let n = bander.rows();
    let mut blocks: Vec<CsrRowBlock> = Vec::new();
    let mut start = 0;
    while start < n {
        let end = (start + band_rows).min(n);
        blocks.push(bander.band(start..end, Some(threads)));
        start = end;
    }
    CsrMatrix::from_row_blocks(n, n, blocks)
}

// ---------------------------------------------------------------------------
// Row-banded proximity matrices

#[test]
fn banded_wedge_matrices_match_materialized_for_all_heights_and_threads() {
    let g = scale_free_graph();
    let n = g.num_nodes();
    for kind in WEDGE_KINDS {
        let full = proximity_matrix_threads(&g, kind, Some(1));
        for band_rows in HEIGHTS.into_iter().chain([n]) {
            for threads in THREADS {
                let assembled = assemble_banded(&g, kind, band_rows, threads);
                assert!(
                    matrices_bit_identical(&full, &assembled),
                    "{kind:?}: bands of {band_rows} rows with {threads} threads diverged"
                );
            }
        }
    }
}

#[test]
fn blocked_edge_proximity_matches_materialized_for_all_heights_and_threads() {
    let g = scale_free_graph();
    let n = g.num_nodes();
    for kind in WEDGE_KINDS {
        let full = EdgeProximity::compute_threads(&g, kind, Some(1));
        for band_rows in HEIGHTS.into_iter().chain([n]) {
            for threads in THREADS {
                let blocked =
                    EdgeProximity::compute_blocked(&g, kind, band_rows, Some(threads), None);
                assert!(
                    bits_equal(&full.weights, &blocked.weights),
                    "{kind:?}: blocked weights (band {band_rows}, {threads} threads) diverged"
                );
                assert_eq!(
                    full.min_positive.to_bits(),
                    blocked.min_positive.to_bits(),
                    "{kind:?}: blocked min_positive (band {band_rows}) diverged"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Streaming alias builder

#[test]
fn streamed_alias_tables_match_materialized_for_all_chunk_heights() {
    let g = scale_free_graph();
    let prox = EdgeProximity::compute(&g, ProximityKind::CommonNeighbors);
    let reference = AliasTable::new(&prox.weights);
    for chunk in HEIGHTS.into_iter().chain([prox.weights.len()]) {
        let mut builder = AliasTableBuilder::new();
        for c in prox.weights.chunks(chunk) {
            builder.push_mass(c);
        }
        for c in prox.weights.chunks(chunk) {
            builder.push_fill(c);
        }
        let streamed = builder.finish();
        let (ref_prob, ref_alias) = reference.buckets();
        let (st_prob, st_alias) = streamed.buckets();
        assert!(
            bits_equal(ref_prob, st_prob),
            "alias probabilities diverged at chunk height {chunk}"
        );
        assert_eq!(
            ref_alias, st_alias,
            "alias outcomes diverged at chunk height {chunk}"
        );
    }
}

// ---------------------------------------------------------------------------
// Walk-corpus bands

#[test]
fn corpus_bands_concatenate_to_the_seeded_corpus() {
    let g = scale_free_graph();
    let cfg = WalkConfig {
        walks_per_node: 3,
        walk_length: 10,
        window: 2,
    };
    let seed = 0xC0FFEE;
    let total = g.num_nodes() * cfg.walks_per_node;
    let reference = corpus_pairs_seeded(&g, cfg, seed, Some(1));
    for band in HEIGHTS.into_iter().chain([total]) {
        for threads in THREADS {
            let mut streamed = Vec::new();
            let mut start = 0;
            while start < total {
                let end = (start + band).min(total);
                streamed.extend(corpus_pairs_band(&g, cfg, seed, start..end, Some(threads)));
                start = end;
            }
            assert_eq!(
                reference, streamed,
                "corpus bands of {band} walks with {threads} threads diverged"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Edge-sharded trainer

fn shard_train_config(shard: Option<usize>, threads: usize) -> TrainConfig {
    TrainConfig {
        dim: 16,
        negatives: 3,
        batch_size: 16,
        learning_rate: 0.1,
        clip: 1.0,
        sigma: 5.0,
        epsilon: 3.5,
        delta: 1e-5,
        epochs: 2,
        strategy: PerturbStrategy::NonZero,
        negative_sampling: NegativeSampling::UniformNonNeighbor,
        seed: 0xD5EED,
        threads: Some(threads),
        subgraph_shard_edges: shard,
        checkpoint_every: None,
        checkpoint_dir: None,
    }
}

#[test]
fn sharded_trainer_matches_materialized_for_all_shard_heights_and_threads() {
    let g = ring_with_chords(60);
    let prox = EdgeProximity::compute(&g, ProximityKind::CommonNeighbors);
    let (ref_model, ref_report) = Trainer::new(shard_train_config(None, 1)).train(&g, &prox);
    for shard in HEIGHTS.into_iter().chain([g.num_edges()]) {
        for threads in THREADS {
            let (model, report) =
                Trainer::new(shard_train_config(Some(shard), threads)).train(&g, &prox);
            assert!(
                bits_equal(ref_model.w_in.as_slice(), model.w_in.as_slice()),
                "sharded w_in (shard {shard}, {threads} threads) diverged"
            );
            assert!(
                bits_equal(ref_model.w_out.as_slice(), model.w_out.as_slice()),
                "sharded w_out (shard {shard}, {threads} threads) diverged"
            );
            // The privacy accounting must be byte-identical too: same
            // step count, same spent budget, bit for bit.
            assert_eq!(ref_report.steps_run, report.steps_run);
            assert_eq!(ref_report.epochs_run, report.epochs_run);
            assert_eq!(
                ref_report.epsilon_spent.to_bits(),
                report.epsilon_spent.to_bits(),
                "accountant state (shard {shard}, {threads} threads) diverged"
            );
            assert_eq!(
                ref_report.delta_spent.to_bits(),
                report.delta_spent.to_bits()
            );
        }
    }
}

// ---------------------------------------------------------------------------
// The memory claim itself

#[test]
fn blocked_proximity_fits_a_budget_the_materialized_matrix_exceeds() {
    // Ring + 2 chords per node: degree 6, so the CN matrix holds
    // roughly n·d² ≈ 200k entries — ~2.5 MiB materialised, while a
    // 64-row band is a few tens of KiB.
    let n = 6000usize;
    let mut edges: Vec<(u32, u32)> = (0..n).map(|i| (i as u32, ((i + 1) % n) as u32)).collect();
    for i in 0..n {
        edges.push((i as u32, ((i + n / 3) % n) as u32));
        edges.push((i as u32, ((i + 2 * n / 5 + 1) % n) as u32));
    }
    let g = Graph::from_edges(n, edges);

    const CAP_BYTES: u64 = 1 << 20; // 1 MiB working-set budget

    let materialized = proximity_matrix_threads(&g, ProximityKind::CommonNeighbors, Some(1));
    assert!(
        materialized.heap_bytes() > CAP_BYTES,
        "materialised CN matrix ({} bytes) no longer exceeds the {CAP_BYTES} byte cap — \
         grow the fixture",
        materialized.heap_bytes()
    );

    let tracker = MemTracker::new();
    let blocked = EdgeProximity::compute_blocked(
        &g,
        ProximityKind::CommonNeighbors,
        64,
        Some(1),
        Some(&tracker),
    );
    assert!(
        tracker.peak() <= CAP_BYTES,
        "blocked band working set peaked at {} bytes, over the {CAP_BYTES} byte cap",
        tracker.peak()
    );
    assert_eq!(tracker.current(), 0, "every band should have been released");

    // Cheaper AND bit-identical.
    let full = EdgeProximity::compute_threads(&g, ProximityKind::CommonNeighbors, Some(1));
    assert!(bits_equal(&full.weights, &blocked.weights));
    assert_eq!(full.min_positive.to_bits(), blocked.min_positive.to_bits());
}
