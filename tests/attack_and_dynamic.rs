//! Integration tests for the two extension crates working against the
//! full pipeline: privacy auditing and continual publishing.

use rand::rngs::StdRng;
use rand::SeedableRng;
use se_privgemb_suite::attack::{edge_membership, edge_membership_scored, node_membership};
use se_privgemb_suite::core::{PerturbStrategy, ProximityKind, SePrivGEmb};
use se_privgemb_suite::datasets::generators;
use se_privgemb_suite::dynamic::{evolve_graph, BudgetAllocation, DynamicConfig, DynamicEmbedder};
use se_privgemb_suite::eval::{struc_equ, PairSelection};
use se_privgemb_suite::skipgram::TrainConfig;

fn graph() -> sp_graph::Graph {
    let mut rng = StdRng::seed_from_u64(1);
    generators::barabasi_albert(200, 4, &mut rng)
}

#[test]
fn attack_reports_are_well_formed_on_trained_models() {
    let g = graph();
    let result = SePrivGEmb::builder()
        .dim(16)
        .epochs(20)
        .seed(2)
        .build()
        .fit(&g);
    let mut rng = StdRng::seed_from_u64(3);
    let edge = edge_membership(&g, result.embeddings(), 100, &mut rng);
    assert!((0.0..=1.0).contains(&edge.auc));
    assert_eq!(edge.members, 100);
    let node = node_membership(&g, result.embeddings(), 80, &mut rng);
    assert!((0.0..=1.0).contains(&node.auc));
    assert!(node.advantage() <= 1.0);
}

#[test]
fn whitebox_attack_dominates_embedding_only_attack_on_nonprivate_model() {
    // The Θ-aware scorer (in·out products) sees the fitted statistic;
    // the embedding-only scorer sees it indirectly. On a well-trained
    // non-private model the white-box attack should be at least as
    // strong.
    let g = graph();
    let result = SePrivGEmb::builder()
        .dim(32)
        .epochs(250)
        .learning_rate(0.3)
        .strategy(PerturbStrategy::None)
        .proximity(ProximityKind::deepwalk_default())
        .seed(4)
        .build()
        .fit(&g);
    let model = result.model.clone();
    let mut rng = StdRng::seed_from_u64(5);
    let whitebox = edge_membership_scored(
        &g,
        |u, v| model.inner(u, v) + model.inner(v, u),
        300,
        &mut rng,
    );
    let mut rng = StdRng::seed_from_u64(5);
    let embonly = edge_membership(&g, result.embeddings(), 300, &mut rng);
    assert!(
        whitebox.auc >= embonly.auc - 0.05,
        "white-box {} should not trail embedding-only {}",
        whitebox.auc,
        embonly.auc
    );
    assert!(
        whitebox.auc > 0.6,
        "non-private must leak: {}",
        whitebox.auc
    );
}

#[test]
fn dynamic_sequence_respects_total_budget_and_produces_usable_embeddings() {
    let mut rng = StdRng::seed_from_u64(6);
    let g0 = generators::barabasi_albert(120, 3, &mut rng);
    let snaps = evolve_graph(&g0, 2, 60, &mut rng);
    let embedder = DynamicEmbedder::new(DynamicConfig {
        base: TrainConfig {
            dim: 16,
            epochs: 15,
            batch_size: 16,
            ..TrainConfig::default()
        },
        total_epsilon: 3.0,
        allocation: BudgetAllocation::GeometricDecay { rho: 0.7 },
        ..DynamicConfig::default()
    });
    let results = embedder.fit(&snaps);
    let total: f64 = results.iter().map(|r| r.report.epsilon_spent).sum();
    assert!(total <= 3.0 + 1e-9, "sequence overspent: {total}");
    for (t, r) in results.iter().enumerate() {
        let s = struc_equ(&snaps[t], &r.model.w_in, PairSelection::All);
        assert!(s.is_some(), "snapshot {t} produced degenerate embeddings");
    }
}

#[test]
fn decayed_allocation_gives_final_snapshot_more_budget_than_uniform() {
    let shares_u = BudgetAllocation::Uniform.split(3.5, 5);
    let shares_d = BudgetAllocation::GeometricDecay { rho: 0.5 }.split(3.5, 5);
    assert!(shares_d[4] > shares_u[4]);
    assert!(shares_d[0] < shares_u[0]);
}
