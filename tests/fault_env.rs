//! The env-driven global fault layer, exercised through the **real IO
//! seams** it guards: `SP_FAULT_PLAN` is parsed once per process, so
//! this file holds exactly one test and owns its whole process — the
//! in-process crash/resume suites (`tests/checkpoint_resume.rs`) use
//! explicit [`FaultPlan`] objects instead and stay plan-isolated.

use rand::rngs::StdRng;
use rand::SeedableRng;
use se_privgemb_suite::fault;
use se_privgemb_suite::model::checkpoint::write_checkpoint_atomic;
use se_privgemb_suite::model::{F32Matrix, ModelError, ModelFile, Provenance};
use se_privgemb_suite::serve::{
    synthetic, EmbeddingStore, ServeClient, ServerConfig, ServingStore,
};
use std::io::ErrorKind;
use std::time::Duration;

#[test]
fn global_plan_fires_each_seam_once_then_recovers() {
    // Must run before anything calls `sp_fault::inject` in this
    // process: the plan is latched on first consultation.
    std::env::set_var(
        fault::PLAN_ENV,
        "model.write@nth=1;datasets.read@nth=1;serve.conn@nth=1;checkpoint.write@nth=1,kind=permanent",
    );
    assert!(fault::enabled(), "the plan must be active");

    let dir = std::env::temp_dir().join(format!("sp_fault_env_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();

    // --- model.write: first publication dies transiently ------------
    let spm = dir.join("model.spm");
    let file = ModelFile::dense(
        F32Matrix::from_vec(4, 2, vec![1.0; 8]),
        Provenance::non_private(1),
    );
    match file.write_atomic(&spm).unwrap_err() {
        ModelError::Io(e) => assert_eq!(e.kind(), ErrorKind::TimedOut, "transient fault kind"),
        other => panic!("expected an injected Io error, got {other:?}"),
    }
    assert!(!spm.exists(), "the injected crash must precede the write");
    // The second invocation is past the plan: publication succeeds.
    file.write_atomic(&spm).unwrap();
    assert_eq!(ModelFile::read(&spm).unwrap(), file);
    assert_eq!(fault::invocations(fault::sites::MODEL_WRITE), 2);

    // --- checkpoint.write: first checkpoint dies permanently --------
    let spc = dir.join("ckpt-00000000000000000001.spc");
    let state = se_privgemb_suite::skipgram::trainer::TrainerState {
        fingerprint: 1,
        steps_run: 1,
        epochs_run: 0,
        step_in_epoch: 1,
        rng: [1, 2, 3, 4],
        noise_spare: None,
        loss_sum: 0.0,
        loss_count: 0,
        w_in: se_privgemb_suite::linalg::DenseMatrix::from_vec(2, 2, vec![0.0; 4]),
        w_out: se_privgemb_suite::linalg::DenseMatrix::from_vec(2, 2, vec![0.0; 4]),
        accountant_orders_max: 0,
        accountant_rdp: Vec::new(),
        accountant_steps: 0,
    };
    match write_checkpoint_atomic(&spc, &state).unwrap_err() {
        // kind=permanent maps to Other, not the retryable TimedOut.
        ModelError::Io(e) => assert_eq!(e.kind(), ErrorKind::Other),
        other => panic!("expected an injected Io error, got {other:?}"),
    }
    assert!(!spc.exists());
    write_checkpoint_atomic(&spc, &state).unwrap();
    assert!(spc.exists());

    // --- datasets.read: first open dies, stream and labels share the
    // site so the plan has already fired for both entry points --------
    let edges = dir.join("edges.txt");
    std::fs::write(&edges, b"0 1\n1 2\n").unwrap();
    let err = se_privgemb_suite::datasets::loaders::load_edge_list_path(
        &edges,
        se_privgemb_suite::graph::io::ReadOptions::default(),
    )
    .unwrap_err();
    assert!(
        err.to_string().contains("injected"),
        "the loader must surface the injected fault: {err}"
    );
    let doc = se_privgemb_suite::datasets::loaders::load_edge_list_path(
        &edges,
        se_privgemb_suite::graph::io::ReadOptions::default(),
    )
    .unwrap();
    assert_eq!(doc.graph.num_edges(), 2);

    // --- serve.conn: the first connection is dropped pre-greeting;
    // the client's bounded retry rides it out ------------------------
    let store = EmbeddingStore::from_f32(
        synthetic::clustered_embedding(50, 4, 5, 9),
        Provenance::non_private(9),
    );
    let serving = std::sync::Arc::new(ServingStore::new(store, None));
    let server = se_privgemb_suite::serve::Server::bind(
        "127.0.0.1:0",
        std::sync::Arc::clone(&serving),
        ServerConfig::default(),
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.shutdown_handle();
    let join = std::thread::spawn(move || server.run().unwrap());

    let policy = fault::retry::RetryPolicy {
        attempts: 4,
        base: Duration::from_millis(1),
        cap: Duration::from_millis(20),
        seed: 3,
    };
    let mut client =
        ServeClient::connect_with_retry(addr, Duration::from_secs(10), &policy).unwrap();
    let (_, answer) = client.top_k(0, 5).unwrap();
    assert_eq!(answer.len(), 5);
    client.quit().unwrap();
    handle.shutdown();
    join.join().unwrap();
    assert!(
        fault::invocations(fault::sites::SERVE_CONN) >= 2,
        "the dropped first connection must have been retried"
    );

    // Unseen sites were never counted.
    assert_eq!(fault::invocations("no.such.site"), 0);

    // Determinism sanity for a seeded run: a fresh RNG stream is
    // unaffected by the fault layer being active.
    let mut rng = StdRng::seed_from_u64(1);
    let g = se_privgemb_suite::datasets::generators::barabasi_albert(30, 2, &mut rng);
    assert!(g.num_edges() > 0);

    std::fs::remove_dir_all(&dir).ok();
}
