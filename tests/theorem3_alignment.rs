//! Theorem 3 integration tests: the structure-preference guarantee
//! holds end to end — from proximity computation through training to
//! the embedding space.

use rand::rngs::StdRng;
use rand::SeedableRng;
use se_privgemb_suite::core::{NegativeSampling, PerturbStrategy, ProximityKind, SePrivGEmb};
use se_privgemb_suite::datasets::generators;
use se_privgemb_suite::proximity::proximity_matrix;
use se_privgemb_suite::skipgram::theory;

fn graph() -> sp_graph::Graph {
    let mut rng = StdRng::seed_from_u64(2);
    generators::barabasi_albert(250, 4, &mut rng)
}

#[test]
fn direct_optimisation_matches_closed_form_on_real_proximity() {
    let g = graph();
    let p = proximity_matrix(&g, ProximityKind::DeepWalk { window: 2 });
    let k = 5;
    let min_p = p.min_positive().unwrap();
    // Entries near the top of the proximity range sit on the sigmoid
    // plateau where plain GD creeps; give it room and accept a small
    // residual — the point is agreement with the closed form, not GD
    // speed.
    let gd = theory::optimize_objective(&p, k, 60_000, 0.8);
    assert!(!gd.is_empty());
    for (i, j, x) in gd {
        let expect = theory::theorem3_optimal(p.get(i, j), k, min_p);
        assert!(
            (x - expect).abs() < 2e-2,
            "pair ({i},{j}): GD {x} vs closed form {expect}"
        );
    }
}

#[test]
fn trained_embeddings_align_positively_with_log_proximity() {
    let g = graph();
    let kind = ProximityKind::DeepWalk { window: 2 };
    let p = proximity_matrix(&g, kind);
    let result = SePrivGEmb::builder()
        .dim(64)
        .epochs(250)
        .learning_rate(0.3)
        .strategy(PerturbStrategy::None)
        .proximity(kind)
        .seed(3)
        .build()
        .fit(&g);
    let align = theory::proximity_alignment(&result.model, &p, 50_000).unwrap();
    assert!(
        align > 0.2,
        "inner products should correlate with log p_ij, got {align}"
    );
}

#[test]
fn paper_sampler_aligns_better_than_degree_sampler() {
    // The design that makes Theorem 3 hold (uniform non-neighbour
    // negatives) must beat the prior-work unigram sampler on
    // alignment — this is the paper's Eq. 10 vs Eq. 15 contrast.
    let g = graph();
    let kind = ProximityKind::DeepWalk { window: 2 };
    let p = proximity_matrix(&g, kind);
    let align_with = |sampling: NegativeSampling| {
        let result = SePrivGEmb::builder()
            .dim(64)
            .epochs(250)
            .learning_rate(0.3)
            .strategy(PerturbStrategy::None)
            .negative_sampling(sampling)
            .proximity(kind)
            .seed(4)
            .build()
            .fit(&g);
        theory::proximity_alignment(&result.model, &p, 50_000).unwrap()
    };
    let ours = align_with(NegativeSampling::UniformNonNeighbor);
    let prior = align_with(NegativeSampling::DegreeProportional);
    assert!(
        ours > prior,
        "uniform non-neighbour ({ours}) must align better than degree-proportional ({prior})"
    );
}

#[test]
fn noise_degrades_alignment() {
    let g = graph();
    let kind = ProximityKind::DeepWalk { window: 2 };
    let p = proximity_matrix(&g, kind);
    let align_of = |strategy: PerturbStrategy, sigma: f64| {
        let mut b = SePrivGEmb::builder()
            .dim(64)
            .epochs(150)
            .learning_rate(0.3)
            .strategy(strategy)
            .proximity(kind)
            .seed(5);
        if strategy.is_private() {
            b = b.sigma(sigma).epsilon(3.5);
        }
        let result = b.build().fit(&g);
        theory::proximity_alignment(&result.model, &p, 50_000).unwrap()
    };
    let clean = align_of(PerturbStrategy::None, 0.0);
    let noisy = align_of(PerturbStrategy::NonZero, 10.0);
    assert!(
        clean > noisy,
        "heavy noise should hurt alignment: clean {clean} vs noisy {noisy}"
    );
}

#[test]
fn prior_work_optimum_depends_on_degrees_ours_does_not() {
    // Closed-form contrast (Eq. 10 vs Eq. 15) on actual graph numbers.
    let g = graph();
    let p = proximity_matrix(&g, ProximityKind::DeepWalk { window: 2 });
    let total: f64 = p.total_sum();
    let min_p = p.min_positive().unwrap();
    let k = 5;
    // Take two edges with the same proximity but different degrees.
    let mut same_p_pairs: Vec<((usize, usize), (usize, usize))> = Vec::new();
    let entries: Vec<(usize, usize, f64)> = p.iter().filter(|&(_, _, v)| v > 0.0).collect();
    'outer: for (a_idx, &(i1, j1, v1)) in entries.iter().enumerate() {
        for &(i2, j2, v2) in &entries[a_idx + 1..] {
            if (v1 - v2).abs() < 1e-12 {
                let d = |n: usize| g.degree(n as u32);
                if d(i1) * d(j1) != d(i2) * d(j2) {
                    same_p_pairs.push(((i1, j1), (i2, j2)));
                    break 'outer;
                }
            }
        }
    }
    let ((i1, j1), (i2, j2)) = same_p_pairs
        .first()
        .copied()
        .expect("graph should contain equal-proximity pairs with different degrees");
    let v = p.get(i1, j1);
    let ours1 = theory::theorem3_optimal(v, k, min_p);
    let ours2 = theory::theorem3_optimal(p.get(i2, j2), k, min_p);
    assert!((ours1 - ours2).abs() < 1e-12, "ours is degree-free");
    let prior1 = theory::prior_work_optimal(
        v,
        total,
        g.degree(i1 as u32) as f64,
        g.degree(j1 as u32) as f64,
        k,
    );
    let prior2 = theory::prior_work_optimal(
        p.get(i2, j2),
        total,
        g.degree(i2 as u32) as f64,
        g.degree(j2 as u32) as f64,
        k,
    );
    assert!(
        (prior1 - prior2).abs() > 1e-9,
        "prior work distorts equal proximities by degrees"
    );
}
