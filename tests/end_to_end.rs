//! End-to-end integration tests: the full pipeline (dataset stand-in →
//! proximity → Algorithm 1/2 → evaluation) across crates.

use rand::rngs::StdRng;
use rand::SeedableRng;
use se_privgemb_suite::core::{PerturbStrategy, ProximityKind, SePrivGEmb};
use se_privgemb_suite::datasets::PaperDataset;
use se_privgemb_suite::eval::{struc_equ, LinkSplit, PairSelection};

fn small(ds: PaperDataset) -> sp_graph::Graph {
    // ~5% scale keeps each dataset in the hundreds of nodes.
    let scale = match ds {
        PaperDataset::Dblp => 0.0005,
        PaperDataset::BlogCatalog => 0.02,
        _ => 0.05,
    };
    ds.generate(scale, 99)
}

#[test]
fn full_pipeline_runs_on_every_paper_dataset() {
    for ds in PaperDataset::all() {
        let g = small(ds);
        let result = SePrivGEmb::builder()
            .dim(16)
            .epochs(5)
            .epsilon(3.5)
            .proximity(ProximityKind::Degree)
            .seed(1)
            .build()
            .fit(&g);
        assert_eq!(result.embeddings().rows(), g.num_nodes(), "{}", ds.name());
        assert!(
            result.embeddings().as_slice().iter().all(|v| v.is_finite()),
            "{}: non-finite embeddings",
            ds.name()
        );
        assert!(result.report.epsilon_spent <= 3.5, "{}", ds.name());
    }
}

#[test]
fn strucequ_pipeline_produces_score_in_range() {
    let g = small(PaperDataset::Chameleon);
    let result = SePrivGEmb::builder()
        .dim(32)
        .epochs(30)
        .proximity(ProximityKind::deepwalk_default())
        .seed(2)
        .build()
        .fit(&g);
    let s = struc_equ(&g, result.embeddings(), PairSelection::All).unwrap();
    assert!((-1.0..=1.0).contains(&s));
}

#[test]
fn linkpred_pipeline_no_test_leakage_and_valid_auc() {
    let g = small(PaperDataset::Arxiv);
    let mut rng = StdRng::seed_from_u64(3);
    let split = LinkSplit::new(&g, 0.1, &mut rng);
    // Train strictly on the train graph.
    let result = SePrivGEmb::builder()
        .dim(32)
        .epochs(30)
        .seed(4)
        .build()
        .fit(&split.train);
    let auc = split.auc(result.embeddings()).unwrap();
    assert!((0.0..=1.0).contains(&auc));
    // Leakage guard: no held-out edge exists in the train graph.
    for &(u, v) in &split.test_pos {
        assert!(!split.train.has_edge(u, v));
    }
}

#[test]
fn nonprivate_beats_naive_perturbation_end_to_end() {
    let g = small(PaperDataset::Chameleon);
    let run = |strategy: PerturbStrategy| {
        let r = SePrivGEmb::builder()
            .dim(32)
            .epochs(40)
            .strategy(strategy)
            .proximity(ProximityKind::Degree)
            .seed(5)
            .build()
            .fit(&g);
        struc_equ(&g, r.embeddings(), PairSelection::All).unwrap_or(0.0)
    };
    let nonpriv = run(PerturbStrategy::None);
    let naive = run(PerturbStrategy::Naive);
    assert!(
        nonpriv > naive + 0.05,
        "non-private {nonpriv} should clearly beat naive {naive}"
    );
}

#[test]
fn embeddings_deterministic_across_whole_pipeline() {
    let g = small(PaperDataset::Power);
    let fit = || {
        SePrivGEmb::builder()
            .dim(16)
            .epochs(10)
            .seed(77)
            .build()
            .fit(&g)
            .embeddings()
            .clone()
    };
    let a = fit();
    let b = fit();
    assert_eq!(a.as_slice(), b.as_slice());
}

#[test]
fn every_proximity_kind_trains() {
    let g = small(PaperDataset::Arxiv);
    for kind in [
        ProximityKind::CommonNeighbors,
        ProximityKind::PreferentialAttachment,
        ProximityKind::AdamicAdar,
        ProximityKind::ResourceAllocation,
        ProximityKind::Katz {
            beta: 0.2,
            max_len: 3,
        },
        ProximityKind::Ppr {
            alpha: 0.15,
            iters: 4,
        },
        ProximityKind::DeepWalk { window: 2 },
        ProximityKind::Degree,
    ] {
        let result = SePrivGEmb::builder()
            .dim(8)
            .epochs(3)
            .proximity(kind)
            .seed(6)
            .build()
            .fit(&g);
        assert!(
            result.embeddings().as_slice().iter().all(|v| v.is_finite()),
            "{:?} produced non-finite embeddings",
            kind
        );
    }
}
