//! Crash-safe checkpoint/resume: a training run killed at any
//! checkpoint boundary — including mid-epoch, mid-shard points — and
//! resumed from the durable `.spc` trail must reproduce the
//! uninterrupted run **bit for bit**: `W_in`, `W_out`, the training
//! report, and the privacy accountant's raw RDP curve. The composed ε
//! across any crash/resume sequence therefore equals the uninterrupted
//! run's and never exceeds `TrainConfig::epsilon`.
//!
//! Kill schedules are driven by deterministic [`FaultPlan`]s handed to
//! a failing checkpoint sink (in-process, so each test owns its own
//! plan; the env-driven global seams get their own process in
//! `tests/fault_env.rs`). Setting `SP_FAULT_PLAN` to a bare integer
//! seed — as the CI fault matrix does — varies which boundaries the
//! chained test crashes at without changing any assertion.

use rand::rngs::StdRng;
use rand::SeedableRng;
use se_privgemb_suite::datasets::generators;
use se_privgemb_suite::fault::FaultPlan;
use se_privgemb_suite::model::checkpoint::{
    checkpoint_file_name, latest_valid_checkpoint, train_with_checkpoints, write_checkpoint_atomic,
};
use se_privgemb_suite::model::ModelError;
use se_privgemb_suite::skipgram::trainer::TrainerState;
use se_privgemb_suite::skipgram::{SkipGramModel, TrainConfig, TrainReport, Trainer};
use sp_graph::Graph;
use sp_proximity::{EdgeProximity, ProximityKind};
use std::path::PathBuf;

fn graph() -> Graph {
    let mut rng = StdRng::seed_from_u64(7);
    generators::barabasi_albert(80, 3, &mut rng)
}

fn config(threads: usize) -> TrainConfig {
    TrainConfig {
        dim: 12,
        negatives: 3,
        batch_size: 16,
        epochs: 8,
        epsilon: 6.0,
        seed: 41,
        threads: Some(threads),
        checkpoint_every: Some(1),
        ..TrainConfig::default()
    }
}

fn proximity(g: &Graph, threads: usize) -> EdgeProximity {
    EdgeProximity::compute_threads(g, ProximityKind::Degree, Some(threads))
}

fn model_bits(m: &SkipGramModel) -> (Vec<u64>, Vec<u64>) {
    let bits = |s: &[f64]| s.iter().map(|v| v.to_bits()).collect();
    (bits(m.w_in.as_slice()), bits(m.w_out.as_slice()))
}

fn assert_same_run(a: &(SkipGramModel, TrainReport), b: &(SkipGramModel, TrainReport), tag: &str) {
    assert_eq!(model_bits(&a.0), model_bits(&b.0), "{tag}: model diverged");
    assert_eq!(a.1.steps_run, b.1.steps_run, "{tag}: steps diverged");
    assert_eq!(a.1.epochs_run, b.1.epochs_run, "{tag}: epochs diverged");
    assert_eq!(
        a.1.epsilon_spent.to_bits(),
        b.1.epsilon_spent.to_bits(),
        "{tag}: ε diverged"
    );
    assert_eq!(
        a.1.delta_spent.to_bits(),
        b.1.delta_spent.to_bits(),
        "{tag}: δ diverged"
    );
}

/// Runs to completion, recording every checkpoint snapshot in memory.
fn baseline_with_trail(
    cfg: &TrainConfig,
    g: &Graph,
    prox: &EdgeProximity,
) -> ((SkipGramModel, TrainReport), Vec<TrainerState>) {
    let trainer = Trainer::new(cfg.clone());
    let mut trail = Vec::new();
    let mut sink = |st: &TrainerState| {
        trail.push(st.clone());
        Ok(())
    };
    let run = trainer
        .train_checkpointed(g, prox, None, None, &mut sink)
        .expect("recording sink never fails");
    (run, trail)
}

/// Resumes from `state` and runs to completion with a no-op sink.
fn resume_to_end(
    cfg: &TrainConfig,
    g: &Graph,
    prox: &EdgeProximity,
    state: &TrainerState,
) -> (SkipGramModel, TrainReport) {
    let trainer = Trainer::new(cfg.clone());
    let mut sink = |_: &TrainerState| Ok(());
    trainer
        .train_checkpointed(g, prox, None, Some(state), &mut sink)
        .expect("no-op sink never fails")
}

#[test]
fn kill_at_every_checkpoint_boundary_resumes_bit_identically() {
    let g = graph();
    let prox = proximity(&g, 1);
    let cfg = config(1);
    let (baseline, trail) = baseline_with_trail(&cfg, &g, &prox);
    assert!(
        trail.len() >= 4,
        "need several boundaries to kill at, got {}",
        trail.len()
    );
    assert!(baseline.1.epsilon_spent <= cfg.epsilon);

    // With checkpoint_every = 1 the trail includes genuine mid-epoch,
    // mid-shard boundaries — not just epoch ends.
    let steps_per_epoch = g.num_edges().div_ceil(cfg.batch_size) as u64;
    assert!(steps_per_epoch > 1, "graph too small for mid-shard kills");
    assert!(
        trail
            .iter()
            .any(|st| st.step_in_epoch > 0 && st.step_in_epoch < steps_per_epoch),
        "no mid-shard checkpoint in the trail"
    );

    for kill_at in 1..=trail.len() as u64 {
        // The plan kills the checkpoint sink exactly at its
        // `kill_at`-th invocation — a crash at that boundary.
        let plan =
            FaultPlan::parse(&format!("checkpoint.write@nth={kill_at}")).expect("valid fault plan");
        let trainer = Trainer::new(cfg.clone());
        let mut survived: Vec<TrainerState> = Vec::new();
        let mut invocation = 0u64;
        let mut sink = |st: &TrainerState| {
            invocation += 1;
            if plan.should_fail(
                se_privgemb_suite::fault::sites::CHECKPOINT_WRITE,
                invocation,
            ) {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "injected crash at checkpoint boundary",
                ));
            }
            survived.push(st.clone());
            Ok(())
        };
        let err = trainer
            .train_checkpointed(&g, &prox, None, None, &mut sink)
            .expect_err("the injected fault must abort training");
        assert_eq!(err.kind(), std::io::ErrorKind::TimedOut);

        let resumed = match survived.last() {
            // Crash before any durable checkpoint: recovery is a
            // cold start.
            None => Trainer::new(cfg.clone()).train(&g, &prox),
            Some(state) => resume_to_end(&cfg, &g, &prox, state),
        };
        assert_same_run(&baseline, &resumed, &format!("kill at boundary {kill_at}"));
    }
}

#[test]
fn resume_is_thread_count_invariant() {
    let g = graph();
    // The uninterrupted single-threaded run is the reference.
    let (baseline, trail) = baseline_with_trail(&config(1), &g, &proximity(&g, 1));
    let mid = &trail[trail.len() / 2];
    for threads in [1usize, 4] {
        let cfg = config(threads);
        let prox = proximity(&g, threads);
        let resumed = resume_to_end(&cfg, &g, &prox, mid);
        assert_same_run(&baseline, &resumed, &format!("threads={threads}"));
    }
}

/// The seed of `SP_FAULT_PLAN` (bare integer in the CI fault matrix)
/// varies deterministic choices inside tests without changing any
/// assertion.
fn schedule_seed() -> u64 {
    std::env::var("SP_FAULT_PLAN")
        .ok()
        .and_then(|spec| FaultPlan::parse(&spec).ok())
        .map(|plan| plan.seed())
        .unwrap_or(1)
}

#[test]
fn chained_crash_resume_through_spc_files_is_bit_identical() {
    let g = graph();
    let prox = proximity(&g, 1);
    let cfg = config(1);
    let (baseline, trail) = baseline_with_trail(&cfg, &g, &prox);
    let total = trail.len() as u64;
    assert!(total >= 4);

    // Two crash points, placed by the fault-matrix seed: the run dies
    // once early and once late, each time resuming from the real .spc
    // files left on disk.
    let seed = schedule_seed();
    // ≥ 2 so the first segment durably writes at least one checkpoint
    // before dying; ≤ total/2 so the second kill lands strictly later.
    let first_kill = 2 + seed % (total / 2 - 1);
    let second_kill = total / 2 + 1 + (seed / 7) % (total - total / 2);
    let dir = std::env::temp_dir().join(format!("spc_chain_{}_{}", std::process::id(), seed));
    std::fs::remove_dir_all(&dir).ok();
    let mut cfg_disk = cfg.clone();
    cfg_disk.checkpoint_dir = Some(dir.clone());

    let crash_segment = |kill_at: u64, resume_from: Option<&TrainerState>| -> TrainerState {
        let trainer = Trainer::new(cfg_disk.clone());
        let mut last_written: Option<TrainerState> = None;
        let mut invocation = 0u64;
        let mut sink = |st: &TrainerState| -> std::io::Result<()> {
            invocation += 1;
            if invocation == kill_at {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "injected crash",
                ));
            }
            let path = dir.join(checkpoint_file_name(st.steps_run));
            write_checkpoint_atomic(&path, st).map_err(|e| std::io::Error::other(e.to_string()))?;
            last_written = Some(st.clone());
            Ok(())
        };
        trainer
            .train_checkpointed(&g, &prox, None, resume_from, &mut sink)
            .expect_err("the injected crash must abort this segment");
        last_written.expect("at least one checkpoint survived the segment")
    };

    std::fs::create_dir_all(&dir).unwrap();
    crash_segment(first_kill, None);
    let (_, recovered_a) = latest_valid_checkpoint(&dir).unwrap().expect("trail");
    // Crash again further along, resuming from disk state. The second
    // kill is indexed from this segment's own first boundary.
    let remaining_kill = second_kill.saturating_sub(recovered_a.steps_run).max(1);
    crash_segment(remaining_kill, Some(&recovered_a));
    let (_, recovered_b) = latest_valid_checkpoint(&dir).unwrap().expect("trail");
    assert!(recovered_b.steps_run >= recovered_a.steps_run);

    let finished = resume_to_end(&cfg, &g, &prox, &recovered_b);
    assert_same_run(&baseline, &finished, "chained crash/resume");
    assert!(
        finished.1.epsilon_spent <= cfg.epsilon,
        "composed ε {} exceeded budget {}",
        finished.1.epsilon_spent,
        cfg.epsilon
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_newest_checkpoint_falls_back_to_previous() {
    let g = graph();
    let prox = proximity(&g, 1);
    let cfg = config(1);
    let (baseline, trail) = baseline_with_trail(&cfg, &g, &prox);
    let dir = std::env::temp_dir().join(format!("spc_fallback_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();

    let older = &trail[trail.len() - 3];
    let newer = &trail[trail.len() - 2];
    let older_path = dir.join(checkpoint_file_name(older.steps_run));
    let newer_path = dir.join(checkpoint_file_name(newer.steps_run));
    write_checkpoint_atomic(&older_path, older).unwrap();
    write_checkpoint_atomic(&newer_path, newer).unwrap();

    // Tear the newest file: flip one payload bit.
    let mut bytes = std::fs::read(&newer_path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&newer_path, &bytes).unwrap();

    let (path, state) = latest_valid_checkpoint(&dir)
        .unwrap()
        .expect("the older checkpoint must survive");
    assert_eq!(path, older_path, "fallback skipped the torn newest file");
    assert_eq!(state.steps_run, older.steps_run);

    // Resuming from the fallback still converges on the baseline bits.
    let resumed = resume_to_end(&cfg, &g, &prox, &state);
    assert_same_run(&baseline, &resumed, "fallback resume");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fingerprint_mismatch_refuses_to_resume() {
    let g = graph();
    let prox = proximity(&g, 1);
    let dir = std::env::temp_dir().join(format!("spc_mismatch_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // A full checkpointed run under config A leaves a trail…
    let mut cfg_a = config(1);
    cfg_a.checkpoint_dir = Some(dir.clone());
    let trainer_a = Trainer::new(cfg_a.clone());
    train_with_checkpoints(&trainer_a, &g, &prox, None, false).unwrap();
    assert!(latest_valid_checkpoint(&dir).unwrap().is_some());

    // …which a different configuration must refuse to adopt.
    let mut cfg_b = config(1);
    cfg_b.sigma = cfg_a.sigma + 1.0;
    cfg_b.checkpoint_dir = Some(dir.clone());
    let trainer_b = Trainer::new(cfg_b);
    let err = train_with_checkpoints(&trainer_b, &g, &prox, None, true)
        .expect_err("a foreign trajectory must not resume");
    match err {
        ModelError::Io(e) => assert_eq!(e.kind(), std::io::ErrorKind::InvalidData),
        other => panic!("expected InvalidData, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn train_with_checkpoints_resumes_and_prunes() {
    let g = graph();
    let prox = proximity(&g, 1);
    let dir = std::env::temp_dir().join(format!("spc_drive_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let mut cfg = config(1);
    cfg.checkpoint_every = Some(3);
    cfg.checkpoint_dir = Some(dir.clone());
    let trainer = Trainer::new(cfg.clone());

    let first = train_with_checkpoints(&trainer, &g, &prox, None, false).unwrap();
    assert!(first.resumed_from.is_none());
    assert!(first.report.epsilon_spent <= cfg.epsilon);
    let spc_files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "spc"))
        .collect();
    assert!(
        !spc_files.is_empty() && spc_files.len() <= 2,
        "retention must keep 1–2 checkpoints, found {}",
        spc_files.len()
    );

    // A rerun resumes from the durable trail and lands on the same bits.
    let second = train_with_checkpoints(&trainer, &g, &prox, None, true).unwrap();
    assert!(second.resumed_from.is_some());
    assert_eq!(
        model_bits(&first.model),
        model_bits(&second.model),
        "resumed rerun diverged from the original"
    );
    assert_eq!(
        first.report.epsilon_spent.to_bits(),
        second.report.epsilon_spent.to_bits()
    );
    std::fs::remove_dir_all(&dir).ok();
}
