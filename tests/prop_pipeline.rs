//! Property-based integration tests over the whole pipeline.

use proptest::prelude::*;
use se_privgemb_suite::core::{PerturbStrategy, ProximityKind, SePrivGEmb};
use se_privgemb_suite::proximity::EdgeProximity;
use sp_graph::Graph;

/// Connected-ish random graph strategy: a ring (guarantees degree ≥ 2
/// everywhere, which Algorithm 1 needs for non-neighbour sampling)
/// plus random chords.
fn graph_strategy() -> impl Strategy<Value = Graph> {
    (
        10usize..40,
        proptest::collection::vec((0u32..40, 0u32..40), 0..30),
    )
        .prop_map(|(n, extra)| {
            let ring = (0..n).map(|i| (i as u32, ((i + 1) % n) as u32));
            let chords = extra
                .into_iter()
                .filter(|&(u, v)| (u as usize) < n && (v as usize) < n);
            Graph::from_edges(n, ring.chain(chords))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn training_always_yields_finite_embeddings(g in graph_strategy(), seed in 0u64..1000) {
        let result = SePrivGEmb::builder()
            .dim(8)
            .epochs(3)
            .batch_size(8)
            .seed(seed)
            .proximity(ProximityKind::Degree)
            .build()
            .fit(&g);
        prop_assert!(result.embeddings().as_slice().iter().all(|v| v.is_finite()));
        prop_assert_eq!(result.embeddings().rows(), g.num_nodes());
    }

    #[test]
    fn budget_is_never_exceeded(g in graph_strategy(), eps in 0.2f64..4.0) {
        let result = SePrivGEmb::builder()
            .dim(4)
            .epochs(20)
            .batch_size(8)
            .epsilon(eps)
            .proximity(ProximityKind::Degree)
            .build()
            .fit(&g);
        prop_assert!(result.report.epsilon_spent <= eps + 1e-9);
        prop_assert!(result.report.delta_spent < 1e-5);
    }

    #[test]
    fn proximity_weights_are_mean_one_and_nonnegative(g in graph_strategy()) {
        for kind in [ProximityKind::Degree, ProximityKind::DeepWalk { window: 2 }] {
            let p = EdgeProximity::compute(&g, kind);
            prop_assert_eq!(p.len(), g.num_edges());
            prop_assert!(p.weights.iter().all(|&w| w >= 0.0));
            if !p.is_empty() {
                let mean = p.weights.iter().sum::<f64>() / p.len() as f64;
                prop_assert!((mean - 1.0).abs() < 1e-9, "mean {} for {:?}", mean, kind);
            }
            prop_assert!(p.min_positive > 0.0);
        }
    }

    #[test]
    fn nonprivate_training_is_strategy_none_invariant_to_epsilon(
        g in graph_strategy(),
        eps in 0.2f64..4.0,
    ) {
        // ε must not influence a non-private run in any way.
        let fit = |e: f64| {
            SePrivGEmb::builder()
                .dim(4)
                .epochs(3)
                .batch_size(8)
                .epsilon(e)
                .strategy(PerturbStrategy::None)
                .seed(11)
                .build()
                .fit(&g)
                .embeddings()
                .clone()
        };
        let a = fit(eps);
        let b = fit(3.5);
        prop_assert_eq!(a.as_slice(), b.as_slice());
    }
}
