//! Privacy-invariant integration tests: budget respect, monotonicity,
//! and accountant/trainer agreement across crates.

use rand::rngs::StdRng;
use rand::SeedableRng;
use se_privgemb_suite::core::{PerturbStrategy, SePrivGEmb};
use se_privgemb_suite::datasets::generators;
use se_privgemb_suite::dp::{BudgetedAccountant, PrivacyBudget};

fn graph() -> sp_graph::Graph {
    let mut rng = StdRng::seed_from_u64(1);
    generators::barabasi_albert(200, 4, &mut rng)
}

#[test]
fn spent_epsilon_never_exceeds_target_across_grid() {
    let g = graph();
    for &eps in &[0.5, 1.0, 2.0, 3.5] {
        let r = SePrivGEmb::builder()
            .dim(8)
            .epochs(50)
            .epsilon(eps)
            .seed(2)
            .build()
            .fit(&g);
        assert!(
            r.report.epsilon_spent <= eps + 1e-9,
            "ε target {eps}: spent {}",
            r.report.epsilon_spent
        );
        assert!(
            r.report.delta_spent < 1e-5,
            "δ̂ {} must stay under 1e-5",
            r.report.delta_spent
        );
    }
}

#[test]
fn larger_epsilon_affords_at_least_as_many_steps() {
    let g = graph();
    let mut last_steps = 0u64;
    for &eps in &[0.5, 1.0, 2.0, 3.5] {
        let r = SePrivGEmb::builder()
            .dim(8)
            .epochs(200)
            .epsilon(eps)
            .seed(3)
            .build()
            .fit(&g);
        assert!(
            r.report.steps_run >= last_steps,
            "steps not monotone in ε at {eps}: {} < {last_steps}",
            r.report.steps_run
        );
        last_steps = r.report.steps_run;
    }
    assert!(last_steps > 0);
}

#[test]
fn nonprivate_run_spends_nothing_and_never_stops_early() {
    let g = graph();
    let r = SePrivGEmb::builder()
        .dim(8)
        .epochs(25)
        .strategy(PerturbStrategy::None)
        .seed(4)
        .build()
        .fit(&g);
    assert_eq!(r.report.epsilon_spent, 0.0);
    assert_eq!(r.report.delta_spent, 0.0);
    assert!(!r.report.stopped_by_budget);
    assert_eq!(r.report.epochs_run, 25);
}

#[test]
fn trainer_step_count_matches_standalone_accountant() {
    // The trainer's early stop must agree exactly with driving the
    // accountant by hand at the same (γ, σ, ε, δ).
    let g = graph();
    let batch = 32usize;
    let eps = 1.0;
    let r = SePrivGEmb::builder()
        .dim(8)
        .epochs(10_000) // effectively unbounded: budget is the binding cap
        .batch_size(batch)
        .epsilon(eps)
        .seed(5)
        .build()
        .fit(&g);
    assert!(r.report.stopped_by_budget);

    let gamma = batch as f64 / g.num_edges() as f64;
    let mut acc = BudgetedAccountant::new(PrivacyBudget::new(eps, 1e-5), gamma, 5.0);
    let mut manual_steps = 0u64;
    while acc.try_step() {
        manual_steps += 1;
        assert!(manual_steps < 10_000_000, "accountant never binds");
    }
    assert_eq!(r.report.steps_run, manual_steps);
}

#[test]
fn budget_binds_harder_on_smaller_graphs() {
    // Same B ⇒ larger γ on the smaller graph ⇒ fewer affordable steps.
    let mut rng = StdRng::seed_from_u64(6);
    let small = generators::barabasi_albert(100, 4, &mut rng);
    let large = generators::barabasi_albert(400, 4, &mut rng);
    let steps = |g: &sp_graph::Graph| {
        SePrivGEmb::builder()
            .dim(8)
            .epochs(10_000)
            .batch_size(32)
            .epsilon(1.0)
            .seed(7)
            .build()
            .fit(g)
            .report
            .steps_run
    };
    assert!(
        steps(&large) > steps(&small),
        "larger graph (smaller γ) must afford more steps"
    );
}

#[test]
fn naive_and_nonzero_spend_identically_but_perturb_differently() {
    // The accountant charges the mechanism, not the noise placement:
    // both strategies run the same number of steps at a given ε, but
    // produce different models.
    let g = graph();
    let run = |s: PerturbStrategy| {
        SePrivGEmb::builder()
            .dim(8)
            .epochs(40)
            .strategy(s)
            .epsilon(2.0)
            .seed(8)
            .build()
            .fit(&g)
    };
    let nz = run(PerturbStrategy::NonZero);
    let naive = run(PerturbStrategy::Naive);
    assert_eq!(nz.report.steps_run, naive.report.steps_run);
    assert_eq!(nz.report.epsilon_spent, naive.report.epsilon_spent);
    assert_ne!(
        nz.embeddings().as_slice(),
        naive.embeddings().as_slice(),
        "strategies must actually differ in their noise"
    );
}
