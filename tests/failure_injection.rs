//! Failure-injection tests: pathological inputs and extreme
//! hyper-parameters must either fail fast with a clear panic or
//! degrade gracefully — never produce NaN embeddings or hang. The
//! dataset loaders get the same treatment: corrupt archives and
//! malformed edge lists must surface as typed [`LoadError`]s, never
//! panics — and the `.spm` model readers mirror that discipline with
//! typed [`ModelError`]s for truncation, header corruption, version
//! skew, and checksum mismatches.

use rand::rngs::StdRng;
use rand::SeedableRng;
use se_privgemb_suite::core::{PerturbStrategy, ProximityKind, SePrivGEmb};
use se_privgemb_suite::datasets::generators;
use se_privgemb_suite::datasets::inflate::{gzip_store, InflateError};
use se_privgemb_suite::datasets::loaders::{load_edge_list_bytes, LoadError};
use se_privgemb_suite::graph::io::ReadOptions;
use se_privgemb_suite::model::checkpoint::{checkpoint_from_bytes, checkpoint_to_bytes};
use se_privgemb_suite::model::{F32Matrix, ModelError, ModelFile, Provenance};
use se_privgemb_suite::skipgram::trainer::TrainerState;
use sp_graph::Graph;

fn assert_finite(result: &se_privgemb_suite::core::pipeline::EmbeddingResult, label: &str) {
    assert!(
        result.embeddings().as_slice().iter().all(|v| v.is_finite()),
        "{label}: non-finite embedding values"
    );
}

#[test]
fn single_edge_graph_trains() {
    let g = Graph::from_edges(2, [(0, 1)]);
    let result = SePrivGEmb::builder()
        .dim(4)
        .epochs(3)
        .batch_size(4)
        .seed(1)
        .proximity(ProximityKind::Degree)
        .build()
        .fit(&g);
    assert_finite(&result, "single edge");
}

#[test]
fn graph_with_isolated_nodes_trains() {
    // Nodes 5..10 are isolated: they are never centres or positives,
    // but may be drawn as negatives.
    let g = Graph::from_edges(10, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]);
    let result = SePrivGEmb::builder()
        .dim(8)
        .epochs(10)
        .batch_size(4)
        .seed(2)
        .build()
        .fit(&g);
    assert_finite(&result, "isolated nodes");
}

#[test]
fn star_graph_trains_despite_saturated_centre() {
    // The hub is adjacent to everyone: Algorithm 1's non-neighbour
    // sampler has no valid negative for hub-centred edges and must
    // fall back instead of spinning.
    let g = Graph::from_edges(12, (1..12).map(|i| (0u32, i as u32)));
    let result = SePrivGEmb::builder()
        .dim(8)
        .epochs(5)
        .seed(3)
        .build()
        .fit(&g);
    assert_finite(&result, "star");
}

#[test]
fn extreme_learning_rate_stays_finite() {
    // Clipping bounds every per-example gradient, so even an absurd
    // learning rate cannot overflow within a few epochs.
    let mut rng = StdRng::seed_from_u64(4);
    let g = generators::barabasi_albert(60, 3, &mut rng);
    let result = SePrivGEmb::builder()
        .dim(8)
        .epochs(5)
        .learning_rate(50.0)
        .clip(1.0)
        .strategy(PerturbStrategy::None)
        .seed(4)
        .build()
        .fit(&g);
    assert_finite(&result, "lr=50");
}

#[test]
fn huge_sigma_destroys_utility_but_not_numerics() {
    let mut rng = StdRng::seed_from_u64(5);
    let g = generators::barabasi_albert(60, 3, &mut rng);
    let result = SePrivGEmb::builder()
        .dim(8)
        .epochs(5)
        .sigma(1000.0)
        .epsilon(1000.0) // let it actually run despite the noise
        .seed(5)
        .build()
        .fit(&g);
    assert_finite(&result, "sigma=1000");
}

#[test]
fn tiny_epsilon_yields_zero_steps_not_a_hang() {
    let mut rng = StdRng::seed_from_u64(6);
    let g = generators::barabasi_albert(60, 3, &mut rng);
    let result = SePrivGEmb::builder()
        .dim(8)
        .epochs(100)
        .epsilon(1e-4)
        .batch_size(32)
        .seed(6)
        .build()
        .fit(&g);
    assert!(result.report.stopped_by_budget);
    assert_eq!(result.report.steps_run, 0, "nothing affordable at ε=1e-4");
    assert_finite(&result, "eps=1e-4"); // the untouched init is published
}

#[test]
fn k_larger_than_graph_still_terminates() {
    let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]);
    let result = SePrivGEmb::builder()
        .dim(4)
        .epochs(3)
        .negatives(50) // far more negatives than nodes
        .seed(7)
        .build()
        .fit(&g);
    assert_finite(&result, "k=50");
}

#[test]
#[should_panic(expected = "edgeless")]
fn edgeless_graph_fails_fast() {
    let g = Graph::from_edges(5, std::iter::empty());
    SePrivGEmb::builder()
        .dim(4)
        .epochs(1)
        .seed(8)
        .build()
        .fit(&g);
}

#[test]
fn disconnected_components_train_independently_without_nan() {
    // Two components; proximity matrices stay block-diagonal.
    let mut edges: Vec<(u32, u32)> = (0..10).map(|i| (i, (i + 1) % 10)).collect();
    edges.extend((0..10).map(|i| (10 + i, 10 + (i + 1) % 10)));
    let g = Graph::from_edges(20, edges);
    let result = SePrivGEmb::builder()
        .dim(8)
        .epochs(10)
        .proximity(ProximityKind::deepwalk_default())
        .seed(9)
        .build()
        .fit(&g);
    assert_finite(&result, "disconnected");
}

// --- dataset-loader failure injection ----------------------------------

#[test]
fn truncated_gzip_stream_is_typed_not_a_panic() {
    let z = gzip_store(b"1 2\n2 3\n3 4\n");
    for cut in 0..z.len() {
        match load_edge_list_bytes(&z[..cut], ReadOptions::default()) {
            Err(LoadError::Gzip(InflateError::UnexpectedEof)) => {}
            // A 0–1 byte prefix is not gzip-shaped at all and goes down
            // the plain-text path: empty parse or a typed parse error.
            Ok(_) | Err(LoadError::Parse { .. }) if cut < 2 => {}
            other => panic!("cut {cut}: expected typed EOF, got {other:?}"),
        }
    }
}

#[test]
fn gzip_crc_corruption_is_typed() {
    let mut z = gzip_store(b"1 2\n");
    let n = z.len();
    z[n - 7] ^= 0x10;
    assert!(matches!(
        load_edge_list_bytes(&z, ReadOptions::default()),
        Err(LoadError::Gzip(InflateError::CrcMismatch { .. }))
    ));
}

#[test]
fn non_utf8_bytes_are_typed() {
    // Plain bytes with an invalid UTF-8 sequence mid-stream…
    let err = load_edge_list_bytes(b"1 2\n\xFF\xFE 3\n", ReadOptions::default()).unwrap_err();
    assert!(matches!(err, LoadError::NonUtf8 { valid_up_to: 4 }));
    // …and the same bytes arriving through the gzip path.
    let err = load_edge_list_bytes(&gzip_store(b"1 2\n\xFF\xFE 3\n"), ReadOptions::default())
        .unwrap_err();
    assert!(matches!(err, LoadError::NonUtf8 { valid_up_to: 4 }));
}

#[test]
fn self_loops_rejected_in_strict_mode() {
    let err = load_edge_list_bytes(b"1 2\n4 4\n", ReadOptions::strict()).unwrap_err();
    assert!(matches!(err, LoadError::SelfLoop { line: 2 }));
}

#[test]
fn duplicate_edges_rejected_in_strict_mode() {
    let err = load_edge_list_bytes(b"1 2\n2 3\n2 1\n", ReadOptions::strict()).unwrap_err();
    assert!(matches!(err, LoadError::DuplicateEdge { line: 3 }));
}

#[test]
fn out_of_range_ids_are_typed() {
    // One past u64::MAX cannot be an id.
    let err =
        load_edge_list_bytes(b"18446744073709551616 1\n", ReadOptions::default()).unwrap_err();
    assert!(matches!(err, LoadError::Parse { line: 1, .. }));
    // Negative ids are likewise a parse error, not a wrap-around.
    let err = load_edge_list_bytes(b"-1 2\n", ReadOptions::default()).unwrap_err();
    assert!(matches!(err, LoadError::Parse { line: 1, .. }));
    // u64::MAX itself is representable and compacts fine.
    let doc = load_edge_list_bytes(b"18446744073709551615 1\n", ReadOptions::default()).unwrap();
    assert_eq!(doc.graph.num_edges(), 1);
}

#[test]
fn declared_count_lies_are_typed() {
    let text = b"% 9 3 3\n1 2\n2 3\n";
    let opts = ReadOptions {
        enforce_declared_counts: true,
        ..ReadOptions::default()
    };
    let err = load_edge_list_bytes(text, opts).unwrap_err();
    assert!(matches!(
        err,
        LoadError::SizeMismatch {
            what: "edges",
            declared: 9,
            actual: 2,
        }
    ));
}

// --- model-reader failure injection ------------------------------------

/// A small published model whose serialised form the tests corrupt.
fn model_bytes() -> Vec<u8> {
    let m = F32Matrix::from_vec(6, 4, (0..24).map(|i| i as f32 * 0.5 - 3.0).collect());
    ModelFile::dense(
        m,
        Provenance {
            seed: 11,
            epsilon: 2.0,
            delta: 1e-5,
        },
    )
    .to_bytes()
}

#[test]
fn truncation_at_every_cut_is_typed_not_a_panic() {
    let bytes = model_bytes();
    for cut in 0..bytes.len() {
        match ModelFile::from_bytes(&bytes[..cut]) {
            Err(ModelError::Truncated { expected, found }) => {
                assert_eq!(found, cut, "cut {cut}: wrong found length reported");
                assert!(expected > cut, "cut {cut}: expected must exceed found");
            }
            other => panic!("cut {cut}: expected Truncated, got {other:?}"),
        }
    }
    // The complete file, for contrast, parses.
    assert!(ModelFile::from_bytes(&bytes).is_ok());
}

#[test]
fn wrong_magic_is_typed() {
    let mut bytes = model_bytes();
    bytes[..4].copy_from_slice(b"NOPE");
    match ModelFile::from_bytes(&bytes) {
        Err(ModelError::BadMagic { found }) => assert_eq!(&found, b"NOPE"),
        other => panic!("expected BadMagic, got {other:?}"),
    }
}

#[test]
fn future_version_is_typed() {
    let mut bytes = model_bytes();
    // Version lives right after the 4-byte magic (u16 LE).
    bytes[4] = 99;
    assert!(matches!(
        ModelFile::from_bytes(&bytes),
        Err(ModelError::UnsupportedVersion { found: 99 })
    ));
}

#[test]
fn unknown_payload_kind_is_typed() {
    let mut bytes = model_bytes();
    // Kind is the u16 after magic + version.
    bytes[6] = 7;
    assert!(matches!(
        ModelFile::from_bytes(&bytes),
        Err(ModelError::UnknownKind { found: 7 })
    ));
}

#[test]
fn payload_bit_flip_is_a_checksum_mismatch() {
    let mut bytes = model_bytes();
    let mid = 64 + (bytes.len() - 64 - 4) / 2;
    bytes[mid] ^= 0x01;
    match ModelFile::from_bytes(&bytes) {
        Err(ModelError::ChecksumMismatch { declared, actual }) => {
            assert_ne!(declared, actual);
        }
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }
}

#[test]
fn header_shape_lie_is_typed() {
    // Inflating the declared row count makes the header inconsistent
    // with the actual payload length: a structural Corrupt error (the
    // size check), not an attempted over-read.
    let mut bytes = model_bytes();
    bytes[8] = 0xFF; // rows field (u64 LE at offset 8)
    assert!(matches!(
        ModelFile::from_bytes(&bytes),
        Err(ModelError::Corrupt { .. })
    ));
}

#[test]
fn provenance_tampering_is_a_checksum_mismatch() {
    // The header is under the CRC too: silently rewriting the recorded
    // privacy budget is detected even though the payload is untouched.
    let mut bytes = model_bytes();
    bytes[24] ^= 0x01; // seed field
    assert!(matches!(
        ModelFile::from_bytes(&bytes),
        Err(ModelError::ChecksumMismatch { .. })
    ));
}

#[test]
fn model_read_from_missing_path_is_io_typed() {
    let err = ModelFile::read(std::path::Path::new("/nonexistent/m.spm")).unwrap_err();
    assert!(matches!(err, ModelError::Io(_)));
    // And every ModelError formats a human-readable message.
    assert!(!err.to_string().is_empty());
}

// --- checkpoint (.spc) failure injection --------------------------------

/// A realistic serialised checkpoint the tests corrupt: full state with
/// accountant curve and a pending Marsaglia spare.
fn checkpoint_bytes() -> Vec<u8> {
    use se_privgemb_suite::linalg::DenseMatrix;
    let st = TrainerState {
        fingerprint: 0x5EED_CAFE_0000_0001,
        steps_run: 17,
        epochs_run: 2,
        step_in_epoch: 3,
        rng: [9, 8, 7, 6],
        noise_spare: Some(0.25),
        loss_sum: -3.5,
        loss_count: 272,
        w_in: DenseMatrix::from_vec(4, 3, (0..12).map(|i| i as f64 * 0.25 - 1.0).collect()),
        w_out: DenseMatrix::from_vec(4, 3, (0..12).map(|i| -(i as f64) * 0.5).collect()),
        accountant_orders_max: 8,
        accountant_rdp: vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7],
        accountant_steps: 17,
    };
    checkpoint_to_bytes(&st)
}

#[test]
fn spc_truncation_at_every_cut_is_typed_not_a_panic() {
    let bytes = checkpoint_bytes();
    for cut in 0..bytes.len() {
        match checkpoint_from_bytes(&bytes[..cut]) {
            Err(ModelError::Truncated { expected, found }) => {
                assert_eq!(found, cut, "cut {cut}: wrong found length reported");
                assert!(expected > cut, "cut {cut}: expected must exceed found");
            }
            other => panic!("cut {cut}: expected Truncated, got {other:?}"),
        }
    }
    assert!(checkpoint_from_bytes(&bytes).is_ok());
}

#[test]
fn spc_single_bit_flips_are_always_detected() {
    // Flip one bit at a sample of positions across header, payload, and
    // trailer: every flip must surface as a typed error — usually a
    // checksum mismatch, or a structural error when the flip lands in a
    // field validated before the CRC. Never Ok, never a panic.
    let bytes = checkpoint_bytes();
    for pos in (0..bytes.len()).step_by(7) {
        for bit in [0u8, 3, 7] {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 1 << bit;
            assert!(
                checkpoint_from_bytes(&corrupt).is_err(),
                "bit {bit} of byte {pos}: corruption not detected"
            );
        }
    }
}

#[test]
fn spc_version_skew_is_typed() {
    let mut bytes = checkpoint_bytes();
    bytes[4] = 99; // version u16 LE right after the 4-byte magic
    assert!(matches!(
        checkpoint_from_bytes(&bytes),
        Err(ModelError::UnsupportedVersion { found: 99 })
    ));
    let mut bytes = checkpoint_bytes();
    bytes[..4].copy_from_slice(b"SPMB"); // a model file is not a checkpoint
    assert!(matches!(
        checkpoint_from_bytes(&bytes),
        Err(ModelError::BadMagic { found }) if &found == b"SPMB"
    ));
}

#[test]
fn spc_unknown_flags_and_shape_lies_are_typed() {
    let mut bytes = checkpoint_bytes();
    bytes[6] |= 0x80; // undefined flag bit
    assert!(matches!(
        checkpoint_from_bytes(&bytes),
        Err(ModelError::Corrupt { .. })
    ));
    let mut bytes = checkpoint_bytes();
    bytes[96] = 0xFF; // declared row count no longer matches payload
    assert!(matches!(
        checkpoint_from_bytes(&bytes),
        Err(ModelError::Corrupt { .. })
    ));
}

#[test]
fn corrupting_newest_spc_leaves_previous_checkpoint_usable() {
    // Two checkpoints on disk; the newest gets torn. Resume-side
    // discovery must fall back to the intact predecessor — the
    // KEEP_CHECKPOINTS=2 retention exists exactly for this.
    use se_privgemb_suite::model::checkpoint::{
        checkpoint_file_name, latest_valid_checkpoint, write_checkpoint_atomic,
    };
    let dir = std::env::temp_dir().join(format!("spc_fi_fallback_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();

    let older = checkpoint_from_bytes(&checkpoint_bytes()).unwrap();
    let mut newer = older.clone();
    newer.steps_run += 5;
    let older_path = dir.join(checkpoint_file_name(older.steps_run));
    let newer_path = dir.join(checkpoint_file_name(newer.steps_run));
    write_checkpoint_atomic(&older_path, &older).unwrap();
    write_checkpoint_atomic(&newer_path, &newer).unwrap();

    // Simulate a torn write of the newest file (truncate to half).
    let full = std::fs::read(&newer_path).unwrap();
    std::fs::write(&newer_path, &full[..full.len() / 2]).unwrap();

    let (found_path, found) = latest_valid_checkpoint(&dir).unwrap().expect("fallback");
    assert_eq!(found_path, older_path);
    assert_eq!(found.steps_run, older.steps_run);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dense_near_complete_graph_trains() {
    // K12 minus one edge: non-neighbour sampling is nearly impossible
    // for most centres; the fallback path must carry the run.
    let mut edges = Vec::new();
    for i in 0..12u32 {
        for j in (i + 1)..12 {
            if !(i == 0 && j == 1) {
                edges.push((i, j));
            }
        }
    }
    let g = Graph::from_edges(12, edges);
    let result = SePrivGEmb::builder()
        .dim(4)
        .epochs(3)
        .seed(10)
        .build()
        .fit(&g);
    assert_finite(&result, "near-complete");
}
