//! Train → save → load → query must equal train → query, bit for bit.
//!
//! The publication boundary rounds `f64` training weights to `f32`
//! exactly once (`F32Matrix::from_dense`); everything downstream of
//! that point — serialisation, the checksum, the bulk read, the store,
//! the IVF index — moves raw bit patterns only. This suite pins that
//! contract end to end: an [`EmbeddingStore`] built in memory from a
//! freshly trained model and one round-tripped through a `.spm` file
//! answer every query identically, including NaN-free-ness, scores,
//! ranks, and tie-breaks.

use rand::rngs::StdRng;
use rand::SeedableRng;
use se_privgemb_suite::core::{ProximityKind, SePrivGEmb};
use se_privgemb_suite::datasets::generators;
use se_privgemb_suite::model::{ModelFile, Provenance};
use se_privgemb_suite::serve::{EmbeddingStore, IvfConfig, IvfIndex};
use std::path::PathBuf;

fn temp_file(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("sp_roundtrip_{tag}_{}.spm", std::process::id()))
}

fn trained() -> (
    se_privgemb_suite::core::pipeline::EmbeddingResult,
    Provenance,
) {
    let mut rng = StdRng::seed_from_u64(21);
    let g = generators::barabasi_albert(120, 3, &mut rng);
    let result = SePrivGEmb::builder()
        .dim(16)
        .epochs(8)
        .batch_size(32)
        .epsilon(4.0)
        .seed(21)
        .proximity(ProximityKind::deepwalk_default())
        .build()
        .fit(&g);
    let provenance = Provenance {
        seed: 21,
        epsilon: result.report.epsilon_spent,
        delta: result.report.delta_spent,
    };
    (result, provenance)
}

#[test]
fn saved_and_loaded_store_answers_bit_identically() {
    let (result, provenance) = trained();
    let in_memory = EmbeddingStore::from_skipgram(&result.model, provenance);

    let path = temp_file("store");
    ModelFile::from_skipgram(&result.model, provenance)
        .write_atomic(&path)
        .unwrap();
    let loaded = EmbeddingStore::open(&path).unwrap();
    std::fs::remove_file(&path).ok();

    assert_eq!(loaded.num_nodes(), in_memory.num_nodes());
    assert_eq!(loaded.provenance(), provenance);
    for node in 0..in_memory.num_nodes() as u32 {
        // Raw embedding rows: identical bit patterns.
        let a = in_memory.embedding(node);
        let b = loaded.embedding(node);
        assert_eq!(
            a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "row {node} differs after the round trip"
        );
    }
    // Exact top-k: same neighbours, same scores, same tie-breaks.
    for node in [0u32, 7, 63, 119] {
        assert_eq!(
            in_memory.exact_top_k_node(node, 10),
            loaded.exact_top_k_node(node, 10),
        );
    }
    // Link scores go through W_out: the context block must round-trip
    // too, not just the published vectors.
    for (u, v) in [(0u32, 1u32), (5, 80), (119, 3)] {
        assert_eq!(
            in_memory.link_score(u, v).to_bits(),
            loaded.link_score(u, v).to_bits()
        );
    }
}

#[test]
fn ivf_queries_agree_between_memory_and_disk() {
    let (result, provenance) = trained();
    let in_memory = EmbeddingStore::from_skipgram(&result.model, provenance);
    let path = temp_file("ivf");
    ModelFile::from_skipgram(&result.model, provenance)
        .write_atomic(&path)
        .unwrap();
    let loaded = EmbeddingStore::open(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let cfg = IvfConfig {
        nlist: 8,
        nprobe: 3,
        ..IvfConfig::default()
    };
    let idx_mem = IvfIndex::build(&in_memory, cfg, Some(4));
    let idx_disk = IvfIndex::build(&loaded, cfg, Some(1));
    for node in 0..in_memory.num_nodes() as u32 {
        assert_eq!(
            idx_mem.top_k_node(&in_memory, node, 5, cfg.nprobe),
            idx_disk.top_k_node(&loaded, node, 5, cfg.nprobe),
            "IVF answer for node {node} differs between memory and disk"
        );
    }
}

#[test]
fn second_save_of_the_same_model_is_byte_identical() {
    // Serialisation is a pure function of (payload, provenance): two
    // writes of one model produce the same file, byte for byte —
    // checksummed publications are reproducible artefacts.
    let (result, provenance) = trained();
    let file = ModelFile::from_skipgram(&result.model, provenance);
    assert_eq!(file.to_bytes(), file.to_bytes());
    let reparsed = ModelFile::from_bytes(&file.to_bytes()).unwrap();
    assert_eq!(reparsed, file);
    assert_eq!(reparsed.to_bytes(), file.to_bytes());
}
