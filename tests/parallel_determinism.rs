//! Determinism contract of the `sp_parallel`-backed hot paths.
//!
//! For each of the trainer, the sampled walk corpus, and every sparse
//! proximity kind, this suite asserts that
//!
//! 1. `threads = 1` output is **bit-identical** to `threads = 4`
//!    output under the same seed (parallelism never perturbs a seeded
//!    run, so it cannot perturb the privacy accounting either), and
//! 2. `threads = 1` matches the **pre-refactor serial path**, pinned
//!    as golden value digests captured on small fixed graphs before
//!    the parallel refactor.
//!
//! One documented exception to (2): Adamic–Adar and resource
//! allocation. Their pre-refactor builder summed wedge contributions
//! in the equal-key order of `sort_unstable` — an unspecified order,
//! so those matrices were only ever defined up to float-summation
//! order. The row-partitioned builder fixes a canonical
//! ascending-centre order; the suite pins the new canonical digests
//! and separately asserts ≤ 1 ulp agreement with an inline reference
//! implementation of the pre-refactor algorithm.

use rand::rngs::StdRng;
use rand::SeedableRng;
use se_privgemb::{PerturbStrategy, ProximityKind, SePrivGEmb};
use se_privgemb_suite::model::Provenance;
use se_privgemb_suite::serve::{self, EmbeddingStore, IvfConfig, IvfIndex};
use sp_datasets::generators;
use sp_graph::Graph;
use sp_linalg::CsrMatrix;
use sp_proximity::{proximity_matrix_threads, EdgeProximity};
use sp_skipgram::walks::{corpus_pairs_seeded, WalkConfig};

// ---------------------------------------------------------------------------
// Fixtures and digests

fn fnv1a64(words: impl Iterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn matrix_digest(m: &CsrMatrix) -> (usize, u64) {
    let h = fnv1a64(
        m.iter()
            .flat_map(|(i, j, v)| [i as u64, j as u64, v.to_bits()]),
    );
    (m.nnz(), h)
}

/// Small fixed scale-free graph (40 nodes, 114 edges) used for every
/// proximity golden.
fn golden_graph() -> Graph {
    let mut rng = StdRng::seed_from_u64(7);
    generators::barabasi_albert(40, 3, &mut rng)
}

/// Ring + chords (60 nodes, 72 edges) used for the trainer goldens;
/// large enough that batch 64 crosses the trainer's parallel cutover.
fn ring_with_chords(n: usize) -> Graph {
    let mut edges: Vec<(u32, u32)> = (0..n).map(|i| (i as u32, ((i + 1) % n) as u32)).collect();
    for i in (0..n).step_by(5) {
        edges.push((i as u32, ((i + n / 2) % n) as u32));
    }
    Graph::from_edges(n, edges)
}

fn golden_trainer(threads: usize) -> se_privgemb::EmbeddingResult {
    SePrivGEmb::builder()
        .dim(16)
        .negatives(3)
        .batch_size(64)
        .learning_rate(0.1)
        .clip(1.0)
        .sigma(5.0)
        .epsilon(3.5)
        .delta(1e-5)
        .epochs(3)
        .strategy(PerturbStrategy::NonZero)
        .proximity(ProximityKind::deepwalk_default())
        .seed(0xD5EED)
        .threads(threads)
        .build()
        .fit(&ring_with_chords(60))
}

const SPARSE_KINDS: [ProximityKind; 6] = [
    ProximityKind::CommonNeighbors,
    ProximityKind::AdamicAdar,
    ProximityKind::ResourceAllocation,
    ProximityKind::Katz {
        beta: 0.5,
        max_len: 3,
    },
    ProximityKind::Ppr {
        alpha: 0.15,
        iters: 4,
    },
    ProximityKind::DeepWalk { window: 2 },
];

// ---------------------------------------------------------------------------
// Golden values. Captured on the pre-refactor serial implementations
// (commit 6568724) except AA/RA, whose canonical fixed-order values
// were re-pinned as described in the module docs.

const GOLDEN_CN: (usize, u64) = (1162, 0xe65d9daa87e1ddc5);
const GOLDEN_AA: (usize, u64) = (1162, 0xdd8b232de269c295);
const GOLDEN_RA: (usize, u64) = (1162, 0x95a725b0ab070a8d);
const GOLDEN_KATZ: (usize, u64) = (1600, 0xca3db464325353ab);
const GOLDEN_PPR: (usize, u64) = (1600, 0xd919854661277fb3);
const GOLDEN_DW: (usize, u64) = (1242, 0x838f656cef350957);
const GOLDEN_DEG_LEN: usize = 114;
const GOLDEN_DEG_HASH: u64 = 0xcf60a6f040830e5a;
const GOLDEN_DEG_MIN_BITS: u64 = 0x3fbde27703a412ea;
// W_IN/W_OUT were re-pinned once when `sp_linalg::vector` moved to
// lane-shaped reduction kernels (4 accumulators, fixed tree fold):
// dot/norm2_sq now sum in a different — still deterministic —
// canonical order, which shifts trained weights by a few ulps per
// element (sampled elementwise deltas <= 4 ulps vs the previous
// left-to-right order; elementwise kernels axpy/scale are
// bit-identical, so the drift enters only through dot-product scores
// and clip norms). STEPS and EPS are order-independent and unchanged.
// Re-pinned again when `generate_subgraphs` switched to the
// shard-addressable `SubgraphGen` scheme: the run RNG now yields one
// base seed up front and each edge derives its own splitmix64-mixed
// stream, which legitimately changes every negative-sample draw (and
// hence the trained weights) while keeping the determinism contract —
// materialised and streamed shards of any height stay bit-identical.
// STEPS and EPS depend only on the accountant schedule and are
// unchanged.
const GOLDEN_TRAIN_W_IN: u64 = 0x0eadb821fe3f7083;
const GOLDEN_TRAIN_W_OUT: u64 = 0x6a612b00aedfe9d6;
const GOLDEN_TRAIN_STEPS: u64 = 6;
const GOLDEN_TRAIN_EPS_BITS: u64 = 0x4003c53506d06d1a;
// Pinned at introduction of the seeded corpus (threads=1 == threads=4
// by construction; the constant guards against future drift).
const GOLDEN_WALK_PAIRS: usize = 2280;
const GOLDEN_WALK_HASH: u64 = 0x5061ec67ddfb8ed5;

// ---------------------------------------------------------------------------
// Proximity

#[test]
fn proximity_threads1_matches_pre_refactor_goldens() {
    let g = golden_graph();
    for (kind, golden) in SPARSE_KINDS.iter().zip([
        GOLDEN_CN,
        GOLDEN_AA,
        GOLDEN_RA,
        GOLDEN_KATZ,
        GOLDEN_PPR,
        GOLDEN_DW,
    ]) {
        let m = proximity_matrix_threads(&g, *kind, Some(1));
        assert_eq!(
            matrix_digest(&m),
            golden,
            "{} drifted from the pinned serial output",
            kind.label()
        );
    }
    let p = EdgeProximity::compute_threads(&g, ProximityKind::Degree, Some(1));
    assert_eq!(p.weights.len(), GOLDEN_DEG_LEN);
    assert_eq!(
        fnv1a64(p.weights.iter().map(|v| v.to_bits())),
        GOLDEN_DEG_HASH
    );
    assert_eq!(p.min_positive.to_bits(), GOLDEN_DEG_MIN_BITS);
}

#[test]
fn proximity_bit_identical_for_1_and_4_threads() {
    let g = golden_graph();
    for kind in SPARSE_KINDS {
        let one = proximity_matrix_threads(&g, kind, Some(1));
        let four = proximity_matrix_threads(&g, kind, Some(4));
        // CsrMatrix equality is structural + exact on the f64 payload.
        assert_eq!(one, four, "{} differs across thread counts", kind.label());
    }
    for kind in [ProximityKind::Degree, ProximityKind::deepwalk_default()] {
        let one = EdgeProximity::compute_threads(&g, kind, Some(1));
        let four = EdgeProximity::compute_threads(&g, kind, Some(4));
        assert_eq!(
            one.weights.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            four.weights.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(one.min_positive.to_bits(), four.min_positive.to_bits());
    }
}

#[test]
fn neighborhood_matches_pre_refactor_reference_within_one_ulp() {
    // Inline reference: the pre-refactor CooBuilder wedge enumeration
    // (centre-outer loop, duplicate summation at build time).
    fn reference(g: &Graph, weight: impl Fn(u32) -> f64) -> CsrMatrix {
        let n = g.num_nodes();
        let mut b = sp_linalg::CooBuilder::new(n, n);
        for w in 0..n as u32 {
            let cw = weight(w);
            if cw == 0.0 {
                continue;
            }
            let nb = g.neighbors(w);
            for (a, &i) in nb.iter().enumerate() {
                for &j in &nb[a + 1..] {
                    b.push(i as usize, j as usize, cw);
                    b.push(j as usize, i as usize, cw);
                }
            }
        }
        b.build()
    }

    type WedgeWeight<'a> = Box<dyn Fn(u32) -> f64 + 'a>;
    let g = golden_graph();
    let cases: [(ProximityKind, WedgeWeight); 3] = [
        (ProximityKind::CommonNeighbors, Box::new(|_| 1.0)),
        (
            ProximityKind::AdamicAdar,
            Box::new(|w| {
                let d = g.degree(w);
                if d >= 2 {
                    1.0 / (d as f64).ln()
                } else {
                    0.0
                }
            }),
        ),
        (
            ProximityKind::ResourceAllocation,
            Box::new(|w| {
                let d = g.degree(w);
                if d >= 1 {
                    1.0 / d as f64
                } else {
                    0.0
                }
            }),
        ),
    ];
    for (kind, weight) in &cases {
        let old = reference(&g, weight);
        let new = proximity_matrix_threads(&g, *kind, Some(1));
        assert_eq!(old.nnz(), new.nnz(), "{}: support changed", kind.label());
        for (i, j, v) in old.iter() {
            let w = new.get(i, j);
            let ulp = (v.to_bits() as i64 - w.to_bits() as i64).unsigned_abs();
            assert!(
                ulp <= 1,
                "{} at ({i},{j}): {v} vs {w} ({ulp} ulps)",
                kind.label()
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Trainer

#[test]
fn trainer_threads1_matches_pre_refactor_golden() {
    let r = golden_trainer(1);
    assert_eq!(
        fnv1a64(r.model.w_in.as_slice().iter().map(|v| v.to_bits())),
        GOLDEN_TRAIN_W_IN
    );
    assert_eq!(
        fnv1a64(r.model.w_out.as_slice().iter().map(|v| v.to_bits())),
        GOLDEN_TRAIN_W_OUT
    );
    assert_eq!(r.report.steps_run, GOLDEN_TRAIN_STEPS);
    assert_eq!(r.report.epsilon_spent.to_bits(), GOLDEN_TRAIN_EPS_BITS);
}

#[test]
fn trainer_bit_identical_for_1_and_4_threads() {
    let one = golden_trainer(1);
    let four = golden_trainer(4);
    assert_eq!(
        one.model.w_in.as_slice(),
        four.model.w_in.as_slice(),
        "W_in differs across thread counts"
    );
    assert_eq!(
        one.model.w_out.as_slice(),
        four.model.w_out.as_slice(),
        "W_out differs across thread counts"
    );
    assert_eq!(
        one.report.final_loss.to_bits(),
        four.report.final_loss.to_bits()
    );
}

#[test]
fn accountant_charges_identical_steps_for_any_thread_count() {
    // The RDP accountant must see the same subsampled-Gaussian step
    // sequence no matter how the gradient pass is scheduled: identical
    // step counts AND identical (bitwise) budget spend.
    let one = golden_trainer(1);
    let four = golden_trainer(4);
    assert_eq!(one.report.steps_run, four.report.steps_run);
    assert_eq!(one.report.epochs_run, four.report.epochs_run);
    assert_eq!(one.report.stopped_by_budget, four.report.stopped_by_budget);
    assert_eq!(
        one.report.epsilon_spent.to_bits(),
        four.report.epsilon_spent.to_bits()
    );
    assert_eq!(
        one.report.delta_spent.to_bits(),
        four.report.delta_spent.to_bits()
    );
}

// ---------------------------------------------------------------------------
// Walk corpus

// ---------------------------------------------------------------------------
// IVF serving index

/// BlogCatalog-scale seeded store (10,312 nodes, dim 16): the corpus
/// size the serving acceptance gate is specified against.
fn blogcatalog_scale_store() -> EmbeddingStore {
    EmbeddingStore::from_f32(
        serve::synthetic::clustered_embedding(10_312, 16, 40, 0xB10C),
        Provenance::non_private(0xB10C),
    )
}

#[test]
fn ivf_recall_at_10_meets_floor_on_blogcatalog_scale() {
    // Recall regression gate: the coarse-quantised index probing a
    // quarter of its lists must keep recall@10 >= 0.95 against the
    // brute-force oracle. A quantiser or rerank regression shows up
    // here before it shows up in production metrics.
    let store = blogcatalog_scale_store();
    let cfg = IvfConfig {
        nlist: 64,
        nprobe: 16,
        ..IvfConfig::default()
    };
    let index = IvfIndex::build(&store, cfg, Some(4));
    let queries: Vec<u32> = (0..200).map(|i| (i * 51) % 10_312).collect();
    let mut recall = 0.0;
    for &q in &queries {
        let approx = index.top_k_node(&store, q, 10, cfg.nprobe);
        let exact = store.exact_top_k_node(q, 10);
        recall += serve::recall_at_k(&approx, &exact);
    }
    recall /= queries.len() as f64;
    assert!(
        recall >= 0.95,
        "recall@10 regression: {recall:.4} < 0.95 (nlist=64, nprobe=16)"
    );
}

#[test]
fn ivf_index_bit_identical_for_1_and_4_threads() {
    // The index build uses par_map for assignment; like every other
    // hot path in the workspace, thread count must never change the
    // result. Identical centroids, identical lists, identical answers.
    let store = blogcatalog_scale_store();
    let cfg = IvfConfig {
        nlist: 32,
        nprobe: 8,
        ..IvfConfig::default()
    };
    let one = IvfIndex::build(&store, cfg, Some(1));
    let four = IvfIndex::build(&store, cfg, Some(4));
    for q in (0..10_312u32).step_by(97) {
        assert_eq!(
            one.top_k_node(&store, q, 10, cfg.nprobe),
            four.top_k_node(&store, q, 10, cfg.nprobe),
            "IVF answers for node {q} differ across build thread counts"
        );
    }
    assert_eq!(
        one.list_sizes(),
        four.list_sizes(),
        "inverted-list partition differs across thread counts"
    );
}

// ---------------------------------------------------------------------------
// Walk corpus

#[test]
fn walk_corpus_bit_identical_and_pinned() {
    let g = golden_graph();
    let cfg = WalkConfig {
        walks_per_node: 3,
        walk_length: 10,
        window: 2,
    };
    let one = corpus_pairs_seeded(&g, cfg, 0xC0FFEE, Some(1));
    let four = corpus_pairs_seeded(&g, cfg, 0xC0FFEE, Some(4));
    assert_eq!(one, four, "corpus differs across thread counts");
    assert_eq!(one.len(), GOLDEN_WALK_PAIRS);
    assert_eq!(
        fnv1a64(one.iter().flat_map(|&(u, v)| [u as u64, v as u64])),
        GOLDEN_WALK_HASH
    );
}
