//! Cross-crate metric and baseline consistency tests.

use rand::rngs::StdRng;
use rand::SeedableRng;
use se_privgemb_suite::baselines::{BaselineConfig, DpgGan, DpgVae, Embedder, Gap, ProGap};
use se_privgemb_suite::datasets::{generators, PaperDataset};
use se_privgemb_suite::eval::{
    auc_from_scores, normalize_rows, struc_equ, LinkSplit, PairSelection,
};
use se_privgemb_suite::linalg::DenseMatrix;

fn graph() -> sp_graph::Graph {
    let mut rng = StdRng::seed_from_u64(4);
    generators::holme_kim(150, 3, 0.5, &mut rng)
}

#[test]
fn all_baselines_satisfy_embedder_contract() {
    let g = graph();
    let cfg = BaselineConfig {
        dim: 12,
        epochs: 3,
        batch: 16,
        ..BaselineConfig::default()
    };
    let embedders: Vec<Box<dyn Embedder>> = vec![
        Box::new(DpgGan::new(cfg.clone())),
        Box::new(DpgVae::new(cfg.clone())),
        Box::new(Gap::new(cfg.clone())),
        Box::new(ProGap::new(cfg)),
    ];
    for e in embedders {
        let (emb, report) = e.embed(&g);
        assert_eq!(emb.rows(), g.num_nodes(), "{}", e.name());
        assert_eq!(emb.cols(), 12, "{}", e.name());
        assert_eq!(report.method, e.name());
        assert!(emb.as_slice().iter().all(|v| v.is_finite()), "{}", e.name());
        assert!(report.epsilon_spent > 0.0, "{}", e.name());
    }
}

#[test]
fn baseline_embeddings_feed_both_metrics() {
    let g = graph();
    let (emb, _) = ProGap::new(BaselineConfig {
        dim: 16,
        ..BaselineConfig::default()
    })
    .embed(&g);
    let s = struc_equ(&g, &emb, PairSelection::All);
    assert!(s.is_some());
    let mut rng = StdRng::seed_from_u64(5);
    let split = LinkSplit::new(&g, 0.2, &mut rng);
    let auc = split.auc(&emb).unwrap();
    assert!((0.0..=1.0).contains(&auc));
}

#[test]
fn strucequ_invariant_under_global_rotation_like_scaling() {
    // StrucEqu uses distances, so a global scale changes both distance
    // vectors proportionally and Pearson is unchanged.
    let g = graph();
    let mut rng = StdRng::seed_from_u64(6);
    let emb = DenseMatrix::uniform(g.num_nodes(), 8, -1.0, 1.0, &mut rng);
    let mut scaled = emb.clone();
    for v in scaled.as_mut_slice() {
        *v *= 7.5;
    }
    let a = struc_equ(&g, &emb, PairSelection::All).unwrap();
    let b = struc_equ(&g, &scaled, PairSelection::All).unwrap();
    assert!((a - b).abs() < 1e-9);
}

#[test]
fn auc_invariant_under_monotone_score_transforms() {
    let pos: Vec<f64> = (0..50).map(|i| (i as f64 * 0.41).sin() + 0.3).collect();
    let neg: Vec<f64> = (0..70).map(|i| (i as f64 * 0.17).cos() - 0.1).collect();
    let base = auc_from_scores(&pos, &neg).unwrap();
    let squash = |xs: &[f64]| -> Vec<f64> { xs.iter().map(|&x| (3.0 * x + 1.0).tanh()).collect() };
    let after = auc_from_scores(&squash(&pos), &squash(&neg)).unwrap();
    assert!(
        (base - after).abs() < 1e-12,
        "AUC must be rank-invariant: {base} vs {after}"
    );
}

#[test]
fn normalized_rows_preserve_cosine_ranking() {
    let mut rng = StdRng::seed_from_u64(7);
    let emb = DenseMatrix::uniform(20, 6, -1.0, 1.0, &mut rng);
    let n = normalize_rows(&emb);
    // cos(u, v) computed on raw rows equals dot of normalised rows.
    for u in 0..20 {
        for v in (u + 1)..20 {
            let raw_cos = {
                let (a, b) = (emb.row(u), emb.row(v));
                let num = sp_linalg::vector::dot(a, b);
                num / (sp_linalg::vector::norm2(a) * sp_linalg::vector::norm2(b))
            };
            let norm_dot = sp_linalg::vector::dot(n.row(u), n.row(v));
            assert!((raw_cos - norm_dot).abs() < 1e-9);
        }
    }
}

#[test]
fn paper_dataset_standins_have_published_density() {
    // The accounting-relevant quantity is |E| (via γ = B/|E|): the
    // stand-ins must reproduce it exactly at full scale for the three
    // parameter-study datasets (cheap enough to test).
    for ds in PaperDataset::parameter_study() {
        let g = ds.generate_full(1);
        let (n, m) = ds.published_size();
        assert_eq!((g.num_nodes(), g.num_edges()), (n, m), "{}", ds.name());
    }
}
