//! Offline stand-in for the crates.io `parking_lot` crate (API subset).
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s poison-free API:
//! `lock()`/`read()`/`write()` return guards directly. A poisoned inner
//! lock (a panic while held) just hands back the inner guard, matching
//! `parking_lot`'s behavior of not propagating poison.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Poison-free mutex, mirroring `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value` in a new mutex.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Poison-free reader–writer lock, mirroring `parking_lot::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap `value` in a new lock.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}
