//! Concrete generators, mirroring `rand::rngs`.

use crate::{RngCore, SeedableRng, Xoshiro256};

/// Deterministic, seedable generator (stand-in for `rand::rngs::StdRng`).
#[derive(Clone, Debug)]
pub struct StdRng(Xoshiro256);

/// Small fast generator (stand-in for `rand::rngs::SmallRng`).
#[derive(Clone, Debug)]
pub struct SmallRng(Xoshiro256);

macro_rules! impl_rng {
    ($t:ident) => {
        impl RngCore for $t {
            #[inline]
            fn next_u32(&mut self) -> u32 {
                (self.0.next() >> 32) as u32
            }
            #[inline]
            fn next_u64(&mut self) -> u64 {
                self.0.next()
            }
        }
        impl SeedableRng for $t {
            fn seed_from_u64(state: u64) -> Self {
                Self(Xoshiro256::from_u64(state))
            }
        }
    };
}
impl_rng!(StdRng);
impl_rng!(SmallRng);
