//! Concrete generators, mirroring `rand::rngs`.

use crate::{RngCore, SeedableRng, Xoshiro256};

/// Deterministic, seedable generator (stand-in for `rand::rngs::StdRng`).
#[derive(Clone, Debug)]
pub struct StdRng(Xoshiro256);

/// Small fast generator (stand-in for `rand::rngs::SmallRng`).
#[derive(Clone, Debug)]
pub struct SmallRng(Xoshiro256);

macro_rules! impl_rng {
    ($t:ident) => {
        impl RngCore for $t {
            #[inline]
            fn next_u32(&mut self) -> u32 {
                (self.0.next() >> 32) as u32
            }
            #[inline]
            fn next_u64(&mut self) -> u64 {
                self.0.next()
            }
        }
        impl SeedableRng for $t {
            fn seed_from_u64(state: u64) -> Self {
                Self(Xoshiro256::from_u64(state))
            }
        }
    };
}
impl_rng!(StdRng);
impl_rng!(SmallRng);

impl SmallRng {
    /// The raw xoshiro256++ state words.
    ///
    /// Workspace extension (not in upstream rand 0.8): the checkpoint
    /// layer snapshots the training RNG here so a resumed run replays
    /// the exact random stream of the uninterrupted one.
    pub fn state(&self) -> [u64; 4] {
        self.0.state()
    }

    /// Rebuilds a generator from [`SmallRng::state`] output, bit-exact.
    pub fn from_state(state: [u64; 4]) -> Self {
        Self(Xoshiro256::from_state(state))
    }
}
