//! Offline stand-in for the crates.io `rand` crate (0.8 API subset).
//!
//! The container this workspace builds in has no registry access, so the
//! subset of `rand` 0.8 that SE-PrivGEmb uses is reimplemented here with
//! identical module paths and signatures: the `Rng`/`RngCore`/`SeedableRng`
//! traits, `rngs::{StdRng, SmallRng}`, `seq::SliceRandom`, and
//! `seq::index::sample`. Swapping in the real crate is a one-line change in
//! the root `[workspace.dependencies]`.
//!
//! The generators are deterministic given a seed (xoshiro256++ seeded via
//! SplitMix64), which is all the reproduction needs: every experiment and
//! test in the workspace seeds explicitly via `seed_from_u64`.

pub mod rngs;
pub mod seq;

use core::ops::{Range, RangeInclusive};

/// Low-level uniform bit source. Mirrors `rand_core::RngCore`.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generator construction. Mirrors `rand_core::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be drawn from the "standard" distribution
/// (`Rng::gen::<T>()`): uniform over the full integer range, `[0, 1)` for
/// floats, fair coin for `bool`.
pub trait StandardSample {
    /// Draw one value from the standard distribution.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[inline]
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that `Rng::gen_range` accepts. Mirrors `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range. Panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is < 2^-64 for the spans used here.
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as StandardSample>::standard_sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// User-facing random-value API. Mirrors `rand::Rng` (subset).
pub trait Rng: RngCore {
    /// Uniform draw from `range` (half-open or inclusive).
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Draw from the standard distribution for `T`.
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Shared xoshiro256++ core used by both [`rngs::StdRng`] and
/// [`rngs::SmallRng`].
#[derive(Clone, Debug)]
pub(crate) struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    pub(crate) fn from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        Self { s }
    }

    pub(crate) fn state(&self) -> [u64; 4] {
        self.s
    }

    pub(crate) fn from_state(s: [u64; 4]) -> Self {
        // The all-zero state is xoshiro's one fixed point (the stream
        // would be constant). Seeded generators can never reach it, so
        // it can only come from a corrupted snapshot — fall back to a
        // seeded state rather than produce a degenerate stream.
        if s == [0; 4] {
            Self::from_u64(0)
        } else {
            Self { s }
        }
    }

    #[inline]
    pub(crate) fn next(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}
