//! Sequence helpers, mirroring `rand::seq` (subset).

use crate::Rng;

/// Extension methods on slices, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Element type of the slice.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly random element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

/// Index sampling without replacement, mirroring `rand::seq::index`.
pub mod index {
    use crate::Rng;

    /// Result of [`sample`]: a set of distinct indices in `0..length`.
    #[derive(Clone, Debug)]
    pub struct IndexVec(Vec<usize>);

    impl IndexVec {
        /// Iterate the sampled indices.
        pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
            self.0.iter().copied()
        }

        /// Number of sampled indices.
        pub fn len(&self) -> usize {
            self.0.len()
        }

        /// Whether no indices were sampled.
        pub fn is_empty(&self) -> bool {
            self.0.is_empty()
        }

        /// Convert into a plain vector.
        pub fn into_vec(self) -> Vec<usize> {
            self.0
        }
    }

    impl IntoIterator for IndexVec {
        type Item = usize;
        type IntoIter = std::vec::IntoIter<usize>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    /// Sample `amount` distinct indices uniformly from `0..length`.
    ///
    /// Panics if `amount > length`, matching the real crate.
    pub fn sample<R: Rng + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
        assert!(
            amount <= length,
            "cannot sample {amount} indices from a population of {length}"
        );
        // This sits in the SGD hot loop (one call per training step), so the
        // cost must scale with `amount`, not `length`: rejection-sample for
        // sparse draws, partial Fisher–Yates otherwise.
        if amount * 8 <= length {
            let mut picked = std::collections::HashSet::with_capacity(amount);
            let mut out = Vec::with_capacity(amount);
            while out.len() < amount {
                let j = rng.gen_range(0..length);
                if picked.insert(j) {
                    out.push(j);
                }
            }
            IndexVec(out)
        } else {
            let mut pool: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..length);
                pool.swap(i, j);
            }
            pool.truncate(amount);
            IndexVec(pool)
        }
    }
}
