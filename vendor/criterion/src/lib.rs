//! Offline stand-in for the crates.io `criterion` crate (API subset).
//!
//! Implements `Criterion`, `BenchmarkGroup`, `Bencher`, `BenchmarkId`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros. Timing
//! is a simple median-of-samples over `Instant`, printed one line per
//! benchmark — enough to compare hot kernels across commits in this
//! offline container, not a statistical framework.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 100,
        }
    }
}

/// A named benchmark identifier (`function_name/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier from a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// A group of benchmarks sharing a prefix and sampling configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timing samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Register and immediately run a benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples_target: self.sample_size,
            median_ns: 0.0,
        };
        f(&mut b);
        println!("{}/{}: {:>12.1} ns/iter", self.name, id.id, b.median_ns);
        self
    }

    /// Register and run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples_target: self.sample_size,
            median_ns: 0.0,
        };
        f(&mut b, input);
        println!("{}/{}: {:>12.1} ns/iter", self.name, id.id, b.median_ns);
        self
    }

    /// Finish the group (no-op in the stub).
    pub fn finish(self) {}
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    samples_target: usize,
    median_ns: f64,
}

impl Bencher {
    /// Time `routine`, storing the per-iteration median.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm up and estimate a batch size targeting ~1ms per sample.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().as_secs_f64().max(1e-9);
        let batch = ((1e-3 / once) as usize).clamp(1, 100_000);

        let mut samples = Vec::with_capacity(self.samples_target);
        for _ in 0..self.samples_target {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(t.elapsed().as_secs_f64() / batch as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = samples[samples.len() / 2] * 1e9;
    }
}

/// Bundle benchmark functions into a callable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Produce a `main` running each group, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
