//! Test-runner plumbing: configuration, case outcomes, deterministic RNG.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-test configuration, mirroring `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of passing cases required for the test to succeed.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 64 keeps the unoptimized `cargo
        // test` pass fast while still exercising each property broadly.
        Self { cases: 64 }
    }
}

/// Outcome of one generated case.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case hit a failed `prop_assume!`; generate a replacement.
    Reject,
    /// The case failed an assertion; abort the whole test.
    Fail(String),
}

/// Deterministic per-test RNG: seeded from a stable hash of the fully
/// qualified test name so failures reproduce across runs.
pub fn rng_for_test(name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}
