//! Offline stand-in for the crates.io `proptest` crate (API subset).
//!
//! Provides the `proptest!` / `prop_assert*` macros, the [`strategy::Strategy`]
//! trait with range, tuple, `prop_map`, and `collection::vec` strategies, and
//! a deterministic random test runner. Unlike the real crate there is **no
//! shrinking**: a failing case panics with the generated inputs unshrunk.
//! That keeps the stub small while preserving the bug-finding role of the
//! property suites in this workspace.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// One-stop imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Define property tests. Mirrors `proptest::proptest!` for the common
/// `fn name(pat in strategy, ...) { body }` form, with an optional leading
/// `#![proptest_config(...)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($args:tt)* ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng = $crate::test_runner::rng_for_test(concat!(module_path!(), "::", stringify!($name)));
            let mut __ran: u32 = 0;
            let mut __rejected: u32 = 0;
            while __ran < __config.cases {
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $crate::__proptest_bind!(__rng, $($args)*);
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match __outcome {
                    ::std::result::Result::Ok(()) => __ran += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {
                        __rejected += 1;
                        if __rejected > __config.cases * 16 {
                            panic!(
                                "proptest '{}': too many rejected cases ({} after {} passes)",
                                stringify!($name), __rejected, __ran
                            );
                        }
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest '{}' failed at case {}: {}",
                            stringify!($name), __ran, msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, mut $var:ident in $strat:expr $(, $($rest:tt)*)?) => {
        let mut $var = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $( $crate::__proptest_bind!($rng, $($rest)*); )?
    };
    ($rng:ident, $var:ident in $strat:expr $(, $($rest:tt)*)?) => {
        let $var = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $( $crate::__proptest_bind!($rng, $($rest)*); )?
    };
}

/// Assert inside a property body; failure reports the case, no shrinking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($lhs),
            stringify!($rhs),
            l,
            r
        );
    }};
}

/// Inequality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($lhs),
            stringify!($rhs),
            l
        );
    }};
}

/// Discard the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
