//! Collection strategies, mirroring `proptest::collection` (subset).

use crate::strategy::Strategy;
use core::ops::Range;
use rand::rngs::StdRng;
use rand::Rng;

/// Lengths accepted by [`vec()`]: a fixed `usize` or a `Range<usize>`.
pub trait SizeRange {
    /// Pick a concrete length.
    fn pick(&self, rng: &mut StdRng) -> usize;
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut StdRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn pick(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.clone())
    }
}

/// Strategy producing `Vec`s of values drawn from `element`.
#[derive(Clone, Debug)]
pub struct VecStrategy<S, L> {
    element: S,
    len: L,
}

impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = self.len.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// `Vec` strategy with element strategy and length (fixed or ranged),
/// mirroring `proptest::collection::vec`.
pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
    VecStrategy { element, len }
}
