//! Value-generation strategies (no shrinking).

use core::ops::Range;
use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating random values, mirroring
/// `proptest::strategy::Strategy` minus shrinking.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keep only values for which `f` returns `true`; other draws are
    /// retried (bounded), mirroring `prop_filter` semantics loosely.
    fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive draws");
    }
}

/// Always produces a clone of the given value, mirroring `proptest::strategy::Just`.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        (**self).generate(rng)
    }
}
