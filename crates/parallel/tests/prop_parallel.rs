//! Property-based tests for the deterministic worker-pool primitives:
//! order preservation under arbitrary chunking, and thread-count
//! invariance of the fixed-shape tree reduction.

use proptest::prelude::*;
use sp_parallel::{par_map, par_map_chunks, par_reduce};

proptest! {
    #[test]
    fn par_map_matches_serial_map(
        items in proptest::collection::vec(-1e6f64..1e6, 0..200),
        threads in 1usize..6,
    ) {
        let expect: Vec<f64> = items.iter().map(|&x| x * 1.5 - 2.0).collect();
        let got = par_map(&items, threads, |&x| x * 1.5 - 2.0);
        prop_assert_eq!(
            expect.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            got.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn chunk_ranges_partition_the_input(
        n in 0usize..500,
        chunk in 1usize..64,
        threads in 1usize..6,
    ) {
        let ranges = par_map_chunks(n, chunk, threads, |r| r);
        // Ranges tile 0..n in order with no gaps or overlaps.
        let mut cursor = 0usize;
        for r in &ranges {
            prop_assert_eq!(r.start, cursor);
            prop_assert!(r.end > r.start);
            cursor = r.end;
        }
        prop_assert_eq!(cursor, n);
    }

    #[test]
    fn par_reduce_is_thread_count_invariant(
        xs in proptest::collection::vec(-1e3f64..1e3, 1..300),
        chunk in 1usize..32,
        threads_a in 1usize..6,
        threads_b in 1usize..6,
    ) {
        // Same (n, chunk_size) => same chunk boundaries and the same
        // reduction-tree shape, so the float sum is bit-identical no
        // matter how many workers raced over the chunks.
        let sum = |threads: usize| {
            par_reduce(
                xs.len(),
                chunk,
                threads,
                |r| xs[r].iter().sum::<f64>(),
                |a, b| a + b,
            )
            .unwrap()
        };
        prop_assert_eq!(sum(threads_a).to_bits(), sum(threads_b).to_bits());
    }

    #[test]
    fn par_reduce_uneven_chunks_cover_everything(
        n in 1usize..400,
        chunk in 1usize..50,
    ) {
        // Count-reduction equals n regardless of chunk-size remainder.
        let count = par_reduce(n, chunk, 4, |r| r.len(), |a, b| a + b).unwrap();
        prop_assert_eq!(count, n);
    }
}
