//! # sp-parallel
//!
//! Deterministic chunked worker-pool primitives shared by the trainer
//! (per-example gradient pass), the proximity builders (row-partitioned
//! SpGEMM and wedge enumeration), the walk-corpus generator, and the
//! bench harness's experiment sweeps.
//!
//! ## Determinism contract
//!
//! Every primitive in this crate produces **bit-identical output for
//! any thread count**, which is what lets the DP training pipeline
//! parallelise its hot paths without perturbing the privacy accounting
//! or the reproducibility of a seeded run:
//!
//! - Work is split into *chunks* whose boundaries are a function of the
//!   item count and the chunk size only — never of the thread count or
//!   of scheduling order. Threads race to *claim* chunks, but each
//!   chunk's result is written to its own slot and the slots are
//!   concatenated in chunk-index order after the pool joins.
//! - [`par_map`] and [`par_map_chunks`] therefore preserve input order
//!   exactly; since item computations are independent, the output is
//!   identical to the serial map for any thread count.
//! - [`par_reduce`] folds the per-chunk partials over a **fixed
//!   balanced binary tree** (adjacent pairs, repeated). Floating-point
//!   addition is not associative, so the *shape* of the reduction tree
//!   is part of the result; fixing the shape as a function of the chunk
//!   count alone makes the reduction thread-count-invariant. Callers
//!   that need the result to also be *chunk-size*-invariant must pass
//!   an explicit, fixed `chunk_size`.
//!
//! A panic inside a worker propagates to the caller when the scope
//! joins (the remaining chunks may or may not have run).
//!
//! Thread counts resolve through [`resolve_threads`]: an explicit
//! request wins, then the `SP_THREADS` environment variable, then
//! [`available_threads`]. The CI matrix runs the test suite under
//! `SP_THREADS=1` and `SP_THREADS=4` so any thread-count-dependent
//! nondeterminism fails there rather than in a paper table.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of hardware threads available to this process (at least 1).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolves a thread-count request: `Some(n)` wins (clamped to ≥ 1),
/// then the `SP_THREADS` environment variable, then
/// [`available_threads`].
pub fn resolve_threads(requested: Option<usize>) -> usize {
    if let Some(t) = requested {
        return t.max(1);
    }
    if let Ok(v) = std::env::var("SP_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    available_threads()
}

/// Default chunk size for `n` items on `threads` workers: four chunks
/// per worker for work-stealing slack, at least one item per chunk.
pub fn default_chunk_size(n: usize, threads: usize) -> usize {
    n.div_ceil(threads.max(1) * 4).max(1)
}

/// Splits `0..n` into `chunk_size`-sized ranges (the last may be
/// short), runs `f` on each over a claim-by-atomic-counter worker pool,
/// and returns the per-chunk results in chunk order.
///
/// Chunk boundaries depend only on `n` and `chunk_size`, so the output
/// is identical for every `threads` value (see the crate-level
/// determinism contract).
///
/// # Panics
/// Panics if `chunk_size == 0`, or propagates the first worker panic.
pub fn par_map_chunks<R, F>(n: usize, chunk_size: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    assert!(chunk_size > 0, "par_map_chunks: chunk_size must be >= 1");
    if n == 0 {
        return Vec::new();
    }
    let nchunks = n.div_ceil(chunk_size);
    let chunk_range = |c: usize| (c * chunk_size)..(((c + 1) * chunk_size).min(n));
    let workers = threads.max(1).min(nchunks);

    if workers == 1 {
        // Inline fast path: same chunk boundaries, no thread spawn. The
        // per-step trainer pass relies on this being cheap.
        return (0..nchunks).map(|c| f(chunk_range(c))).collect();
    }

    // One slot per chunk: a whole chunk's result lands under a single
    // uncontended lock (each chunk index is claimed exactly once), in
    // contrast to the old harness design of one global mutex locked
    // once per item.
    let slots: Vec<Mutex<Option<R>>> = (0..nchunks).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let c = next.fetch_add(1, Ordering::Relaxed);
                if c >= nchunks {
                    break;
                }
                let r = f(chunk_range(c));
                *slots[c].lock().expect("slot lock poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("slot lock poisoned")
                .expect("claimed chunk left no result")
        })
        .collect()
}

/// Order-preserving parallel map over a slice: `out[i] = f(&items[i])`.
///
/// Items are processed in chunks (whole chunks are written to
/// per-chunk slots — no per-item locking) and reassembled in input
/// order, so the result is identical to `items.iter().map(f)` for any
/// thread count.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.max(1);
    let chunk = default_chunk_size(items.len(), threads);
    let blocks = par_map_chunks(items.len(), chunk, threads, |range| {
        items[range].iter().map(&f).collect::<Vec<R>>()
    });
    let mut out = Vec::with_capacity(items.len());
    for block in blocks {
        out.extend(block);
    }
    out
}

/// Deterministic parallel reduction: maps each fixed-boundary chunk of
/// `0..n` to a partial with `map`, then folds the partials over a
/// balanced binary tree (adjacent pairs, repeated) with `combine`.
///
/// The tree shape depends only on the chunk count `⌈n / chunk_size⌉`,
/// so for a fixed `chunk_size` the result is bit-identical for every
/// thread count — the property the proximity and gradient reductions
/// need for seeded reproducibility. Returns `None` when `n == 0`.
pub fn par_reduce<A, M, C>(
    n: usize,
    chunk_size: usize,
    threads: usize,
    map: M,
    combine: C,
) -> Option<A>
where
    A: Send,
    M: Fn(Range<usize>) -> A + Sync,
    C: Fn(A, A) -> A,
{
    let mut level: Vec<A> = par_map_chunks(n, chunk_size, threads, map);
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        let mut it = level.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(combine(a, b)),
                None => next.push(a),
            }
        }
        level = next;
    }
    level.into_iter().next()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<i64> = (0..97).collect();
        for threads in [1, 2, 4, 7] {
            let out = par_map(&items, threads, |&x| x * 3 - 1);
            assert_eq!(out, items.iter().map(|&x| x * 3 - 1).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_empty_and_single() {
        let empty: Vec<u8> = Vec::new();
        assert!(par_map(&empty, 4, |&x| x).is_empty());
        assert_eq!(par_map(&[41], 4, |&x: &i32| x + 1), vec![42]);
    }

    #[test]
    fn par_map_chunks_uneven_boundaries() {
        // 10 items in chunks of 4 -> ranges 0..4, 4..8, 8..10.
        let ranges = par_map_chunks(10, 4, 3, |r| r);
        assert_eq!(ranges, vec![0..4, 4..8, 8..10]);
    }

    #[test]
    fn par_map_thread_count_invariant_on_floats() {
        let items: Vec<f64> = (0..1000).map(|i| (i as f64).sin()).collect();
        let one = par_map(&items, 1, |&x| x.exp().ln_1p());
        for threads in [2, 3, 4, 8] {
            let many = par_map(&items, threads, |&x| x.exp().ln_1p());
            assert_eq!(
                one.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                many.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn par_reduce_empty_is_none() {
        assert!(par_reduce(0, 8, 4, |_| 0.0f64, |a, b| a + b).is_none());
    }

    #[test]
    fn par_reduce_sums_match_for_any_thread_count() {
        let xs: Vec<f64> = (0..10_000)
            .map(|i| ((i * 37) % 101) as f64 * 0.013)
            .collect();
        let reduce = |threads: usize| {
            par_reduce(
                xs.len(),
                256,
                threads,
                |r| xs[r].iter().sum::<f64>(),
                |a, b| a + b,
            )
            .unwrap()
        };
        let base = reduce(1);
        for threads in [2, 4, 8] {
            assert_eq!(
                base.to_bits(),
                reduce(threads).to_bits(),
                "threads={threads}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "worker exploded")]
    fn worker_panic_propagates_inline() {
        // threads=1 runs inline, so the payload surfaces verbatim.
        par_map_chunks(100, 10, 1, |r| {
            if r.start >= 50 {
                panic!("worker exploded");
            }
            r.len()
        });
    }

    #[test]
    #[should_panic(expected = "scoped thread panicked")]
    fn worker_panic_propagates_from_pool() {
        // With a real pool the panic resurfaces when the scope joins.
        par_map_chunks(100, 10, 4, |r| {
            if r.start >= 50 {
                panic!("worker exploded");
            }
            r.len()
        });
    }

    #[test]
    #[should_panic(expected = "chunk_size must be >= 1")]
    fn zero_chunk_size_rejected() {
        par_map_chunks(10, 0, 2, |r| r.len());
    }

    #[test]
    fn ten_k_trivial_map_is_not_contention_bound() {
        // Regression guard for the old one-Mutex-per-item slot design:
        // a 10k-item map with a trivial body must complete well inside
        // the stub-criterion per-sample budget (~1 ms), not serialise
        // on a lock. Generous bound for noisy shared CI runners.
        let items: Vec<u64> = (0..10_000).collect();
        let t0 = Instant::now();
        let out = par_map(&items, 4, |&x| x ^ 0x5EED);
        let dt = t0.elapsed();
        assert_eq!(out.len(), 10_000);
        assert_eq!(out[9_999], 9_999 ^ 0x5EED);
        assert!(
            dt.as_millis() < 250,
            "10k trivial par_map took {dt:?} — slot contention regression?"
        );
    }

    #[test]
    fn resolve_threads_explicit_wins_and_clamps() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert_eq!(resolve_threads(Some(0)), 1);
        assert!(resolve_threads(None) >= 1);
    }

    #[test]
    fn default_chunk_size_covers_all_items() {
        for n in [0usize, 1, 5, 97, 1000] {
            for threads in [1usize, 2, 4, 16] {
                let c = default_chunk_size(n, threads);
                assert!(c >= 1);
                assert!(c * n.div_ceil(c.max(1)).max(1) >= n);
            }
        }
    }
}
