//! Degree-family proximities: preferential attachment / degree
//! proximity.
//!
//! The paper's complexity analysis (§V-B) states that "computing node
//! degree proximity takes `O(|V |)` time" — i.e. the measure is a
//! closed form in the endpoint degrees and never materialises a
//! matrix. We define it as the normalised preferential-attachment
//! score
//!
//! ```text
//! p_ij = d_i · d_j / 2|E|
//! ```
//!
//! (Barabási–Albert's attachment kernel, normalised by the total
//! degree mass so weights stay `O(average degree)`; the constant
//! cancels inside Theorem 3's `p_ij / min(P)` ratio, so any positive
//! normalisation yields the same optimal embedding up to shift).
//! `SE-PrivGEmb_Deg` in the experiments is exactly this preference.

use sp_graph::Graph;

/// Degree proximity of an arbitrary pair: `d_i d_j / 2|E|`.
///
/// Returns `0.0` when either endpoint is isolated or the graph has no
/// edges.
pub fn degree_score(g: &Graph, i: u32, j: u32) -> f64 {
    let m2 = 2.0 * g.num_edges() as f64;
    if m2 == 0.0 {
        return 0.0;
    }
    g.degree(i) as f64 * g.degree(j) as f64 / m2
}

/// Edge weights `p_ij` for every edge of `g`, plus the global
/// `min(P) = min{p_ij > 0}` over **all pairs** (not just edges):
/// the product of the two smallest positive degrees, normalised.
///
/// Note for pairs of adjacent nodes the degrees are at least 1, so
/// edge weights are always positive.
pub fn degree_edge_weights(g: &Graph) -> (Vec<f64>, f64) {
    let m2 = 2.0 * g.num_edges() as f64;
    if g.num_edges() == 0 {
        return (Vec::new(), 1.0);
    }
    let weights = g
        .edges()
        .iter()
        .map(|&(u, v)| g.degree(u) as f64 * g.degree(v) as f64 / m2)
        .collect();

    // min over the full matrix support: two smallest positive degrees.
    let mut d1 = usize::MAX; // smallest positive degree
    let mut d2 = usize::MAX; // second smallest positive degree
    for v in 0..g.num_nodes() {
        let d = g.degree(v as u32);
        if d == 0 {
            continue;
        }
        if d < d1 {
            d2 = d1;
            d1 = d;
        } else if d < d2 {
            d2 = d;
        }
    }
    let min_positive = if d2 == usize::MAX {
        // Fewer than two non-isolated nodes can only happen in a graph
        // with no edges, handled above; keep a safe fallback.
        1.0 / m2
    } else {
        (d1 as f64) * (d2 as f64) / m2
    };
    (weights, min_positive)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_score_closed_form() {
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3)]);
        // d0 = 3, leaves have degree 1, 2|E| = 6.
        assert!((degree_score(&g, 0, 1) - 0.5).abs() < 1e-12);
        assert!((degree_score(&g, 1, 2) - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn isolated_node_scores_zero() {
        let g = Graph::from_edges(3, [(0, 1)]);
        assert_eq!(degree_score(&g, 0, 2), 0.0);
    }

    #[test]
    fn empty_graph_scores_zero() {
        let g = Graph::from_edges(2, std::iter::empty());
        assert_eq!(degree_score(&g, 0, 1), 0.0);
        let (w, _) = degree_edge_weights(&g);
        assert!(w.is_empty());
    }

    #[test]
    fn edge_weights_match_score() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (1, 3)]);
        let (w, _) = degree_edge_weights(&g);
        for (e, &(u, v)) in g.edges().iter().enumerate() {
            assert!((w[e] - degree_score(&g, u, v)).abs() < 1e-12);
        }
    }

    #[test]
    fn min_positive_is_two_smallest_degrees() {
        // Star + pendant chain: degrees 3,1,1,2,1 (node 3 bridges).
        let g = Graph::from_edges(5, [(0, 1), (0, 2), (0, 3), (3, 4)]);
        let (_, minp) = degree_edge_weights(&g);
        // Two smallest positive degrees are 1 and 1; 2|E| = 8.
        assert!((minp - 1.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn min_positive_lower_bounds_edge_weights() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5), (1, 4)]);
        let (w, minp) = degree_edge_weights(&g);
        for &x in &w {
            assert!(x >= minp - 1e-12, "edge weight {x} below min(P) {minp}");
        }
    }
}
