//! Neighbourhood-overlap proximities: common neighbours, Adamic–Adar,
//! resource allocation.
//!
//! All three share the same support (pairs of nodes at distance ≤ 2)
//! and the same computation pattern: enumerate *wedges* — for every
//! centre node `w`, every pair of distinct neighbours `(i, j)` of `w`
//! receives a contribution `f(w)`. The work is `Σ_w d_w (d_w - 1) / 2`,
//! which is fine for the sparse/medium graphs these measures are meant
//! for; for hub-heavy graphs prefer the degree or DeepWalk proximities
//! (see the complexity discussion in DESIGN.md).
//!
//! The enumeration is **row-partitioned**: row `i` of the output is
//! `p_i· = Σ_{w ∈ N(i)} weight(w) · 𝟙[j ∈ N(w), j ≠ i]`, accumulated
//! into a per-worker dense scratch row. Every row sums its wedge
//! centres in ascending-neighbour order regardless of how rows are
//! chunked over threads, so the matrix is bit-identical for any thread
//! count.

use sp_graph::{Graph, NodeId};
use sp_linalg::{CsrMatrix, CsrRowBlock};
use sp_parallel::{default_chunk_size, par_map_chunks, resolve_threads};
use std::ops::Range;

/// Per-node wedge-centre weights for a measure: `w[c]` is what centre
/// `c` contributes to each of its neighbour pairs. All weights must be
/// non-negative — a strictly positive partial sum is what lets the
/// scratch row use exact zero as its "untouched" marker.
pub(crate) fn wedge_weights(g: &Graph, weight: impl Fn(NodeId) -> f64) -> Vec<f64> {
    let w: Vec<f64> = (0..g.num_nodes() as NodeId).map(weight).collect();
    debug_assert!(w.iter().all(|&c| c >= 0.0), "wedge weights must be >= 0");
    w
}

/// Wedge enumeration restricted to the output rows in `rows`:
/// `p_ij = Σ_{w ∈ N(i)∩N(j)} weight(w)` for `i ∈ rows`.
///
/// Each output row reads only `g` and `w`, so any partition of
/// `0..n` into ranges concatenates (in row order) to the bit-identical
/// full matrix — the seam both the threaded materialised builder and
/// the out-of-core band builder ([`crate::band`]) go through.
pub(crate) fn wedge_rows(g: &Graph, w: &[f64], rows: Range<usize>) -> CsrRowBlock {
    let n = g.num_nodes();
    let mut block = CsrRowBlock {
        row_nnz: Vec::with_capacity(rows.len()),
        indices: Vec::new(),
        data: Vec::new(),
    };
    let mut acc = vec![0.0f64; n];
    let mut touched: Vec<u32> = Vec::new();
    for i in rows {
        for &c in g.neighbors(i as NodeId) {
            let cw = w[c as usize];
            if cw == 0.0 {
                continue;
            }
            for &j in g.neighbors(c) {
                if j as usize == i {
                    continue;
                }
                if acc[j as usize] == 0.0 {
                    touched.push(j);
                }
                acc[j as usize] += cw;
            }
        }
        touched.sort_unstable();
        block.row_nnz.push(touched.len());
        for &j in &touched {
            block.indices.push(j);
            block.data.push(acc[j as usize]);
            acc[j as usize] = 0.0;
        }
        touched.clear();
    }
    block
}

/// Shared wedge-enumeration core: `p_ij = Σ_{w ∈ N(i)∩N(j)} weight(w)`.
fn wedge_matrix(g: &Graph, weight: impl Fn(NodeId) -> f64, threads: Option<usize>) -> CsrMatrix {
    let n = g.num_nodes();
    let w = wedge_weights(g, weight);
    let threads = resolve_threads(threads);
    let chunk = default_chunk_size(n, threads);
    let blocks = par_map_chunks(n, chunk, threads, |rows| wedge_rows(g, &w, rows));
    CsrMatrix::from_row_blocks(n, n, blocks)
}

/// Common-neighbour counts: `p_ij = |N(i) ∩ N(j)|` for `i ≠ j`.
pub fn common_neighbors_matrix(g: &Graph) -> CsrMatrix {
    common_neighbors_matrix_threads(g, None)
}

/// [`common_neighbors_matrix`] with an explicit worker-thread count.
pub fn common_neighbors_matrix_threads(g: &Graph, threads: Option<usize>) -> CsrMatrix {
    wedge_matrix(g, |_| 1.0, threads)
}

/// Adamic–Adar: `p_ij = Σ_{w ∈ N(i)∩N(j)} 1/ln(d_w)`.
///
/// Centres of degree 1 cannot close a wedge, and `ln(1) = 0` would
/// divide by zero anyway; they are skipped. Degree-2+ centres use
/// `1/ln(d_w)` as defined.
pub fn adamic_adar_matrix(g: &Graph) -> CsrMatrix {
    adamic_adar_matrix_threads(g, None)
}

/// [`adamic_adar_matrix`] with an explicit worker-thread count.
pub fn adamic_adar_matrix_threads(g: &Graph, threads: Option<usize>) -> CsrMatrix {
    wedge_matrix(
        g,
        |w| {
            let d = g.degree(w);
            if d >= 2 {
                1.0 / (d as f64).ln()
            } else {
                0.0
            }
        },
        threads,
    )
}

/// Resource allocation: `p_ij = Σ_{w ∈ N(i)∩N(j)} 1/d_w`.
pub fn resource_allocation_matrix(g: &Graph) -> CsrMatrix {
    resource_allocation_matrix_threads(g, None)
}

/// [`resource_allocation_matrix`] with an explicit worker-thread count.
pub fn resource_allocation_matrix_threads(g: &Graph, threads: Option<usize>) -> CsrMatrix {
    wedge_matrix(
        g,
        |w| {
            let d = g.degree(w);
            if d >= 1 {
                1.0 / d as f64
            } else {
                0.0
            }
        },
        threads,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_graph::algo;

    /// 4-cycle: 0-1-2-3-0. Opposite corners share exactly 2 neighbours.
    fn cycle4() -> Graph {
        Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
    }

    #[test]
    fn common_neighbors_on_cycle() {
        let g = cycle4();
        let m = common_neighbors_matrix(&g);
        assert_eq!(m.get(0, 2), 2.0); // via 1 and 3
        assert_eq!(m.get(1, 3), 2.0); // via 0 and 2
        assert_eq!(m.get(0, 1), 0.0); // adjacent but no triangle
        assert_eq!(m.get(0, 0), 0.0); // no diagonal
        assert!(m.is_symmetric());
    }

    #[test]
    fn common_neighbors_agrees_with_merge_count() {
        let g = Graph::from_edges(
            7,
            [
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (2, 6),
            ],
        );
        let m = common_neighbors_matrix(&g);
        for i in 0..7u32 {
            for j in 0..7u32 {
                if i == j {
                    continue;
                }
                let expect = algo::common_neighbor_count(&g, i, j) as f64;
                assert_eq!(m.get(i as usize, j as usize), expect, "pair ({i},{j})");
            }
        }
    }

    #[test]
    fn adamic_adar_weights_by_inverse_log_degree() {
        // Star with centre 0 of degree 3: every leaf pair gets 1/ln 3.
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3)]);
        let m = adamic_adar_matrix(&g);
        let w = 1.0 / 3.0f64.ln();
        assert!((m.get(1, 2) - w).abs() < 1e-12);
        assert!((m.get(1, 3) - w).abs() < 1e-12);
        assert_eq!(m.get(0, 1), 0.0);
    }

    #[test]
    fn adamic_adar_skips_degree_one_and_would_be_infinite_centres() {
        // Path 0-1-2: centre 1 has degree 2 -> weight 1/ln 2, finite.
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
        let m = adamic_adar_matrix(&g);
        assert!((m.get(0, 2) - 1.0 / 2.0f64.ln()).abs() < 1e-12);
        assert!(m.iter().all(|(_, _, v)| v.is_finite()));
    }

    #[test]
    fn resource_allocation_on_star() {
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3)]);
        let m = resource_allocation_matrix(&g);
        assert!((m.get(1, 2) - 1.0 / 3.0).abs() < 1e-12);
        assert!(m.is_symmetric());
    }

    #[test]
    fn ra_dominated_by_cn() {
        // RA weight 1/d_w <= 1 = CN weight per wedge, so RA <= CN entrywise.
        let g = Graph::from_edges(
            6,
            [
                (0, 1),
                (0, 2),
                (1, 2),
                (1, 3),
                (2, 4),
                (3, 4),
                (4, 5),
                (3, 5),
            ],
        );
        let cn = common_neighbors_matrix(&g);
        let ra = resource_allocation_matrix(&g);
        for (i, j, v) in ra.iter() {
            assert!(v <= cn.get(i, j) + 1e-12, "RA > CN at ({i},{j})");
        }
    }

    #[test]
    fn empty_graph_yields_empty_matrix() {
        let g = Graph::from_edges(3, std::iter::empty());
        assert_eq!(common_neighbors_matrix(&g).nnz(), 0);
        assert_eq!(adamic_adar_matrix(&g).nnz(), 0);
        assert_eq!(resource_allocation_matrix(&g).nnz(), 0);
    }
}
