//! Walk-based (high-order) proximities: truncated Katz, personalised
//! PageRank, and the DeepWalk proximity.
//!
//! All three are truncated matrix power series and share one engine,
//! [`power_series`]: given a base matrix `M` and coefficients
//! `c_1..c_L`, compute `Σ_l c_l M^l` sparsely, pruning entries below a
//! drop tolerance after each multiplication to keep fill-in bounded
//! (the classic approximate-SpGEMM trick; the tolerance is part of the
//! public contract and defaults to zero = exact).

use sp_graph::Graph;
use sp_linalg::{CooBuilder, CsrMatrix};
use sp_parallel::{default_chunk_size, par_map_chunks, resolve_threads};

/// Default drop tolerance applied by the walk proximities on graphs
/// above ~100k edges; keeps `Â^t` fill-in bounded on hub-heavy graphs
/// while perturbing entries by at most the tolerance per term.
pub const DEFAULT_DROP_TOL: f64 = 1e-6;

/// Removes entries with `|value| < tol` from a CSR matrix.
fn prune(m: &CsrMatrix, tol: f64) -> CsrMatrix {
    if tol <= 0.0 {
        return m.clone();
    }
    let mut b = CooBuilder::new(m.rows(), m.cols());
    for (i, j, v) in m.iter() {
        if v.abs() >= tol {
            b.push(i, j, v);
        }
    }
    b.build()
}

/// `Σ_{l=1..coeffs.len()} coeffs[l-1] · base^l`, pruning entries below
/// `drop_tol` after each power to bound fill-in. Uses the thread count
/// resolved from `SP_THREADS` / available parallelism; see
/// [`power_series_threads`].
pub fn power_series(base: &CsrMatrix, coeffs: &[f64], drop_tol: f64) -> CsrMatrix {
    power_series_threads(base, coeffs, drop_tol, None)
}

/// [`power_series`] with an explicit worker-thread count (`None`
/// resolves via [`sp_parallel::resolve_threads`]).
///
/// The power iterations are row-partitioned: every thread computes the
/// same Gustavson row products the serial [`CsrMatrix::spgemm`] would
/// (with the prune folded into row production), and the row blocks are
/// reassembled in row order — so the result is **bit-identical for any
/// thread count**, including to the serial path.
pub fn power_series_threads(
    base: &CsrMatrix,
    coeffs: &[f64],
    drop_tol: f64,
    threads: Option<usize>,
) -> CsrMatrix {
    assert!(!coeffs.is_empty(), "power_series needs at least one term");
    assert_eq!(base.rows(), base.cols(), "power_series needs a square base");
    let threads = resolve_threads(threads);
    let mut power = prune(base, drop_tol);
    let mut acc = {
        let mut first = power.clone();
        first.scale(coeffs[0]);
        first
    };
    for &c in &coeffs[1..] {
        power = spgemm_pruned_parallel(&power, base, drop_tol, threads);
        let mut term = power.clone();
        term.scale(c);
        acc = acc.add(&term);
    }
    acc
}

/// Row-partitioned `a * b` with on-the-fly pruning: chunks of output
/// rows fan out over the worker pool and are stitched back in row
/// order. Per-row arithmetic is exactly [`CsrMatrix::spgemm_rows`], so
/// the product matches the serial `prune(a.spgemm(b))` bit-for-bit.
fn spgemm_pruned_parallel(
    a: &CsrMatrix,
    b: &CsrMatrix,
    drop_tol: f64,
    threads: usize,
) -> CsrMatrix {
    let n = a.rows();
    let chunk = default_chunk_size(n, threads);
    let blocks = par_map_chunks(n, chunk, threads, |rows| a.spgemm_rows(b, rows, drop_tol));
    CsrMatrix::from_row_blocks(n, b.cols(), blocks)
}

/// Truncated Katz index: `Σ_{l=1..max_len} β^l (A^l)_ij`.
///
/// The infinite Katz series converges only for `β < 1/λ_max`; the
/// truncation is always finite, and for link-type tasks lengths beyond
/// 3–4 contribute little (Katz 1953; the paper cites it as a
/// high-order heuristic).
pub fn katz_matrix(g: &Graph, beta: f64, max_len: usize) -> CsrMatrix {
    katz_matrix_threads(g, beta, max_len, None)
}

/// [`katz_matrix`] with an explicit worker-thread count.
pub fn katz_matrix_threads(
    g: &Graph,
    beta: f64,
    max_len: usize,
    threads: Option<usize>,
) -> CsrMatrix {
    assert!(beta > 0.0 && beta < 1.0, "katz: beta must be in (0,1)");
    assert!(max_len >= 1, "katz: max_len must be >= 1");
    let a = crate::adjacency(g);
    let coeffs: Vec<f64> = (1..=max_len).map(|l| beta.powi(l as i32)).collect();
    let tol = auto_tol(g);
    power_series_threads(&a, &coeffs, tol, threads)
}

/// Truncated personalised-PageRank matrix:
/// `Π ≈ α Σ_{t=1..iters} (1-α)^t Â^t` (the `t = 0` identity term is
/// omitted — self-proximity carries no structural information and
/// would put `α` on every diagonal).
pub fn ppr_matrix(g: &Graph, alpha: f64, iters: usize) -> CsrMatrix {
    ppr_matrix_threads(g, alpha, iters, None)
}

/// [`ppr_matrix`] with an explicit worker-thread count.
pub fn ppr_matrix_threads(
    g: &Graph,
    alpha: f64,
    iters: usize,
    threads: Option<usize>,
) -> CsrMatrix {
    assert!(alpha > 0.0 && alpha < 1.0, "ppr: alpha must be in (0,1)");
    assert!(iters >= 1, "ppr: iters must be >= 1");
    let a = crate::normalized_adjacency(g);
    let coeffs: Vec<f64> = (1..=iters)
        .map(|t| alpha * (1.0 - alpha).powi(t as i32))
        .collect();
    let tol = auto_tol(g);
    power_series_threads(&a, &coeffs, tol, threads)
}

/// DeepWalk proximity of Yang et al. \[22\]:
/// `M = (1/T) Σ_{t=1..T} Â^t` with row-normalised `Â`.
///
/// `M_ij` is the probability that a `T`-step uniform random walk from
/// `v_i`, with the step count drawn uniformly from `1..=T`, sits at
/// `v_j` — exactly the co-occurrence statistic DeepWalk's skip-gram
/// window samples. The paper's `SE-PrivGEmb_DW` uses this with `T = 2`.
pub fn deepwalk_matrix(g: &Graph, window: usize) -> CsrMatrix {
    deepwalk_matrix_threads(g, window, None)
}

/// [`deepwalk_matrix`] with an explicit worker-thread count.
pub fn deepwalk_matrix_threads(g: &Graph, window: usize, threads: Option<usize>) -> CsrMatrix {
    assert!(window >= 1, "deepwalk: window must be >= 1");
    let a = crate::normalized_adjacency(g);
    let coeffs: Vec<f64> = (1..=window).map(|_| 1.0 / window as f64).collect();
    let tol = auto_tol(g);
    power_series_threads(&a, &coeffs, tol, threads)
}

/// Exact on small graphs, pruned on large ones.
fn auto_tol(g: &Graph) -> f64 {
    if g.num_edges() > 100_000 {
        DEFAULT_DROP_TOL
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_graph::Graph;

    fn path3() -> Graph {
        Graph::from_edges(3, [(0, 1), (1, 2)])
    }

    #[test]
    fn power_series_single_term_is_scaled_base() {
        let g = path3();
        let a = crate::adjacency(&g);
        let s = power_series(&a, &[2.0], 0.0);
        for (i, j, v) in s.iter() {
            assert_eq!(v, 2.0 * a.get(i, j));
        }
    }

    #[test]
    fn power_series_two_terms_matches_manual() {
        let g = path3();
        let a = crate::adjacency(&g);
        let s = power_series(&a, &[1.0, 1.0], 0.0);
        let a2 = a.spgemm(&a);
        for i in 0..3 {
            for j in 0..3 {
                assert!((s.get(i, j) - (a.get(i, j) + a2.get(i, j))).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn prune_drops_small_entries() {
        let g = path3();
        let a = crate::normalized_adjacency(&g);
        // With a huge tolerance everything is dropped.
        let s = power_series(&a, &[1.0], 10.0);
        assert_eq!(s.nnz(), 0);
    }

    #[test]
    fn katz_on_path_counts_walks() {
        let g = path3();
        let beta = 0.5;
        let m = katz_matrix(&g, beta, 2);
        // (0,1): one walk of length 1, zero of length 2 -> 0.5.
        assert!((m.get(0, 1) - 0.5).abs() < 1e-12);
        // (0,2): one walk of length 2 -> 0.25.
        assert!((m.get(0, 2) - 0.25).abs() < 1e-12);
        // (0,0): one closed walk of length 2 (0-1-0) -> 0.25.
        assert!((m.get(0, 0) - 0.25).abs() < 1e-12);
        assert!(m.is_symmetric());
    }

    #[test]
    fn deepwalk_window1_is_transition_matrix_halved_no_wait() {
        // T = 1: M = Â exactly.
        let g = path3();
        let m = deepwalk_matrix(&g, 1);
        let a = crate::normalized_adjacency(&g);
        for i in 0..3 {
            for j in 0..3 {
                assert!((m.get(i, j) - a.get(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn deepwalk_window2_known_values() {
        // Path 0-1-2. Â: 0->1 w.p. 1; 1->0,2 w.p. 0.5; 2->1 w.p. 1.
        // Â²: 0->{0,2} w.p. 0.5; 1->1 w.p. 1; 2->{0,2} w.p. 0.5.
        // M = (Â + Â²)/2.
        let g = path3();
        let m = deepwalk_matrix(&g, 2);
        assert!((m.get(0, 1) - 0.5).abs() < 1e-12);
        assert!((m.get(0, 2) - 0.25).abs() < 1e-12);
        assert!((m.get(0, 0) - 0.25).abs() < 1e-12);
        assert!((m.get(1, 0) - 0.25).abs() < 1e-12);
        assert!((m.get(1, 1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn deepwalk_rows_remain_stochastic() {
        // Each Â^t is row-stochastic, so the average is too.
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (1, 3)]);
        let m = deepwalk_matrix(&g, 3);
        for i in 0..5 {
            assert!((m.row_sum(i) - 1.0).abs() < 1e-10, "row {i}");
        }
    }

    #[test]
    fn ppr_mass_is_bounded_by_one() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]);
        let m = ppr_matrix(&g, 0.15, 8);
        for i in 0..5 {
            let s = m.row_sum(i);
            assert!(s > 0.0 && s < 1.0, "row {i} mass {s}");
        }
    }

    #[test]
    fn ppr_decays_with_distance_on_path() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let m = ppr_matrix(&g, 0.15, 6);
        assert!(m.get(0, 1) > m.get(0, 2));
        assert!(m.get(0, 2) > m.get(0, 3));
    }

    #[test]
    #[should_panic(expected = "beta must be in (0,1)")]
    fn katz_rejects_bad_beta() {
        katz_matrix(&path3(), 1.5, 2);
    }

    #[test]
    #[should_panic(expected = "window must be >= 1")]
    fn deepwalk_rejects_zero_window() {
        deepwalk_matrix(&path3(), 0);
    }
}
