//! Row-band proximity builders: the out-of-core counterpart of the
//! materialised matrices in [`crate::neighborhood`].
//!
//! A *band* is a contiguous range of output rows, produced as a
//! [`CsrRowBlock`] of bounded height and dropped as soon as the
//! consumer (the streaming alias builder, the edge-weight cursor in
//! [`EdgeProximity::compute_blocked`](crate::EdgeProximity::compute_blocked))
//! has drained it. Peak memory is then `O(band nnz)` instead of
//! `O(matrix nnz)`.
//!
//! Determinism: every output row of the wedge enumeration depends only
//! on the graph and the per-centre weights (see
//! [`crate::neighborhood`]), so concatenating bands of *any* height —
//! including height 1 — reproduces
//! [`proximity_matrix`](crate::proximity_matrix) bit-for-bit, for any
//! thread count. `tests/blocked_pipeline.rs` pins this contract.

use crate::neighborhood::{wedge_rows, wedge_weights};
use crate::ProximityKind;
use sp_graph::Graph;
use sp_linalg::CsrRowBlock;
use sp_parallel::{default_chunk_size, par_map_chunks, resolve_threads};
use std::ops::Range;

/// Streaming builder for the wedge-family proximities (CN, AA, RA):
/// precomputes the per-centre weights once, then serves arbitrary
/// row-bands on demand.
pub struct WedgeBander<'g> {
    g: &'g Graph,
    w: Vec<f64>,
}

impl<'g> WedgeBander<'g> {
    /// A bander for `kind` on `g`, or `None` when `kind` is not a
    /// wedge-family measure (walk measures need whole-matrix power
    /// iterations; the degree family has a closed form and no matrix).
    pub fn new(g: &'g Graph, kind: ProximityKind) -> Option<Self> {
        let w = match kind {
            ProximityKind::CommonNeighbors => wedge_weights(g, |_| 1.0),
            ProximityKind::AdamicAdar => wedge_weights(g, |c| {
                let d = g.degree(c);
                if d >= 2 {
                    1.0 / (d as f64).ln()
                } else {
                    0.0
                }
            }),
            ProximityKind::ResourceAllocation => wedge_weights(g, |c| {
                let d = g.degree(c);
                if d >= 1 {
                    1.0 / d as f64
                } else {
                    0.0
                }
            }),
            _ => return None,
        };
        Some(Self { g, w })
    }

    /// Number of matrix rows (`|V|`).
    pub fn rows(&self) -> usize {
        self.g.num_nodes()
    }

    /// Builds the band of output rows `rows`, parallelised over
    /// `threads` workers within the band. Bit-identical to the same
    /// rows of the materialised matrix for any band height and thread
    /// count.
    pub fn band(&self, rows: Range<usize>, threads: Option<usize>) -> CsrRowBlock {
        assert!(rows.end <= self.rows(), "band out of bounds");
        let len = rows.len();
        let threads = resolve_threads(threads);
        let chunk = default_chunk_size(len, threads);
        let start = rows.start;
        let chunks = par_map_chunks(len, chunk, threads, |r| {
            wedge_rows(self.g, &self.w, start + r.start..start + r.end)
        });
        let mut band = CsrRowBlock::default();
        for c in chunks {
            band.append(c);
        }
        band
    }
}

/// Common-neighbour counts for the rows in `rows` only.
pub fn cn_band(g: &Graph, rows: Range<usize>, threads: Option<usize>) -> CsrRowBlock {
    WedgeBander::new(g, ProximityKind::CommonNeighbors)
        .unwrap()
        .band(rows, threads)
}

/// Adamic–Adar scores for the rows in `rows` only.
pub fn aa_band(g: &Graph, rows: Range<usize>, threads: Option<usize>) -> CsrRowBlock {
    WedgeBander::new(g, ProximityKind::AdamicAdar)
        .unwrap()
        .band(rows, threads)
}

/// Resource-allocation scores for the rows in `rows` only.
pub fn ra_band(g: &Graph, rows: Range<usize>, threads: Option<usize>) -> CsrRowBlock {
    WedgeBander::new(g, ProximityKind::ResourceAllocation)
        .unwrap()
        .band(rows, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{proximity_matrix_threads, ProximityKind};
    use sp_linalg::CsrMatrix;

    fn bridged_triangles() -> Graph {
        Graph::from_edges(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
    }

    fn reassemble(g: &Graph, kind: ProximityKind, band_rows: usize) -> CsrMatrix {
        let bander = WedgeBander::new(g, kind).unwrap();
        let n = bander.rows();
        let mut blocks = Vec::new();
        let mut start = 0;
        while start < n {
            let end = (start + band_rows).min(n);
            blocks.push(bander.band(start..end, Some(2)));
            start = end;
        }
        CsrMatrix::from_row_blocks(n, n, blocks)
    }

    #[test]
    fn bands_of_any_height_match_materialised_bitwise() {
        let g = bridged_triangles();
        for kind in [
            ProximityKind::CommonNeighbors,
            ProximityKind::AdamicAdar,
            ProximityKind::ResourceAllocation,
        ] {
            let full = proximity_matrix_threads(&g, kind, Some(1));
            for band_rows in [1, 2, 4, g.num_nodes()] {
                let blocked = reassemble(&g, kind, band_rows);
                assert_eq!(blocked, full, "{kind:?} band_rows={band_rows}");
            }
        }
    }

    #[test]
    fn free_functions_match_bander() {
        let g = bridged_triangles();
        let direct = cn_band(&g, 1..4, Some(1));
        let via = WedgeBander::new(&g, ProximityKind::CommonNeighbors)
            .unwrap()
            .band(1..4, Some(1));
        assert_eq!(direct.row_nnz, via.row_nnz);
        assert_eq!(direct.indices, via.indices);
        assert_eq!(direct.data, via.data);
        assert_eq!(aa_band(&g, 0..6, None).rows(), 6);
        assert_eq!(ra_band(&g, 0..0, None).rows(), 0);
    }

    #[test]
    fn non_wedge_kinds_are_rejected() {
        let g = bridged_triangles();
        assert!(WedgeBander::new(&g, ProximityKind::Degree).is_none());
        assert!(WedgeBander::new(&g, ProximityKind::deepwalk_default()).is_none());
    }

    #[test]
    #[should_panic(expected = "band out of bounds")]
    fn band_rejects_out_of_range() {
        let g = bridged_triangles();
        cn_band(&g, 0..7, Some(1));
    }
}
