//! # sp-proximity
//!
//! Node-proximity measures (Definition 4 of the paper): the
//! "structure preference" knob of SE-PrivGEmb. A proximity `p_ij`
//! quantifies a structural relationship between nodes; the trainer
//! weights each observed edge's skip-gram loss by `p_ij` (Eq. 5) and
//! Theorem 3 shows the learned inner products converge to
//! `log(p_ij / (k·min(P)))`.
//!
//! Implemented measures, following the paper's taxonomy (§II-D):
//!
//! - **first-order** (one-hop): common neighbours, preferential
//!   attachment;
//! - **second-order** (two-hop): Adamic–Adar, resource allocation;
//! - **high-order** (whole graph): truncated Katz, personalised
//!   PageRank, and the DeepWalk proximity of Yang et al. \[22\]
//!   (`M = (1/T) Σ_{t=1..T} Â^t` with row-normalised `Â`), which is
//!   the `SE-PrivGEmb_DW` configuration of the experiments;
//! - **degree** proximity (`SE-PrivGEmb_Deg`): `p_ij = d_i d_j / 2|E|`,
//!   computable in `O(|V|)` as the paper's complexity analysis states.
//!
//! Two consumption modes:
//! - [`EdgeProximity`]: weights for the training edges only, plus the
//!   `min(P)` constant — all the trainer needs;
//! - [`proximity_matrix`]: the full sparse matrix, for the Theorem 3
//!   machinery and for analysis on small/medium graphs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod band;
pub mod degree;
pub mod neighborhood;
pub mod walk;

use sp_graph::Graph;
use sp_linalg::{CooBuilder, CsrMatrix};
use sp_mem::MemTracker;

/// Which proximity measure to use (the "structure preference").
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ProximityKind {
    /// `|N(i) ∩ N(j)|` — first-order.
    CommonNeighbors,
    /// `d_i · d_j / 2|E|` over all pairs — first-order. Dense in
    /// principle; only edge weights / `min(P)` are materialised.
    PreferentialAttachment,
    /// `Σ_{w ∈ N(i)∩N(j)} 1/ln d_w` — second-order.
    AdamicAdar,
    /// `Σ_{w ∈ N(i)∩N(j)} 1/d_w` — second-order.
    ResourceAllocation,
    /// Truncated Katz index `Σ_{l=1..max_len} β^l (A^l)_ij` — high-order.
    Katz {
        /// Attenuation factor (must satisfy `β < 1/λ_max` for the full
        /// series; the truncation keeps any `β ∈ (0,1)` finite).
        beta: f64,
        /// Path-length truncation (≥ 1).
        max_len: usize,
    },
    /// Personalised-PageRank matrix `α Σ_t (1-α)^t Â^t`, truncated.
    Ppr {
        /// Restart probability `α ∈ (0,1)`.
        alpha: f64,
        /// Number of power-iteration terms (≥ 1).
        iters: usize,
    },
    /// DeepWalk proximity `M = (1/T) Σ_{t=1..T} Â^t` (Yang et al.).
    DeepWalk {
        /// Walk window `T ≥ 1` (the paper's experiments use `T = 2`).
        window: usize,
    },
    /// Degree proximity `d_i d_j / 2|E|`, the `O(|V|)` preference.
    Degree,
}

impl ProximityKind {
    /// The paper's `SE-PrivGEmb_DW` preference (window-2 DeepWalk).
    pub fn deepwalk_default() -> Self {
        ProximityKind::DeepWalk { window: 2 }
    }

    /// Short label used in experiment outputs (`DW`, `Deg`, ...).
    pub fn label(&self) -> &'static str {
        match self {
            ProximityKind::CommonNeighbors => "CN",
            ProximityKind::PreferentialAttachment => "PA",
            ProximityKind::AdamicAdar => "AA",
            ProximityKind::ResourceAllocation => "RA",
            ProximityKind::Katz { .. } => "Katz",
            ProximityKind::Ppr { .. } => "PPR",
            ProximityKind::DeepWalk { .. } => "DW",
            ProximityKind::Degree => "Deg",
        }
    }
}

/// Per-edge proximity weights for a graph, plus the constants the
/// trainer and Theorem 3 need.
///
/// Weights are **mean-normalised**: the raw measure is rescaled so
/// the average edge weight is 1. Scaling a proximity matrix by a
/// positive constant is theory-neutral — Theorem 3's optimum
/// `log(p_ij / (k·min(P)))` is invariant because `min(P)` scales by
/// the same constant — but it decouples the *effective learning rate*
/// from the measure's arbitrary magnitude (DeepWalk-proximity entries
/// are `O(1/degree)`, degree-proximity entries `O(avg degree)`), which
/// is what lets the paper use a single `η = 0.1` for both variants.
#[derive(Clone, Debug)]
pub struct EdgeProximity {
    /// `weights[e]` is the normalised `p_ij` for `g.edges()[e]`.
    pub weights: Vec<f64>,
    /// `min(P) = min{p_ij > 0}` over the *full* proximity matrix
    /// support (not just the edges), normalised by the same factor —
    /// Theorem 3's constant.
    pub min_positive: f64,
    /// Which measure produced this.
    pub kind: ProximityKind,
}

impl EdgeProximity {
    /// Computes mean-normalised edge weights for `kind` on `g`.
    ///
    /// For matrix-backed measures this builds the sparse matrix once
    /// and reads off the edge entries; for the degree family it is a
    /// closed form in the degrees.
    pub fn compute(g: &Graph, kind: ProximityKind) -> Self {
        Self::compute_threads(g, kind, None)
    }

    /// [`EdgeProximity::compute`] with an explicit worker-thread count
    /// for the matrix-backed measures (`None` resolves via
    /// [`sp_parallel::resolve_threads`]). The result is bit-identical
    /// for any thread count.
    pub fn compute_threads(g: &Graph, kind: ProximityKind, threads: Option<usize>) -> Self {
        let (raw_weights, raw_min): (Vec<f64>, f64) = match kind {
            ProximityKind::PreferentialAttachment | ProximityKind::Degree => {
                degree::degree_edge_weights(g)
            }
            _ => {
                let m = proximity_matrix_threads(g, kind, threads);
                let min_positive = m.min_positive().unwrap_or(1.0);
                let weights = g
                    .edges()
                    .iter()
                    .map(|&(u, v)| m.get(u as usize, v as usize))
                    .collect();
                (weights, min_positive)
            }
        };
        Self::from_raw(raw_weights, raw_min, kind)
    }

    /// Out-of-core variant of [`EdgeProximity::compute_threads`] for
    /// the wedge-family measures (CN, AA, RA): streams the proximity
    /// matrix through [`band::WedgeBander`] in row-bands of at most
    /// `band_rows` rows, reading off the edge weights and the running
    /// `min(P)` from each band before dropping it. Peak transient
    /// memory is one band instead of the whole matrix.
    ///
    /// Bit-identical to the materialised path for any `band_rows >= 1`
    /// and any thread count: wedge rows are chunk-independent, the
    /// per-edge weights are read in the same canonical edge order, and
    /// `min` over positives is an exact order-free fold.
    ///
    /// Measures outside the wedge family keep their existing path
    /// (closed form for the degree family, materialised matrix for the
    /// walk family, whose power iterations need the whole operator).
    ///
    /// With a `tracker`, every transient band is byte-accounted for
    /// its residency window — how the scale bench and the RSS-budget
    /// tests observe the blocked pipeline's peak.
    pub fn compute_blocked(
        g: &Graph,
        kind: ProximityKind,
        band_rows: usize,
        threads: Option<usize>,
        tracker: Option<&MemTracker>,
    ) -> Self {
        assert!(band_rows >= 1, "band_rows must be >= 1");
        let Some(bander) = band::WedgeBander::new(g, kind) else {
            return Self::compute_threads(g, kind, threads);
        };
        let n = bander.rows();
        let edges = g.edges();
        let mut weights = vec![0.0f64; edges.len()];
        let mut raw_min: Option<f64> = None;
        let mut cursor = 0usize; // next edge whose row is not yet seen
        let mut start = 0usize;
        while start < n {
            let end = (start + band_rows).min(n);
            let block = bander.band(start..end, threads);
            let bytes = block.heap_bytes();
            if let Some(t) = tracker {
                t.add(bytes);
            }
            // Exact running min over the band's positive entries:
            // f64::min over positives is associative and exact, so the
            // band-order fold equals CsrMatrix::min_positive bitwise.
            for &v in &block.data {
                if v > 0.0 {
                    raw_min = Some(raw_min.map_or(v, |m| m.min(v)));
                }
            }
            // Row offsets within the band, then advance the edge
            // cursor through every canonical edge (u, v) with u in
            // this band — edges are sorted by u, so this is one pass.
            let mut offs = Vec::with_capacity(block.rows() + 1);
            offs.push(0usize);
            for &c in &block.row_nnz {
                offs.push(offs.last().unwrap() + c);
            }
            while cursor < edges.len() && (edges[cursor].0 as usize) < end {
                let (u, v) = edges[cursor];
                let r = u as usize - start;
                let row_idx = &block.indices[offs[r]..offs[r + 1]];
                if let Ok(pos) = row_idx.binary_search(&v) {
                    weights[cursor] = block.data[offs[r] + pos];
                }
                cursor += 1;
            }
            if let Some(t) = tracker {
                t.release(bytes);
            }
            start = end;
        }
        Self::from_raw(weights, raw_min.unwrap_or(1.0), kind)
    }

    /// Mean-normalises raw weights (exposed for tests and custom
    /// proximity measures).
    pub fn from_raw(raw_weights: Vec<f64>, raw_min: f64, kind: ProximityKind) -> Self {
        let mean = if raw_weights.is_empty() {
            1.0
        } else {
            raw_weights.iter().sum::<f64>() / raw_weights.len() as f64
        };
        let scale = if mean > 0.0 { 1.0 / mean } else { 1.0 };
        let weights = raw_weights.iter().map(|&w| w * scale).collect();
        Self {
            weights,
            min_positive: raw_min * scale,
            kind,
        }
    }

    /// Number of weighted edges.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True when the graph had no edges.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Largest edge weight (`0.0` if empty) — used to bound the
    /// effective gradient scale in the sensitivity discussion.
    pub fn max_weight(&self) -> f64 {
        self.weights.iter().copied().fold(0.0, f64::max)
    }
}

/// Builds the full sparse proximity matrix for `kind`.
///
/// # Panics
/// Panics for [`ProximityKind::PreferentialAttachment`] and
/// [`ProximityKind::Degree`], whose matrices are dense by construction
/// — use [`EdgeProximity::compute`] or [`degree::degree_score`].
pub fn proximity_matrix(g: &Graph, kind: ProximityKind) -> CsrMatrix {
    proximity_matrix_threads(g, kind, None)
}

/// [`proximity_matrix`] with an explicit worker-thread count (`None`
/// resolves via [`sp_parallel::resolve_threads`]).
///
/// All sparse builders are row-partitioned with a fixed reduction
/// order, so the matrix is **bit-identical for any thread count** —
/// the determinism contract the DP pipeline and the paper tables rely
/// on (see `tests/parallel_determinism.rs`).
///
/// # Panics
/// Same contract as [`proximity_matrix`].
pub fn proximity_matrix_threads(
    g: &Graph,
    kind: ProximityKind,
    threads: Option<usize>,
) -> CsrMatrix {
    match kind {
        ProximityKind::CommonNeighbors => neighborhood::common_neighbors_matrix_threads(g, threads),
        ProximityKind::AdamicAdar => neighborhood::adamic_adar_matrix_threads(g, threads),
        ProximityKind::ResourceAllocation => {
            neighborhood::resource_allocation_matrix_threads(g, threads)
        }
        ProximityKind::Katz { beta, max_len } => {
            walk::katz_matrix_threads(g, beta, max_len, threads)
        }
        ProximityKind::Ppr { alpha, iters } => walk::ppr_matrix_threads(g, alpha, iters, threads),
        ProximityKind::DeepWalk { window } => walk::deepwalk_matrix_threads(g, window, threads),
        ProximityKind::PreferentialAttachment | ProximityKind::Degree => {
            panic!(
                "{:?} has a dense matrix; use EdgeProximity::compute or degree::degree_score",
                kind
            )
        }
    }
}

/// Binary adjacency matrix of `g` as CSR.
pub fn adjacency(g: &Graph) -> CsrMatrix {
    let n = g.num_nodes();
    let mut b = CooBuilder::new(n, n);
    for &(u, v) in g.edges() {
        b.push(u as usize, v as usize, 1.0);
        b.push(v as usize, u as usize, 1.0);
    }
    b.build()
}

/// Row-normalised adjacency (random-walk transition matrix `Â`).
pub fn normalized_adjacency(g: &Graph) -> CsrMatrix {
    let mut a = adjacency(g);
    a.normalize_rows();
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_graph::Graph;

    fn karate_ish() -> Graph {
        // Small fixed graph: two triangles bridged by an edge.
        //   0-1, 1-2, 0-2   3-4, 4-5, 3-5   2-3
        Graph::from_edges(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
    }

    #[test]
    fn adjacency_is_symmetric_binary() {
        let g = karate_ish();
        let a = adjacency(&g);
        assert!(a.is_symmetric());
        assert_eq!(a.nnz(), 2 * g.num_edges());
        for (_, _, v) in a.iter() {
            assert_eq!(v, 1.0);
        }
    }

    #[test]
    fn normalized_adjacency_is_stochastic() {
        let g = karate_ish();
        let a = normalized_adjacency(&g);
        for i in 0..g.num_nodes() {
            let s = a.row_sum(i);
            assert!((s - 1.0).abs() < 1e-12, "row {i} sums to {s}");
        }
    }

    #[test]
    fn edge_proximity_positive_on_deepwalk() {
        let g = karate_ish();
        let p = EdgeProximity::compute(&g, ProximityKind::deepwalk_default());
        assert_eq!(p.len(), g.num_edges());
        // Every edge (i,j) has Â_ij ≥ 1/d_i > 0, so DW weights are positive.
        assert!(p.weights.iter().all(|&w| w > 0.0));
        assert!(p.min_positive > 0.0);
        assert!(p.max_weight() >= p.min_positive);
    }

    #[test]
    fn edge_proximity_degree_matches_closed_form_up_to_normalisation() {
        let g = karate_ish();
        let p = EdgeProximity::compute(&g, ProximityKind::Degree);
        // Mean weight is 1 after normalisation.
        let mean: f64 = p.weights.iter().sum::<f64>() / p.weights.len() as f64;
        assert!((mean - 1.0).abs() < 1e-12);
        // Ratios match the closed form exactly.
        let raw: Vec<f64> = g
            .edges()
            .iter()
            .map(|&(u, v)| g.degree(u) as f64 * g.degree(v) as f64)
            .collect();
        for e in 1..raw.len() {
            assert!(
                (p.weights[e] / p.weights[0] - raw[e] / raw[0]).abs() < 1e-12,
                "edge {e}: ratio mismatch"
            );
        }
    }

    #[test]
    fn normalisation_preserves_theorem3_optimum() {
        // x* = log(p / (k min P)) must be identical before and after
        // mean-normalisation.
        let g = karate_ish();
        let p = EdgeProximity::compute(&g, ProximityKind::deepwalk_default());
        let m = proximity_matrix(&g, ProximityKind::deepwalk_default());
        let raw_min = m.min_positive().unwrap();
        let k = 5.0;
        for (e, &(u, v)) in g.edges().iter().enumerate() {
            let raw = m.get(u as usize, v as usize);
            let x_raw = (raw / (k * raw_min)).ln();
            let x_norm = (p.weights[e] / (k * p.min_positive)).ln();
            assert!(
                (x_raw - x_norm).abs() < 1e-12,
                "edge {e}: {x_raw} vs {x_norm}"
            );
        }
    }

    #[test]
    fn compute_blocked_is_bit_identical_to_materialised() {
        let g = karate_ish();
        for kind in [
            ProximityKind::CommonNeighbors,
            ProximityKind::AdamicAdar,
            ProximityKind::ResourceAllocation,
        ] {
            let full = EdgeProximity::compute_threads(&g, kind, Some(1));
            for band_rows in [1, 2, 3, g.num_nodes()] {
                for threads in [1, 4] {
                    let blocked =
                        EdgeProximity::compute_blocked(&g, kind, band_rows, Some(threads), None);
                    assert_eq!(
                        blocked
                            .weights
                            .iter()
                            .map(|w| w.to_bits())
                            .collect::<Vec<_>>(),
                        full.weights.iter().map(|w| w.to_bits()).collect::<Vec<_>>(),
                        "{kind:?} band_rows={band_rows} threads={threads}"
                    );
                    assert_eq!(blocked.min_positive.to_bits(), full.min_positive.to_bits());
                }
            }
        }
    }

    #[test]
    fn compute_blocked_falls_back_for_non_wedge_kinds() {
        let g = karate_ish();
        for kind in [ProximityKind::Degree, ProximityKind::deepwalk_default()] {
            let full = EdgeProximity::compute_threads(&g, kind, Some(1));
            let blocked = EdgeProximity::compute_blocked(&g, kind, 2, Some(1), None);
            assert_eq!(
                blocked
                    .weights
                    .iter()
                    .map(|w| w.to_bits())
                    .collect::<Vec<_>>(),
                full.weights.iter().map(|w| w.to_bits()).collect::<Vec<_>>(),
            );
        }
    }

    #[test]
    fn compute_blocked_accounts_transient_bands() {
        let g = karate_ish();
        let t = MemTracker::new();
        let p = EdgeProximity::compute_blocked(
            &g,
            ProximityKind::CommonNeighbors,
            2,
            Some(1),
            Some(&t),
        );
        assert_eq!(p.len(), g.num_edges());
        // Bands are released as they are drained: nothing left resident,
        // but the peak saw at least one band.
        assert_eq!(t.current(), 0);
        assert!(t.peak() > 0);
        // A one-row band's peak is bounded by the whole matrix's heap.
        let full = proximity_matrix(&g, ProximityKind::CommonNeighbors);
        assert!(t.peak() <= full.heap_bytes());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(ProximityKind::deepwalk_default().label(), "DW");
        assert_eq!(ProximityKind::Degree.label(), "Deg");
        assert_eq!(ProximityKind::CommonNeighbors.label(), "CN");
    }

    #[test]
    #[should_panic(expected = "dense matrix")]
    fn dense_kinds_refuse_matrix_form() {
        proximity_matrix(&karate_ish(), ProximityKind::Degree);
    }

    #[test]
    fn min_positive_is_global_not_edge_restricted() {
        // Path 0-1-2: DW window 2 gives positive proximity to the
        // non-edge (0,2); min(P) must consider it. Compare in ratio
        // form since EdgeProximity is mean-normalised.
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
        let m = proximity_matrix(&g, ProximityKind::deepwalk_default());
        let p = EdgeProximity::compute(&g, ProximityKind::deepwalk_default());
        assert!(m.get(0, 2) > 0.0);
        // min over the full support is <= the smallest *edge* weight.
        let min_edge = p.weights.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(p.min_positive <= min_edge + 1e-12);
        // And the normalised min reflects the raw global min ratio.
        let raw_min = m.min_positive().unwrap();
        let raw_edge0 = m.get(g.edges()[0].0 as usize, g.edges()[0].1 as usize);
        assert!((p.min_positive / p.weights[0] - raw_min / raw_edge0).abs() < 1e-12);
    }
}
