//! Golden-vector tests for the pure-Rust gzip inflater.
//!
//! The three embedded members were produced by zlib (via CPython,
//! `mtime=0` for byte-stability) and cover the three DEFLATE block
//! types: stored (`gzip.compress(..., compresslevel=0)`), fixed
//! Huffman (`zlib.compressobj(..., strategy=Z_FIXED)`), and dynamic
//! Huffman (`compresslevel=9` on a large enough input). Each test
//! asserts the exact decompressed bytes; the trailer tests corrupt
//! CRC32/ISIZE and expect the typed failures.

use sp_datasets::inflate::{crc32, gunzip, InflateError};
use sp_datasets::stream::GzipStreamReader;
use std::io::Read;

/// `gzip.compress(STORED_PLAIN, compresslevel=0, mtime=0)`.
const STORED_GZ: [u8; 53] = [
    0x1F, 0x8B, 0x08, 0x00, 0x00, 0x00, 0x00, 0x00, 0x04, 0x03, 0x01, 0x1E, 0x00, 0xE1, 0xFF, 0x23,
    0x20, 0x6E, 0x6F, 0x64, 0x65, 0x73, 0x20, 0x34, 0x20, 0x65, 0x64, 0x67, 0x65, 0x73, 0x20, 0x33,
    0x0A, 0x30, 0x20, 0x31, 0x0A, 0x31, 0x20, 0x32, 0x0A, 0x32, 0x20, 0x33, 0x0A, 0x12, 0xEA, 0x82,
    0xEA, 0x1E, 0x00, 0x00, 0x00,
];
const STORED_PLAIN: &[u8] = b"# nodes 4 edges 3\n0 1\n1 2\n2 3\n";

/// `zlib.compressobj(6, DEFLATED, wbits=31, 8, Z_FIXED)` over
/// `FIXED_PLAIN`.
const FIXED_GZ: [u8; 66] = [
    0x1F, 0x8B, 0x08, 0x00, 0x00, 0x00, 0x00, 0x00, 0x04, 0x03, 0x2B, 0xC9, 0x48, 0x55, 0x28, 0x2C,
    0xCD, 0x4C, 0xCE, 0x56, 0x48, 0x2A, 0xCA, 0x2F, 0xCF, 0x53, 0x48, 0xCB, 0xAF, 0x50, 0xC8, 0x2A,
    0xCD, 0x2D, 0x28, 0x56, 0xC8, 0x2F, 0x4B, 0x2D, 0x52, 0x28, 0x01, 0x4A, 0xE7, 0x24, 0x56, 0x55,
    0x2A, 0xA4, 0xE4, 0xA7, 0x73, 0x95, 0x90, 0xA0, 0x16, 0x00, 0x64, 0x07, 0xF7, 0x66, 0x58, 0x00,
    0x00, 0x00,
];

/// `gzip.compress(dyn_plain(), compresslevel=9, mtime=0)` — 695 input
/// bytes, enough repetition for zlib to emit a dynamic-Huffman block.
const DYN_GZ: [u8; 177] = [
    0x1F, 0x8B, 0x08, 0x00, 0x00, 0x00, 0x00, 0x00, 0x02, 0x03, 0xED, 0x8F, 0xBB, 0x4D, 0x44, 0x41,
    0x14, 0x43, 0x63, 0xBB, 0x8A, 0x97, 0x6C, 0x3E, 0xB6, 0xEF, 0xFC, 0xFA, 0x61, 0x05, 0x04, 0x90,
    0x00, 0x42, 0x74, 0xCF, 0x6C, 0x19, 0x48, 0x48, 0x4E, 0x8F, 0x8F, 0x7D, 0xBB, 0x3E, 0x7E, 0xDE,
    0xAE, 0xAF, 0xF7, 0xEF, 0xFB, 0xEB, 0xF3, 0xCB, 0xE7, 0xFD, 0x89, 0xB7, 0x4B, 0x6E, 0x57, 0x3D,
    0x42, 0xA1, 0xB8, 0xA0, 0x49, 0x75, 0xA4, 0xD1, 0x46, 0xE8, 0x0D, 0x0D, 0x66, 0xC0, 0x9B, 0x81,
    0xA9, 0x06, 0x75, 0x6A, 0xC2, 0x8B, 0x2E, 0x88, 0x11, 0x54, 0xCC, 0x82, 0x27, 0x3B, 0x1E, 0x2D,
    0x86, 0x42, 0x6D, 0x78, 0xD0, 0x03, 0x39, 0x5C, 0x20, 0xB3, 0x1A, 0xDC, 0x39, 0x91, 0x45, 0x1D,
    0x50, 0xB4, 0xE0, 0xA2, 0x17, 0x32, 0x99, 0x0E, 0x1D, 0x23, 0x1C, 0x6E, 0x64, 0x50, 0x03, 0x9B,
    0x3E, 0x42, 0x33, 0x0D, 0xE9, 0xCC, 0xC4, 0x62, 0xC1, 0xA2, 0x84, 0x14, 0xB5, 0x30, 0xE9, 0x0E,
    0x37, 0xE6, 0xEC, 0x0C, 0xB3, 0x31, 0x38, 0xA0, 0x4D, 0x05, 0x31, 0xDD, 0xD0, 0xE9, 0x09, 0x2D,
    0xA6, 0x10, 0xFD, 0xBF, 0xFB, 0xC3, 0xEF, 0x7E, 0x01, 0x43, 0x25, 0xCF, 0x6E, 0xB7, 0x02, 0x00,
    0x00,
];

fn fixed_plain() -> Vec<u8> {
    b"the quick brown fox jumps over the lazy dog\n".repeat(2)
}

fn dyn_plain() -> Vec<u8> {
    let mut lines = vec!["% sym unweighted".to_string(), "% 120 40 40".to_string()];
    for i in 0..120usize {
        let u = (i * 7) % 40 + 1;
        let v = (i * 13 + 3) % 40 + 1;
        lines.push(format!("{u}\t{v}"));
    }
    (lines.join("\n") + "\n").into_bytes()
}

/// BTYPE of the first block of a gzip member with an empty extra-field
/// set (payload starts at byte 10).
fn first_btype(gz: &[u8]) -> u8 {
    (gz[10] >> 1) & 0b11
}

#[test]
fn stored_block_member() {
    assert_eq!(first_btype(&STORED_GZ), 0, "fixture must be a stored block");
    assert_eq!(gunzip(&STORED_GZ).unwrap(), STORED_PLAIN);
}

#[test]
fn fixed_huffman_member() {
    assert_eq!(first_btype(&FIXED_GZ), 1, "fixture must be a fixed block");
    assert_eq!(gunzip(&FIXED_GZ).unwrap(), fixed_plain());
}

#[test]
fn dynamic_huffman_member() {
    assert_eq!(first_btype(&DYN_GZ), 2, "fixture must be a dynamic block");
    let out = gunzip(&DYN_GZ).unwrap();
    assert_eq!(out, dyn_plain());
    // Independently pin the payload checksum (computed by zlib).
    assert_eq!(crc32(&out), 0x6ECF_2543);
}

#[test]
fn crc_trailer_validated_on_every_block_type() {
    for gz in [&STORED_GZ[..], &FIXED_GZ[..], &DYN_GZ[..]] {
        let mut bad = gz.to_vec();
        let n = bad.len();
        bad[n - 6] ^= 0x40; // a CRC32 byte
        assert!(
            matches!(gunzip(&bad), Err(InflateError::CrcMismatch { .. })),
            "CRC corruption must be caught"
        );
    }
}

#[test]
fn isize_trailer_validated_on_every_block_type() {
    for gz in [&STORED_GZ[..], &FIXED_GZ[..], &DYN_GZ[..]] {
        let mut bad = gz.to_vec();
        let n = bad.len();
        bad[n - 2] ^= 0x01; // an ISIZE byte
        assert!(
            matches!(gunzip(&bad), Err(InflateError::IsizeMismatch { .. })),
            "ISIZE corruption must be caught"
        );
    }
}

#[test]
fn every_truncation_point_is_a_typed_eof() {
    for gz in [&STORED_GZ[..], &FIXED_GZ[..], &DYN_GZ[..]] {
        for cut in 0..gz.len() {
            match gunzip(&gz[..cut]) {
                Err(InflateError::UnexpectedEof) => {}
                // Cutting inside the final trailer can also surface as
                // a short-trailer read; both are typed, neither panics.
                Err(other) => panic!("cut {cut}: unexpected error {other}"),
                Ok(_) => panic!("cut {cut}: truncated stream accepted"),
            }
        }
    }
}

#[test]
fn concatenated_members_of_different_block_types() {
    let mut all = STORED_GZ.to_vec();
    all.extend_from_slice(&FIXED_GZ);
    all.extend_from_slice(&DYN_GZ);
    let mut expected = STORED_PLAIN.to_vec();
    expected.extend_from_slice(&fixed_plain());
    expected.extend_from_slice(&dyn_plain());
    assert_eq!(gunzip(&all).unwrap(), expected);
}

/// The incremental reader must produce byte-identical output to the
/// one-shot decoder on every zlib-produced block type, at any read
/// granularity.
#[test]
fn streaming_reader_matches_oneshot_on_all_block_types() {
    for gz in [&STORED_GZ[..], &FIXED_GZ[..], &DYN_GZ[..]] {
        let expected = gunzip(gz).unwrap();
        for chunk in [1usize, 7, 4096] {
            let mut r = GzipStreamReader::new(gz);
            let mut got = Vec::new();
            let mut buf = vec![0u8; chunk];
            loop {
                let n = r.read(&mut buf).unwrap();
                if n == 0 {
                    break;
                }
                got.extend_from_slice(&buf[..n]);
            }
            assert_eq!(got, expected, "chunk {chunk}");
        }
    }
}

/// Streaming trailer validation catches the same corruptions the
/// one-shot decoder does, as typed `InvalidData` errors.
#[test]
fn streaming_reader_validates_trailers() {
    for gz in [&STORED_GZ[..], &FIXED_GZ[..], &DYN_GZ[..]] {
        let mut bad = gz.to_vec();
        let n = bad.len();
        bad[n - 6] ^= 0x40; // a CRC32 byte
        let mut r = GzipStreamReader::new(&bad[..]);
        let mut sink = Vec::new();
        let err = r.read_to_end(&mut sink).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(matches!(
            err.get_ref().and_then(|e| e.downcast_ref::<InflateError>()),
            Some(InflateError::CrcMismatch { .. })
        ));
    }
}

#[test]
fn crc32_reference_values() {
    // The standard CRC-32/ISO-HDLC check value and a few anchors.
    assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    assert_eq!(
        crc32(STORED_PLAIN),
        u32::from_le_bytes([0x12, 0xEA, 0x82, 0xEA])
    );
}
