//! Property tests: random edge lists survive the writer → loader and
//! gzip-writer → inflater round trips, up to the node relabeling
//! witnessed by the returned id map.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use sp_datasets::inflate::{gunzip, gzip_store};
use sp_datasets::loaders::load_edge_list_bytes;
use sp_graph::io::{write_edge_list, ReadOptions};
use sp_graph::Graph;

/// Checks `loaded` is the image of `g` under the loader's relabeling.
fn assert_isomorphic(g: &Graph, bytes: &[u8], opts: ReadOptions) -> Result<(), TestCaseError> {
    let doc = load_edge_list_bytes(bytes, opts).expect("round-trip parse");
    prop_assert_eq!(doc.graph.num_edges(), g.num_edges());
    for &(u, v) in g.edges() {
        let a = doc.id_map[&(u as u64)];
        let b = doc.id_map[&(v as u64)];
        prop_assert!(
            doc.graph.has_edge(a, b),
            "edge ({u},{v}) lost across the round trip"
        );
    }
    Ok(())
}

proptest! {
    #[test]
    fn stored_gzip_writer_inverts_through_inflater(
        data in proptest::collection::vec((0u16..256).prop_map(|b| b as u8), 0..2048),
    ) {
        let z = gzip_store(&data);
        prop_assert_eq!(gunzip(&z).expect("own framing must inflate"), data);
    }

    #[test]
    fn edge_list_round_trips_through_writer_and_loader(
        raw in proptest::collection::vec((0u32..24, 0u32..24), 0..80),
    ) {
        let g = Graph::from_edges(24, raw.iter().copied());
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        // Count enforcement must accept our own writer's banner even
        // when the graph has isolated nodes the edge list cannot show.
        let opts = ReadOptions { enforce_declared_counts: true, ..ReadOptions::default() };
        assert_isomorphic(&g, &buf, opts)?;
    }

    #[test]
    fn konect_gzip_round_trips_through_inflater_and_loader(
        raw in proptest::collection::vec((0u32..24, 0u32..24), 1..80),
    ) {
        let g = Graph::from_edges(24, raw.iter().copied());
        prop_assume!(g.num_edges() > 0);
        // KONECT shape: 1-based ids, tab-separated, numeric meta line
        // declaring exactly the raw record and distinct-node counts —
        // so strict count enforcement must also hold.
        let distinct: std::collections::HashSet<u32> =
            g.edges().iter().flat_map(|&(u, v)| [u, v]).collect();
        let mut text = format!("% sym unweighted\n% {} {} {}\n", g.num_edges(), distinct.len(), distinct.len());
        for &(u, v) in g.edges() {
            text.push_str(&format!("{}\t{}\n", u + 1, v + 1));
        }
        let z = gzip_store(text.as_bytes());
        let opts = ReadOptions { enforce_declared_counts: true, ..ReadOptions::default() };
        let doc = load_edge_list_bytes(&z, opts).expect("gzipped KONECT parse");
        prop_assert_eq!(doc.graph.num_edges(), g.num_edges());
        prop_assert_eq!(doc.graph.num_nodes(), distinct.len());
        for &(u, v) in g.edges() {
            let a = doc.id_map[&(u as u64 + 1)];
            let b = doc.id_map[&(v as u64 + 1)];
            prop_assert!(doc.graph.has_edge(a, b));
        }
    }

    #[test]
    fn gzipped_and_plain_loads_agree(
        raw in proptest::collection::vec((0u32..16, 0u32..16), 0..40),
    ) {
        let g = Graph::from_edges(16, raw.iter().copied());
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let plain = load_edge_list_bytes(&buf, ReadOptions::default()).unwrap();
        let zipped = load_edge_list_bytes(&gzip_store(&buf), ReadOptions::default()).unwrap();
        prop_assert_eq!(plain.graph.edges(), zipped.graph.edges());
        prop_assert_eq!(plain.data_lines, zipped.data_lines);
    }
}
