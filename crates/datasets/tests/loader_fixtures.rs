//! End-to-end loads of the checked-in dataset fixtures (< 5 KB each):
//! a plain SNAP edge list and a gzipped KONECT `out.*` file with a
//! `meta.*` sidecar, both driven through [`PaperDataset::load`].

use sp_datasets::loaders::{load_edge_list_path, LoadError};
use sp_datasets::PaperDataset;
use sp_graph::io::ReadOptions;
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/data")
        .join(name)
}

#[test]
fn snap_fixture_loads_end_to_end() {
    let g = PaperDataset::Arxiv
        .load(&fixture("snap_arxiv_sample.txt"))
        .unwrap();
    assert_eq!(g.num_nodes(), 11);
    assert_eq!(g.num_edges(), 18);
    // Tab-separated sparse ids were compacted; spot-check one edge by
    // re-reading with the id map exposed.
    let doc =
        load_edge_list_path(&fixture("snap_arxiv_sample.txt"), ReadOptions::default()).unwrap();
    assert_eq!(doc.declared_nodes, Some(11));
    assert_eq!(doc.declared_edges, Some(18));
    assert!(doc.graph.has_edge(doc.id_map[&3466], doc.id_map[&937]));
}

#[test]
fn gzipped_konect_fixture_loads_end_to_end() {
    let g = PaperDataset::Power
        .load(&fixture("out.power-sample.gz"))
        .unwrap();
    // 15 raw records: a 10-ring, 3 chords, 1 self-loop, 1 duplicate —
    // the simple graph keeps 13 edges on 10 nodes.
    assert_eq!(g.num_nodes(), 10);
    assert_eq!(g.num_edges(), 13);
}

#[test]
fn konect_meta_sidecar_supplies_declared_counts() {
    let doc = load_edge_list_path(&fixture("out.power-sample.gz"), ReadOptions::default()).unwrap();
    // The out.* file itself declares nothing (`% sym unweighted` only);
    // size/volume come from meta.power-sample.
    assert_eq!(doc.declared_nodes, Some(10));
    assert_eq!(doc.declared_edges, Some(15));
    assert_eq!(doc.data_lines, 15);
    assert_eq!(doc.self_loops, 1);
    assert_eq!(doc.duplicate_edges, 1);
}

#[test]
fn integrity_mismatch_is_a_size_mismatch_error() {
    // Same SNAP fixture, banner tampered to declare the wrong edge
    // count: PaperDataset::load must refuse with SizeMismatch.
    let text = std::fs::read_to_string(fixture("snap_arxiv_sample.txt")).unwrap();
    let tampered = text.replace("Edges: 18", "Edges: 17");
    assert_ne!(text, tampered, "fixture banner changed; update this test");
    let dir = std::env::temp_dir().join(format!("sp_fixture_bad_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad_counts.txt");
    std::fs::write(&path, tampered).unwrap();
    let err = PaperDataset::Arxiv.load(&path).unwrap_err();
    std::fs::remove_dir_all(&dir).ok();
    match err {
        LoadError::SizeMismatch {
            what,
            declared,
            actual,
        } => {
            assert_eq!(what, "edges");
            assert_eq!(declared, 17);
            assert_eq!(actual, 18);
        }
        other => panic!("expected SizeMismatch, got {other:?}"),
    }
}

#[test]
fn resolve_uses_fixture_dir_as_data_dir() {
    // tests/data doubles as a --data-dir: no Power candidate filename
    // matches (the fixture is deliberately named out.power-sample, not
    // out.opsahl-powergrid), so resolve falls back to the stand-in...
    let data_dir = fixture("");
    let fallback = PaperDataset::Power.resolve(Some(&data_dir), 0.1, 5);
    assert_eq!(
        fallback.edges(),
        PaperDataset::Power.generate(0.1, 5).edges()
    );
    // ...but a properly named copy is picked up and wins.
    let dir = std::env::temp_dir().join(format!("sp_fixture_resolve_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::copy(
        fixture("out.power-sample.gz"),
        dir.join("out.opsahl-powergrid.gz"),
    )
    .unwrap();
    let real = PaperDataset::Power.resolve(Some(&dir), 0.1, 5);
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(real.num_nodes(), 10);
    assert_eq!(real.num_edges(), 13);
}

/// CI generates a KONECT-style fixture with the *system* gzip at build
/// time and points `SP_LOADER_FIXTURE` at it, so the loader suite
/// exercises a real zlib-compressed stream without network access.
/// Locally the test is a no-op unless the variable is set.
#[test]
fn external_gzip_fixture_if_provided() {
    let Some(path) = std::env::var_os("SP_LOADER_FIXTURE") else {
        eprintln!("SP_LOADER_FIXTURE unset; skipping external fixture check");
        return;
    };
    let opts = ReadOptions {
        enforce_declared_counts: true,
        ..ReadOptions::default()
    };
    let doc = load_edge_list_path(Path::new(&path), opts).expect("external fixture must load");
    assert!(doc.graph.num_edges() > 0, "external fixture has no edges");
}
