//! Random-graph generators.
//!
//! Every generator takes an explicit RNG and produces a simple
//! undirected [`Graph`]. Where the paper's datasets have a published
//! edge count, [`adjust_to_edge_count`] steers any generated graph to
//! the exact target by adding uniform non-edges or removing uniform
//! edges — a small perturbation that preserves the family's degree
//! shape while making `γ = B/|E|` in the privacy accounting match the
//! paper's setting exactly.

use rand::seq::SliceRandom;
use rand::Rng;
use sp_graph::{Graph, GraphBuilder, NodeId};

/// Erdős–Rényi `G(n, m)`: exactly `m` distinct uniform edges.
///
/// # Panics
/// Panics if `m` exceeds `n(n-1)/2`.
pub fn erdos_renyi<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Graph {
    let max = n * n.saturating_sub(1) / 2;
    assert!(m <= max, "G({n}, {m}): too many edges (max {max})");
    let mut set = std::collections::HashSet::with_capacity(m * 2);
    let mut b = GraphBuilder::new(n);
    while set.len() < m {
        let u = rng.gen_range(0..n as NodeId);
        let v = rng.gen_range(0..n as NodeId);
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if set.insert(key) {
            b.add_edge(key.0, key.1);
        }
    }
    b.build()
}

/// Barabási–Albert preferential attachment: start from an `m`-clique,
/// each new node attaches to `m` distinct existing nodes chosen with
/// probability proportional to degree (the classic repeated-nodes
/// implementation).
///
/// # Panics
/// Panics if `m == 0` or `n <= m`.
pub fn barabasi_albert<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Graph {
    assert!(m >= 1, "BA: m must be >= 1");
    assert!(n > m, "BA: need n > m");
    let mut b = GraphBuilder::new(n);
    // Seed clique on nodes 0..=m.
    let mut repeated: Vec<NodeId> = Vec::new();
    for u in 0..=m {
        for v in (u + 1)..=m {
            b.add_edge(u as NodeId, v as NodeId);
            repeated.push(u as NodeId);
            repeated.push(v as NodeId);
        }
    }
    let mut targets: Vec<NodeId> = Vec::with_capacity(m);
    for new in (m + 1)..n {
        targets.clear();
        while targets.len() < m {
            let t = repeated[rng.gen_range(0..repeated.len())];
            if !targets.contains(&t) {
                targets.push(t);
            }
        }
        for &t in &targets {
            b.add_edge(new as NodeId, t);
            repeated.push(new as NodeId);
            repeated.push(t);
        }
    }
    b.build()
}

/// Holme–Kim "power-law cluster" model: BA attachment where, after
/// each preferential step, with probability `p_triad` the next link
/// closes a triangle with a neighbour of the previous target. Produces
/// heavy-tailed degrees *and* clustering — the collaboration-network
/// shape (Arxiv).
pub fn holme_kim<R: Rng + ?Sized>(n: usize, m: usize, p_triad: f64, rng: &mut R) -> Graph {
    assert!(m >= 1 && n > m, "HK: need n > m >= 1");
    assert!((0.0..=1.0).contains(&p_triad), "HK: p_triad in [0,1]");
    let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    let mut repeated: Vec<NodeId> = Vec::new();
    let add = |adj: &mut Vec<Vec<NodeId>>, repeated: &mut Vec<NodeId>, u: NodeId, v: NodeId| {
        adj[u as usize].push(v);
        adj[v as usize].push(u);
        repeated.push(u);
        repeated.push(v);
    };
    for u in 0..=m {
        for v in (u + 1)..=m {
            add(&mut adj, &mut repeated, u as NodeId, v as NodeId);
        }
    }
    for new in (m + 1)..n {
        let mut last_target: Option<NodeId> = None;
        let mut added = 0usize;
        while added < m {
            // Triad-formation step when possible.
            let mut linked = false;
            if let (Some(lt), true) = (last_target, rng.gen::<f64>() < p_triad) {
                let nb = &adj[lt as usize];
                if !nb.is_empty() {
                    let cand = nb[rng.gen_range(0..nb.len())];
                    if cand != new as NodeId && !adj[new].contains(&cand) {
                        add(&mut adj, &mut repeated, new as NodeId, cand);
                        last_target = Some(cand);
                        added += 1;
                        linked = true;
                    }
                }
            }
            if !linked {
                // Preferential-attachment step.
                let t = repeated[rng.gen_range(0..repeated.len())];
                if t != new as NodeId && !adj[new].contains(&t) {
                    add(&mut adj, &mut repeated, new as NodeId, t);
                    last_target = Some(t);
                    added += 1;
                }
            }
        }
    }
    let mut b = GraphBuilder::new(n);
    for (u, nb) in adj.iter().enumerate() {
        for &v in nb {
            if (u as NodeId) < v {
                b.add_edge(u as NodeId, v);
            }
        }
    }
    b.build()
}

/// Watts–Strogatz small world: ring lattice with `k` neighbours per
/// side, each edge rewired with probability `p`.
///
/// # Panics
/// Panics unless `1 <= k` and `2k + 1 <= n`.
pub fn watts_strogatz<R: Rng + ?Sized>(n: usize, k: usize, p: f64, rng: &mut R) -> Graph {
    assert!(k >= 1 && 2 * k < n, "WS: need 2k+1 <= n");
    assert!((0.0..=1.0).contains(&p), "WS: p in [0,1]");
    let mut b = GraphBuilder::new(n);
    let mut existing = std::collections::HashSet::new();
    for u in 0..n {
        for off in 1..=k {
            let v = (u + off) % n;
            let (a, c) = (u.min(v) as NodeId, u.max(v) as NodeId);
            if rng.gen::<f64>() < p {
                // Rewire: keep u, pick a random non-duplicate endpoint.
                for _ in 0..32 {
                    let w = rng.gen_range(0..n as NodeId);
                    let key = (w.min(u as NodeId), w.max(u as NodeId));
                    if w as usize != u && !existing.contains(&key) {
                        existing.insert(key);
                        b.add_edge(key.0, key.1);
                        break;
                    }
                }
            } else if existing.insert((a, c)) {
                b.add_edge(a, c);
            }
        }
    }
    b.build()
}

/// Random recursive tree plus uniform shortcut edges: a connected,
/// sparse, high-diameter graph — the power-grid shape.
pub fn tree_plus_shortcuts<R: Rng + ?Sized>(n: usize, total_edges: usize, rng: &mut R) -> Graph {
    assert!(n >= 2, "need at least two nodes");
    assert!(
        total_edges >= n - 1,
        "need at least n-1 edges for a connected tree"
    );
    let mut b = GraphBuilder::new(n);
    let mut set = std::collections::HashSet::new();
    for v in 1..n as NodeId {
        let parent = rng.gen_range(0..v);
        b.add_edge(parent, v);
        set.insert((parent.min(v), parent.max(v)));
    }
    while set.len() < total_edges {
        let u = rng.gen_range(0..n as NodeId);
        let v = rng.gen_range(0..n as NodeId);
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if set.insert(key) {
            b.add_edge(key.0, key.1);
        }
    }
    b.build()
}

/// Adds uniform non-edges or removes uniform edges until `g` has
/// exactly `target` edges. Removal protects connectivity only
/// statistically (uniform choice); the stand-ins remove ≤ a few
/// percent of edges so fragmentation is negligible.
pub fn adjust_to_edge_count<R: Rng + ?Sized>(g: &Graph, target: usize, rng: &mut R) -> Graph {
    let n = g.num_nodes();
    let max = n * n.saturating_sub(1) / 2;
    assert!(target <= max, "target {target} exceeds max edges {max}");
    let current = g.num_edges();
    if current == target {
        return g.clone();
    }
    if current < target {
        let mut set: std::collections::HashSet<(NodeId, NodeId)> =
            g.edges().iter().copied().collect();
        let mut b = GraphBuilder::new(n);
        for &(u, v) in g.edges() {
            b.add_edge(u, v);
        }
        while set.len() < target {
            let u = rng.gen_range(0..n as NodeId);
            let v = rng.gen_range(0..n as NodeId);
            if u == v {
                continue;
            }
            let key = (u.min(v), u.max(v));
            if set.insert(key) {
                b.add_edge(key.0, key.1);
            }
        }
        b.build()
    } else {
        let mut edges: Vec<(NodeId, NodeId)> = g.edges().to_vec();
        edges.shuffle(rng);
        edges.truncate(target);
        Graph::from_edges(n, edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sp_graph::algo;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn er_has_exact_edges() {
        let g = erdos_renyi(100, 250, &mut rng(1));
        assert_eq!(g.num_nodes(), 100);
        assert_eq!(g.num_edges(), 250);
    }

    #[test]
    fn er_is_deterministic() {
        let a = erdos_renyi(50, 100, &mut rng(2));
        let b = erdos_renyi(50, 100, &mut rng(2));
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn ba_degree_tail_is_heavy() {
        let g = barabasi_albert(2000, 4, &mut rng(3));
        // Edge count: C(m+1,2) + (n-m-1)*m.
        assert_eq!(g.num_edges(), 10 + (2000 - 5) * 4);
        // Hub check: max degree far above the mean for BA.
        let avg = g.avg_degree();
        assert!(
            g.max_degree() as f64 > 5.0 * avg,
            "max {} vs avg {avg}",
            g.max_degree()
        );
        assert!(algo::is_connected(&g));
    }

    #[test]
    fn hk_clusters_more_than_ba() {
        let ba = barabasi_albert(800, 3, &mut rng(4));
        let hk = holme_kim(800, 3, 0.8, &mut rng(4));
        let c_ba = algo::global_clustering_coefficient(&ba);
        let c_hk = algo::global_clustering_coefficient(&hk);
        assert!(
            c_hk > 2.0 * c_ba,
            "HK clustering {c_hk} should far exceed BA {c_ba}"
        );
    }

    #[test]
    fn ws_ring_structure_without_rewiring() {
        let g = watts_strogatz(20, 2, 0.0, &mut rng(5));
        assert_eq!(g.num_edges(), 40);
        for v in 0..20u32 {
            assert_eq!(g.degree(v), 4, "pure ring is 2k-regular");
        }
    }

    #[test]
    fn ws_rewiring_breaks_regularity() {
        let g = watts_strogatz(200, 3, 0.3, &mut rng(6));
        let degs = g.degrees();
        assert!(degs.iter().any(|&d| d != 6), "rewiring should vary degrees");
    }

    #[test]
    fn tree_plus_shortcuts_is_connected_with_exact_edges() {
        let g = tree_plus_shortcuts(500, 660, &mut rng(7));
        assert_eq!(g.num_edges(), 660);
        assert!(algo::is_connected(&g));
    }

    #[test]
    fn pure_tree_when_target_is_minimum() {
        let g = tree_plus_shortcuts(100, 99, &mut rng(8));
        assert_eq!(g.num_edges(), 99);
        assert!(algo::is_connected(&g));
        assert_eq!(algo::triangle_count(&g), 0);
    }

    #[test]
    fn adjust_up_and_down() {
        let g = erdos_renyi(60, 100, &mut rng(9));
        let up = adjust_to_edge_count(&g, 140, &mut rng(10));
        assert_eq!(up.num_edges(), 140);
        // All original edges survive an upward adjustment.
        for &(u, v) in g.edges() {
            assert!(up.has_edge(u, v));
        }
        let down = adjust_to_edge_count(&g, 70, &mut rng(11));
        assert_eq!(down.num_edges(), 70);
        // Downward adjustment only removes.
        for &(u, v) in down.edges() {
            assert!(g.has_edge(u, v));
        }
        let same = adjust_to_edge_count(&g, 100, &mut rng(12));
        assert_eq!(same.edges(), g.edges());
    }

    #[test]
    #[should_panic(expected = "too many edges")]
    fn er_rejects_impossible_density() {
        erdos_renyi(4, 10, &mut rng(13));
    }

    #[test]
    #[should_panic(expected = "n-1 edges")]
    fn tree_rejects_too_few_edges() {
        tree_plus_shortcuts(10, 5, &mut rng(14));
    }
}
