//! Real-dataset ingestion: SNAP and KONECT edge lists, gzip-transparent.
//!
//! SNAP distributes graphs as `#`-commented edge lists (often with a
//! `# Nodes: N Edges: M` banner); KONECT ships `out.<code>` files with
//! `%`-comment meta lines (`% <edges> <nodes> <nodes>`) and an optional
//! `meta.<code>` key-value sidecar. Both may be gzipped. This module
//! reads all of those shapes through one pipeline:
//!
//! 1. read the file; if it starts with the gzip magic (or however it
//!    is named), decompress with the pure-Rust [`crate::inflate`]
//!    decoder — CRC32/ISIZE validated;
//! 2. require UTF-8 (typed error, not a panic);
//! 3. parse with the header-aware reader in [`sp_graph::io`]
//!    (separator- and line-ending-tolerant, 0-/1-based ids compacted);
//! 4. merge counts from a KONECT `meta.*` sidecar when the edge file
//!    itself declared none;
//! 5. optionally enforce declared counts ([`LoadError::SizeMismatch`]).
//!
//! Node-label sidecars (BlogCatalog `group-edges.csv`, PPI label
//! files) load through [`load_node_labels`], returning original-id →
//! label-set maps.

use crate::inflate::{self, InflateError};
use sp_graph::io::{read_edge_list_doc, EdgeListDoc, IoError, ReadOptions};
use std::borrow::Cow;
use std::collections::HashMap;
use std::fmt;
use std::io::Cursor;
use std::path::{Path, PathBuf};

/// Typed failure of any dataset-loading step. Loaders never panic on
/// malformed input.
#[derive(Debug)]
pub enum LoadError {
    /// Filesystem failure (missing file, permissions, …).
    Io(std::io::Error),
    /// The `.gz` wrapper or DEFLATE stream is malformed or truncated.
    Gzip(InflateError),
    /// The (decompressed) file is not UTF-8 text.
    NonUtf8 {
        /// Bytes of valid UTF-8 before the offending byte.
        valid_up_to: usize,
    },
    /// A data line that is not an edge record.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// A self-loop, under strict options.
    SelfLoop {
        /// 1-based line number.
        line: usize,
    },
    /// A repeated edge (either orientation), under strict options.
    DuplicateEdge {
        /// 1-based line number.
        line: usize,
    },
    /// A declared node/edge count that contradicts the data.
    SizeMismatch {
        /// `"nodes"` or `"edges"`.
        what: &'static str,
        /// Count declared by the file or its meta sidecar.
        declared: u64,
        /// Count found in the data.
        actual: u64,
    },
    /// More distinct node ids than the `u32` id space.
    TooManyNodes {
        /// Number of distinct ids seen.
        nodes: u64,
    },
    /// No candidate file for the dataset exists under the data dir.
    NotFound {
        /// Dataset display name.
        dataset: &'static str,
        /// The directory that was searched.
        dir: PathBuf,
    },
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "i/o error: {e}"),
            LoadError::Gzip(e) => write!(f, "gzip error: {e}"),
            LoadError::NonUtf8 { valid_up_to } => {
                write!(f, "not utf-8 text (first invalid byte at {valid_up_to})")
            }
            LoadError::Parse { line, content } => {
                write!(f, "parse error at line {line}: {content:?}")
            }
            LoadError::SelfLoop { line } => write!(f, "self-loop at line {line}"),
            LoadError::DuplicateEdge { line } => write!(f, "duplicate edge at line {line}"),
            LoadError::SizeMismatch {
                what,
                declared,
                actual,
            } => write!(
                f,
                "integrity check failed: {declared} {what} declared, {actual} found"
            ),
            LoadError::TooManyNodes { nodes } => {
                write!(f, "{nodes} distinct node ids exceed the u32 id space")
            }
            LoadError::NotFound { dataset, dir } => {
                write!(f, "no {dataset} edge list found under {}", dir.display())
            }
        }
    }
}

impl std::error::Error for LoadError {}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}

impl From<InflateError> for LoadError {
    fn from(e: InflateError) -> Self {
        LoadError::Gzip(e)
    }
}

impl From<IoError> for LoadError {
    fn from(e: IoError) -> Self {
        match e {
            IoError::Io(e) => LoadError::Io(e),
            IoError::Parse { line, content } => LoadError::Parse { line, content },
            IoError::SelfLoop { line } => LoadError::SelfLoop { line },
            IoError::DuplicateEdge { line } => LoadError::DuplicateEdge { line },
            IoError::SizeMismatch {
                what,
                declared,
                actual,
            } => LoadError::SizeMismatch {
                what,
                declared,
                actual,
            },
            IoError::TooManyNodes { nodes } => LoadError::TooManyNodes { nodes },
        }
    }
}

/// Decompresses `bytes` when they carry the gzip magic; otherwise
/// returns them unchanged (borrowed — a DBLP-scale plain-text file is
/// not copied a second time). Detection is by content, not file name,
/// so a miscompressed `.txt` or an uncompressed `.gz` both do the
/// right thing.
pub fn decode_maybe_gzip(bytes: &[u8]) -> Result<Cow<'_, [u8]>, LoadError> {
    if inflate::is_gzip(bytes) {
        Ok(Cow::Owned(inflate::gunzip(bytes)?))
    } else {
        Ok(Cow::Borrowed(bytes))
    }
}

fn utf8(bytes: &[u8]) -> Result<&str, LoadError> {
    std::str::from_utf8(bytes).map_err(|e| LoadError::NonUtf8 {
        valid_up_to: e.valid_up_to(),
    })
}

/// Parses an edge list from in-memory bytes (gzipped or plain),
/// honouring `opts`.
pub fn load_edge_list_bytes(bytes: &[u8], opts: ReadOptions) -> Result<EdgeListDoc, LoadError> {
    let plain = decode_maybe_gzip(bytes)?;
    let text = utf8(&plain)?;
    Ok(read_edge_list_doc(Cursor::new(text.as_bytes()), opts)?)
}

/// KONECT sidecar for `out.<code>[.gz]`: the sibling `meta.<code>`.
fn konect_meta_sidecar(path: &Path) -> Option<PathBuf> {
    let name = path.file_name()?.to_str()?;
    let stem = name.strip_suffix(".gz").unwrap_or(name);
    let code = stem.strip_prefix("out.")?;
    let meta = path.with_file_name(format!("meta.{code}"));
    meta.is_file().then_some(meta)
}

/// Parses a KONECT `meta.*` key-value sidecar for size declarations.
/// KONECT statistics name the node count `size` and the edge count
/// `volume`; plain `nodes`/`edges` keys are accepted too.
fn parse_meta_counts(text: &str) -> (Option<u64>, Option<u64>) {
    let mut nodes = None;
    let mut edges = None;
    for line in text.lines() {
        let Some((key, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim().replace([',', '_'], "");
        let Ok(v) = value.parse::<u64>() else {
            continue;
        };
        match key.trim().to_ascii_lowercase().as_str() {
            "nodes" | "vertices" | "size" => nodes = nodes.or(Some(v)),
            "edges" | "volume" => edges = edges.or(Some(v)),
            _ => {}
        }
    }
    (nodes, edges)
}

/// Recovers the typed loader error from a streamed read failure: the
/// incremental gzip reader wraps [`InflateError`]s in `io::Error`, and
/// line iteration reports invalid UTF-8 as `InvalidData`.
fn retype_stream_error(e: IoError) -> LoadError {
    match e {
        IoError::Io(ioe) => {
            if let Some(ge) = ioe
                .get_ref()
                .and_then(|inner| inner.downcast_ref::<InflateError>())
            {
                return LoadError::Gzip(ge.clone());
            }
            if ioe.kind() == std::io::ErrorKind::InvalidData && ioe.to_string().contains("UTF-8") {
                // Streamed reads cannot report the byte offset of the
                // first invalid sequence; 0 marks "unknown".
                return LoadError::NonUtf8 { valid_up_to: 0 };
            }
            LoadError::Io(ioe)
        }
        other => other.into(),
    }
}

/// Loads an edge-list file from disk (gzip-transparent). For KONECT
/// `out.*` files, a sibling `meta.*` sidecar supplies declared counts
/// when the edge file itself carries none. Declared-count enforcement
/// (when requested) happens after the sidecar merge, so the typed
/// [`LoadError::SizeMismatch`] covers both sources.
///
/// The file is *streamed*: gzip members inflate incrementally through
/// [`crate::stream::GzipStreamReader`] and lines parse as they arrive,
/// so resident memory is the parsed graph plus fixed-size buffers —
/// never the raw or decompressed file.
pub fn load_edge_list_path(path: &Path, opts: ReadOptions) -> Result<EdgeListDoc, LoadError> {
    let reader = crate::stream::open_edge_stream(path)?;
    let parse_opts = ReadOptions {
        enforce_declared_counts: false,
        ..opts
    };
    let mut doc = read_edge_list_doc(reader, parse_opts).map_err(retype_stream_error)?;
    if doc.declared_nodes.is_none() || doc.declared_edges.is_none() {
        if let Some(meta) = konect_meta_sidecar(path) {
            let meta_bytes = std::fs::read(&meta)?;
            let plain = decode_maybe_gzip(&meta_bytes)?;
            let (n, m) = parse_meta_counts(utf8(&plain)?);
            doc.declared_nodes = doc.declared_nodes.or(n);
            doc.declared_edges = doc.declared_edges.or(m);
        }
    }
    if opts.enforce_declared_counts {
        doc.check_declared_counts()?;
    }
    Ok(doc)
}

/// Parses a node-label sidecar from in-memory bytes (gzipped or
/// plain): one `node<sep>label` pair per line (`#`/`%` comments
/// allowed, the same separators as edge lists), accumulating multi-
/// label nodes. Keys are *original* ids — join against
/// [`EdgeListDoc::id_map`] to reach dense ids.
pub fn load_node_labels_bytes(bytes: &[u8]) -> Result<HashMap<u64, Vec<u32>>, LoadError> {
    let plain = decode_maybe_gzip(bytes)?;
    let text = utf8(&plain)?;
    let mut labels: HashMap<u64, Vec<u32>> = HashMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split([' ', '\t', ',']).filter(|s| !s.is_empty());
        let pair = (
            parts.next().and_then(|t| t.parse::<u64>().ok()),
            parts.next().and_then(|t| t.parse::<u32>().ok()),
        );
        let (Some(node), Some(label)) = pair else {
            return Err(LoadError::Parse {
                line: lineno + 1,
                content: trimmed.to_string(),
            });
        };
        let entry = labels.entry(node).or_default();
        if !entry.contains(&label) {
            entry.push(label);
        }
    }
    Ok(labels)
}

/// Loads a node-label sidecar file (gzip-transparent); see
/// [`load_node_labels_bytes`].
pub fn load_node_labels(path: &Path) -> Result<HashMap<u64, Vec<u32>>, LoadError> {
    sp_fault::inject(sp_fault::sites::DATASET_READ).map_err(std::io::Error::from)?;
    let bytes = std::fs::read(path)?;
    load_node_labels_bytes(&bytes)
}

/// What a paper dataset looks like on disk: the filenames it is
/// distributed under and the published size for integrity reporting.
#[derive(Clone, Copy, Debug)]
pub struct DatasetManifest {
    /// Display name (matches [`crate::PaperDataset::name`]).
    pub name: &'static str,
    /// Edge-list filename candidates, in preference order. Each is
    /// also tried with a `.gz` suffix and inside a lower-cased
    /// `<name>/` subdirectory of the data dir.
    pub candidates: &'static [&'static str],
    /// Node-label sidecar candidates (empty when the dataset has no
    /// published labels).
    pub label_candidates: &'static [&'static str],
    /// Published `|V|` (for deviation reporting, not enforcement —
    /// mirrors vary slightly in preprocessing).
    pub expected_nodes: usize,
    /// Published `|E|`.
    pub expected_edges: usize,
}

impl DatasetManifest {
    /// All paths that will be probed for this dataset under `dir`, in
    /// order.
    pub fn probe_paths(&self, dir: &Path, names: &[&str]) -> Vec<PathBuf> {
        let sub = self.name.to_ascii_lowercase();
        let mut out = Vec::new();
        for base in [dir.to_path_buf(), dir.join(&sub)] {
            for name in names {
                out.push(base.join(name));
                out.push(base.join(format!("{name}.gz")));
            }
        }
        out
    }

    /// First existing edge-list candidate under `dir`, if any.
    pub fn locate(&self, dir: &Path) -> Option<PathBuf> {
        self.probe_paths(dir, self.candidates)
            .into_iter()
            .find(|p| p.is_file())
    }

    /// First existing label sidecar under `dir`, if any.
    pub fn locate_labels(&self, dir: &Path) -> Option<PathBuf> {
        self.probe_paths(dir, self.label_candidates)
            .into_iter()
            .find(|p| p.is_file())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inflate::gzip_store;

    #[test]
    fn plain_and_gzipped_bytes_parse_identically() {
        let text = b"% sym\n% 3 3 3\n1 2\n2 3\n3 1\n";
        let a = load_edge_list_bytes(text, ReadOptions::default()).unwrap();
        let b = load_edge_list_bytes(&gzip_store(text), ReadOptions::default()).unwrap();
        assert_eq!(a.graph.edges(), b.graph.edges());
        assert_eq!(a.declared_edges, Some(3));
        assert_eq!(b.declared_nodes, Some(3));
    }

    #[test]
    fn non_utf8_is_typed() {
        let err = load_edge_list_bytes(&[0x31, 0x20, 0x32, 0xFF, 0xFE], ReadOptions::default())
            .unwrap_err();
        assert!(matches!(err, LoadError::NonUtf8 { valid_up_to: 3 }));
    }

    #[test]
    fn truncated_gzip_is_typed() {
        let z = gzip_store(b"1 2\n2 3\n");
        let err = load_edge_list_bytes(&z[..z.len() - 5], ReadOptions::default()).unwrap_err();
        assert!(matches!(err, LoadError::Gzip(InflateError::UnexpectedEof)));
    }

    #[test]
    fn meta_sidecar_counts_parsed() {
        let (n, m) = parse_meta_counts("name: Test\nsize: 4941\nvolume: 6594\n");
        assert_eq!(n, Some(4941));
        assert_eq!(m, Some(6594));
        let (n, m) = parse_meta_counts("nodes: 10\nedges: 20\n");
        assert_eq!((n, m), (Some(10), Some(20)));
        let (n, m) = parse_meta_counts("category: Social\n");
        assert_eq!((n, m), (None, None));
    }

    #[test]
    fn labels_accumulate_multi_membership() {
        let labels = load_node_labels_bytes(b"# node,group\n1,3\n1,5\n2,3\n").unwrap();
        assert_eq!(labels[&1], vec![3, 5]);
        assert_eq!(labels[&2], vec![3]);
    }

    #[test]
    fn labels_parse_error_is_typed() {
        let err = load_node_labels_bytes(b"1,a\n").unwrap_err();
        assert!(matches!(err, LoadError::Parse { line: 1, .. }));
    }

    #[test]
    fn gzipped_labels_load() {
        let labels = load_node_labels_bytes(&gzip_store(b"7\t1\n8\t2\n")).unwrap();
        assert_eq!(labels.len(), 2);
    }
}
