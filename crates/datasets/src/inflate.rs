//! Pure-Rust DEFLATE (RFC 1951) and gzip (RFC 1952) decompression.
//!
//! The real SNAP/KONECT dataset archives ship as `.gz` files; this
//! build environment has no registry access, so `flate2` cannot be
//! vendored. This module implements the decoder side from scratch:
//! stored, fixed-Huffman, and dynamic-Huffman blocks, the 32 KiB LZ77
//! back-reference window, and the gzip member framing with full CRC32
//! and ISIZE trailer validation. Multi-member (concatenated) gzip
//! files are supported; compression is out of scope (the test suites
//! carry a minimal stored-block writer where round-trips are needed).
//!
//! The Huffman decoder follows the canonical counting scheme of Mark
//! Adler's `puff.c`: codes are resolved length by length against the
//! per-length symbol counts, so no decode table larger than the
//! symbol list is materialised. Incomplete codes are accepted (they
//! occur in legal streams with a single distance code); oversubscribed
//! codes are rejected at table-build time.

use std::fmt;

/// Maximum Huffman code length (RFC 1951 §3.2.1).
const MAX_BITS: usize = 15;
/// Number of literal/length symbols (0..=285 plus two illegal).
const MAX_LIT_CODES: usize = 288;
/// Number of distance symbols (0..=29 plus two illegal).
const MAX_DIST_CODES: usize = 32;

/// Typed decompression failure. Every malformed input maps to one of
/// these variants; the decoder never panics on untrusted bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InflateError {
    /// Input ended before the stream was structurally complete.
    UnexpectedEof,
    /// The first two bytes are not the gzip magic `1f 8b`.
    BadMagic {
        /// The bytes actually found (zero-padded if truncated).
        found: [u8; 2],
    },
    /// Compression method byte other than 8 (DEFLATE).
    UnsupportedMethod(u8),
    /// Reserved gzip FLG bits (5–7) were set.
    ReservedFlags(u8),
    /// A block used the reserved block type `0b11`.
    ReservedBlockType,
    /// A stored block whose `LEN` and `NLEN` are not complements.
    StoredLengthMismatch,
    /// A Huffman code-length set that is oversubscribed.
    OversubscribedCode,
    /// A bit pattern that matches no code in the active table.
    InvalidCode,
    /// A decoded symbol outside its legal range (length 286/287,
    /// distance 30/31, or a repeat with no previous length).
    InvalidSymbol(u16),
    /// A back-reference reaching before the start of the output.
    DistanceTooFar {
        /// Requested distance.
        dist: usize,
        /// Bytes produced so far for this member.
        have: usize,
    },
    /// Trailer CRC32 does not match the decompressed bytes.
    CrcMismatch {
        /// CRC32 declared in the trailer.
        declared: u32,
        /// CRC32 of the actual output.
        actual: u32,
    },
    /// Trailer ISIZE does not match the decompressed length mod 2³².
    IsizeMismatch {
        /// ISIZE declared in the trailer.
        declared: u32,
        /// Actual output length mod 2³².
        actual: u32,
    },
    /// Non-gzip bytes followed a complete member.
    TrailingData {
        /// Offset of the first trailing byte.
        offset: usize,
    },
}

impl fmt::Display for InflateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InflateError::UnexpectedEof => write!(f, "unexpected end of compressed input"),
            InflateError::BadMagic { found } => {
                write!(
                    f,
                    "not a gzip stream (magic {:02x} {:02x})",
                    found[0], found[1]
                )
            }
            InflateError::UnsupportedMethod(m) => {
                write!(f, "unsupported compression method {m} (want 8 = deflate)")
            }
            InflateError::ReservedFlags(b) => write!(f, "reserved gzip FLG bits set: {b:#04x}"),
            InflateError::ReservedBlockType => write!(f, "reserved deflate block type 0b11"),
            InflateError::StoredLengthMismatch => {
                write!(f, "stored block LEN/NLEN are not complements")
            }
            InflateError::OversubscribedCode => write!(f, "oversubscribed huffman code lengths"),
            InflateError::InvalidCode => write!(f, "bit pattern matches no huffman code"),
            InflateError::InvalidSymbol(s) => write!(f, "symbol {s} is invalid in this context"),
            InflateError::DistanceTooFar { dist, have } => {
                write!(
                    f,
                    "back-reference distance {dist} exceeds {have} produced bytes"
                )
            }
            InflateError::CrcMismatch { declared, actual } => {
                write!(
                    f,
                    "crc32 mismatch: trailer {declared:#010x}, data {actual:#010x}"
                )
            }
            InflateError::IsizeMismatch { declared, actual } => {
                write!(f, "isize mismatch: trailer {declared}, data {actual}")
            }
            InflateError::TrailingData { offset } => {
                write!(f, "trailing non-gzip data at byte {offset}")
            }
        }
    }
}

impl std::error::Error for InflateError {}

// --- CRC32 (IEEE 802.3, reflected; the gzip checksum) -------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC32_TABLE: [u32; 256] = crc32_table();

/// One CRC32 step over the *raw* (pre-inversion) state, for callers
/// that checksum incrementally: seed with `!0`, feed bytes, finish
/// with `!state`.
pub(crate) fn crc32_step(state: u32, byte: u8) -> u32 {
    CRC32_TABLE[((state ^ byte as u32) & 0xFF) as usize] ^ (state >> 8)
}

/// CRC32 (IEEE, reflected) of `data` — the checksum gzip stores in its
/// trailer. Exposed so tests and writers can frame their own members.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in data {
        c = crc32_step(c, b);
    }
    !c
}

/// Returns `true` if `data` starts with the gzip magic bytes.
pub fn is_gzip(data: &[u8]) -> bool {
    data.len() >= 2 && data[0] == 0x1F && data[1] == 0x8B
}

/// The encoding counterpart this module ships: frames `data` as a
/// valid single-member gzip file of *stored* (uncompressed) DEFLATE
/// blocks, with a correct CRC32/ISIZE trailer. No compression is
/// attempted — output is `input + 18 + 5·⌈len/65535⌉` bytes — but the
/// result round-trips through [`gunzip`] and any external gzip, which
/// is what the test suites and `.gz` fixture writers need.
pub fn gzip_store(data: &[u8]) -> Vec<u8> {
    // Header: magic, CM=8, FLG=0, MTIME=0, XFL=0, OS=255 (unknown).
    let mut out = vec![0x1F, 0x8B, 8, 0, 0, 0, 0, 0, 0, 255];
    if data.is_empty() {
        // A member must contain at least one (final) block.
        out.extend_from_slice(&[0x01, 0, 0, 0xFF, 0xFF]);
    }
    let mut chunks = data.chunks(0xFFFF).peekable();
    while let Some(chunk) = chunks.next() {
        out.push(if chunks.peek().is_none() { 1 } else { 0 });
        let len = chunk.len() as u16;
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(&(!len).to_le_bytes());
        out.extend_from_slice(chunk);
    }
    out.extend_from_slice(&crc32(data).to_le_bytes());
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
    out
}

// --- Bit-level input ----------------------------------------------------

/// LSB-first DEFLATE bit access, abstracted so the one-shot slice
/// decoder and the incremental [`crate::stream`] decoder share the
/// Huffman machinery. `peek15`/`consume` are the table-decoder fast
/// path: peek up to [`MAX_BITS`] bits without consuming (fewer only at
/// end of input), then consume exactly the decoded code length.
pub(crate) trait Bits {
    /// Reads `n` bits (0..=25), LSB-first.
    fn bits(&mut self, n: u32) -> Result<u32, InflateError>;
    /// Reads a single bit.
    fn bit(&mut self) -> Result<u32, InflateError> {
        self.bits(1)
    }
    /// Buffers and returns up to 15 unconsumed bits plus the count
    /// actually available (short only when the input is exhausted).
    fn peek15(&mut self) -> (u32, u32);
    /// Discards `n` previously peeked bits.
    fn consume(&mut self, n: u32);
}

struct BitReader<'a> {
    data: &'a [u8],
    /// Next unread byte.
    pos: usize,
    /// Bit accumulator (LSB-first, as DEFLATE packs them).
    bitbuf: u32,
    /// Number of valid bits in `bitbuf`.
    bitcnt: u32,
}

impl<'a> BitReader<'a> {
    fn new(data: &'a [u8], pos: usize) -> Self {
        Self {
            data,
            pos,
            bitbuf: 0,
            bitcnt: 0,
        }
    }

    /// Reads `n` bits (0..=25), LSB-first.
    fn bits(&mut self, n: u32) -> Result<u32, InflateError> {
        while self.bitcnt < n {
            let byte = *self.data.get(self.pos).ok_or(InflateError::UnexpectedEof)?;
            self.bitbuf |= (byte as u32) << self.bitcnt;
            self.bitcnt += 8;
            self.pos += 1;
        }
        let out = self.bitbuf & ((1u32 << n) - 1);
        self.bitbuf >>= n;
        self.bitcnt -= n;
        Ok(out)
    }

    /// Reads a single bit.
    fn bit(&mut self) -> Result<u32, InflateError> {
        self.bits(1)
    }

    /// Discards buffered bits so the next read is byte-aligned
    /// (stored-block headers and the gzip trailer are byte-aligned).
    /// `peek15` may have buffered whole bytes ahead of the bit cursor;
    /// those are rewound into the slice, not discarded.
    fn align(&mut self) {
        self.pos -= (self.bitcnt / 8) as usize;
        self.bitbuf = 0;
        self.bitcnt = 0;
    }

    /// Byte offset of the next unread byte (only meaningful when
    /// aligned).
    fn byte_pos(&self) -> usize {
        self.pos
    }

    /// Copies `len` raw bytes (stored block payload).
    fn bytes(&mut self, len: usize, out: &mut Vec<u8>) -> Result<(), InflateError> {
        let end = self
            .pos
            .checked_add(len)
            .ok_or(InflateError::UnexpectedEof)?;
        let src = self
            .data
            .get(self.pos..end)
            .ok_or(InflateError::UnexpectedEof)?;
        out.extend_from_slice(src);
        self.pos = end;
        Ok(())
    }
}

impl Bits for BitReader<'_> {
    fn bits(&mut self, n: u32) -> Result<u32, InflateError> {
        BitReader::bits(self, n)
    }

    fn peek15(&mut self) -> (u32, u32) {
        while self.bitcnt < MAX_BITS as u32 {
            match self.data.get(self.pos) {
                Some(&b) => {
                    self.bitbuf |= (b as u32) << self.bitcnt;
                    self.bitcnt += 8;
                    self.pos += 1;
                }
                None => break,
            }
        }
        (self.bitbuf, self.bitcnt)
    }

    fn consume(&mut self, n: u32) {
        debug_assert!(n <= self.bitcnt);
        self.bitbuf >>= n;
        self.bitcnt -= n;
    }
}

// --- Canonical Huffman tables -------------------------------------------

/// Per-length symbol counts plus symbols in canonical order (puff.c
/// layout). This is the compact *reference* form: [`Huffman::decode`]
/// resolves one bit at a time and is kept for the small code-length
/// alphabet and as the behavioral oracle for [`LutHuffman`], the
/// two-level table built from it that the block-decode hot loop uses.
pub(crate) struct Huffman {
    count: [u16; MAX_BITS + 1],
    symbol: Vec<u16>,
}

impl Huffman {
    /// Builds the canonical table from per-symbol code lengths
    /// (`lengths[s]` = bits for symbol `s`, 0 = unused). Rejects
    /// oversubscribed sets; incomplete sets are legal.
    pub(crate) fn new(lengths: &[u8]) -> Result<Self, InflateError> {
        let mut count = [0u16; MAX_BITS + 1];
        for &len in lengths {
            debug_assert!((len as usize) <= MAX_BITS);
            count[len as usize] += 1;
        }
        // Oversubscription check: `left` is the number of codes still
        // unassigned after each length; negative means too many codes.
        let mut left: i32 = 1;
        for &c in &count[1..] {
            left <<= 1;
            left -= c as i32;
            if left < 0 {
                return Err(InflateError::OversubscribedCode);
            }
        }
        // Symbols sorted by (length, symbol) — canonical order.
        let mut offs = [0usize; MAX_BITS + 2];
        for l in 1..=MAX_BITS {
            offs[l + 1] = offs[l] + count[l] as usize;
        }
        let mut symbol = vec![0u16; offs[MAX_BITS + 1]];
        for (s, &len) in lengths.iter().enumerate() {
            if len != 0 {
                symbol[offs[len as usize]] = s as u16;
                offs[len as usize] += 1;
            }
        }
        Ok(Self { count, symbol })
    }

    /// Decodes one symbol, consuming 1..=15 bits.
    fn decode<B: Bits + ?Sized>(&self, br: &mut B) -> Result<u16, InflateError> {
        let mut code: u32 = 0; // code of `len` bits so far
        let mut first: u32 = 0; // first code of this length
        let mut index: usize = 0; // index of first symbol of this length
        for len in 1..=MAX_BITS {
            code |= br.bit()?;
            let cnt = self.count[len] as u32;
            if code < first + cnt {
                return Ok(self.symbol[index + (code - first) as usize]);
            }
            index += cnt as usize;
            first = (first + cnt) << 1;
            code <<= 1;
        }
        Err(InflateError::InvalidCode)
    }
}

// --- Two-level lookup-table decoder -------------------------------------

/// Width of the primary lookup table in bits: one probe resolves any
/// code of ≤ 9 bits (every code zlib emits for typical text inputs);
/// longer codes chain through exactly one overflow subtable.
const PRIMARY_BITS: u32 = 9;
const PRIMARY_MASK: u32 = (1 << PRIMARY_BITS) - 1;
/// Entry flag: this primary slot points at an overflow subtable.
const SUB_FLAG: u32 = 1 << 31;

/// Reverses the low `len` bits of `code`: canonical Huffman codes are
/// assigned MSB-first but arrive on the wire LSB-first, so table
/// indices are bit-reversed codes.
fn rev(code: u32, len: u32) -> u32 {
    code.reverse_bits() >> (32 - len)
}

/// Two-level lookup table built from a canonical [`Huffman`] code: a
/// 512-entry primary table indexed by the next 9 wire bits, with
/// per-prefix overflow subtables (appended to the same vector) for
/// codes of 10..=15 bits. Decoding is a peek + one or two indexed
/// loads + a consume — no per-bit loop.
///
/// Entry layout (u32): `0` = no code reaches this slot;
/// direct = `len << 16 | symbol`; subtable pointer =
/// `SUB_FLAG | offset << 4 | index_bits`.
pub(crate) struct LutHuffman {
    table: Vec<u32>,
}

impl LutHuffman {
    /// Builds the table set. Infallible: `h` was already validated as
    /// not oversubscribed, and incomplete codes simply leave slots 0.
    pub(crate) fn new(h: &Huffman) -> Self {
        // Enumerate (symbol, length, canonical code) the same way
        // `Huffman::decode` walks lengths: codes of length L occupy
        // [first_L, first_L + count_L) in canonical symbol order.
        let mut entries: Vec<(u16, u32, u32)> = Vec::with_capacity(h.symbol.len());
        let mut first: u32 = 0;
        let mut index: usize = 0;
        for len in 1..=MAX_BITS {
            let cnt = h.count[len] as u32;
            for k in 0..cnt {
                entries.push((h.symbol[index + k as usize], len as u32, first + k));
            }
            index += cnt as usize;
            first = (first + cnt) << 1;
        }

        let mut table = vec![0u32; 1 << PRIMARY_BITS];
        // Size each overflow subtable by the longest code sharing its
        // 9-bit wire prefix, then append them after the primary table.
        let mut sub_bits = [0u8; 1 << PRIMARY_BITS];
        for &(_, len, code) in &entries {
            if len > PRIMARY_BITS {
                let low = (rev(code, len) & PRIMARY_MASK) as usize;
                sub_bits[low] = sub_bits[low].max((len - PRIMARY_BITS) as u8);
            }
        }
        for (i, &sb) in sub_bits.iter().enumerate() {
            if sb > 0 {
                let off = table.len() as u32;
                table[i] = SUB_FLAG | (off << 4) | sb as u32;
                let grown = table.len() + (1usize << sb);
                table.resize(grown, 0);
            }
        }
        // Fill: every index whose low `len` bits equal the reversed
        // code maps to that symbol (the prefix property guarantees no
        // two codes claim the same slot).
        for &(sym, len, code) in &entries {
            let wire = rev(code, len);
            let entry = (len << 16) | sym as u32;
            if len <= PRIMARY_BITS {
                let step = 1usize << len;
                let mut i = wire as usize;
                while i < (1 << PRIMARY_BITS) {
                    table[i] = entry;
                    i += step;
                }
            } else {
                let slot = table[(wire & PRIMARY_MASK) as usize];
                let sb = slot & 0xF;
                let off = ((slot >> 4) & !(SUB_FLAG >> 4)) as usize;
                let step = 1usize << (len - PRIMARY_BITS);
                let mut i = (wire >> PRIMARY_BITS) as usize;
                while i < (1usize << sb) {
                    table[off + i] = entry;
                    i += step;
                }
            }
        }
        Self { table }
    }

    /// Resolves one symbol from `avail` peeked wire bits in `v`
    /// (zero-padded above `avail`). Returns the symbol and the number
    /// of bits to consume. Mirrors `Huffman::decode` error semantics:
    /// a pattern matching no code is [`InflateError::InvalidCode`]
    /// when 15 real bits were available, otherwise the input ended
    /// mid-code and it is [`InflateError::UnexpectedEof`].
    pub(crate) fn lookup(&self, v: u32, avail: u32) -> Result<(u16, u32), InflateError> {
        let mut e = self.table[(v & PRIMARY_MASK) as usize];
        if e & SUB_FLAG != 0 {
            let sb = e & 0xF;
            let off = ((e >> 4) & !(SUB_FLAG >> 4)) as usize;
            e = self.table[off + ((v >> PRIMARY_BITS) & ((1 << sb) - 1)) as usize];
        }
        let len = (e >> 16) & 0x1F;
        if len == 0 || len > avail {
            return Err(if avail < MAX_BITS as u32 {
                InflateError::UnexpectedEof
            } else {
                InflateError::InvalidCode
            });
        }
        Ok(((e & 0xFFFF) as u16, len))
    }

    /// Decodes one symbol from a [`Bits`] source (peek, table probe,
    /// consume).
    pub(crate) fn decode<B: Bits + ?Sized>(&self, br: &mut B) -> Result<u16, InflateError> {
        let (v, avail) = br.peek15();
        let (sym, len) = self.lookup(v, avail)?;
        br.consume(len);
        Ok(sym)
    }
}

// --- DEFLATE block decoding ---------------------------------------------

pub(crate) const LEN_BASE: [u16; 29] = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115, 131,
    163, 195, 227, 258,
];
pub(crate) const LEN_EXTRA: [u8; 29] = [
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
];
pub(crate) const DIST_BASE: [u16; 30] = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
    2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
];
pub(crate) const DIST_EXTRA: [u8; 30] = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13,
    13,
];
/// Order in which code-length code lengths are stored (RFC 1951 §3.2.7).
const CLEN_ORDER: [usize; 19] = [
    16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
];

/// Decodes the shared literal/length + distance loop of compressed
/// blocks into `out`, through the two-level lookup tables.
fn codes(
    br: &mut BitReader<'_>,
    litlen: &Huffman,
    dist: &Huffman,
    out: &mut Vec<u8>,
) -> Result<(), InflateError> {
    let lit_lut = LutHuffman::new(litlen);
    let dist_lut = LutHuffman::new(dist);
    loop {
        let sym = lit_lut.decode(br)?;
        match sym {
            0..=255 => out.push(sym as u8),
            256 => return Ok(()),
            257..=285 => {
                let idx = (sym - 257) as usize;
                let len = LEN_BASE[idx] as usize + br.bits(LEN_EXTRA[idx] as u32)? as usize;
                let dsym = dist_lut.decode(br)?;
                if dsym >= 30 {
                    return Err(InflateError::InvalidSymbol(dsym));
                }
                let didx = dsym as usize;
                let d = DIST_BASE[didx] as usize + br.bits(DIST_EXTRA[didx] as u32)? as usize;
                if d > out.len() {
                    return Err(InflateError::DistanceTooFar {
                        dist: d,
                        have: out.len(),
                    });
                }
                // Overlapping copy: byte-by-byte is required when
                // `len > d` (run-length style references).
                let start = out.len() - d;
                for i in 0..len {
                    let b = out[start + i];
                    out.push(b);
                }
            }
            _ => return Err(InflateError::InvalidSymbol(sym)),
        }
    }
}

/// Fixed-Huffman tables (RFC 1951 §3.2.6).
pub(crate) fn fixed_tables() -> (Huffman, Huffman) {
    let mut lit = [0u8; MAX_LIT_CODES];
    for (s, l) in lit.iter_mut().enumerate() {
        *l = match s {
            0..=143 => 8,
            144..=255 => 9,
            256..=279 => 7,
            _ => 8,
        };
    }
    let dist = [5u8; MAX_DIST_CODES];
    // Fixed lengths are complete by construction; new() cannot fail.
    (Huffman::new(&lit).unwrap(), Huffman::new(&dist).unwrap())
}

/// Reads the dynamic-block table definition (RFC 1951 §3.2.7).
pub(crate) fn dynamic_tables<B: Bits + ?Sized>(
    br: &mut B,
) -> Result<(Huffman, Huffman), InflateError> {
    let hlit = br.bits(5)? as usize + 257;
    let hdist = br.bits(5)? as usize + 1;
    let hclen = br.bits(4)? as usize + 4;
    if hlit > MAX_LIT_CODES {
        return Err(InflateError::InvalidSymbol(hlit as u16));
    }
    let mut clen_lengths = [0u8; 19];
    for &ord in CLEN_ORDER.iter().take(hclen) {
        clen_lengths[ord] = br.bits(3)? as u8;
    }
    let clen = Huffman::new(&clen_lengths)?;

    let mut lengths = [0u8; MAX_LIT_CODES + MAX_DIST_CODES];
    let total = hlit + hdist;
    let mut i = 0usize;
    while i < total {
        let sym = clen.decode(br)?;
        match sym {
            0..=15 => {
                lengths[i] = sym as u8;
                i += 1;
            }
            16 => {
                if i == 0 {
                    return Err(InflateError::InvalidSymbol(16));
                }
                let prev = lengths[i - 1];
                let rep = 3 + br.bits(2)? as usize;
                if i + rep > total {
                    return Err(InflateError::InvalidSymbol(16));
                }
                for _ in 0..rep {
                    lengths[i] = prev;
                    i += 1;
                }
            }
            17 => {
                let rep = 3 + br.bits(3)? as usize;
                if i + rep > total {
                    return Err(InflateError::InvalidSymbol(17));
                }
                i += rep; // already zero
            }
            18 => {
                let rep = 11 + br.bits(7)? as usize;
                if i + rep > total {
                    return Err(InflateError::InvalidSymbol(18));
                }
                i += rep; // already zero
            }
            other => return Err(InflateError::InvalidSymbol(other)),
        }
    }
    // End-of-block must be codable, or the block can never terminate.
    if lengths[256] == 0 {
        return Err(InflateError::InvalidSymbol(256));
    }
    let litlen = Huffman::new(&lengths[..hlit])?;
    let dist = Huffman::new(&lengths[hlit..total])?;
    Ok((litlen, dist))
}

/// Inflates one raw DEFLATE stream starting at the reader's position;
/// on success the reader is left byte-aligned just past the stream.
fn inflate_into(br: &mut BitReader<'_>, out: &mut Vec<u8>) -> Result<(), InflateError> {
    loop {
        let last = br.bit()? == 1;
        match br.bits(2)? {
            0 => {
                // Stored: byte-align, LEN + !LEN header, raw copy.
                br.align();
                let mut hdr = Vec::with_capacity(4);
                br.bytes(4, &mut hdr)?;
                let len = u16::from_le_bytes([hdr[0], hdr[1]]);
                let nlen = u16::from_le_bytes([hdr[2], hdr[3]]);
                if len != !nlen {
                    return Err(InflateError::StoredLengthMismatch);
                }
                br.bytes(len as usize, out)?;
            }
            1 => {
                let (litlen, dist) = fixed_tables();
                codes(br, &litlen, &dist, out)?;
            }
            2 => {
                let (litlen, dist) = dynamic_tables(br)?;
                codes(br, &litlen, &dist, out)?;
            }
            _ => return Err(InflateError::ReservedBlockType),
        }
        if last {
            br.align();
            return Ok(());
        }
    }
}

/// Decompresses a raw DEFLATE stream (no gzip framing, no checksum).
pub fn inflate_raw(data: &[u8]) -> Result<Vec<u8>, InflateError> {
    let mut out = Vec::with_capacity(data.len().saturating_mul(3));
    inflate_into(&mut BitReader::new(data, 0), &mut out)?;
    Ok(out)
}

// --- gzip member framing ------------------------------------------------

pub(crate) const FHCRC: u8 = 1 << 1;
pub(crate) const FEXTRA: u8 = 1 << 2;
pub(crate) const FNAME: u8 = 1 << 3;
pub(crate) const FCOMMENT: u8 = 1 << 4;

fn take<'a>(data: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8], InflateError> {
    let end = pos.checked_add(n).ok_or(InflateError::UnexpectedEof)?;
    let s = data.get(*pos..end).ok_or(InflateError::UnexpectedEof)?;
    *pos = end;
    Ok(s)
}

fn skip_zstr(data: &[u8], pos: &mut usize) -> Result<(), InflateError> {
    while *take(data, pos, 1)?.first().unwrap() != 0 {}
    Ok(())
}

/// Parses one gzip member header; returns the offset of the deflate
/// payload.
fn member_header(data: &[u8], mut pos: usize) -> Result<usize, InflateError> {
    let magic = take(data, &mut pos, 2)?;
    if magic != [0x1F, 0x8B] {
        return Err(InflateError::BadMagic {
            found: [magic[0], magic[1]],
        });
    }
    let cm = take(data, &mut pos, 1)?[0];
    if cm != 8 {
        return Err(InflateError::UnsupportedMethod(cm));
    }
    let flg = take(data, &mut pos, 1)?[0];
    if flg & 0b1110_0000 != 0 {
        return Err(InflateError::ReservedFlags(flg));
    }
    take(data, &mut pos, 6)?; // MTIME(4) XFL(1) OS(1)
    if flg & FEXTRA != 0 {
        let xlen = take(data, &mut pos, 2)?;
        let xlen = u16::from_le_bytes([xlen[0], xlen[1]]) as usize;
        take(data, &mut pos, xlen)?;
    }
    if flg & FNAME != 0 {
        skip_zstr(data, &mut pos)?;
    }
    if flg & FCOMMENT != 0 {
        skip_zstr(data, &mut pos)?;
    }
    if flg & FHCRC != 0 {
        take(data, &mut pos, 2)?;
    }
    Ok(pos)
}

/// Decompresses a gzip file: all members are inflated and
/// concatenated; each member's CRC32 and ISIZE trailer is validated
/// against the bytes actually produced.
pub fn gunzip(data: &[u8]) -> Result<Vec<u8>, InflateError> {
    let mut out = Vec::with_capacity(data.len().saturating_mul(3));
    let mut pos = 0usize;
    loop {
        let payload = member_header(data, pos)?;
        let member_start = out.len();
        let mut br = BitReader::new(data, payload);
        inflate_into(&mut br, &mut out)?;
        pos = br.byte_pos();
        let trailer = take(data, &mut pos, 8)?;
        let declared_crc = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
        let declared_isize = u32::from_le_bytes([trailer[4], trailer[5], trailer[6], trailer[7]]);
        let member = &out[member_start..];
        let actual_crc = crc32(member);
        if declared_crc != actual_crc {
            return Err(InflateError::CrcMismatch {
                declared: declared_crc,
                actual: actual_crc,
            });
        }
        let actual_isize = member.len() as u32;
        if declared_isize != actual_isize {
            return Err(InflateError::IsizeMismatch {
                declared: declared_isize,
                actual: actual_isize,
            });
        }
        if pos == data.len() {
            return Ok(out);
        }
        if !is_gzip(&data[pos..]) {
            return Err(InflateError::TrailingData { offset: pos });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn stored_round_trip() {
        let data = b"hello stored world".to_vec();
        assert_eq!(gunzip(&gzip_store(&data)).unwrap(), data);
    }

    #[test]
    fn empty_stored_round_trip() {
        assert_eq!(gunzip(&gzip_store(b"")).unwrap(), b"");
    }

    #[test]
    fn multi_chunk_stored_round_trip() {
        // Payload over the 65535-byte stored-block limit forces the
        // writer to chain non-final blocks.
        let data: Vec<u8> = (0..200_000u32).map(|i| (i % 251) as u8).collect();
        assert_eq!(gunzip(&gzip_store(&data)).unwrap(), data);
    }

    #[test]
    fn multi_member_concatenation() {
        let mut both = gzip_store(b"first|");
        both.extend_from_slice(&gzip_store(b"second"));
        assert_eq!(gunzip(&both).unwrap(), b"first|second");
    }

    #[test]
    fn truncated_stream_is_eof() {
        let full = gzip_store(b"0123456789");
        for cut in 1..full.len() {
            let err = gunzip(&full[..cut]).unwrap_err();
            assert_eq!(err, InflateError::UnexpectedEof, "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_crc_detected() {
        let mut z = gzip_store(b"checksummed payload");
        let n = z.len();
        z[n - 8] ^= 0xFF; // CRC32 low byte
        assert!(matches!(
            gunzip(&z).unwrap_err(),
            InflateError::CrcMismatch { .. }
        ));
    }

    #[test]
    fn corrupt_isize_detected() {
        let mut z = gzip_store(b"sized payload");
        let n = z.len();
        z[n - 1] ^= 0x01; // ISIZE high byte
        assert!(matches!(
            gunzip(&z).unwrap_err(),
            InflateError::IsizeMismatch { .. }
        ));
    }

    #[test]
    fn bad_magic_detected() {
        assert!(matches!(
            gunzip(b"PK\x03\x04").unwrap_err(),
            InflateError::BadMagic {
                found: [0x50, 0x4B]
            }
        ));
    }

    #[test]
    fn trailing_garbage_detected() {
        let mut z = gzip_store(b"ok");
        z.extend_from_slice(b"junk");
        assert!(matches!(
            gunzip(&z).unwrap_err(),
            InflateError::TrailingData { .. }
        ));
    }

    #[test]
    fn stored_len_nlen_mismatch() {
        let mut z = gzip_store(b"abc");
        z[13] ^= 0xFF; // NLEN low byte of the stored header
        assert_eq!(gunzip(&z).unwrap_err(), InflateError::StoredLengthMismatch);
    }

    #[test]
    fn fixed_huffman_literals() {
        // Hand-assembled fixed-Huffman member encoding "A" (0x41):
        // header bits: BFINAL=1, BTYPE=01; literal 65 -> code 0x41+0x30
        // = 0x71 (8 bits, MSB-first on the wire), then EOB (7 zeros).
        // Easier to validate via inflate_raw of a known byte pattern
        // produced by any zlib: "\x73\x04\x00" inflates to "A".
        assert_eq!(inflate_raw(&[0x73, 0x04, 0x00]).unwrap(), b"A");
    }

    #[test]
    fn reserved_block_type_rejected() {
        // BFINAL=1, BTYPE=11.
        assert_eq!(
            inflate_raw(&[0x07]).unwrap_err(),
            InflateError::ReservedBlockType
        );
    }

    #[test]
    fn distance_too_far_rejected() {
        // Fixed block: literal 'a', then a length-3 match at distance 4
        // (only 1 byte produced) must be rejected, not panic.
        // Assembled with a reference zlib: see golden tests for full
        // coverage; here a manual stream: BFINAL=1 BTYPE=01,
        // lit 'a' (0x61 -> code 0x91), len sym 257 (code 0000001),
        // dist sym 3 (00011), EOB.
        // Bit-exact assembly is brittle; instead corrupt a stored+match
        // hybrid via the raw API using a known zlib output for "aaa"
        // with its distance byte bumped. "\x4B\x4C\x04\x00" = "aaaa"?
        // Validated in golden tests; here just ensure no panic path:
        let r = inflate_raw(&[0x4B, 0x44, 0x02, 0x00]);
        let _ = r; // any Result is fine — must not panic
    }
}
