//! Incremental gzip decompression behind [`std::io::Read`].
//!
//! [`inflate::gunzip`](crate::inflate::gunzip) is a one-shot API: it
//! needs the whole compressed file in memory and materializes the
//! whole decompressed output before the first byte is parsed, so
//! ingestion RSS scales with `|E|` twice over. [`GzipStreamReader`]
//! replaces that for the loading path: it pulls compressed bytes from
//! any inner reader in fixed-size chunks, inflates through the same
//! two-level Huffman tables as the one-shot decoder, and retains only
//! the 32 KiB LZ77 window plus a small staging buffer — constant
//! memory regardless of file size. Multi-member files, CRC32 and
//! ISIZE trailer validation, and the full typed
//! [`crate::inflate::InflateError`] surface carry over;
//! errors arrive as `io::Error` with the `InflateError` as source.
//!
//! [`open_edge_stream`] is the loader entry point: it sniffs the gzip
//! magic and returns a buffered line-readable stream either way.

use std::fs::File;
use std::io::{self, BufRead, BufReader, Read};
use std::path::Path;

use crate::inflate::{
    crc32_step, dynamic_tables, fixed_tables, Bits, InflateError, LutHuffman, DIST_BASE,
    DIST_EXTRA, FCOMMENT, FEXTRA, FHCRC, FNAME, LEN_BASE, LEN_EXTRA,
};

/// LZ77 back-reference window size (RFC 1951 §2).
const WINDOW: usize = 32 * 1024;
/// Compressed-input chunk size pulled from the inner reader.
const IN_CHUNK: usize = 64 * 1024;
/// Decompressed bytes staged per state-machine step before yielding
/// to the caller (a match may overshoot by up to 258 bytes).
const OUT_STEP: usize = 16 * 1024;

fn to_io(e: InflateError) -> io::Error {
    let kind = if e == InflateError::UnexpectedEof {
        io::ErrorKind::UnexpectedEof
    } else {
        io::ErrorKind::InvalidData
    };
    io::Error::new(kind, e)
}

/// Decode progress, persisted across `read()` calls so a block can be
/// left half-decoded when the caller's buffer fills.
enum State {
    /// Expecting a member header (or clean EOF after ≥ 1 member).
    Header,
    /// Expecting a block header (BFINAL + BTYPE).
    BlockHeader,
    /// Copying the remaining payload of a stored block.
    Stored { remaining: usize },
    /// Inside a fixed- or dynamic-Huffman block.
    InBlock {
        litlen: Box<LutHuffman>,
        dist: Box<LutHuffman>,
    },
    /// Expecting the 8-byte CRC32 + ISIZE member trailer.
    Trailer,
    /// All members decoded and validated.
    Eof,
}

/// A streaming gzip decoder: wraps any `Read` of compressed bytes and
/// is itself a `Read` of the decompressed bytes, in constant memory.
pub struct GzipStreamReader<R: Read> {
    inner: R,
    /// Compressed chunk buffer (`buf[bpos..blen]` unread).
    buf: Vec<u8>,
    bpos: usize,
    blen: usize,
    inner_eof: bool,
    /// Total compressed bytes consumed (for trailing-data offsets).
    in_count: u64,
    /// An inner-reader failure observed inside `peek15`, surfaced on
    /// the next fallible step.
    io_error: Option<io::Error>,
    /// LSB-first bit accumulator over the compressed stream.
    bitbuf: u32,
    bitcnt: u32,
    /// LZ77 ring: the last `WINDOW` decompressed bytes.
    window: Vec<u8>,
    wpos: usize,
    /// Decoded bytes not yet handed to the caller.
    pending: Vec<u8>,
    pstart: usize,
    state: State,
    final_block: bool,
    /// Running (pre-inversion) CRC32 of the current member.
    crc_state: u32,
    /// Current member output length mod 2³² (the ISIZE check).
    isize_count: u32,
    /// Current member output length, for distance validation.
    member_out: u64,
    members_done: u64,
}

impl<R: Read> GzipStreamReader<R> {
    /// Wraps `inner`, which must yield a well-formed (possibly
    /// multi-member) gzip stream. Nothing is read until the first
    /// `read()` call.
    pub fn new(inner: R) -> Self {
        Self {
            inner,
            buf: vec![0u8; IN_CHUNK],
            bpos: 0,
            blen: 0,
            inner_eof: false,
            in_count: 0,
            io_error: None,
            bitbuf: 0,
            bitcnt: 0,
            window: vec![0u8; WINDOW],
            wpos: 0,
            pending: Vec::with_capacity(OUT_STEP + 258),
            pstart: 0,
            state: State::Header,
            final_block: false,
            crc_state: !0,
            isize_count: 0,
            member_out: 0,
            members_done: 0,
        }
    }

    /// Next raw compressed byte, refilling from the inner reader.
    fn next_byte(&mut self) -> io::Result<Option<u8>> {
        if self.bpos == self.blen {
            if self.inner_eof {
                return Ok(None);
            }
            loop {
                match self.inner.read(&mut self.buf) {
                    Ok(0) => {
                        self.inner_eof = true;
                        return Ok(None);
                    }
                    Ok(n) => {
                        self.blen = n;
                        self.bpos = 0;
                        break;
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            }
        }
        let b = self.buf[self.bpos];
        self.bpos += 1;
        self.in_count += 1;
        Ok(Some(b))
    }

    /// Next byte-aligned byte: drains whole bytes buffered in `bitbuf`
    /// before touching the raw stream.
    fn aligned_byte(&mut self) -> io::Result<Option<u8>> {
        debug_assert_eq!(self.bitcnt % 8, 0);
        if self.bitcnt >= 8 {
            let b = (self.bitbuf & 0xFF) as u8;
            self.bitbuf >>= 8;
            self.bitcnt -= 8;
            return Ok(Some(b));
        }
        self.next_byte()
    }

    fn require_byte(&mut self) -> io::Result<u8> {
        self.aligned_byte()?
            .ok_or_else(|| to_io(InflateError::UnexpectedEof))
    }

    /// Discards buffered bits up to the next byte boundary of the
    /// compressed stream (whole buffered bytes stay buffered).
    fn align(&mut self) {
        let drop = self.bitcnt % 8;
        self.bitbuf >>= drop;
        self.bitcnt -= drop;
    }

    /// Converts a decode-level failure, preferring a stashed inner
    /// I/O error (an EOF seen by `peek15` may really be a read error).
    fn lift(&mut self, e: InflateError) -> io::Error {
        match self.io_error.take() {
            Some(ioe) => ioe,
            None => to_io(e),
        }
    }

    /// Emits one decompressed byte into the window, checksum, and
    /// staging buffer.
    fn push_byte(&mut self, b: u8) {
        self.pending.push(b);
        self.window[self.wpos] = b;
        self.wpos = (self.wpos + 1) & (WINDOW - 1);
        self.crc_state = crc32_step(self.crc_state, b);
        self.isize_count = self.isize_count.wrapping_add(1);
        self.member_out += 1;
    }

    /// Replays a `len`-byte match at distance `dist` out of the ring
    /// (byte-by-byte: overlapping references read bytes the same copy
    /// just wrote).
    fn copy_match(&mut self, len: usize, dist: usize) -> Result<(), InflateError> {
        if dist as u64 > self.member_out {
            return Err(InflateError::DistanceTooFar {
                dist,
                have: self.member_out as usize,
            });
        }
        let mut rp = (self.wpos + WINDOW - dist) & (WINDOW - 1);
        for _ in 0..len {
            let b = self.window[rp];
            rp = (rp + 1) & (WINDOW - 1);
            self.push_byte(b);
        }
        Ok(())
    }

    /// Parses one member header; `Ok(false)` is clean end-of-stream
    /// (EOF exactly at a member boundary, at least one member done).
    fn read_header(&mut self) -> io::Result<bool> {
        let b0 = match self.aligned_byte()? {
            Some(b) => b,
            None if self.members_done > 0 => return Ok(false),
            None => return Err(to_io(InflateError::UnexpectedEof)),
        };
        let b1 = self.require_byte()?;
        if [b0, b1] != [0x1F, 0x8B] {
            let e = if self.members_done > 0 {
                InflateError::TrailingData {
                    offset: (self.in_count - 2) as usize,
                }
            } else {
                InflateError::BadMagic { found: [b0, b1] }
            };
            return Err(to_io(e));
        }
        let cm = self.require_byte()?;
        if cm != 8 {
            return Err(to_io(InflateError::UnsupportedMethod(cm)));
        }
        let flg = self.require_byte()?;
        if flg & 0b1110_0000 != 0 {
            return Err(to_io(InflateError::ReservedFlags(flg)));
        }
        for _ in 0..6 {
            self.require_byte()?; // MTIME(4) XFL(1) OS(1)
        }
        if flg & FEXTRA != 0 {
            let lo = self.require_byte()?;
            let hi = self.require_byte()?;
            for _ in 0..u16::from_le_bytes([lo, hi]) {
                self.require_byte()?;
            }
        }
        if flg & FNAME != 0 {
            while self.require_byte()? != 0 {}
        }
        if flg & FCOMMENT != 0 {
            while self.require_byte()? != 0 {}
        }
        if flg & FHCRC != 0 {
            self.require_byte()?;
            self.require_byte()?;
        }
        self.crc_state = !0;
        self.isize_count = 0;
        self.member_out = 0;
        self.final_block = false;
        Ok(true)
    }

    /// Reads one block header and transitions state.
    fn read_block_header(&mut self) -> io::Result<State> {
        let last = self.bit().map_err(|e| self.lift(e))? == 1;
        let btype = self.bits(2).map_err(|e| self.lift(e))?;
        self.final_block = last;
        match btype {
            0 => {
                self.align();
                let mut hdr = [0u8; 4];
                for slot in &mut hdr {
                    *slot = self.require_byte()?;
                }
                let len = u16::from_le_bytes([hdr[0], hdr[1]]);
                let nlen = u16::from_le_bytes([hdr[2], hdr[3]]);
                if len != !nlen {
                    return Err(to_io(InflateError::StoredLengthMismatch));
                }
                Ok(State::Stored {
                    remaining: len as usize,
                })
            }
            1 => {
                let (litlen, dist) = fixed_tables();
                Ok(State::InBlock {
                    litlen: Box::new(LutHuffman::new(&litlen)),
                    dist: Box::new(LutHuffman::new(&dist)),
                })
            }
            2 => {
                let (litlen, dist) = dynamic_tables(self).map_err(|e| self.lift(e))?;
                Ok(State::InBlock {
                    litlen: Box::new(LutHuffman::new(&litlen)),
                    dist: Box::new(LutHuffman::new(&dist)),
                })
            }
            _ => Err(to_io(InflateError::ReservedBlockType)),
        }
    }

    /// Decodes symbols until the block ends (`Ok(true)`) or `OUT_STEP`
    /// bytes are staged (`Ok(false)`).
    fn run_block(&mut self, litlen: &LutHuffman, dist: &LutHuffman) -> io::Result<bool> {
        while self.pending.len() < OUT_STEP {
            let sym = litlen.decode(self).map_err(|e| self.lift(e))?;
            match sym {
                0..=255 => self.push_byte(sym as u8),
                256 => return Ok(true),
                257..=285 => {
                    let idx = (sym - 257) as usize;
                    let len = LEN_BASE[idx] as usize
                        + self.bits(LEN_EXTRA[idx] as u32).map_err(|e| self.lift(e))? as usize;
                    let dsym = dist.decode(self).map_err(|e| self.lift(e))?;
                    if dsym >= 30 {
                        return Err(to_io(InflateError::InvalidSymbol(dsym)));
                    }
                    let didx = dsym as usize;
                    let d = DIST_BASE[didx] as usize
                        + self
                            .bits(DIST_EXTRA[didx] as u32)
                            .map_err(|e| self.lift(e))? as usize;
                    self.copy_match(len, d).map_err(|e| self.lift(e))?;
                }
                other => return Err(to_io(InflateError::InvalidSymbol(other))),
            }
        }
        Ok(false)
    }

    /// Validates the member trailer against the bytes produced.
    fn read_trailer(&mut self) -> io::Result<()> {
        self.align();
        let mut t = [0u8; 8];
        for slot in &mut t {
            *slot = self.require_byte()?;
        }
        let declared_crc = u32::from_le_bytes([t[0], t[1], t[2], t[3]]);
        let declared_isize = u32::from_le_bytes([t[4], t[5], t[6], t[7]]);
        let actual_crc = !self.crc_state;
        if declared_crc != actual_crc {
            return Err(to_io(InflateError::CrcMismatch {
                declared: declared_crc,
                actual: actual_crc,
            }));
        }
        if declared_isize != self.isize_count {
            return Err(to_io(InflateError::IsizeMismatch {
                declared: declared_isize,
                actual: self.isize_count,
            }));
        }
        self.members_done += 1;
        Ok(())
    }

    /// Advances the state machine once; may stage bytes in `pending`.
    fn step(&mut self) -> io::Result<()> {
        // Take the state out so block tables can be borrowed while
        // `self` decodes through them.
        let state = std::mem::replace(&mut self.state, State::Eof);
        self.state = match state {
            State::Header => {
                if self.read_header()? {
                    State::BlockHeader
                } else {
                    State::Eof
                }
            }
            State::BlockHeader => self.read_block_header()?,
            State::Stored { mut remaining } => {
                while remaining > 0 && self.pending.len() < OUT_STEP {
                    let b = self.require_byte()?;
                    self.push_byte(b);
                    remaining -= 1;
                }
                if remaining > 0 {
                    State::Stored { remaining }
                } else if self.final_block {
                    State::Trailer
                } else {
                    State::BlockHeader
                }
            }
            State::InBlock { litlen, dist } => {
                if self.run_block(&litlen, &dist)? {
                    if self.final_block {
                        State::Trailer
                    } else {
                        State::BlockHeader
                    }
                } else {
                    State::InBlock { litlen, dist }
                }
            }
            State::Trailer => {
                self.read_trailer()?;
                State::Header
            }
            State::Eof => State::Eof,
        };
        Ok(())
    }
}

impl<R: Read> Bits for GzipStreamReader<R> {
    fn bits(&mut self, n: u32) -> Result<u32, InflateError> {
        while self.bitcnt < n {
            match self.next_byte() {
                Ok(Some(b)) => {
                    self.bitbuf |= (b as u32) << self.bitcnt;
                    self.bitcnt += 8;
                }
                Ok(None) => return Err(InflateError::UnexpectedEof),
                Err(e) => {
                    self.io_error = Some(e);
                    return Err(InflateError::UnexpectedEof);
                }
            }
        }
        let out = self.bitbuf & ((1u32 << n) - 1);
        self.bitbuf >>= n;
        self.bitcnt -= n;
        Ok(out)
    }

    fn peek15(&mut self) -> (u32, u32) {
        while self.bitcnt < 15 && self.io_error.is_none() {
            match self.next_byte() {
                Ok(Some(b)) => {
                    self.bitbuf |= (b as u32) << self.bitcnt;
                    self.bitcnt += 8;
                }
                Ok(None) => break,
                Err(e) => {
                    self.io_error = Some(e);
                    break;
                }
            }
        }
        (self.bitbuf, self.bitcnt)
    }

    fn consume(&mut self, n: u32) {
        debug_assert!(n <= self.bitcnt);
        self.bitbuf >>= n;
        self.bitcnt -= n;
    }
}

impl<R: Read> Read for GzipStreamReader<R> {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        if out.is_empty() {
            return Ok(0);
        }
        loop {
            let staged = self.pending.len() - self.pstart;
            if staged > 0 {
                let n = staged.min(out.len());
                out[..n].copy_from_slice(&self.pending[self.pstart..self.pstart + n]);
                self.pstart += n;
                if self.pstart == self.pending.len() {
                    self.pending.clear();
                    self.pstart = 0;
                }
                return Ok(n);
            }
            if matches!(self.state, State::Eof) {
                return Ok(0);
            }
            self.step()?;
        }
    }
}

/// Opens `path` as a buffered, line-readable stream of decompressed
/// bytes: gzip files (by magic sniff, not extension) stream through
/// [`GzipStreamReader`], anything else streams as-is. Either way the
/// memory held is a couple of fixed-size buffers, not the file.
pub fn open_edge_stream(path: &Path) -> io::Result<Box<dyn BufRead>> {
    sp_fault::inject(sp_fault::sites::DATASET_READ)?;
    let file = File::open(path)?;
    let mut raw = BufReader::new(file);
    let head = raw.fill_buf()?;
    if head.len() >= 2 && head[0] == 0x1F && head[1] == 0x8B {
        Ok(Box::new(BufReader::new(GzipStreamReader::new(raw))))
    } else {
        Ok(Box::new(raw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inflate::{gunzip, gzip_store};

    fn read_all_chunked<R: Read>(mut r: R, chunk: usize) -> io::Result<Vec<u8>> {
        let mut out = Vec::new();
        let mut buf = vec![0u8; chunk];
        loop {
            let n = r.read(&mut buf)?;
            if n == 0 {
                return Ok(out);
            }
            out.extend_from_slice(&buf[..n]);
        }
    }

    #[test]
    fn stored_member_streams_identically() {
        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 253) as u8).collect();
        let gz = gzip_store(&data);
        for chunk in [1, 7, 4096] {
            let got = read_all_chunked(GzipStreamReader::new(&gz[..]), chunk).unwrap();
            assert_eq!(got, data, "chunk {chunk}");
        }
    }

    #[test]
    fn multi_member_streams_identically() {
        let mut gz = gzip_store(b"alpha|");
        gz.extend_from_slice(&gzip_store(b"beta"));
        let got = read_all_chunked(GzipStreamReader::new(&gz[..]), 3).unwrap();
        assert_eq!(got, b"alpha|beta");
        assert_eq!(got, gunzip(&gz).unwrap());
    }

    #[test]
    fn truncation_is_unexpected_eof() {
        let gz = gzip_store(b"0123456789");
        for cut in 0..gz.len() {
            let err = read_all_chunked(GzipStreamReader::new(&gz[..cut]), 16).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut {cut}");
        }
    }

    #[test]
    fn corrupt_crc_is_invalid_data() {
        let mut gz = gzip_store(b"checksummed");
        let n = gz.len();
        gz[n - 8] ^= 0xFF;
        let err = read_all_chunked(GzipStreamReader::new(&gz[..]), 16).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn trailing_garbage_is_invalid_data() {
        let mut gz = gzip_store(b"ok");
        gz.extend_from_slice(b"junk");
        let err = read_all_chunked(GzipStreamReader::new(&gz[..]), 16).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn empty_payload_streams() {
        let gz = gzip_store(b"");
        let got = read_all_chunked(GzipStreamReader::new(&gz[..]), 16).unwrap();
        assert!(got.is_empty());
    }
}
