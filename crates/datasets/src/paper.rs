//! Stand-ins for the six paper datasets (§VI-A).
//!
//! | Dataset     | |V|        | |E|        | family (stand-in)            |
//! |-------------|-----------|-----------|------------------------------|
//! | Chameleon   | 2 277     | 31 421    | BA, m=14 (dense hyperlink)   |
//! | PPI         | 3 890     | 76 584    | BA, m=20 (hub-heavy biology) |
//! | Power       | 4 941     | 6 594     | tree + shortcuts (grid)      |
//! | Arxiv       | 5 242     | 14 496    | Holme–Kim, m=3 (clustered)   |
//! | BlogCatalog | 10 312    | 333 983   | BA, m=33 (dense social)      |
//! | DBLP        | 2 244 021 | 4 354 534 | BA, m=2 (sparse scholarly)   |
//!
//! Each generator is steered to the *exact* published edge count with
//! [`generators::adjust_to_edge_count`] so the privacy accounting's
//! sampling rate `γ = B/|E|` matches the paper run for run. A `scale`
//! knob shrinks both counts proportionally for quick experiments
//! (DBLP at full scale is ~4.4M edges — supported, but the benches
//! default to 1%).

use crate::generators;
use crate::loaders::{self, DatasetManifest, LoadError};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sp_graph::io::ReadOptions;
use sp_graph::Graph;
use std::path::{Path, PathBuf};

/// The six evaluation datasets of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PaperDataset {
    /// English-Wikipedia chameleon article network.
    Chameleon,
    /// Human protein–protein interaction network.
    Ppi,
    /// Western-US power grid.
    Power,
    /// arXiv astrophysics collaboration network.
    Arxiv,
    /// BlogCatalog social network.
    BlogCatalog,
    /// DBLP scholarly network.
    Dblp,
}

impl PaperDataset {
    /// All six, in the paper's order.
    pub fn all() -> [PaperDataset; 6] {
        [
            PaperDataset::Chameleon,
            PaperDataset::Ppi,
            PaperDataset::Power,
            PaperDataset::Arxiv,
            PaperDataset::BlogCatalog,
            PaperDataset::Dblp,
        ]
    }

    /// The three datasets used by the parameter studies (Tables II–VI)
    /// and the link-prediction figure (Fig. 4).
    pub fn parameter_study() -> [PaperDataset; 3] {
        [
            PaperDataset::Chameleon,
            PaperDataset::Power,
            PaperDataset::Arxiv,
        ]
    }

    /// Display name as used in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            PaperDataset::Chameleon => "Chameleon",
            PaperDataset::Ppi => "PPI",
            PaperDataset::Power => "Power",
            PaperDataset::Arxiv => "Arxiv",
            PaperDataset::BlogCatalog => "BlogCatalog",
            PaperDataset::Dblp => "DBLP",
        }
    }

    /// Published `(|V|, |E|)`.
    pub fn published_size(&self) -> (usize, usize) {
        match self {
            PaperDataset::Chameleon => (2_277, 31_421),
            PaperDataset::Ppi => (3_890, 76_584),
            PaperDataset::Power => (4_941, 6_594),
            PaperDataset::Arxiv => (5_242, 14_496),
            PaperDataset::BlogCatalog => (10_312, 333_983),
            PaperDataset::Dblp => (2_244_021, 4_354_534),
        }
    }

    /// Generates the stand-in at `scale ∈ (0, 1]` of the published
    /// size (node and edge counts scaled together), deterministic in
    /// `seed`.
    pub fn generate(&self, scale: f64, seed: u64) -> Graph {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0,1]");
        let (n0, m0) = self.published_size();
        let n = ((n0 as f64 * scale).round() as usize).max(32);
        let m_target = ((m0 as f64 * scale).round() as usize)
            .max(n) // keep the graph at least tree-dense
            .min(n * (n - 1) / 2);
        let mut rng = StdRng::seed_from_u64(seed ^ self.seed_salt());
        let base = match self {
            PaperDataset::Chameleon => {
                let m = per_node(m_target, n).max(2);
                generators::barabasi_albert(n, m, &mut rng)
            }
            PaperDataset::Ppi => {
                let m = per_node(m_target, n).max(2);
                generators::barabasi_albert(n, m, &mut rng)
            }
            PaperDataset::Power => {
                return generators::tree_plus_shortcuts(n, m_target, &mut rng);
            }
            PaperDataset::Arxiv => {
                let m = per_node(m_target, n).max(2);
                generators::holme_kim(n, m, 0.7, &mut rng)
            }
            PaperDataset::BlogCatalog => {
                let m = per_node(m_target, n).max(2);
                generators::barabasi_albert(n, m, &mut rng)
            }
            PaperDataset::Dblp => {
                let m = per_node(m_target, n).max(1);
                generators::barabasi_albert(n, m, &mut rng)
            }
        };
        generators::adjust_to_edge_count(&base, m_target, &mut rng)
    }

    /// Generates at full published size.
    pub fn generate_full(&self, seed: u64) -> Graph {
        self.generate(1.0, seed)
    }

    /// On-disk manifest: the filenames this dataset is distributed
    /// under (SNAP exports and KONECT `out.*` codes, each also probed
    /// with `.gz` and inside a `<name>/` subdirectory) plus the
    /// published size for deviation reporting.
    pub fn manifest(&self) -> DatasetManifest {
        let (expected_nodes, expected_edges) = self.published_size();
        let (name, candidates, label_candidates): (
            _,
            &'static [&'static str],
            &'static [&'static str],
        ) = match self {
            PaperDataset::Chameleon => (
                "Chameleon",
                &[
                    "musae_chameleon_edges.csv",
                    "chameleon_edges.csv",
                    "chameleon.edges",
                    "chameleon.txt",
                    "out.chameleon",
                ],
                &[],
            ),
            PaperDataset::Ppi => (
                "PPI",
                &["out.maayan-vidal", "ppi.edges", "ppi.txt", "ppi_edges.csv"],
                &["ppi_labels.txt", "ppi-class_map.csv", "labels.txt"],
            ),
            PaperDataset::Power => (
                "Power",
                &[
                    "out.opsahl-powergrid",
                    "power.edges",
                    "power.txt",
                    "uspowergrid.txt",
                ],
                &[],
            ),
            PaperDataset::Arxiv => (
                "Arxiv",
                &[
                    "ca-GrQc.txt",
                    "CA-GrQc.txt",
                    "out.ca-GrQc",
                    "arxiv.edges",
                    "arxiv.txt",
                ],
                &[],
            ),
            PaperDataset::BlogCatalog => (
                "BlogCatalog",
                &[
                    "out.soc-BlogCatalog-ASU",
                    "blogcatalog.edges",
                    "blogcatalog.txt",
                    "edges.csv",
                ],
                &["group-edges.csv", "groups.csv", "blogcatalog_labels.txt"],
            ),
            PaperDataset::Dblp => (
                "DBLP",
                &[
                    "out.dblp_coauthor",
                    "com-dblp.ungraph.txt",
                    "dblp.edges",
                    "dblp.txt",
                ],
                &[],
            ),
        };
        DatasetManifest {
            name,
            candidates,
            label_candidates,
            expected_nodes,
            expected_edges,
        }
    }

    /// Loads this dataset from an on-disk edge list (SNAP or KONECT
    /// layout, gzip-transparent). Real datasets keep duplicate rows
    /// (directed listings) and self-loops, so those are dropped, but
    /// counts *declared by the file itself* — SNAP `# Nodes:`/`Edges:`
    /// banners, KONECT `%` meta lines or `meta.*` sidecars — are
    /// enforced and a contradiction is a [`LoadError::SizeMismatch`].
    ///
    /// ```no_run
    /// use sp_datasets::PaperDataset;
    /// use std::path::Path;
    ///
    /// let g = PaperDataset::Arxiv
    ///     .load(Path::new("data/ca-GrQc.txt.gz"))
    ///     .expect("download ca-GrQc from SNAP first");
    /// assert_eq!(g.num_nodes(), 5242);
    /// ```
    pub fn load(&self, path: &Path) -> Result<Graph, LoadError> {
        let opts = ReadOptions {
            enforce_declared_counts: true,
            skip_column_header: true,
            ..ReadOptions::default()
        };
        Ok(loaders::load_edge_list_path(path, opts)?.graph)
    }

    /// First existing edge-list candidate for this dataset under
    /// `data_dir`, if any (see [`PaperDataset::manifest`] for the
    /// probe order).
    pub fn locate(&self, data_dir: &Path) -> Option<PathBuf> {
        self.manifest().locate(data_dir)
    }

    /// Resolution fallback chain: the real edge list when `data_dir`
    /// holds one, the synthetic stand-in otherwise.
    ///
    /// With `data_dir = None` this is *exactly* [`PaperDataset::generate`]
    /// — bit-identical graphs, no logging — so callers that never
    /// configure a data dir keep their pre-existing behaviour. With a
    /// data dir, the chain logs (to stderr) which branch was taken:
    /// a located file that fails to load falls back to the stand-in
    /// rather than aborting an experiment sweep, and a loaded graph
    /// whose size deviates from the published `(|V|, |E|)` by more
    /// than 2 % is flagged. `scale` only applies to the synthetic
    /// branch; real data is never subsampled.
    pub fn resolve(&self, data_dir: Option<&Path>, scale: f64, seed: u64) -> Graph {
        let Some(dir) = data_dir else {
            return self.generate(scale, seed);
        };
        match self.locate(dir) {
            Some(path) => match self.load(&path) {
                Ok(g) => {
                    eprintln!(
                        "[data] {}: loaded {} ({} nodes, {} edges)",
                        self.name(),
                        path.display(),
                        g.num_nodes(),
                        g.num_edges()
                    );
                    let (n0, m0) = self.published_size();
                    let off = |a: usize, b: usize| (a as f64 - b as f64).abs() / b as f64 > 0.02;
                    if off(g.num_nodes(), n0) || off(g.num_edges(), m0) {
                        eprintln!(
                            "[data] {}: warning: size deviates from published ({n0} nodes, {m0} edges)",
                            self.name()
                        );
                    }
                    g
                }
                Err(e) => {
                    eprintln!(
                        "[data] {}: failed to load {}: {e}; using synthetic stand-in",
                        self.name(),
                        path.display()
                    );
                    self.generate(scale, seed)
                }
            },
            None => {
                eprintln!(
                    "[data] {}: no edge list under {}; using synthetic stand-in",
                    self.name(),
                    dir.display()
                );
                self.generate(scale, seed)
            }
        }
    }

    fn seed_salt(&self) -> u64 {
        match self {
            PaperDataset::Chameleon => 0x0c0a_0001,
            PaperDataset::Ppi => 0x0c0a_0002,
            PaperDataset::Power => 0x0c0a_0003,
            PaperDataset::Arxiv => 0x0c0a_0004,
            PaperDataset::BlogCatalog => 0x0c0a_0005,
            PaperDataset::Dblp => 0x0c0a_0006,
        }
    }
}

/// BA/HK attachment parameter that lands near the target density.
fn per_node(m_edges: usize, n: usize) -> usize {
    (m_edges as f64 / n as f64).round() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_graph::algo;

    #[test]
    fn full_scale_sizes_match_published() {
        for ds in [
            PaperDataset::Chameleon,
            PaperDataset::Power,
            PaperDataset::Arxiv,
        ] {
            let g = ds.generate_full(1);
            let (n, m) = ds.published_size();
            assert_eq!(g.num_nodes(), n, "{}", ds.name());
            assert_eq!(g.num_edges(), m, "{}", ds.name());
        }
    }

    #[test]
    fn scaled_sizes_are_proportional() {
        let g = PaperDataset::Chameleon.generate(0.25, 2);
        let (n, m) = PaperDataset::Chameleon.published_size();
        assert_eq!(g.num_nodes(), (n as f64 * 0.25).round() as usize);
        assert_eq!(g.num_edges(), (m as f64 * 0.25).round() as usize);
    }

    #[test]
    fn deterministic_per_seed_distinct_across_datasets() {
        let a = PaperDataset::Power.generate(0.2, 7);
        let b = PaperDataset::Power.generate(0.2, 7);
        assert_eq!(a.edges(), b.edges());
        let c = PaperDataset::Arxiv.generate(0.2, 7);
        assert_ne!(a.edges(), c.edges());
    }

    #[test]
    fn power_is_sparse_and_connected() {
        let g = PaperDataset::Power.generate(0.5, 3);
        assert!(algo::is_connected(&g));
        assert!(g.avg_degree() < 3.5, "power grid must stay sparse");
    }

    #[test]
    fn chameleon_standin_is_hub_heavy() {
        let g = PaperDataset::Chameleon.generate(0.25, 4);
        assert!(g.max_degree() as f64 > 4.0 * g.avg_degree());
    }

    #[test]
    fn arxiv_standin_is_clustered() {
        let g = PaperDataset::Arxiv.generate(0.25, 5);
        let cc = algo::global_clustering_coefficient(&g);
        assert!(cc > 0.05, "HK stand-in should cluster, got {cc}");
    }

    #[test]
    fn parameter_study_subset() {
        let names: Vec<_> = PaperDataset::parameter_study()
            .iter()
            .map(|d| d.name())
            .collect();
        assert_eq!(names, vec!["Chameleon", "Power", "Arxiv"]);
    }

    #[test]
    #[should_panic(expected = "scale must be in")]
    fn rejects_zero_scale() {
        PaperDataset::Ppi.generate(0.0, 1);
    }

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("sp_datasets_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn resolve_without_data_dir_is_bit_identical_to_generate() {
        for ds in PaperDataset::all() {
            let scale = if ds == PaperDataset::Dblp {
                0.002
            } else {
                0.05
            };
            let a = ds.resolve(None, scale, 11);
            let b = ds.generate(scale, 11);
            assert_eq!(a.edges(), b.edges(), "{}", ds.name());
        }
    }

    #[test]
    fn resolve_with_empty_dir_falls_back_to_generate() {
        let dir = scratch_dir("empty");
        let a = PaperDataset::Power.resolve(Some(&dir), 0.1, 3);
        let b = PaperDataset::Power.generate(0.1, 3);
        assert_eq!(a.edges(), b.edges());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resolve_prefers_real_file() {
        let dir = scratch_dir("real");
        std::fs::write(dir.join("power.edges"), "1 2\n2 3\n3 4\n").unwrap();
        let g = PaperDataset::Power.resolve(Some(&dir), 0.1, 3);
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_enforces_declared_counts() {
        let dir = scratch_dir("mismatch");
        let path = dir.join("arxiv.txt");
        std::fs::write(&path, "# Nodes: 3 Edges: 99\n1 2\n2 3\n").unwrap();
        let err = PaperDataset::Arxiv.load(&path).unwrap_err();
        assert!(
            matches!(
                err,
                crate::LoadError::SizeMismatch {
                    what: "edges",
                    declared: 99,
                    actual: 2,
                }
            ),
            "got {err:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn locate_probes_subdirectory_and_gz() {
        let dir = scratch_dir("probe");
        let sub = dir.join("chameleon");
        std::fs::create_dir_all(&sub).unwrap();
        std::fs::write(sub.join("chameleon.txt.gz"), b"not really gz").unwrap();
        let found = PaperDataset::Chameleon.locate(&dir).unwrap();
        assert!(found.ends_with("chameleon/chameleon.txt.gz"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
