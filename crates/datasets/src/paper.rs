//! Stand-ins for the six paper datasets (§VI-A).
//!
//! | Dataset     | |V|        | |E|        | family (stand-in)            |
//! |-------------|-----------|-----------|------------------------------|
//! | Chameleon   | 2 277     | 31 421    | BA, m=14 (dense hyperlink)   |
//! | PPI         | 3 890     | 76 584    | BA, m=20 (hub-heavy biology) |
//! | Power       | 4 941     | 6 594     | tree + shortcuts (grid)      |
//! | Arxiv       | 5 242     | 14 496    | Holme–Kim, m=3 (clustered)   |
//! | BlogCatalog | 10 312    | 333 983   | BA, m=33 (dense social)      |
//! | DBLP        | 2 244 021 | 4 354 534 | BA, m=2 (sparse scholarly)   |
//!
//! Each generator is steered to the *exact* published edge count with
//! [`generators::adjust_to_edge_count`] so the privacy accounting's
//! sampling rate `γ = B/|E|` matches the paper run for run. A `scale`
//! knob shrinks both counts proportionally for quick experiments
//! (DBLP at full scale is ~4.4M edges — supported, but the benches
//! default to 1%).

use crate::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sp_graph::Graph;

/// The six evaluation datasets of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PaperDataset {
    /// English-Wikipedia chameleon article network.
    Chameleon,
    /// Human protein–protein interaction network.
    Ppi,
    /// Western-US power grid.
    Power,
    /// arXiv astrophysics collaboration network.
    Arxiv,
    /// BlogCatalog social network.
    BlogCatalog,
    /// DBLP scholarly network.
    Dblp,
}

impl PaperDataset {
    /// All six, in the paper's order.
    pub fn all() -> [PaperDataset; 6] {
        [
            PaperDataset::Chameleon,
            PaperDataset::Ppi,
            PaperDataset::Power,
            PaperDataset::Arxiv,
            PaperDataset::BlogCatalog,
            PaperDataset::Dblp,
        ]
    }

    /// The three datasets used by the parameter studies (Tables II–VI)
    /// and the link-prediction figure (Fig. 4).
    pub fn parameter_study() -> [PaperDataset; 3] {
        [
            PaperDataset::Chameleon,
            PaperDataset::Power,
            PaperDataset::Arxiv,
        ]
    }

    /// Display name as used in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            PaperDataset::Chameleon => "Chameleon",
            PaperDataset::Ppi => "PPI",
            PaperDataset::Power => "Power",
            PaperDataset::Arxiv => "Arxiv",
            PaperDataset::BlogCatalog => "BlogCatalog",
            PaperDataset::Dblp => "DBLP",
        }
    }

    /// Published `(|V|, |E|)`.
    pub fn published_size(&self) -> (usize, usize) {
        match self {
            PaperDataset::Chameleon => (2_277, 31_421),
            PaperDataset::Ppi => (3_890, 76_584),
            PaperDataset::Power => (4_941, 6_594),
            PaperDataset::Arxiv => (5_242, 14_496),
            PaperDataset::BlogCatalog => (10_312, 333_983),
            PaperDataset::Dblp => (2_244_021, 4_354_534),
        }
    }

    /// Generates the stand-in at `scale ∈ (0, 1]` of the published
    /// size (node and edge counts scaled together), deterministic in
    /// `seed`.
    pub fn generate(&self, scale: f64, seed: u64) -> Graph {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0,1]");
        let (n0, m0) = self.published_size();
        let n = ((n0 as f64 * scale).round() as usize).max(32);
        let m_target = ((m0 as f64 * scale).round() as usize)
            .max(n) // keep the graph at least tree-dense
            .min(n * (n - 1) / 2);
        let mut rng = StdRng::seed_from_u64(seed ^ self.seed_salt());
        let base = match self {
            PaperDataset::Chameleon => {
                let m = per_node(m_target, n).max(2);
                generators::barabasi_albert(n, m, &mut rng)
            }
            PaperDataset::Ppi => {
                let m = per_node(m_target, n).max(2);
                generators::barabasi_albert(n, m, &mut rng)
            }
            PaperDataset::Power => {
                return generators::tree_plus_shortcuts(n, m_target, &mut rng);
            }
            PaperDataset::Arxiv => {
                let m = per_node(m_target, n).max(2);
                generators::holme_kim(n, m, 0.7, &mut rng)
            }
            PaperDataset::BlogCatalog => {
                let m = per_node(m_target, n).max(2);
                generators::barabasi_albert(n, m, &mut rng)
            }
            PaperDataset::Dblp => {
                let m = per_node(m_target, n).max(1);
                generators::barabasi_albert(n, m, &mut rng)
            }
        };
        generators::adjust_to_edge_count(&base, m_target, &mut rng)
    }

    /// Generates at full published size.
    pub fn generate_full(&self, seed: u64) -> Graph {
        self.generate(1.0, seed)
    }

    fn seed_salt(&self) -> u64 {
        match self {
            PaperDataset::Chameleon => 0x0c0a_0001,
            PaperDataset::Ppi => 0x0c0a_0002,
            PaperDataset::Power => 0x0c0a_0003,
            PaperDataset::Arxiv => 0x0c0a_0004,
            PaperDataset::BlogCatalog => 0x0c0a_0005,
            PaperDataset::Dblp => 0x0c0a_0006,
        }
    }
}

/// BA/HK attachment parameter that lands near the target density.
fn per_node(m_edges: usize, n: usize) -> usize {
    (m_edges as f64 / n as f64).round() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_graph::algo;

    #[test]
    fn full_scale_sizes_match_published() {
        for ds in [
            PaperDataset::Chameleon,
            PaperDataset::Power,
            PaperDataset::Arxiv,
        ] {
            let g = ds.generate_full(1);
            let (n, m) = ds.published_size();
            assert_eq!(g.num_nodes(), n, "{}", ds.name());
            assert_eq!(g.num_edges(), m, "{}", ds.name());
        }
    }

    #[test]
    fn scaled_sizes_are_proportional() {
        let g = PaperDataset::Chameleon.generate(0.25, 2);
        let (n, m) = PaperDataset::Chameleon.published_size();
        assert_eq!(g.num_nodes(), (n as f64 * 0.25).round() as usize);
        assert_eq!(g.num_edges(), (m as f64 * 0.25).round() as usize);
    }

    #[test]
    fn deterministic_per_seed_distinct_across_datasets() {
        let a = PaperDataset::Power.generate(0.2, 7);
        let b = PaperDataset::Power.generate(0.2, 7);
        assert_eq!(a.edges(), b.edges());
        let c = PaperDataset::Arxiv.generate(0.2, 7);
        assert_ne!(a.edges(), c.edges());
    }

    #[test]
    fn power_is_sparse_and_connected() {
        let g = PaperDataset::Power.generate(0.5, 3);
        assert!(algo::is_connected(&g));
        assert!(g.avg_degree() < 3.5, "power grid must stay sparse");
    }

    #[test]
    fn chameleon_standin_is_hub_heavy() {
        let g = PaperDataset::Chameleon.generate(0.25, 4);
        assert!(g.max_degree() as f64 > 4.0 * g.avg_degree());
    }

    #[test]
    fn arxiv_standin_is_clustered() {
        let g = PaperDataset::Arxiv.generate(0.25, 5);
        let cc = algo::global_clustering_coefficient(&g);
        assert!(cc > 0.05, "HK stand-in should cluster, got {cc}");
    }

    #[test]
    fn parameter_study_subset() {
        let names: Vec<_> = PaperDataset::parameter_study()
            .iter()
            .map(|d| d.name())
            .collect();
        assert_eq!(names, vec!["Chameleon", "Power", "Arxiv"]);
    }

    #[test]
    #[should_panic(expected = "scale must be in")]
    fn rejects_zero_scale() {
        PaperDataset::Ppi.generate(0.0, 1);
    }
}
