//! # sp-datasets
//!
//! Synthetic graph generators and seeded stand-ins for the paper's six
//! evaluation datasets.
//!
//! The real datasets (Chameleon, PPI, Power, Arxiv, BlogCatalog, DBLP)
//! are external downloads; this crate generates graphs with the *same
//! node and edge counts* and the matching topology family, per the
//! substitution policy in DESIGN.md. If you have the real edge lists,
//! load them with `sp_graph::io::read_edge_list_file` — every
//! downstream API takes a plain [`sp_graph::Graph`].
//!
//! - [`generators`]: Erdős–Rényi, Barabási–Albert, Holme–Kim
//!   (power-law + clustering), Watts–Strogatz, and random-tree-plus-
//!   shortcuts, all steerable to an exact edge count;
//! - [`paper`]: the six named stand-ins with their published sizes
//!   and a scale knob for quick runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generators;
pub mod paper;

pub use paper::PaperDataset;
