//! # sp-datasets
//!
//! Synthetic graph generators and seeded stand-ins for the paper's six
//! evaluation datasets.
//!
//! The real datasets (Chameleon, PPI, Power, Arxiv, BlogCatalog, DBLP)
//! are external downloads; this crate both generates stand-ins with
//! the *same node and edge counts* and matching topology family, and
//! ingests the real files when they are on disk — every downstream
//! API takes a plain [`sp_graph::Graph`].
//!
//! - [`generators`]: Erdős–Rényi, Barabási–Albert, Holme–Kim
//!   (power-law + clustering), Watts–Strogatz, and random-tree-plus-
//!   shortcuts, all steerable to an exact edge count;
//! - [`inflate`]: a pure-Rust RFC 1951/1952 DEFLATE + gzip decoder
//!   (the build has no registry, so `flate2` cannot be vendored);
//! - [`loaders`]: SNAP / KONECT edge-list and label-sidecar parsing,
//!   gzip-transparent, with typed [`LoadError`]s and per-dataset
//!   filename manifests;
//! - [`paper`]: the six named datasets — synthetic stand-ins with a
//!   scale knob, plus [`PaperDataset::load`] /
//!   [`PaperDataset::resolve`] for running on the real graphs;
//! - [`stream`]: incremental gzip decompression behind `io::Read`
//!   (constant-memory ingestion for the out-of-core pipeline).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generators;
pub mod inflate;
pub mod loaders;
pub mod paper;
pub mod stream;

pub use loaders::LoadError;
pub use paper::PaperDataset;
pub use stream::{open_edge_stream, GzipStreamReader};
