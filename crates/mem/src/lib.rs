//! Byte-accounting memory tracking for the out-of-core pipeline.
//!
//! The workspace forbids `unsafe`, so a true `GlobalAlloc` wrapper is
//! off the table; and the build container gives no `/proc` guarantees,
//! so peak RSS cannot be read back from the OS portably. Instead the
//! blocked/streaming execution paths thread an explicit [`MemTracker`]
//! through every stage and account the bytes of each transient buffer
//! they hold. The tracked numbers are *deterministic* — a function of
//! graph shape, band height, and shard size only — which is what lets
//! `sp_scale_bench` gate bytes/edge in CI where wall-clock numbers
//! would be noise.
//!
//! Accounting convention: a stage [`reserve`](MemTracker::reserve)s the
//! byte size of each buffer the moment it is allocated and releases it
//! when the buffer is dropped (the RAII [`Reservation`] guard makes the
//! release automatic). `peak()` is then the high-water mark of
//! simultaneously-live tracked bytes — the quantity a fixed RSS budget
//! constrains. Untracked ambient allocations (the graph itself, the
//! model matrices) are accounted once up front by the caller via
//! [`MemTracker::reserve`] with their `heap_bytes()`-style sizes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shared byte-accounting tracker: `current` live tracked bytes and
/// the `peak` high-water mark, both updated atomically so parallel
/// band workers can account through one tracker.
#[derive(Debug, Default)]
pub struct MemTracker {
    current: AtomicU64,
    peak: AtomicU64,
}

impl MemTracker {
    /// A fresh tracker with zero live bytes and zero peak.
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh tracker behind an [`Arc`], ready to clone into workers.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Account `bytes` as live and return a guard that releases them
    /// when dropped.
    pub fn reserve(self: &Arc<Self>, bytes: u64) -> Reservation {
        self.add(bytes);
        Reservation {
            tracker: Arc::clone(self),
            bytes,
        }
    }

    /// Account `bytes` as live without a guard; pair with [`release`].
    ///
    /// [`release`]: MemTracker::release
    pub fn add(&self, bytes: u64) {
        let now = self.current.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Release `bytes` previously accounted with [`add`](MemTracker::add).
    pub fn release(&self, bytes: u64) {
        let prev = self.current.fetch_sub(bytes, Ordering::Relaxed);
        debug_assert!(prev >= bytes, "released more bytes than reserved");
    }

    /// Currently live tracked bytes.
    pub fn current(&self) -> u64 {
        self.current.load(Ordering::Relaxed)
    }

    /// High-water mark of simultaneously-live tracked bytes.
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// Reset both counters to zero (between bench configurations).
    pub fn reset(&self) {
        self.current.store(0, Ordering::Relaxed);
        self.peak.store(0, Ordering::Relaxed);
    }
}

/// RAII guard for a [`MemTracker::reserve`] accounting entry: the
/// reserved bytes stay live until the guard drops.
#[derive(Debug)]
pub struct Reservation {
    tracker: Arc<MemTracker>,
    bytes: u64,
}

impl Reservation {
    /// The number of bytes this guard holds live.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Grow the reservation in place (a buffer that was extended).
    pub fn grow(&mut self, extra: u64) {
        self.tracker.add(extra);
        self.bytes += extra;
    }
}

impl Drop for Reservation {
    fn drop(&mut self) {
        self.tracker.release(self.bytes);
    }
}

/// Heap bytes of a `Vec<T>` by capacity — the quantity a tracker entry
/// for an ambient buffer should use.
pub fn vec_bytes<T>(v: &Vec<T>) -> u64 {
    (v.capacity() * std::mem::size_of::<T>()) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_is_high_water_mark() {
        let t = MemTracker::shared();
        let a = t.reserve(100);
        {
            let _b = t.reserve(50);
            assert_eq!(t.current(), 150);
        }
        assert_eq!(t.current(), 100);
        assert_eq!(t.peak(), 150);
        drop(a);
        assert_eq!(t.current(), 0);
        assert_eq!(t.peak(), 150);
    }

    #[test]
    fn grow_extends_reservation() {
        let t = MemTracker::shared();
        let mut r = t.reserve(10);
        r.grow(5);
        assert_eq!(r.bytes(), 15);
        assert_eq!(t.current(), 15);
        drop(r);
        assert_eq!(t.current(), 0);
        assert_eq!(t.peak(), 15);
    }

    #[test]
    fn reset_clears_both_counters() {
        let t = MemTracker::shared();
        t.add(42);
        t.release(42);
        assert_eq!(t.peak(), 42);
        t.reset();
        assert_eq!(t.current(), 0);
        assert_eq!(t.peak(), 0);
    }

    #[test]
    fn vec_bytes_uses_capacity() {
        let v: Vec<u64> = Vec::with_capacity(8);
        assert_eq!(vec_bytes(&v), 64);
    }
}
