//! Graph traversal and structural statistics.
//!
//! These are support algorithms: connected components validate the
//! synthetic dataset generators (a power grid must be connected),
//! BFS distances feed diagnostics, and the clustering coefficient
//! distinguishes the Holme–Kim stand-in (clustered, like Arxiv) from
//! plain Barabási–Albert.

use crate::graph::{Graph, NodeId};
use std::collections::VecDeque;

/// Breadth-first distances from `source`; unreachable nodes get `None`.
pub fn bfs_distances(g: &Graph, source: NodeId) -> Vec<Option<u32>> {
    let n = g.num_nodes();
    assert!((source as usize) < n, "bfs source out of bounds");
    let mut dist = vec![None; n];
    let mut q = VecDeque::new();
    dist[source as usize] = Some(0);
    q.push_back(source);
    while let Some(v) = q.pop_front() {
        let dv = dist[v as usize].unwrap();
        for &u in g.neighbors(v) {
            if dist[u as usize].is_none() {
                dist[u as usize] = Some(dv + 1);
                q.push_back(u);
            }
        }
    }
    dist
}

/// Connected-component labels (`0..k`) for every node, plus the count.
pub fn connected_components(g: &Graph) -> (Vec<u32>, usize) {
    let n = g.num_nodes();
    let mut label = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut stack = Vec::new();
    for start in 0..n {
        if label[start] != u32::MAX {
            continue;
        }
        label[start] = next;
        stack.push(start as NodeId);
        while let Some(v) = stack.pop() {
            for &u in g.neighbors(v) {
                if label[u as usize] == u32::MAX {
                    label[u as usize] = next;
                    stack.push(u);
                }
            }
        }
        next += 1;
    }
    (label, next as usize)
}

/// Size of the largest connected component (0 for the empty graph).
pub fn largest_component_size(g: &Graph) -> usize {
    let (labels, k) = connected_components(g);
    let mut sizes = vec![0usize; k];
    for &l in &labels {
        sizes[l as usize] += 1;
    }
    sizes.into_iter().max().unwrap_or(0)
}

/// True when the graph is connected (vacuously true when empty).
pub fn is_connected(g: &Graph) -> bool {
    g.num_nodes() == 0 || largest_component_size(g) == g.num_nodes()
}

/// Number of common neighbours of `u` and `v` via sorted-list merge.
pub fn common_neighbor_count(g: &Graph, u: NodeId, v: NodeId) -> usize {
    let (mut a, mut b) = (
        g.neighbors(u).iter().peekable(),
        g.neighbors(v).iter().peekable(),
    );
    let mut count = 0;
    while let (Some(&&x), Some(&&y)) = (a.peek(), b.peek()) {
        match x.cmp(&y) {
            std::cmp::Ordering::Less => {
                a.next();
            }
            std::cmp::Ordering::Greater => {
                b.next();
            }
            std::cmp::Ordering::Equal => {
                count += 1;
                a.next();
                b.next();
            }
        }
    }
    count
}

/// Global clustering coefficient: `3 * triangles / wedges`.
///
/// Returns `0.0` when the graph has no wedge (path of length two).
pub fn global_clustering_coefficient(g: &Graph) -> f64 {
    let mut triangles = 0usize; // each counted 3 times, once per vertex pair ordering below
    let mut wedges = 0usize;
    for v in 0..g.num_nodes() as NodeId {
        let d = g.degree(v);
        wedges += d * d.saturating_sub(1) / 2;
        // Count triangles through v's neighbour pairs using the sorted merge.
        let nb = g.neighbors(v);
        for (idx, &u) in nb.iter().enumerate() {
            for &w in &nb[idx + 1..] {
                if g.has_edge(u, w) {
                    triangles += 1;
                }
            }
        }
    }
    if wedges == 0 {
        return 0.0;
    }
    // `triangles` here counts each triangle once per apex vertex = 3 times.
    triangles as f64 / wedges as f64
}

/// Exact triangle count.
pub fn triangle_count(g: &Graph) -> usize {
    let mut t = 0usize;
    for &(u, v) in g.edges() {
        t += common_neighbor_count(g, u, v);
    }
    t / 3
}

/// Degree histogram: `hist[d]` = number of nodes with degree `d`.
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_degree() + 1];
    for v in 0..g.num_nodes() {
        hist[g.degree(v as NodeId)] += 1;
    }
    hist
}

/// Core numbers of every node (Batagelj–Zaveršnik peeling): the
/// largest `k` such that the node belongs to a subgraph where every
/// node has degree ≥ `k`. Used to validate that dataset stand-ins
/// reproduce the target family's core structure (BA graphs have core
/// number ≈ m; trees have core number 1).
#[allow(clippy::needless_range_loop)] // index arithmetic is the point here
pub fn core_numbers(g: &Graph) -> Vec<u32> {
    let n = g.num_nodes();
    let mut degree: Vec<usize> = g.degrees();
    let max_d = degree.iter().copied().max().unwrap_or(0);
    // Bucket sort nodes by degree.
    let mut bins = vec![0usize; max_d + 2];
    for &d in &degree {
        bins[d] += 1;
    }
    let mut start = 0usize;
    for d in 0..=max_d {
        let count = bins[d];
        bins[d] = start;
        start += count;
    }
    let mut pos = vec![0usize; n];
    let mut order = vec![0 as NodeId; n];
    {
        let mut cursor = bins.clone();
        for v in 0..n {
            let d = degree[v];
            pos[v] = cursor[d];
            order[cursor[d]] = v as NodeId;
            cursor[d] += 1;
        }
    }
    let mut core = vec![0u32; n];
    for i in 0..n {
        let v = order[i];
        core[v as usize] = degree[v as usize] as u32;
        for &u in g.neighbors(v) {
            let du = degree[u as usize];
            if du > degree[v as usize] {
                // Move u one bucket down: swap with the first element
                // of its current bucket.
                let pu = pos[u as usize];
                let pw = bins[du];
                let w = order[pw];
                if u != w {
                    order.swap(pu, pw);
                    pos[u as usize] = pw;
                    pos[w as usize] = pu;
                }
                bins[du] += 1;
                degree[u as usize] -= 1;
            }
        }
    }
    core
}

/// Degree assortativity (Pearson correlation of endpoint degrees over
/// edges). Social networks are assortative (> 0), technological and
/// BA-style networks disassortative-to-neutral — another stand-in
/// validation statistic. Returns `None` when undefined (fewer than two
/// edges or zero degree variance).
pub fn degree_assortativity(g: &Graph) -> Option<f64> {
    if g.num_edges() < 2 {
        return None;
    }
    // Each undirected edge contributes both orientations, the standard
    // convention for the Newman assortativity coefficient.
    let mut xs = Vec::with_capacity(2 * g.num_edges());
    let mut ys = Vec::with_capacity(2 * g.num_edges());
    for &(u, v) in g.edges() {
        let du = g.degree(u) as f64;
        let dv = g.degree(v) as f64;
        xs.push(du);
        ys.push(dv);
        xs.push(dv);
        ys.push(du);
    }
    // Inline Pearson to avoid a dependency on sp-linalg.
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let (mut sxy, mut sxx, mut syy) = (0.0, 0.0, 0.0);
    for i in 0..xs.len() {
        let (dx, dy) = (xs[i] - mx, ys[i] - my);
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return None;
    }
    Some(sxy / (sxx.sqrt() * syy.sqrt()))
}

/// Subgraph induced by `nodes` (relabelled to `0..nodes.len()` in the
/// given order). Returns the subgraph and the old→new id map.
///
/// # Panics
/// Panics if `nodes` contains duplicates or out-of-range ids.
pub fn induced_subgraph(g: &Graph, nodes: &[NodeId]) -> (Graph, Vec<NodeId>) {
    let mut new_id = vec![u32::MAX; g.num_nodes()];
    for (new, &old) in nodes.iter().enumerate() {
        assert!((old as usize) < g.num_nodes(), "node {old} out of range");
        assert_eq!(new_id[old as usize], u32::MAX, "duplicate node {old}");
        new_id[old as usize] = new as NodeId;
    }
    let mut edges = Vec::new();
    for &old in nodes {
        for &u in g.neighbors(old) {
            let (a, b) = (new_id[old as usize], new_id[u as usize]);
            if b != u32::MAX && a < b {
                edges.push((a, b));
            }
        }
    }
    (Graph::from_edges(nodes.len(), edges), nodes.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn triangle_plus_isolate() -> Graph {
        // Triangle 0-1-2 plus isolated node 3.
        Graph::from_edges(4, [(0, 1), (1, 2), (0, 2)])
    }

    #[test]
    fn bfs_on_path() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3)]);
    }

    #[test]
    fn bfs_unreachable() {
        let g = triangle_plus_isolate();
        let d = bfs_distances(&g, 0);
        assert_eq!(d[3], None);
        assert_eq!(d[2], Some(1));
    }

    #[test]
    fn components_counted() {
        let g = triangle_plus_isolate();
        let (labels, k) = connected_components(&g);
        assert_eq!(k, 2);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_ne!(labels[0], labels[3]);
        assert_eq!(largest_component_size(&g), 3);
        assert!(!is_connected(&g));
        assert!(is_connected(&Graph::from_edges(2, [(0, 1)])));
        assert!(is_connected(&Graph::from_edges(0, std::iter::empty())));
    }

    #[test]
    fn common_neighbors_merge() {
        let g = Graph::from_edges(5, [(0, 2), (0, 3), (1, 2), (1, 3), (1, 4)]);
        assert_eq!(common_neighbor_count(&g, 0, 1), 2); // {2, 3}
        assert_eq!(common_neighbor_count(&g, 0, 4), 0);
    }

    #[test]
    fn clustering_of_triangle_is_one() {
        let g = triangle_plus_isolate();
        assert!((global_clustering_coefficient(&g) - 1.0).abs() < 1e-12);
        assert_eq!(triangle_count(&g), 1);
    }

    #[test]
    fn clustering_of_star_is_zero() {
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3)]);
        assert_eq!(global_clustering_coefficient(&g), 0.0);
        assert_eq!(triangle_count(&g), 0);
    }

    #[test]
    fn degree_histogram_shape() {
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3)]);
        // degrees: 3,1,1,1
        assert_eq!(degree_histogram(&g), vec![0, 3, 0, 1]);
    }

    #[test]
    fn core_numbers_of_path_are_one() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        assert_eq!(core_numbers(&g), vec![1, 1, 1, 1]);
    }

    #[test]
    fn core_numbers_of_clique_plus_pendant() {
        // K4 on 0..4 plus pendant 4-0: clique nodes are 3-core, the
        // pendant is 1-core.
        let g = Graph::from_edges(5, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (0, 4)]);
        let core = core_numbers(&g);
        assert_eq!(core[4], 1);
        for (v, &c) in core.iter().enumerate().take(4) {
            assert_eq!(c, 3, "clique node {v}");
        }
    }

    #[test]
    fn core_numbers_peel_nested_structure() {
        // Triangle 0-1-2 with a path 2-3-4 hanging off: triangle is
        // 2-core, the tail 1-core.
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)]);
        assert_eq!(core_numbers(&g), vec![2, 2, 2, 1, 1]);
    }

    #[test]
    fn assortativity_of_star_is_negative() {
        // Stars are maximally disassortative: hubs connect to leaves.
        let g = Graph::from_edges(6, (1..6).map(|i| (0u32, i as u32)));
        let r = degree_assortativity(&g).unwrap();
        assert!(r < -0.99, "star assortativity {r}");
    }

    #[test]
    fn assortativity_of_regular_graph_is_undefined() {
        // A cycle is 2-regular: zero degree variance.
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        assert_eq!(degree_assortativity(&g), None);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]);
        let (sub, map) = induced_subgraph(&g, &[1, 2, 3]);
        assert_eq!(sub.num_nodes(), 3);
        assert_eq!(sub.num_edges(), 2); // 1-2 and 2-3 survive
        assert!(sub.has_edge(0, 1)); // old 1-2
        assert!(sub.has_edge(1, 2)); // old 2-3
        assert!(!sub.has_edge(0, 2));
        assert_eq!(map, vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "duplicate node")]
    fn induced_subgraph_rejects_duplicates() {
        let g = Graph::from_edges(3, [(0, 1)]);
        induced_subgraph(&g, &[0, 0]);
    }
}
