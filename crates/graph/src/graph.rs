//! Core graph type.
//!
//! [`Graph`] is immutable after construction: the training pipeline
//! never mutates the input graph, and immutability lets the adjacency
//! arrays be shared freely across threads in the experiment sweeps.
//! Use [`GraphBuilder`] (or [`Graph::from_edges`]) to construct one;
//! self-loops and duplicate edges are dropped, matching the paper's
//! preprocessing ("all datasets are preprocessed to remove self-loops",
//! §VI-A).

use rand::Rng;

/// Dense node identifier.
pub type NodeId = u32;

/// An undirected, unweighted simple graph in CSR form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    /// `offsets[v]..offsets[v+1]` indexes `neighbors` for node `v`.
    offsets: Vec<usize>,
    /// Concatenated sorted neighbour lists.
    neighbors: Vec<NodeId>,
    /// Canonical edge list with `u < v`, sorted lexicographically.
    edges: Vec<(NodeId, NodeId)>,
}

/// Incremental builder that deduplicates edges and drops self-loops.
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    num_nodes: usize,
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Builder for a graph with `num_nodes` nodes (ids `0..num_nodes`).
    pub fn new(num_nodes: usize) -> Self {
        assert!(
            num_nodes <= u32::MAX as usize,
            "node count {num_nodes} exceeds u32 id space"
        );
        Self {
            num_nodes,
            edges: Vec::new(),
        }
    }

    /// Adds an undirected edge; self-loops are silently ignored,
    /// duplicates are removed at [`GraphBuilder::build`] time.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        assert!(
            (u as usize) < self.num_nodes && (v as usize) < self.num_nodes,
            "edge ({u},{v}) out of bounds for {} nodes",
            self.num_nodes
        );
        if u == v {
            return;
        }
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.edges.push((a, b));
    }

    /// Number of queued (possibly duplicate) edges.
    pub fn pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalises into an immutable [`Graph`].
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();
        Graph::from_canonical_edges(self.num_nodes, self.edges)
    }
}

impl Graph {
    /// Builds a graph from an arbitrary edge iterator (orientation and
    /// duplicates are normalised away).
    pub fn from_edges<I>(num_nodes: usize, edges: I) -> Self
    where
        I: IntoIterator<Item = (NodeId, NodeId)>,
    {
        let mut b = GraphBuilder::new(num_nodes);
        for (u, v) in edges {
            b.add_edge(u, v);
        }
        b.build()
    }

    /// `edges` must already be canonical: `u < v`, sorted, deduplicated.
    pub(crate) fn from_canonical_edges(num_nodes: usize, edges: Vec<(NodeId, NodeId)>) -> Self {
        let mut degree = vec![0usize; num_nodes];
        for &(u, v) in &edges {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = vec![0usize; num_nodes + 1];
        for v in 0..num_nodes {
            offsets[v + 1] = offsets[v] + degree[v];
        }
        let mut cursor = offsets.clone();
        let mut neighbors = vec![0 as NodeId; offsets[num_nodes]];
        for &(u, v) in &edges {
            neighbors[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            neighbors[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        // Each neighbour list is filled in sorted order because `edges`
        // is sorted, except that a node's smaller neighbours arrive via
        // the (u, v) entries where it plays the `v` role; sort to be safe.
        for v in 0..num_nodes {
            neighbors[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        Self {
            offsets,
            neighbors,
            edges,
        }
    }

    /// Number of nodes `|V|`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `|E|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Sorted neighbour list of `v`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.neighbors[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// All degrees as a vector (index = node id).
    pub fn degrees(&self) -> Vec<usize> {
        (0..self.num_nodes())
            .map(|v| self.degree(v as NodeId))
            .collect()
    }

    /// Membership test via binary search on the sorted neighbour list.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return false;
        }
        // Search from the lower-degree endpoint.
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Canonical edge list (`u < v`, lexicographically sorted).
    #[inline]
    pub fn edges(&self) -> &[(NodeId, NodeId)] {
        &self.edges
    }

    /// Uniformly random node id.
    pub fn random_node<R: Rng + ?Sized>(&self, rng: &mut R) -> NodeId {
        assert!(self.num_nodes() > 0, "random_node on empty graph");
        rng.gen_range(0..self.num_nodes() as NodeId)
    }

    /// Uniformly random node that is neither `v` nor one of its
    /// neighbours — the negative-sampling primitive of Algorithm 1
    /// (rejection loop, identical to the paper's `while True` block).
    ///
    /// Returns `None` if `v` is adjacent to every other node (no valid
    /// negative exists), rather than looping forever.
    pub fn random_non_neighbor<R: Rng + ?Sized>(&self, v: NodeId, rng: &mut R) -> Option<NodeId> {
        let n = self.num_nodes();
        if self.degree(v) + 1 >= n {
            return None;
        }
        loop {
            let c = rng.gen_range(0..n as NodeId);
            if c != v && !self.has_edge(v, c) {
                return Some(c);
            }
        }
    }

    /// Returns the subgraph induced by keeping exactly `keep` edges
    /// (same node set), used by the link-prediction train/test split.
    pub fn with_edges(&self, keep: &[(NodeId, NodeId)]) -> Graph {
        Graph::from_edges(self.num_nodes(), keep.iter().copied())
    }

    /// Average degree `2|E| / |V|`.
    pub fn avg_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            0.0
        } else {
            2.0 * self.num_edges() as f64 / self.num_nodes() as f64
        }
    }

    /// Maximum degree.
    pub fn max_degree(&self) -> usize {
        (0..self.num_nodes())
            .map(|v| self.degree(v as NodeId))
            .max()
            .unwrap_or(0)
    }

    /// Heap bytes held by the adjacency arrays — what a
    /// [`sp_mem::MemTracker`] entry for a resident graph should
    /// account.
    pub fn heap_bytes(&self) -> u64 {
        (self.offsets.capacity() * std::mem::size_of::<usize>()
            + self.neighbors.capacity() * std::mem::size_of::<NodeId>()
            + self.edges.capacity() * std::mem::size_of::<(NodeId, NodeId)>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn path4() -> Graph {
        // 0 - 1 - 2 - 3
        Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn builder_dedups_and_drops_self_loops() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 0); // duplicate in reverse orientation
        b.add_edge(2, 2); // self-loop, dropped
        b.add_edge(0, 1); // exact duplicate
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edges(), &[(0, 1)]);
    }

    #[test]
    fn adjacency_is_symmetric_and_sorted() {
        let g = Graph::from_edges(5, [(3, 1), (4, 0), (1, 0), (2, 4)]);
        for v in 0..5u32 {
            let nb = g.neighbors(v);
            assert!(nb.windows(2).all(|w| w[0] < w[1]), "unsorted list for {v}");
            for &u in nb {
                assert!(g.neighbors(u).contains(&v), "asymmetry {v}<->{u}");
            }
        }
    }

    #[test]
    fn degrees_and_counts() {
        let g = path4();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degrees(), vec![1, 2, 2, 1]);
        assert!((g.avg_degree() - 1.5).abs() < 1e-12);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn has_edge_both_orientations() {
        let g = path4();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(0, 0));
    }

    #[test]
    fn random_non_neighbor_is_valid() {
        let g = path4();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let c = g.random_non_neighbor(1, &mut rng).unwrap();
            assert_ne!(c, 1);
            assert!(!g.has_edge(1, c));
        }
    }

    #[test]
    fn random_non_neighbor_none_when_saturated() {
        // Complete graph on 3 nodes: node 0 neighbours everyone.
        let g = Graph::from_edges(3, [(0, 1), (0, 2), (1, 2)]);
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(g.random_non_neighbor(0, &mut rng), None);
    }

    #[test]
    fn with_edges_keeps_node_set() {
        let g = path4();
        let sub = g.with_edges(&[(0, 1)]);
        assert_eq!(sub.num_nodes(), 4);
        assert_eq!(sub.num_edges(), 1);
        assert_eq!(sub.degree(3), 0);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = Graph::from_edges(0, std::iter::empty());
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn builder_rejects_out_of_range() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 5);
    }
}
