//! # sp-graph
//!
//! The graph substrate: an undirected, unweighted, simple graph stored
//! as a CSR adjacency structure (§II-A of the paper), plus edge-list
//! I/O and the traversal algorithms the rest of the workspace builds
//! on (BFS, connected components, degree/clustering statistics).
//!
//! Node identifiers are dense `u32` indices `0..|V|`; the paper's
//! graphs top out at a few million nodes, so 32-bit ids halve the
//! adjacency footprint versus `usize` with no loss.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algo;
pub mod graph;
pub mod io;
pub mod streaming;

pub use graph::{Graph, GraphBuilder, NodeId};
pub use streaming::StreamingCsr;
