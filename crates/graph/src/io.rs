//! Edge-list I/O.
//!
//! The six paper datasets are distributed as whitespace-separated edge
//! lists (SNAP / KONECT format); this module reads and writes that
//! format so real datasets can be dropped in alongside the synthetic
//! stand-ins. Lines starting with `#` or `%` are comments; node ids
//! may be arbitrary non-negative integers and are compacted to dense
//! `0..|V|` ids on load.

use crate::graph::{Graph, GraphBuilder, NodeId};
use std::collections::HashMap;
use std::io::{self, BufRead, BufWriter, Write};
use std::path::Path;

/// Error type for edge-list parsing.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line that is neither a comment nor a valid `u v` pair.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse { line, content } => {
                write!(f, "parse error at line {line}: {content:?}")
            }
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Parses an edge list from any reader; returns the graph and the map
/// from original ids to dense ids.
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<(Graph, HashMap<u64, NodeId>), IoError> {
    let mut id_map: HashMap<u64, NodeId> = HashMap::new();
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    let intern = |raw: u64, id_map: &mut HashMap<u64, NodeId>| -> NodeId {
        let next = id_map.len() as NodeId;
        *id_map.entry(raw).or_insert(next)
    };
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let (a, b) = match (parts.next(), parts.next()) {
            (Some(a), Some(b)) => (a, b),
            _ => {
                return Err(IoError::Parse {
                    line: lineno + 1,
                    content: trimmed.to_string(),
                })
            }
        };
        let (pa, pb) = match (a.parse::<u64>(), b.parse::<u64>()) {
            (Ok(x), Ok(y)) => (x, y),
            _ => {
                return Err(IoError::Parse {
                    line: lineno + 1,
                    content: trimmed.to_string(),
                })
            }
        };
        let u = intern(pa, &mut id_map);
        let v = intern(pb, &mut id_map);
        edges.push((u, v));
    }
    let mut b = GraphBuilder::new(id_map.len());
    for (u, v) in edges {
        b.add_edge(u, v);
    }
    Ok((b.build(), id_map))
}

/// Reads an edge-list file from disk.
pub fn read_edge_list_file<P: AsRef<Path>>(
    path: P,
) -> Result<(Graph, HashMap<u64, NodeId>), IoError> {
    let f = std::fs::File::open(path)?;
    read_edge_list(io::BufReader::new(f))
}

/// Writes the canonical edge list (`u v` per line, `u < v`).
pub fn write_edge_list<W: Write>(g: &Graph, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# nodes {} edges {}", g.num_nodes(), g.num_edges())?;
    for &(u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()
}

/// Writes the canonical edge list to a file.
pub fn write_edge_list_file<P: AsRef<Path>>(g: &Graph, path: P) -> io::Result<()> {
    let f = std::fs::File::create(path)?;
    write_edge_list(g, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_comments_and_compacts_ids() {
        let text = "# a comment\n% another\n10 20\n20 30\n\n10 30\n";
        let (g, map) = read_edge_list(Cursor::new(text)).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        // Ids assigned in first-seen order.
        assert_eq!(map[&10], 0);
        assert_eq!(map[&20], 1);
        assert_eq!(map[&30], 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
        assert!(g.has_edge(0, 2));
    }

    #[test]
    fn parse_error_reports_line() {
        let text = "1 2\noops\n";
        match read_edge_list(Cursor::new(text)) {
            Err(IoError::Parse { line, content }) => {
                assert_eq!(line, 2);
                assert_eq!(content, "oops");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn parse_error_on_non_numeric() {
        let text = "a b\n";
        assert!(matches!(
            read_edge_list(Cursor::new(text)),
            Err(IoError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn round_trip_up_to_relabeling() {
        // Reading compacts ids in first-seen order, so the round trip
        // is an isomorphism witnessed by the returned id map.
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 3)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let (g2, map) = read_edge_list(Cursor::new(buf)).unwrap();
        assert_eq!(g2.num_nodes(), g.num_nodes());
        assert_eq!(g2.num_edges(), g.num_edges());
        for &(u, v) in g.edges() {
            assert!(g2.has_edge(map[&(u as u64)], map[&(v as u64)]));
        }
    }

    #[test]
    fn self_loops_dropped_on_read() {
        let (g, _) = read_edge_list(Cursor::new("1 1\n1 2\n")).unwrap();
        assert_eq!(g.num_edges(), 1);
    }
}
