//! Edge-list I/O.
//!
//! The six paper datasets are distributed as SNAP / KONECT edge lists;
//! this module reads and writes that family of formats so real
//! datasets can be dropped in alongside the synthetic stand-ins.
//!
//! Accepted input shape:
//! - one edge per line, first two fields are the endpoints; extra
//!   fields (KONECT weight/timestamp columns) are ignored;
//! - fields separated by any mix of spaces, tabs, and commas;
//! - `\n` or `\r\n` line endings;
//! - `#` (SNAP) and `%` (KONECT) comment lines;
//! - node ids are arbitrary non-negative integers (0- or 1-based,
//!   sparse or dense) and are compacted to `0..|V|` in first-seen
//!   order — the returned id map witnesses the relabeling.
//!
//! The reader is *header-aware*: SNAP `# Nodes: N Edges: M` comments,
//! this module's own `# nodes N edges M` banner, and the KONECT
//! numeric `% M N N` meta line are parsed into declared counts, which
//! [`ReadOptions::enforce_declared_counts`] turns into an integrity
//! check ([`IoError::SizeMismatch`]).

use crate::graph::{Graph, GraphBuilder, NodeId};
use std::collections::{HashMap, HashSet};
use std::io::{self, BufRead, BufWriter, Write};
use std::path::Path;

/// Error type for edge-list parsing.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line that is neither a comment nor a valid `u v` pair.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// A self-loop on a line, with [`ReadOptions::forbid_self_loops`].
    SelfLoop {
        /// 1-based line number.
        line: usize,
    },
    /// A repeated edge (either orientation), with
    /// [`ReadOptions::forbid_duplicates`].
    DuplicateEdge {
        /// 1-based line number.
        line: usize,
    },
    /// A header-declared node or edge count that contradicts the data,
    /// with [`ReadOptions::enforce_declared_counts`].
    SizeMismatch {
        /// `"nodes"` or `"edges"`.
        what: &'static str,
        /// Count declared in the header.
        declared: u64,
        /// Count found in the data.
        actual: u64,
    },
    /// More distinct node ids than the `u32` id space can hold.
    TooManyNodes {
        /// Number of distinct ids seen.
        nodes: u64,
    },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse { line, content } => {
                write!(f, "parse error at line {line}: {content:?}")
            }
            IoError::SelfLoop { line } => write!(f, "self-loop at line {line}"),
            IoError::DuplicateEdge { line } => write!(f, "duplicate edge at line {line}"),
            IoError::SizeMismatch {
                what,
                declared,
                actual,
            } => write!(
                f,
                "header declares {declared} {what} but the data has {actual}"
            ),
            IoError::TooManyNodes { nodes } => {
                write!(f, "{nodes} distinct node ids exceed the u32 id space")
            }
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Knobs for [`read_edge_list_doc`]. The default is the lenient,
/// real-data posture: self-loops and duplicates are dropped (and
/// counted), declared counts are recorded but not enforced.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReadOptions {
    /// Fail with [`IoError::SelfLoop`] instead of dropping self-loops.
    pub forbid_self_loops: bool,
    /// Fail with [`IoError::DuplicateEdge`] instead of deduplicating.
    pub forbid_duplicates: bool,
    /// Fail with [`IoError::SizeMismatch`] when a header-declared
    /// count contradicts the parsed data; see
    /// [`EdgeListDoc::check_declared_counts`] for the exact rules.
    pub enforce_declared_counts: bool,
    /// Silently skip the first data line when it is non-numeric — the
    /// `id1,id2` column banner of SNAP musae CSV exports. Off by
    /// default so a malformed first line stays a parse error.
    pub skip_column_header: bool,
}

impl ReadOptions {
    /// Strict simple-graph posture: any self-loop, duplicate edge, or
    /// declared-count mismatch is an error.
    pub fn strict() -> Self {
        Self {
            forbid_self_loops: true,
            forbid_duplicates: true,
            enforce_declared_counts: true,
            skip_column_header: false,
        }
    }
}

/// A parsed edge list plus everything the file said about itself.
#[derive(Debug)]
pub struct EdgeListDoc {
    /// The simple graph (self-loops and duplicates removed).
    pub graph: Graph,
    /// Original id → dense id, in first-seen order.
    pub id_map: HashMap<u64, NodeId>,
    /// Node count declared by a recognised header, if any.
    pub declared_nodes: Option<u64>,
    /// Edge count declared by a recognised header, if any.
    pub declared_edges: Option<u64>,
    /// Non-comment, non-blank lines (raw edge records, including
    /// self-loops and duplicates).
    pub data_lines: usize,
    /// Self-loop records dropped.
    pub self_loops: usize,
    /// Duplicate records dropped (any orientation).
    pub duplicate_edges: usize,
}

impl EdgeListDoc {
    /// Verifies the header/sidecar-declared counts against the parsed
    /// data — the single integrity check behind
    /// [`ReadOptions::enforce_declared_counts`] and the dataset
    /// loaders. A declared edge count must equal the raw data lines.
    /// A declared node count must not be *smaller* than the distinct
    /// ids seen; a larger one is legal, because isolated nodes are
    /// expressible in a header but not in an edge list (this reader
    /// drops them, keeping `0..|V|` dense).
    pub fn check_declared_counts(&self) -> Result<(), IoError> {
        if let Some(d) = self.declared_edges {
            if d != self.data_lines as u64 {
                return Err(IoError::SizeMismatch {
                    what: "edges",
                    declared: d,
                    actual: self.data_lines as u64,
                });
            }
        }
        if let Some(d) = self.declared_nodes {
            if d < self.id_map.len() as u64 {
                return Err(IoError::SizeMismatch {
                    what: "nodes",
                    declared: d,
                    actual: self.id_map.len() as u64,
                });
            }
        }
        Ok(())
    }
}

/// Splits a data line on the accepted separators (space, tab, comma),
/// tolerating runs and a trailing `\r`.
fn fields(line: &str) -> impl Iterator<Item = &str> {
    line.split([' ', '\t', ',', '\r']).filter(|s| !s.is_empty())
}

/// Scans a `#` comment body for `nodes <n>` / `edges <m>` pairs in
/// either SNAP (`Nodes: 4039`) or this module's (`nodes 4039`) form.
fn scan_hash_header(body: &str, nodes: &mut Option<u64>, edges: &mut Option<u64>) {
    let toks: Vec<&str> = fields(body).collect();
    for w in toks.windows(2) {
        let key = w[0].trim_end_matches(':').to_ascii_lowercase();
        if let Ok(v) = w[1].parse::<u64>() {
            if key == "nodes" && nodes.is_none() {
                *nodes = Some(v);
            } else if key == "edges" && edges.is_none() {
                *edges = Some(v);
            }
        }
    }
}

/// Interprets a KONECT numeric meta comment `% <edges> <rows> [<cols>]`.
/// The node count is only taken for unipartite shapes (missing or
/// equal row/column counts).
fn scan_percent_header(body: &str, nodes: &mut Option<u64>, edges: &mut Option<u64>) -> bool {
    let toks: Vec<&str> = fields(body).collect();
    if toks.is_empty() || toks.len() > 3 {
        return false;
    }
    let nums: Option<Vec<u64>> = toks.iter().map(|t| t.parse::<u64>().ok()).collect();
    let Some(nums) = nums else { return false };
    if edges.is_none() {
        *edges = Some(nums[0]);
    }
    if nodes.is_none() && nums.len() >= 2 && (nums.len() == 2 || nums[1] == nums[2]) {
        *nodes = Some(nums[1]);
    }
    true
}

/// Parses an edge list from any reader, honouring `opts`; returns the
/// graph together with the id map, header declarations, and cleaning
/// statistics.
pub fn read_edge_list_doc<R: BufRead>(
    reader: R,
    opts: ReadOptions,
) -> Result<EdgeListDoc, IoError> {
    let mut id_map: HashMap<u64, NodeId> = HashMap::new();
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut seen: HashSet<(NodeId, NodeId)> = HashSet::new();
    let mut declared_nodes: Option<u64> = None;
    let mut declared_edges: Option<u64> = None;
    let mut konect_meta_done = false;
    let mut data_lines = 0usize;
    let mut self_loops = 0usize;
    let mut duplicate_edges = 0usize;
    let intern = |raw: u64, id_map: &mut HashMap<u64, NodeId>| -> NodeId {
        let next = id_map.len() as NodeId;
        *id_map.entry(raw).or_insert(next)
    };
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(body) = trimmed.strip_prefix('#') {
            scan_hash_header(body, &mut declared_nodes, &mut declared_edges);
            continue;
        }
        if let Some(body) = trimmed.strip_prefix('%') {
            // Only the first numeric %-line is the KONECT size meta;
            // later numeric comments (statistics) are ignored.
            if !konect_meta_done {
                konect_meta_done =
                    scan_percent_header(body, &mut declared_nodes, &mut declared_edges);
            }
            continue;
        }
        data_lines += 1;
        let mut parts = fields(trimmed);
        let (a, b) = match (parts.next(), parts.next()) {
            (Some(a), Some(b)) => (a, b),
            _ => {
                return Err(IoError::Parse {
                    line: lineno + 1,
                    content: trimmed.to_string(),
                })
            }
        };
        let (pa, pb) = match (a.parse::<u64>(), b.parse::<u64>()) {
            (Ok(x), Ok(y)) => (x, y),
            _ => {
                if opts.skip_column_header && data_lines == 1 {
                    // `id1,id2`-style column banner: not an edge record.
                    data_lines = 0;
                    continue;
                }
                return Err(IoError::Parse {
                    line: lineno + 1,
                    content: trimmed.to_string(),
                });
            }
        };
        if pa == pb {
            if opts.forbid_self_loops {
                return Err(IoError::SelfLoop { line: lineno + 1 });
            }
            self_loops += 1;
            // Still intern the id: an isolated self-looping node is a
            // node of the graph.
            intern(pa, &mut id_map);
            continue;
        }
        if id_map.len() + 2 > u32::MAX as usize {
            return Err(IoError::TooManyNodes {
                nodes: id_map.len() as u64 + 2,
            });
        }
        let u = intern(pa, &mut id_map);
        let v = intern(pb, &mut id_map);
        let key = if u < v { (u, v) } else { (v, u) };
        if !seen.insert(key) {
            if opts.forbid_duplicates {
                return Err(IoError::DuplicateEdge { line: lineno + 1 });
            }
            duplicate_edges += 1;
            continue;
        }
        edges.push(key);
    }
    let mut b = GraphBuilder::new(id_map.len());
    for (u, v) in edges {
        b.add_edge(u, v);
    }
    let doc = EdgeListDoc {
        graph: b.build(),
        id_map,
        declared_nodes,
        declared_edges,
        data_lines,
        self_loops,
        duplicate_edges,
    };
    if opts.enforce_declared_counts {
        doc.check_declared_counts()?;
    }
    Ok(doc)
}

/// Parses an edge list from any reader; returns the graph and the map
/// from original ids to dense ids. Lenient: equivalent to
/// [`read_edge_list_doc`] with [`ReadOptions::default`].
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<(Graph, HashMap<u64, NodeId>), IoError> {
    let doc = read_edge_list_doc(reader, ReadOptions::default())?;
    Ok((doc.graph, doc.id_map))
}

/// Reads an edge-list file from disk.
pub fn read_edge_list_file<P: AsRef<Path>>(
    path: P,
) -> Result<(Graph, HashMap<u64, NodeId>), IoError> {
    let f = std::fs::File::open(path)?;
    read_edge_list(io::BufReader::new(f))
}

/// Writes the canonical edge list (`u v` per line, `u < v`).
pub fn write_edge_list<W: Write>(g: &Graph, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# nodes {} edges {}", g.num_nodes(), g.num_edges())?;
    for &(u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()
}

/// Writes the canonical edge list to a file.
pub fn write_edge_list_file<P: AsRef<Path>>(g: &Graph, path: P) -> io::Result<()> {
    let f = std::fs::File::create(path)?;
    write_edge_list(g, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_comments_and_compacts_ids() {
        let text = "# a comment\n% another\n10 20\n20 30\n\n10 30\n";
        let (g, map) = read_edge_list(Cursor::new(text)).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        // Ids assigned in first-seen order.
        assert_eq!(map[&10], 0);
        assert_eq!(map[&20], 1);
        assert_eq!(map[&30], 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
        assert!(g.has_edge(0, 2));
    }

    #[test]
    fn parse_error_reports_line() {
        let text = "1 2\noops\n";
        match read_edge_list(Cursor::new(text)) {
            Err(IoError::Parse { line, content }) => {
                assert_eq!(line, 2);
                assert_eq!(content, "oops");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn parse_error_on_non_numeric() {
        let text = "a b\n";
        assert!(matches!(
            read_edge_list(Cursor::new(text)),
            Err(IoError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn round_trip_up_to_relabeling() {
        // Reading compacts ids in first-seen order, so the round trip
        // is an isomorphism witnessed by the returned id map.
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 3)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let (g2, map) = read_edge_list(Cursor::new(buf)).unwrap();
        assert_eq!(g2.num_nodes(), g.num_nodes());
        assert_eq!(g2.num_edges(), g.num_edges());
        for &(u, v) in g.edges() {
            assert!(g2.has_edge(map[&(u as u64)], map[&(v as u64)]));
        }
    }

    #[test]
    fn self_loops_dropped_on_read() {
        let (g, _) = read_edge_list(Cursor::new("1 1\n1 2\n")).unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    // --- separator and line-ending tolerance ---------------------------

    #[test]
    fn space_separated() {
        let (g, _) = read_edge_list(Cursor::new("1 2\n2 3\n")).unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn tab_separated() {
        let (g, _) = read_edge_list(Cursor::new("1\t2\n2\t3\n")).unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn comma_separated() {
        let (g, _) = read_edge_list(Cursor::new("1,2\n2,3\n")).unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn crlf_line_endings() {
        let (g, map) = read_edge_list(Cursor::new("1 2\r\n2 3\r\n")).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(map.len(), 3);
    }

    #[test]
    fn mixed_separators_and_runs() {
        let (g, _) = read_edge_list(Cursor::new("1,  2\r\n2\t \t3\n3 ,4\n")).unwrap();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.num_nodes(), 4);
    }

    #[test]
    fn extra_columns_ignored() {
        // KONECT weighted/temporal rows: `u v weight timestamp`.
        let (g, _) = read_edge_list(Cursor::new("1 2 1 1083348000\n2 3 -1 1083348095\n")).unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    // --- header awareness ----------------------------------------------

    #[test]
    fn snap_header_counts_parsed() {
        let text = "# Undirected graph (each unordered pair once)\n\
                    # Nodes: 3 Edges: 2\n# FromNodeId\tToNodeId\n1\t2\n2\t3\n";
        let doc = read_edge_list_doc(Cursor::new(text), ReadOptions::default()).unwrap();
        assert_eq!(doc.declared_nodes, Some(3));
        assert_eq!(doc.declared_edges, Some(2));
        assert_eq!(doc.data_lines, 2);
    }

    #[test]
    fn own_writer_header_counts_parsed() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let doc = read_edge_list_doc(Cursor::new(buf), ReadOptions::strict()).unwrap();
        assert_eq!(doc.declared_nodes, Some(3));
        assert_eq!(doc.declared_edges, Some(2));
        assert_eq!(doc.graph.num_edges(), 2);
    }

    #[test]
    fn konect_meta_line_parsed() {
        let text = "% sym unweighted\n% 2 3 3\n1 2\n2 3\n";
        let doc = read_edge_list_doc(Cursor::new(text), ReadOptions::strict()).unwrap();
        assert_eq!(doc.declared_edges, Some(2));
        assert_eq!(doc.declared_nodes, Some(3));
    }

    #[test]
    fn konect_bipartite_meta_skips_node_count() {
        let text = "% bip\n% 2 3 5\n1 2\n2 3\n";
        let doc = read_edge_list_doc(Cursor::new(text), ReadOptions::default()).unwrap();
        assert_eq!(doc.declared_edges, Some(2));
        assert_eq!(doc.declared_nodes, None);
    }

    #[test]
    fn declared_count_mismatch_enforced() {
        let text = "# nodes 3 edges 5\n1 2\n2 3\n";
        let err = read_edge_list_doc(Cursor::new(text), ReadOptions::strict()).unwrap_err();
        match err {
            IoError::SizeMismatch {
                what,
                declared,
                actual,
            } => {
                assert_eq!(what, "edges");
                assert_eq!(declared, 5);
                assert_eq!(actual, 2);
            }
            other => panic!("expected SizeMismatch, got {other:?}"),
        }
    }

    #[test]
    fn declared_isolated_nodes_tolerated() {
        // A header may promise more nodes than the edge records can
        // express (isolated vertices) — our own writer does this for
        // graphs with degree-0 nodes. Not an integrity failure.
        let g = Graph::from_edges(5, [(0, 1), (1, 2)]); // nodes 3,4 isolated
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let doc = read_edge_list_doc(Cursor::new(buf), ReadOptions::strict()).unwrap();
        assert_eq!(doc.declared_nodes, Some(5));
        assert_eq!(doc.graph.num_nodes(), 3);
    }

    #[test]
    fn understated_node_count_rejected() {
        let text = "# nodes 2 edges 2\n1 2\n2 3\n";
        match read_edge_list_doc(Cursor::new(text), ReadOptions::strict()) {
            Err(IoError::SizeMismatch {
                what: "nodes",
                declared: 2,
                actual: 3,
            }) => {}
            other => panic!("expected node SizeMismatch, got {other:?}"),
        }
    }

    #[test]
    fn declared_counts_not_enforced_by_default() {
        let text = "# nodes 3 edges 5\n1 2\n2 3\n";
        let doc = read_edge_list_doc(Cursor::new(text), ReadOptions::default()).unwrap();
        assert_eq!(doc.graph.num_edges(), 2);
        assert_eq!(doc.declared_edges, Some(5));
    }

    // --- strict-mode rejection -----------------------------------------

    #[test]
    fn strict_rejects_self_loop_with_line() {
        let text = "1 2\n3 3\n";
        assert!(matches!(
            read_edge_list_doc(Cursor::new(text), ReadOptions::strict()),
            Err(IoError::SelfLoop { line: 2 })
        ));
    }

    #[test]
    fn strict_rejects_duplicate_either_orientation() {
        let text = "1 2\n2 1\n";
        assert!(matches!(
            read_edge_list_doc(Cursor::new(text), ReadOptions::strict()),
            Err(IoError::DuplicateEdge { line: 2 })
        ));
    }

    #[test]
    fn lenient_counts_cleaning_stats() {
        let text = "% 5 3 3\n1 1\n1 2\n2 1\n1 2\n2 3\n";
        let doc = read_edge_list_doc(Cursor::new(text), ReadOptions::default()).unwrap();
        assert_eq!(doc.data_lines, 5);
        assert_eq!(doc.self_loops, 1);
        assert_eq!(doc.duplicate_edges, 2);
        assert_eq!(doc.graph.num_edges(), 2);
        // Declared counts match the raw records, so strict mode also
        // accepts this file apart from the loop/dup rejections.
        assert_eq!(doc.declared_edges, Some(5));
    }

    #[test]
    fn csv_column_header_skipped_when_allowed() {
        let text = "id1,id2\n0,1\n1,2\n";
        let err = read_edge_list_doc(Cursor::new(text), ReadOptions::default());
        assert!(matches!(err, Err(IoError::Parse { line: 1, .. })));
        let opts = ReadOptions {
            skip_column_header: true,
            ..ReadOptions::default()
        };
        let doc = read_edge_list_doc(Cursor::new(text), opts).unwrap();
        assert_eq!(doc.graph.num_edges(), 2);
        assert_eq!(doc.data_lines, 2);
        // Only the first line gets the banner treatment.
        let late = "0,1\nid1,id2\n";
        assert!(matches!(
            read_edge_list_doc(Cursor::new(late), opts),
            Err(IoError::Parse { line: 2, .. })
        ));
    }

    #[test]
    fn self_loop_still_interns_node() {
        // A node that only ever appears in a self-loop is still a node.
        let (g, map) = read_edge_list(Cursor::new("5 5\n1 2\n")).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(map.len(), 3);
        assert_eq!(g.degree(map[&5]), 0);
    }
}
