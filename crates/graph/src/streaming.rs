//! Bounded-memory CSR construction from an edge stream.
//!
//! The materialized ingestion path holds several transient copies of
//! the graph at once (raw text, a parse-order edge vector, then the
//! CSR arrays). [`StreamingCsr`] is the out-of-core counterpart: it
//! consumes edges one at a time — from a decompressing reader, a
//! generator, or any iterator — holding exactly one canonical edge
//! vector, then finalizes the adjacency arrays in place. With a
//! [`MemTracker`] attached, every buffer it holds is byte-accounted,
//! which is how the scale bench and the RSS-budget tests observe
//! ingestion memory without `/proc`.
//!
//! Determinism: [`StreamingCsr::finish`] canonicalizes (sort + dedup)
//! exactly like [`GraphBuilder::build`](crate::GraphBuilder::build),
//! so the resulting [`Graph`] is bit-identical to the materialized
//! construction for the same edge multiset, in any arrival order.

use crate::graph::{Graph, NodeId};
use sp_mem::MemTracker;
use std::io::{self, BufRead};
use std::sync::Arc;

/// Incremental CSR builder over a stream of (possibly duplicated,
/// possibly self-looping) undirected edges with dense `u32` ids.
pub struct StreamingCsr {
    num_nodes: usize,
    edges: Vec<(NodeId, NodeId)>,
    records: usize,
    self_loops: usize,
    tracker: Option<Arc<MemTracker>>,
    reserved: u64,
}

impl StreamingCsr {
    /// A builder for ids `0..num_nodes`; edges touching larger ids
    /// grow the node count (the stream, not a header, is the truth).
    pub fn new(num_nodes: usize) -> Self {
        Self {
            num_nodes,
            edges: Vec::new(),
            records: 0,
            self_loops: 0,
            tracker: None,
            reserved: 0,
        }
    }

    /// Like [`StreamingCsr::new`], with every held buffer accounted
    /// against `tracker` for the builder's lifetime.
    pub fn with_tracker(num_nodes: usize, tracker: Arc<MemTracker>) -> Self {
        let mut s = Self::new(num_nodes);
        s.tracker = Some(tracker);
        s
    }

    fn sync_reservation(&mut self) {
        if let Some(t) = &self.tracker {
            let now = sp_mem::vec_bytes(&self.edges);
            if now > self.reserved {
                t.add(now - self.reserved);
            } else if now < self.reserved {
                t.release(self.reserved - now);
            }
            self.reserved = now;
        }
    }

    /// Feeds one edge record. Self-loops are counted and dropped;
    /// orientation is canonicalized; duplicates resolve at
    /// [`StreamingCsr::finish`].
    pub fn push(&mut self, u: NodeId, v: NodeId) {
        self.records += 1;
        let hi = u.max(v) as usize + 1;
        if hi > self.num_nodes {
            self.num_nodes = hi;
        }
        if u == v {
            self.self_loops += 1;
            return;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        self.edges.push(key);
        self.sync_reservation();
    }

    /// Edge records seen so far (including dropped self-loops).
    pub fn records(&self) -> usize {
        self.records
    }

    /// Self-loop records dropped so far.
    pub fn self_loops(&self) -> usize {
        self.self_loops
    }

    /// Consumes a dense-id edge-list stream: one `u v` pair per line,
    /// extra columns ignored, `#`/`%` comments and blank lines
    /// skipped. Use the `sp_datasets` loaders instead when ids need
    /// compaction or headers need enforcement — this is the
    /// fixed-format fast path under the scale bench.
    pub fn consume_lines<R: BufRead>(&mut self, reader: R) -> io::Result<()> {
        for line in reader.lines() {
            let line = line?;
            let t = line.trim();
            if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
                continue;
            }
            let mut it = t
                .split([' ', '\t', ','])
                .filter(|s| !s.is_empty())
                .map(|s| s.parse::<NodeId>());
            match (it.next(), it.next()) {
                (Some(Ok(u)), Some(Ok(v))) => self.push(u, v),
                _ => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("not a dense-id edge record: {t:?}"),
                    ))
                }
            }
        }
        Ok(())
    }

    /// Finalizes: canonical in-place sort + dedup, then the CSR
    /// arrays, releasing the builder's reservation and (when tracked)
    /// accounting the finished graph's heap.
    pub fn finish(mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();
        self.edges.shrink_to_fit();
        self.sync_reservation();
        let tracker = self.tracker.take();
        let reserved = self.reserved;
        self.reserved = 0;
        let g = Graph::from_canonical_edges(self.num_nodes, std::mem::take(&mut self.edges));
        if let Some(t) = &tracker {
            // Swap the edge-vector reservation for the whole graph's.
            t.release(reserved);
            t.add(g.heap_bytes());
        }
        g
    }
}

impl Drop for StreamingCsr {
    fn drop(&mut self) {
        if let Some(t) = &self.tracker {
            t.release(self.reserved);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    #[test]
    fn matches_graph_builder_bitwise() {
        let raw = [(3u32, 1u32), (1, 3), (0, 0), (2, 4), (1, 2), (2, 1)];
        let mut b = GraphBuilder::new(5);
        for &(u, v) in &raw {
            b.add_edge(u, v);
        }
        let reference = b.build();

        let mut s = StreamingCsr::new(0);
        for &(u, v) in &raw {
            s.push(u, v);
        }
        assert_eq!(s.records(), 6);
        assert_eq!(s.self_loops(), 1);
        let streamed = s.finish();
        assert_eq!(streamed, reference);
    }

    #[test]
    fn consume_lines_parses_comments_and_columns() {
        let text = "# banner\n% meta\n0 1 77 123456\n1\t2\n2,3\n\n";
        let mut s = StreamingCsr::new(0);
        s.consume_lines(text.as_bytes()).unwrap();
        let g = s.finish();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn consume_lines_rejects_garbage() {
        let mut s = StreamingCsr::new(0);
        let err = s.consume_lines(&b"0 1\nnope\n"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn tracker_accounts_buffers_and_final_graph() {
        let t = MemTracker::shared();
        let mut s = StreamingCsr::with_tracker(0, Arc::clone(&t));
        for i in 0..1000u32 {
            s.push(i, i + 1);
        }
        assert!(t.current() >= 1000 * 8);
        let g = s.finish();
        assert_eq!(t.current(), g.heap_bytes());
        drop(g);
        assert!(t.peak() >= 1000 * 8);
    }

    #[test]
    fn dropping_builder_releases_reservation() {
        let t = MemTracker::shared();
        let mut s = StreamingCsr::with_tracker(0, Arc::clone(&t));
        s.push(0, 1);
        assert!(t.current() > 0);
        drop(s);
        assert_eq!(t.current(), 0);
    }
}
