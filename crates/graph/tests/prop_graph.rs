//! Property tests for the graph substrate.

use proptest::prelude::*;
use sp_graph::{algo, Graph};

fn edge_list(n: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((0..n as u32, 0..n as u32), 0..60)
}

proptest! {
    #[test]
    fn adjacency_symmetry(edges in edge_list(12)) {
        let g = Graph::from_edges(12, edges);
        for v in 0..12u32 {
            for &u in g.neighbors(v) {
                prop_assert!(g.has_edge(u, v));
                prop_assert!(g.has_edge(v, u));
            }
        }
    }

    #[test]
    fn handshake_lemma(edges in edge_list(12)) {
        let g = Graph::from_edges(12, edges);
        let total: usize = g.degrees().iter().sum();
        prop_assert_eq!(total, 2 * g.num_edges());
    }

    #[test]
    fn no_self_loops_or_duplicates(edges in edge_list(10)) {
        let g = Graph::from_edges(10, edges);
        for v in 0..10u32 {
            let nb = g.neighbors(v);
            prop_assert!(!nb.contains(&v), "self loop at {v}");
            prop_assert!(nb.windows(2).all(|w| w[0] < w[1]), "dup/unsorted at {v}");
        }
    }

    #[test]
    fn edges_are_canonical(edges in edge_list(10)) {
        let g = Graph::from_edges(10, edges);
        for &(u, v) in g.edges() {
            prop_assert!(u < v);
            prop_assert!(g.has_edge(u, v));
        }
        prop_assert!(g.edges().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn bfs_distances_are_metric_like(edges in edge_list(10)) {
        let g = Graph::from_edges(10, edges);
        let d = algo::bfs_distances(&g, 0);
        // Edge endpoints differ by at most 1 in distance when both reachable.
        for &(u, v) in g.edges() {
            if let (Some(du), Some(dv)) = (d[u as usize], d[v as usize]) {
                prop_assert!(du.abs_diff(dv) <= 1, "edge ({u},{v}) distances {du},{dv}");
            }
        }
    }

    #[test]
    fn component_labels_consistent_with_edges(edges in edge_list(10)) {
        let g = Graph::from_edges(10, edges);
        let (labels, k) = algo::connected_components(&g);
        prop_assert!(k >= 1 || g.num_nodes() == 0);
        for &(u, v) in g.edges() {
            prop_assert_eq!(labels[u as usize], labels[v as usize]);
        }
        // Label count equals number of distinct labels.
        let mut distinct: Vec<u32> = labels.clone();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert_eq!(distinct.len(), k);
    }

    #[test]
    fn common_neighbors_symmetric(edges in edge_list(10)) {
        let g = Graph::from_edges(10, edges);
        for u in 0..10u32 {
            for v in 0..10u32 {
                prop_assert_eq!(
                    algo::common_neighbor_count(&g, u, v),
                    algo::common_neighbor_count(&g, v, u)
                );
            }
        }
    }

    #[test]
    fn io_round_trip_up_to_relabeling(edges in edge_list(12)) {
        let g = Graph::from_edges(12, edges);
        let mut buf = Vec::new();
        sp_graph::io::write_edge_list(&g, &mut buf).unwrap();
        let (g2, map) = sp_graph::io::read_edge_list(std::io::Cursor::new(buf)).unwrap();
        prop_assert_eq!(g2.num_edges(), g.num_edges());
        for &(u, v) in g.edges() {
            prop_assert!(g2.has_edge(map[&(u as u64)], map[&(v as u64)]));
        }
    }
}
