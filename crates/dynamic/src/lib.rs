//! # sp-dynamic
//!
//! Dynamic graph embedding under **continual differential privacy** —
//! the extension the paper names as future work (§VIII):
//!
//! > "we also plan to extend our method to dynamic graph embedding
//! > while obeying differential privacy. Addressing dynamic graphs
//! > will face two significant challenges: allocating privacy budgets
//! > to each data element at each version and managing noise
//! > accumulation during continuous data publishing."
//!
//! This crate addresses exactly those two challenges:
//!
//! 1. **Budget allocation** ([`BudgetAllocation`]): the total
//!    `(ε, δ)` is split across the `T` published snapshots — uniformly
//!    or with geometric decay (recent snapshots, which dominate
//!    analytics, get more budget). Sequential composition bounds the
//!    total spend by the sum of the per-snapshot budgets.
//! 2. **Noise management via warm starts** ([`DynamicEmbedder`]):
//!    snapshot `t` initialises from snapshot `t-1`'s *published*
//!    model. Because the previous model is already DP, the warm start
//!    is post-processing and costs nothing — but it means each
//!    snapshot only needs to learn the *delta*, so the per-snapshot
//!    budget goes further and noise does not restart from scratch.
//!
//! The publication side composes with the serving stack: each
//! snapshot's model is written **atomically** in the [`sp_model`]
//! binary format and swapped into a live [`sp_serve::ServingStore`]
//! ([`DynamicEmbedder::fit_and_serve`]), so queries running while the
//! graph evolves always observe one complete published version —
//! old or new, never a torn mix.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use se_privgemb::ProximityKind;
use sp_fault::retry::{transient_io, RetryPolicy};
use sp_graph::Graph;
use sp_model::checkpoint::train_with_checkpoints;
use sp_model::{ModelError, ModelFile, Provenance};
use sp_proximity::EdgeProximity;
use sp_serve::{IvfConfig, ServingStore};
use sp_skipgram::{SkipGramModel, TrainConfig, TrainReport, Trainer};
use std::path::Path;

/// How the total privacy budget is divided across snapshots.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BudgetAllocation {
    /// Every snapshot gets `ε/T`, `δ/T`.
    Uniform,
    /// Snapshot `t` (0-based) gets budget proportional to `rho^(T-1-t)`
    /// — later snapshots get more. `rho ∈ (0, 1]`; `rho = 1` is
    /// uniform.
    GeometricDecay {
        /// Decay factor per step back in time.
        rho: f64,
    },
}

impl BudgetAllocation {
    /// Per-snapshot ε shares summing to `total_eps` (δ is always split
    /// uniformly; it is a failure probability, not a utility knob).
    pub fn split(&self, total_eps: f64, snapshots: usize) -> Vec<f64> {
        assert!(snapshots > 0, "need at least one snapshot");
        assert!(total_eps > 0.0, "epsilon must be positive");
        match *self {
            BudgetAllocation::Uniform => {
                vec![total_eps / snapshots as f64; snapshots]
            }
            BudgetAllocation::GeometricDecay { rho } => {
                assert!(rho > 0.0 && rho <= 1.0, "rho must be in (0,1]");
                let weights: Vec<f64> = (0..snapshots)
                    .map(|t| rho.powi((snapshots - 1 - t) as i32))
                    .collect();
                let total_w: f64 = weights.iter().sum();
                weights
                    .into_iter()
                    .map(|w| total_eps * w / total_w)
                    .collect()
            }
        }
    }
}

/// Configuration of the continual embedder.
#[derive(Clone, Debug)]
pub struct DynamicConfig {
    /// Base training configuration applied to each snapshot (its
    /// `epsilon`/`delta` fields are overwritten by the allocation).
    pub base: TrainConfig,
    /// The structure preference used at every snapshot.
    pub proximity: ProximityKind,
    /// Total ε across all published snapshots.
    pub total_epsilon: f64,
    /// Total δ across all published snapshots.
    pub total_delta: f64,
    /// The allocation rule.
    pub allocation: BudgetAllocation,
    /// Warm-start each snapshot from the previous published model.
    pub warm_start: bool,
    /// Retry policy for transient publish-IO failures in
    /// [`DynamicEmbedder::fit_and_serve`] (interrupted writes, torn
    /// connections). Permanent errors — missing directories, denied
    /// permissions, corrupt payloads — abort on the first attempt.
    pub publish_retry: RetryPolicy,
}

impl Default for DynamicConfig {
    fn default() -> Self {
        Self {
            base: TrainConfig::default(),
            proximity: ProximityKind::deepwalk_default(),
            total_epsilon: 3.5,
            total_delta: 1e-5,
            allocation: BudgetAllocation::Uniform,
            warm_start: true,
            publish_retry: RetryPolicy::default(),
        }
    }
}

/// One published snapshot's artefacts.
#[derive(Clone, Debug)]
pub struct SnapshotResult {
    /// The DP model published at this version.
    pub model: SkipGramModel,
    /// Training telemetry.
    pub report: TrainReport,
    /// ε allocated to this snapshot.
    pub epsilon_allocated: f64,
    /// ℓ2 drift of `W_in` from the previous published version
    /// (`0.0` for the first snapshot).
    pub drift: f64,
    /// The seed this snapshot trained under (base seed + snapshot
    /// index), recorded so publication carries full provenance.
    pub seed: u64,
}

impl SnapshotResult {
    /// The snapshot's publishable artefact in the binary model format,
    /// carrying the run's provenance (seed, ε and δ actually spent).
    pub fn model_file(&self) -> ModelFile {
        ModelFile::from_skipgram(
            &self.model,
            Provenance {
                seed: self.seed,
                epsilon: self.report.epsilon_spent,
                delta: self.report.delta_spent,
            },
        )
    }
}

/// Continual embedder over a sequence of graph snapshots.
#[derive(Clone, Debug)]
pub struct DynamicEmbedder {
    config: DynamicConfig,
}

impl DynamicEmbedder {
    /// New embedder; panics on invalid configuration.
    pub fn new(config: DynamicConfig) -> Self {
        assert!(config.total_epsilon > 0.0, "total epsilon must be positive");
        assert!(
            config.total_delta > 0.0 && config.total_delta < 1.0,
            "total delta must be in (0,1)"
        );
        if let Err(e) = config.base.validate() {
            panic!("invalid base TrainConfig: {e}");
        }
        Self { config }
    }

    /// Trains and publishes every snapshot in order. All snapshots
    /// must share the node universe (same `num_nodes`).
    ///
    /// Total privacy: by sequential composition the published sequence
    /// satisfies `(Σ ε_t, Σ δ_t) = (total_epsilon, total_delta)`
    /// node-level DP.
    ///
    /// # Panics
    /// When `base.checkpoint_every` and `base.checkpoint_dir` are both
    /// set and a checkpoint write fails — in-memory-only training is
    /// otherwise infallible. Use [`DynamicEmbedder::fit_and_serve`] to
    /// handle IO errors as values.
    pub fn fit(&self, snapshots: &[Graph]) -> Vec<SnapshotResult> {
        self.fit_each(snapshots, |_| Ok(()))
            .expect("checkpoint write failed during fit()")
    }

    /// [`DynamicEmbedder::fit`] plus live publication: after each
    /// snapshot trains, its model is written **atomically** to
    /// `model_path` in the `.spm` format (temp file + rename — a
    /// crash or concurrent reader sees a complete old or new file)
    /// and swapped into `serving`, optionally rebuilding an IVF index
    /// first (outside the swap lock, so queries keep flowing against
    /// the previous generation during the build).
    ///
    /// Transient publish-IO failures (interrupted/timed-out writes,
    /// reset connections) are retried under
    /// [`DynamicConfig::publish_retry`] with deterministic jittered
    /// backoff; permanent errors — missing directories, permission
    /// denials, corrupt payloads — abort on the first attempt. On
    /// error the snapshots already published remain served; the
    /// returned error says which write failed.
    pub fn fit_and_serve(
        &self,
        snapshots: &[Graph],
        model_path: &Path,
        serving: &ServingStore,
        ivf: Option<IvfConfig>,
    ) -> Result<Vec<SnapshotResult>, ModelError> {
        let policy = self.config.publish_retry.clone();
        self.fit_each(snapshots, |result| {
            policy.run(
                |e: &ModelError| matches!(e, ModelError::Io(ioe) if transient_io(ioe.kind())),
                || {
                    result.model_file().write_atomic(model_path)?;
                    serving.reload_from(model_path, ivf, self.config.base.threads)?;
                    Ok(())
                },
            )
        })
    }

    /// The per-snapshot training loop shared by [`DynamicEmbedder::fit`]
    /// and [`DynamicEmbedder::fit_and_serve`]; `publish` runs after
    /// every snapshot with its finished result.
    fn fit_each(
        &self,
        snapshots: &[Graph],
        mut publish: impl FnMut(&SnapshotResult) -> Result<(), ModelError>,
    ) -> Result<Vec<SnapshotResult>, ModelError> {
        assert!(!snapshots.is_empty(), "need at least one snapshot");
        let n = snapshots[0].num_nodes();
        for (t, g) in snapshots.iter().enumerate() {
            assert_eq!(
                g.num_nodes(),
                n,
                "snapshot {t} has a different node universe"
            );
        }
        let eps_shares = self
            .config
            .allocation
            .split(self.config.total_epsilon, snapshots.len());
        let delta_share = self.config.total_delta / snapshots.len() as f64;

        let mut results: Vec<SnapshotResult> = Vec::with_capacity(snapshots.len());
        let mut previous: Option<SkipGramModel> = None;
        for (t, g) in snapshots.iter().enumerate() {
            let mut cfg = self.config.base.clone();
            cfg.epsilon = eps_shares[t];
            cfg.delta = delta_share;
            cfg.seed = self.config.base.seed.wrapping_add(t as u64);
            // Each snapshot trains under its own seed, ε share, and
            // warm start, so checkpoints from different snapshots are
            // never interchangeable: give each its own subdirectory.
            if let Some(base_dir) = &self.config.base.checkpoint_dir {
                cfg.checkpoint_dir = Some(base_dir.join(format!("snapshot-{t:04}")));
            }
            let snapshot_seed = cfg.seed;
            // Honour the configured thread knob for the per-snapshot
            // proximity build too (publishers often run inside their
            // own pool with base.threads pinned to 1).
            let prox =
                EdgeProximity::compute_threads(g, self.config.proximity, self.config.base.threads);
            let trainer = Trainer::new(cfg);
            let initial = match (&previous, self.config.warm_start) {
                (Some(prev), true) => Some(prev.clone()),
                _ => None,
            };
            let (model, report) = if trainer.config().checkpoint_every.is_some()
                && trainer.config().checkpoint_dir.is_some()
            {
                let run = train_with_checkpoints(&trainer, g, &prox, initial, true)?;
                (run.model, run.report)
            } else {
                match initial {
                    Some(prev) => trainer.train_from(g, &prox, prev),
                    None => trainer.train(g, &prox),
                }
            };
            let drift = previous
                .as_ref()
                .map(|prev| {
                    let mut d = model.w_in.clone();
                    d.add_scaled(-1.0, &prev.w_in);
                    d.frobenius_norm()
                })
                .unwrap_or(0.0);
            previous = Some(model.clone());
            let result = SnapshotResult {
                model,
                report,
                epsilon_allocated: eps_shares[t],
                drift,
                seed: snapshot_seed,
            };
            publish(&result)?;
            results.push(result);
        }
        Ok(results)
    }

    /// The configuration.
    pub fn config(&self) -> &DynamicConfig {
        &self.config
    }
}

/// Generates an evolving snapshot sequence: starts from `initial` and
/// adds `edges_per_step` random new edges (preferentially attached)
/// per snapshot — a growing-network simulator for continual-publishing
/// experiments.
pub fn evolve_graph<R: rand::Rng + ?Sized>(
    initial: &Graph,
    steps: usize,
    edges_per_step: usize,
    rng: &mut R,
) -> Vec<Graph> {
    let n = initial.num_nodes();
    let mut snapshots = vec![initial.clone()];
    let mut edges: Vec<(u32, u32)> = initial.edges().to_vec();
    // Degree-weighted endpoint pool (preferential attachment growth).
    let mut pool: Vec<u32> = edges.iter().flat_map(|&(u, v)| [u, v]).collect();
    for _ in 0..steps {
        let mut added = 0usize;
        let mut guard = 0usize;
        while added < edges_per_step && guard < edges_per_step * 100 {
            guard += 1;
            let u = if pool.is_empty() || rng.gen_bool(0.2) {
                rng.gen_range(0..n as u32)
            } else {
                pool[rng.gen_range(0..pool.len())]
            };
            let v = rng.gen_range(0..n as u32);
            if u == v {
                continue;
            }
            let key = (u.min(v), u.max(v));
            if edges.contains(&key) {
                continue;
            }
            edges.push(key);
            pool.push(u);
            pool.push(v);
            added += 1;
        }
        snapshots.push(Graph::from_edges(n, edges.iter().copied()));
    }
    snapshots
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use se_privgemb::PerturbStrategy;
    use sp_datasets::generators;
    use sp_eval::{struc_equ, PairSelection};

    fn base_cfg() -> TrainConfig {
        TrainConfig {
            dim: 16,
            epochs: 10,
            batch_size: 16,
            negatives: 3,
            ..TrainConfig::default()
        }
    }

    fn snapshots() -> Vec<Graph> {
        let mut rng = StdRng::seed_from_u64(1);
        let g0 = generators::barabasi_albert(100, 3, &mut rng);
        evolve_graph(&g0, 3, 40, &mut rng)
    }

    #[test]
    fn uniform_split_sums_to_total() {
        let shares = BudgetAllocation::Uniform.split(3.5, 7);
        assert_eq!(shares.len(), 7);
        assert!((shares.iter().sum::<f64>() - 3.5).abs() < 1e-12);
        assert!(shares.iter().all(|&s| (s - 0.5).abs() < 1e-12));
    }

    #[test]
    fn decay_split_favours_recent_snapshots() {
        let shares = BudgetAllocation::GeometricDecay { rho: 0.5 }.split(2.0, 4);
        assert!((shares.iter().sum::<f64>() - 2.0).abs() < 1e-12);
        for w in shares.windows(2) {
            assert!(w[1] > w[0], "later snapshots must get more budget");
        }
        // rho = 1 degenerates to uniform.
        let flat = BudgetAllocation::GeometricDecay { rho: 1.0 }.split(2.0, 4);
        assert!(flat.iter().all(|&s| (s - 0.5).abs() < 1e-12));
    }

    #[test]
    fn evolve_graph_grows_monotonically() {
        let snaps = snapshots();
        assert_eq!(snaps.len(), 4);
        for w in snaps.windows(2) {
            assert!(w[1].num_edges() > w[0].num_edges());
            // Old edges are never removed.
            for &(u, v) in w[0].edges() {
                assert!(w[1].has_edge(u, v));
            }
        }
    }

    #[test]
    fn fit_publishes_every_snapshot_within_budget() {
        let snaps = snapshots();
        let embedder = DynamicEmbedder::new(DynamicConfig {
            base: base_cfg(),
            total_epsilon: 2.0,
            ..DynamicConfig::default()
        });
        let results = embedder.fit(&snaps);
        assert_eq!(results.len(), snaps.len());
        let mut total_spent = 0.0;
        for (t, r) in results.iter().enumerate() {
            assert_eq!(r.model.w_in.rows(), 100);
            assert!(
                r.report.epsilon_spent <= r.epsilon_allocated + 1e-9,
                "snapshot {t} overspent"
            );
            total_spent += r.report.epsilon_spent;
        }
        assert!(
            total_spent <= 2.0 + 1e-9,
            "sequence overspent: {total_spent}"
        );
    }

    #[test]
    fn first_snapshot_has_zero_drift_and_later_ones_positive() {
        let snaps = snapshots();
        let embedder = DynamicEmbedder::new(DynamicConfig {
            base: base_cfg(),
            ..DynamicConfig::default()
        });
        let results = embedder.fit(&snaps);
        assert_eq!(results[0].drift, 0.0);
        for r in &results[1..] {
            assert!(r.drift > 0.0);
        }
    }

    #[test]
    fn warm_start_reduces_drift() {
        let snaps = snapshots();
        let run = |warm: bool| {
            DynamicEmbedder::new(DynamicConfig {
                base: base_cfg(),
                warm_start: warm,
                ..DynamicConfig::default()
            })
            .fit(&snaps)
            .iter()
            .skip(1)
            .map(|r| r.drift)
            .sum::<f64>()
        };
        let warm_drift = run(true);
        let cold_drift = run(false);
        assert!(
            warm_drift < cold_drift,
            "warm starts must reduce version-to-version drift: {warm_drift} vs {cold_drift}"
        );
    }

    #[test]
    fn warm_start_non_private_improves_late_snapshot_utility() {
        // With no noise, warm starting accumulates training across
        // snapshots, so the last snapshot beats a cold-started run of
        // the same per-snapshot length.
        let snaps = snapshots();
        let mut cfg = base_cfg();
        cfg.strategy = PerturbStrategy::None;
        cfg.epochs = 15;
        let run = |warm: bool| {
            let results = DynamicEmbedder::new(DynamicConfig {
                base: cfg.clone(),
                warm_start: warm,
                ..DynamicConfig::default()
            })
            .fit(&snaps);
            let last = results.last().unwrap();
            struc_equ(snaps.last().unwrap(), &last.model.w_in, PairSelection::All).unwrap_or(0.0)
        };
        let warm = run(true);
        let cold = run(false);
        assert!(
            warm > cold,
            "warm start should help the final snapshot: {warm} vs {cold}"
        );
    }

    #[test]
    #[should_panic(expected = "different node universe")]
    fn mismatched_node_universe_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = generators::erdos_renyi(50, 100, &mut rng);
        let b = generators::erdos_renyi(60, 100, &mut rng);
        DynamicEmbedder::new(DynamicConfig {
            base: base_cfg(),
            ..DynamicConfig::default()
        })
        .fit(&[a, b]);
    }

    #[test]
    #[should_panic(expected = "rho must be in")]
    fn bad_rho_rejected() {
        BudgetAllocation::GeometricDecay { rho: 1.5 }.split(1.0, 3);
    }

    // --- republish path: snapshot → write model → atomic swap ----------

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("sp_dynamic_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn fit_and_serve_publishes_every_snapshot_generation() {
        let snaps = snapshots();
        let dir = temp_dir("serve");
        let path = dir.join("model.spm");
        let embedder = DynamicEmbedder::new(DynamicConfig {
            base: base_cfg(),
            ..DynamicConfig::default()
        });
        // Start serving a placeholder generation (version 1).
        let mut rng = StdRng::seed_from_u64(99);
        let placeholder = SkipGramModel::new(100, 16, &mut rng);
        let serving = ServingStore::new(
            sp_serve::EmbeddingStore::from_skipgram(&placeholder, Provenance::non_private(99)),
            None,
        );
        let results = embedder
            .fit_and_serve(&snaps, &path, &serving, None)
            .unwrap();
        // One swap per snapshot, on top of the initial generation.
        assert_eq!(serving.version(), 1 + snaps.len() as u64);
        // The file on disk is the last snapshot, bit-for-bit (at
        // publication precision), with full provenance.
        let published = ModelFile::read(&path).unwrap();
        let last = results.last().unwrap();
        assert_eq!(published, last.model_file());
        assert_eq!(published.provenance.seed, last.seed);
        assert!(published.provenance.epsilon > 0.0);
        // The served generation answers from the same payload.
        let snapshot = serving.snapshot();
        assert_eq!(snapshot.store.num_nodes(), 100);
        assert_eq!(
            snapshot.store.embedding(0),
            published.payload.vectors().row(0)
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fit_and_serve_republishes_into_a_live_tcp_server() {
        use sp_serve::{ServeClient, Server, ServerConfig};
        use std::sync::Arc;

        let snaps = snapshots();
        let dir = temp_dir("serve_tcp");
        let path = dir.join("model.spm");
        let mut rng = StdRng::seed_from_u64(7);
        let placeholder = SkipGramModel::new(100, 16, &mut rng);
        let serving = Arc::new(ServingStore::new(
            sp_serve::EmbeddingStore::from_skipgram(&placeholder, Provenance::non_private(7)),
            None,
        ));
        let server =
            Server::bind("127.0.0.1:0", Arc::clone(&serving), ServerConfig::default()).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.shutdown_handle();
        let server_thread = std::thread::spawn(move || server.run().unwrap());

        // A client polls over TCP while training republishes underneath
        // it; every answer must come from one complete generation and
        // versions must only move forward.
        let final_version = 1 + snaps.len() as u64;
        let poller = std::thread::spawn(move || {
            let mut client = ServeClient::connect(addr).unwrap();
            let mut last = 0u64;
            loop {
                let (version, answer) = client.top_k(0, 5).unwrap();
                assert!(
                    version >= last,
                    "version went backwards: {last} -> {version}"
                );
                assert_eq!(answer.len(), 5);
                last = version;
                if version == final_version {
                    client.quit().unwrap();
                    return;
                }
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        });

        let embedder = DynamicEmbedder::new(DynamicConfig {
            base: base_cfg(),
            ..DynamicConfig::default()
        });
        embedder
            .fit_and_serve(&snaps, &path, &serving, None)
            .unwrap();
        poller.join().unwrap();

        // After the last republish a fresh connection answers from the
        // final generation, bit-identical to the in-process snapshot.
        let mut client = ServeClient::connect(addr).unwrap();
        let (version, tcp) = client.top_k(0, 5).unwrap();
        assert_eq!(version, final_version);
        let local = serving.snapshot().top_k_node(0, 5);
        assert_eq!(tcp.len(), local.len());
        for (a, b) in tcp.iter().zip(local.iter()) {
            assert_eq!(a.node, b.node);
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
        client.quit().unwrap();

        handle.shutdown();
        server_thread.join().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fit_and_serve_surfaces_write_errors_typed() {
        let snaps = snapshots();
        let embedder = DynamicEmbedder::new(DynamicConfig {
            base: base_cfg(),
            ..DynamicConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(1);
        let placeholder = SkipGramModel::new(100, 16, &mut rng);
        let serving = ServingStore::new(
            sp_serve::EmbeddingStore::from_skipgram(&placeholder, Provenance::non_private(1)),
            None,
        );
        let err = embedder
            .fit_and_serve(
                &snaps,
                Path::new("/nonexistent-dir/model.spm"),
                &serving,
                None,
            )
            .unwrap_err();
        assert!(matches!(err, ModelError::Io(_)));
        // The serving store still holds the last good generation.
        assert_eq!(serving.version(), 1);
    }

    #[test]
    fn snapshot_seeds_are_recorded_per_version() {
        let snaps = snapshots();
        let base = base_cfg();
        let base_seed = base.seed;
        let results = DynamicEmbedder::new(DynamicConfig {
            base,
            ..DynamicConfig::default()
        })
        .fit(&snaps);
        for (t, r) in results.iter().enumerate() {
            assert_eq!(r.seed, base_seed.wrapping_add(t as u64));
            assert_eq!(r.model_file().provenance.seed, r.seed);
        }
    }

    #[test]
    fn concurrent_queries_see_old_or_new_model_never_torn() {
        // The torn-read detector: version v's model has EVERY entry
        // equal to v as f32, so any mix of two versions inside one
        // answer is immediately visible. A publisher thread republishes
        // through the real path (atomic .spm write + reload_from) while
        // reader threads hammer snapshot queries.
        use std::sync::atomic::{AtomicBool, Ordering};

        let dir = temp_dir("torn");
        let path = dir.join("model.spm");
        let n = 50usize;
        let dim = 8usize;
        let constant_model = |v: f64| {
            let m = sp_linalg::DenseMatrix::from_vec(n, dim, vec![v; n * dim]);
            sp_serve::EmbeddingStore::from_dense(&m, Provenance::non_private(v as u64))
        };
        let serving = ServingStore::new(constant_model(1.0), None);
        let done = AtomicBool::new(false);
        let versions = 40u64;

        std::thread::scope(|scope| {
            let serving = &serving;
            let done = &done;
            let path = &path;
            let publisher = scope.spawn(move || {
                for v in 2..=versions {
                    let m = sp_linalg::DenseMatrix::from_vec(n, dim, vec![v as f64; n * dim]);
                    ModelFile::from_dense(&m, Provenance::non_private(v))
                        .write_atomic(path)
                        .unwrap();
                    serving.reload_from(path, None, Some(1)).unwrap();
                }
                done.store(true, Ordering::Release);
            });
            let mut readers = Vec::new();
            for _ in 0..3 {
                readers.push(scope.spawn(move || {
                    let mut observed = 0u64;
                    while !done.load(Ordering::Acquire) {
                        let generation = serving.snapshot();
                        // Every value of the snapshot must agree on one
                        // version — a torn read would mix constants.
                        let first = generation.store.embedding(0)[0];
                        for node in 0..n as u32 {
                            for &x in generation.store.embedding(node) {
                                assert_eq!(
                                    x.to_bits(),
                                    first.to_bits(),
                                    "torn read: {x} and {first} in one snapshot"
                                );
                            }
                        }
                        // Provenance travels with the payload.
                        assert_eq!(
                            generation.store.provenance().seed,
                            first as u64,
                            "provenance does not match payload version"
                        );
                        observed += 1;
                    }
                    observed
                }));
            }
            publisher.join().unwrap();
            let total: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
            assert!(total > 0, "readers never observed a snapshot");
        });
        // After the dust settles the newest version is served.
        assert_eq!(serving.version(), versions);
        assert_eq!(serving.snapshot().store.embedding(0)[0], versions as f32);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn republished_file_is_always_complete_on_disk() {
        // Interleave atomic writes with reads of the same path: every
        // read must parse as a complete, checksum-valid model (the
        // temp-file + rename protocol never exposes a prefix).
        let dir = temp_dir("complete");
        let path = dir.join("model.spm");
        let make = |v: u64| {
            let m = sp_linalg::DenseMatrix::from_vec(20, 4, vec![v as f64; 80]);
            ModelFile::from_dense(&m, Provenance::non_private(v))
        };
        make(1).write_atomic(&path).unwrap();
        std::thread::scope(|scope| {
            let path = &path;
            let writer = scope.spawn(move || {
                for v in 2..=60 {
                    make(v).write_atomic(path).unwrap();
                }
            });
            let reader = scope.spawn(move || {
                let mut seen = 0u64;
                for _ in 0..200 {
                    let f = ModelFile::read(path).expect("mid-republish read must be complete");
                    let value = f.payload.vectors().row(0)[0];
                    assert_eq!(f.provenance.seed, value as u64);
                    seen = seen.max(value as u64);
                }
                seen
            });
            writer.join().unwrap();
            assert!(reader.join().unwrap() >= 1);
        });
        std::fs::remove_dir_all(&dir).ok();
    }
}
