//! Property-based tests for the skip-gram engine: gradient
//! correctness against finite differences over random models, clip
//! invariants, Algorithm 1 invariants, and Theorem 3 consistency.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sp_graph::Graph;
use sp_linalg::CooBuilder;
use sp_skipgram::model::{GradBuffer, SkipGramModel};
use sp_skipgram::subgraph::{generate_subgraphs, NegativeSampling, Subgraph};
use sp_skipgram::theory;

fn ring(n: usize) -> Graph {
    Graph::from_edges(n, (0..n).map(|i| (i as u32, ((i + 1) % n) as u32)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn gradients_match_finite_differences(
        seed in 0u64..1000,
        p in 0.05f64..4.0,
        dim in 2usize..8,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = SkipGramModel::new(6, dim, &mut rng);
        // Randomise W_out too (new() already does, but scale it up for
        // gradient visibility).
        for v in m.w_out.as_mut_slice() {
            *v *= 3.0;
        }
        let sg = Subgraph { center: 0, positive: 1, negatives: vec![2, 3], edge_index: 0 };
        let mut buf = GradBuffer::new();
        m.example_grad(&sg, p, &mut buf);
        let h = 1e-6;
        for d in 0..dim {
            let orig = m.w_in.get(0, d);
            m.w_in.set(0, d, orig + h);
            let lp = m.loss(&sg, p);
            m.w_in.set(0, d, orig - h);
            let lm = m.loss(&sg, p);
            m.w_in.set(0, d, orig);
            let fd = (lp - lm) / (2.0 * h);
            prop_assert!((fd - buf.grad_center[d]).abs() < 1e-5,
                "dim {}: fd {} vs analytic {}", d, fd, buf.grad_center[d]);
        }
    }

    #[test]
    fn loss_is_nonnegative_and_scales_with_p(seed in 0u64..500, p in 0.01f64..10.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = SkipGramModel::new(5, 4, &mut rng);
        let sg = Subgraph { center: 0, positive: 1, negatives: vec![2, 3, 4], edge_index: 0 };
        let l1 = m.loss(&sg, 1.0);
        let lp = m.loss(&sg, p);
        prop_assert!(l1 >= 0.0);
        prop_assert!((lp - p * l1).abs() < 1e-9 * (1.0 + lp.abs()));
    }

    #[test]
    fn clip_is_contraction(seed in 0u64..500, c in 0.01f64..5.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = SkipGramModel::new(6, 8, &mut rng);
        let sg = Subgraph { center: 0, positive: 1, negatives: vec![2, 3, 2], edge_index: 0 };
        let mut buf = GradBuffer::new();
        m.example_grad(&sg, 5.0, &mut buf);
        let before = buf.joint_norm();
        buf.clip(c);
        let after = buf.joint_norm();
        prop_assert!(after <= c + 1e-9);
        prop_assert!(after <= before + 1e-12);
    }

    #[test]
    fn algorithm1_negatives_avoid_neighbours(n in 6usize..30, k in 1usize..6, seed in 0u64..500) {
        let g = ring(n);
        let mut rng = StdRng::seed_from_u64(seed);
        let gs = generate_subgraphs(&g, k, NegativeSampling::UniformNonNeighbor, &mut rng);
        prop_assert_eq!(gs.len(), g.num_edges());
        for s in &gs {
            prop_assert_eq!(s.negatives.len(), k);
            for &neg in &s.negatives {
                prop_assert!(neg != s.center);
                prop_assert!(!g.has_edge(s.center, neg));
            }
        }
    }

    #[test]
    fn theorem3_optimum_is_monotone_in_p(
        p1 in 0.001f64..10.0,
        factor in 1.01f64..100.0,
        k in 1usize..10,
        min_p in 0.0001f64..0.01,
    ) {
        let x1 = theory::theorem3_optimal(p1, k, min_p);
        let x2 = theory::theorem3_optimal(p1 * factor, k, min_p);
        prop_assert!(x2 > x1, "larger proximity must mean larger inner product");
        // Exact shift: log(factor).
        prop_assert!((x2 - x1 - factor.ln()).abs() < 1e-9);
    }

    #[test]
    fn gd_objective_converges_for_random_sparse_proximity(
        entries in proptest::collection::vec((0usize..5, 0usize..5, 0.01f64..2.0), 1..10),
        k in 1usize..6,
    ) {
        let mut b = CooBuilder::new(5, 5);
        for &(i, j, v) in &entries {
            if i != j {
                b.push(i, j, v);
            }
        }
        let p = b.build();
        prop_assume!(p.nnz() > 0);
        let min_p = p.min_positive().unwrap();
        let xs = theory::optimize_objective(&p, k, 20_000, 0.5);
        for (i, j, x) in xs {
            let expect = theory::theorem3_optimal(p.get(i, j), k, min_p);
            prop_assert!((x - expect).abs() < 1e-2,
                "({},{}): {} vs {}", i, j, x, expect);
        }
    }
}
