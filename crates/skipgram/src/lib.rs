//! # sp-skipgram
//!
//! The skip-gram-with-negative-sampling (SGNS) engine at the centre of
//! SE-PrivGEmb (§IV of the paper):
//!
//! - [`alias`]: O(1) discrete sampling (Walker alias method), used for
//!   the degree-proportional negative sampling of the prior-work
//!   comparison (Eq. 14/15);
//! - [`subgraph`]: Algorithm 1 — pre-computed disjoint subgraphs, one
//!   per edge, each holding the positive pair and `k` negatives;
//! - [`model`]: the two embedding matrices and the proximity-weighted
//!   SGNS loss/gradients (Eq. 5, 7, 8);
//! - [`perturb`]: the three gradient-perturbation strategies — none
//!   (non-private `SE-GEmb`), naive full-matrix noise with sensitivity
//!   `B·C` (Eq. 6, the first-cut solution §III-B), and the paper's
//!   non-zero-row noise with sensitivity `C` (Eq. 9);
//! - [`trainer`]: Algorithm 2 — mini-batch SGD with per-example joint
//!   clipping, strategy-dependent noise, and RDP budget tracking with
//!   early stop;
//! - [`theory`]: Theorem 3 — the closed-form optimal inner products
//!   `x_ij = log(p_ij / (k·min(P)))`, a direct optimiser of the
//!   deterministic objective (Eq. 13) to verify convergence, and the
//!   prior-work optimum (Eq. 15) for comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alias;
pub mod model;
pub mod perturb;
pub mod subgraph;
pub mod theory;
pub mod trainer;
pub mod walks;

pub use alias::{AliasTable, AliasTableBuilder};
pub use model::SkipGramModel;
pub use perturb::PerturbStrategy;
pub use subgraph::{generate_subgraphs, NegativeSampling, Subgraph, SubgraphGen};
pub use trainer::{CheckpointSink, TrainConfig, TrainReport, Trainer, TrainerState};
