//! Algorithm 2: the SE-PrivGEmb training loop.
//!
//! Per *step*, the trainer samples `B` subgraphs uniformly without
//! replacement from the pre-computed `G_S` (Algorithm 1), computes the
//! per-example gradients (Eq. 7/8), clips each example's joint
//! gradient to `C`, sums, perturbs according to the
//! [`PerturbStrategy`], and applies the averaged update with learning
//! rate `η`. An *epoch* is `⌈|E|/B⌉` steps (one expected pass over the
//! edge set); the RDP accountant charges each step as one subsampled
//! Gaussian mechanism with rate `γ = B/|E|` and stops training the
//! moment the next step would exceed the `(ε, δ)` budget (lines 8–10).
//!
//! Randomness: the hot loop (noise + batch sampling) uses `SmallRng`
//! seeded from the config — fast and reproducible. A cryptographic
//! generator would be required for a production DP deployment; for
//! reproducing the paper's utility the statistical quality of
//! xoshiro256++ is more than sufficient (see DESIGN.md).

use crate::model::{GradBuffer, SkipGramModel};
use crate::perturb::PerturbStrategy;
use crate::subgraph::{generate_subgraphs, NegativeSampling, Subgraph, SubgraphGen};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sp_dp::{BudgetedAccountant, GaussianSampler, PrivacyBudget};
use sp_graph::{Graph, NodeId};
use sp_linalg::{vector, DenseMatrix};
use sp_proximity::EdgeProximity;
use std::borrow::Cow;
use std::io;
use std::path::PathBuf;

/// Hyper-parameters of Algorithm 2. Defaults are the paper's §VI-A
/// settings (r=128, k=5, B=128, η=0.1, C=2, σ=5, δ=1e-5, ε=3.5,
/// 200 epochs).
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Embedding dimension `r`.
    pub dim: usize,
    /// Negative samples per edge `k`.
    pub negatives: usize,
    /// Batch size `B`.
    pub batch_size: usize,
    /// Learning rate `η`.
    pub learning_rate: f64,
    /// Gradient clipping threshold `C`.
    pub clip: f64,
    /// Noise multiplier `σ`.
    pub sigma: f64,
    /// Target privacy budget ε.
    pub epsilon: f64,
    /// Target failure probability δ.
    pub delta: f64,
    /// Maximum number of epochs (`n_epoch`); an epoch is `⌈|E|/B⌉`
    /// steps.
    pub epochs: usize,
    /// Noise strategy.
    pub strategy: PerturbStrategy,
    /// Negative-sampling scheme for Algorithm 1.
    pub negative_sampling: NegativeSampling,
    /// RNG seed (drives initialisation, sampling, and noise).
    pub seed: u64,
    /// Worker threads for the per-example gradient pass (`None`
    /// resolves via [`sp_parallel::resolve_threads`]: the `SP_THREADS`
    /// environment variable, then the available parallelism).
    ///
    /// An explicit `Some(n > 1)` always routes the gradient pass
    /// through the worker pool; an auto-resolved count engages it only
    /// when the batch carries enough arithmetic to amortise the
    /// per-step pool spawn (so toy configs stay on the serial path).
    ///
    /// **Determinism contract:** gradients are computed and clipped in
    /// parallel but reduced into the batch accumulator serially, in
    /// batch-sample order, and the batch sampler, noise generator, and
    /// RDP accountant stay on the caller thread — so for a fixed seed
    /// the trained model and the privacy spend are byte-identical for
    /// every thread count (asserted by `tests/parallel_determinism.rs`).
    pub threads: Option<usize>,
    /// Out-of-core subgraph mode. `None` (the default) materialises
    /// the whole `G_S` up front, as Algorithm 1 is written. `Some(s)`
    /// keeps only a [`SubgraphGen`] and regenerates each sampled
    /// subgraph on demand from its edge index — peak subgraph memory
    /// drops from `O(|E|·k)` to `O(B·k)`; `s` (≥ 1) is the
    /// edge-partition shard height out-of-core drivers use when they
    /// walk `G_S` shard-by-shard via [`SubgraphGen::range`] (the
    /// trainer's own sampling is per-index and ignores the height).
    ///
    /// Because every subgraph's randomness is derived from its edge
    /// index, both modes draw identical subgraphs: the trained model,
    /// report, and privacy spend are byte-identical for any `s`.
    pub subgraph_shard_edges: Option<usize>,
    /// Crash safety: emit a [`TrainerState`] snapshot to the checkpoint
    /// sink every this many completed steps (`None` disables). The
    /// cadence is not part of the run's identity — changing it between
    /// crash and resume still reproduces the uninterrupted run
    /// bit-for-bit, because snapshots capture the full loop state at a
    /// step boundary.
    pub checkpoint_every: Option<u64>,
    /// Directory the checkpoint layer (`sp_model::checkpoint`) writes
    /// `.spc` files into. The trainer itself never touches the
    /// filesystem; this setting rides along so pipeline layers
    /// ([`crate::Trainer::train_checkpointed`] callers, the CLI,
    /// `sp_dynamic`) know where to persist and resume from.
    pub checkpoint_dir: Option<PathBuf>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            dim: 128,
            negatives: 5,
            batch_size: 128,
            learning_rate: 0.1,
            clip: 2.0,
            sigma: 5.0,
            epsilon: 3.5,
            delta: 1e-5,
            epochs: 200,
            strategy: PerturbStrategy::NonZero,
            negative_sampling: NegativeSampling::UniformNonNeighbor,
            seed: 0x5EED,
            threads: None,
            subgraph_shard_edges: None,
            checkpoint_every: None,
            checkpoint_dir: None,
        }
    }
}

impl TrainConfig {
    /// Validates parameter ranges; returns the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.dim == 0 {
            return Err("dim must be >= 1".into());
        }
        if self.negatives == 0 {
            return Err("negatives must be >= 1".into());
        }
        if self.batch_size == 0 {
            return Err("batch_size must be >= 1".into());
        }
        if self.learning_rate.is_nan() || self.learning_rate <= 0.0 {
            return Err("learning_rate must be positive".into());
        }
        if self.clip.is_nan() || self.clip <= 0.0 {
            return Err("clip must be positive".into());
        }
        if self.threads == Some(0) {
            return Err("threads must be >= 1 when set".into());
        }
        if self.subgraph_shard_edges == Some(0) {
            return Err("subgraph_shard_edges must be >= 1 when set".into());
        }
        if self.checkpoint_every == Some(0) {
            return Err("checkpoint_every must be >= 1 when set".into());
        }
        if self.strategy.is_private() {
            if self.sigma.is_nan() || self.sigma <= 0.0 {
                return Err("sigma must be positive for private training".into());
            }
            if self.epsilon.is_nan() || self.epsilon <= 0.0 {
                return Err("epsilon must be positive".into());
            }
            if self.delta.is_nan() || self.delta <= 0.0 || self.delta >= 1.0 {
                return Err("delta must be in (0,1)".into());
            }
        }
        Ok(())
    }

    /// FNV-1a hash over every parameter that determines the training
    /// trajectory, plus the graph shape. A checkpoint records this and
    /// resume refuses a mismatch — replaying a snapshot under a
    /// different config would silently produce garbage (or, worse,
    /// mis-account privacy).
    ///
    /// Deliberately excluded, because they never change results:
    /// `threads` (a crash on a 4-core box may resume on 1 core),
    /// `subgraph_shard_edges` (streamed and materialised modes are
    /// bit-identical), and the checkpoint cadence/location themselves.
    pub fn fingerprint(&self, num_nodes: usize, num_edges: usize) -> u64 {
        let strategy = match self.strategy {
            PerturbStrategy::None => 0u64,
            PerturbStrategy::Naive => 1,
            PerturbStrategy::NonZero => 2,
        };
        let sampling = match self.negative_sampling {
            NegativeSampling::UniformNonNeighbor => 0u64,
            NegativeSampling::DegreeProportional => 1,
        };
        let words = [
            0x5350_4345_4B50_5431u64, // "SPCEKPT1": format discriminator
            self.dim as u64,
            self.negatives as u64,
            self.batch_size as u64,
            self.learning_rate.to_bits(),
            self.clip.to_bits(),
            self.sigma.to_bits(),
            self.epsilon.to_bits(),
            self.delta.to_bits(),
            self.epochs as u64,
            strategy,
            sampling,
            self.seed,
            num_nodes as u64,
            num_edges as u64,
        ];
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for w in words {
            for b in w.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        h
    }
}

/// What happened during training.
#[derive(Clone, Debug)]
pub struct TrainReport {
    /// Full epochs completed.
    pub epochs_run: usize,
    /// Batch steps completed.
    pub steps_run: u64,
    /// True when the privacy budget, not the epoch cap, ended training.
    pub stopped_by_budget: bool,
    /// ε spent at the target δ (0 for non-private runs).
    pub epsilon_spent: f64,
    /// δ̂ at the target ε (0 for non-private runs).
    pub delta_spent: f64,
    /// Mean per-example loss over the final epoch's sampled batches.
    pub final_loss: f64,
}

/// A bit-exact snapshot of the training loop at a step boundary — the
/// payload of a `.spc` checkpoint (serialised by `sp_model`).
///
/// Everything the loop consumes after a step boundary is either (a)
/// derived deterministically from the config and the graph (subgraph
/// base seed, proximity weights, batch schedule *shape*) or (b)
/// captured here: the counters, the run RNG, the Marsaglia sampler's
/// cached spare, the loss accumulator, both embedding matrices at full
/// `f64` precision, and the raw RDP curve. Restoring (b) and replaying
/// from the boundary therefore reproduces the uninterrupted run
/// bit-for-bit — including the privacy spend, which is restored (not
/// recomputed), so ε can never be double-spent across crashes.
#[derive(Clone, Debug)]
pub struct TrainerState {
    /// Binds the snapshot to a (config, graph shape) pair — see
    /// [`TrainConfig::fingerprint`]. Resume refuses a mismatch.
    pub fingerprint: u64,
    /// Batch steps completed.
    pub steps_run: u64,
    /// Epochs fully completed.
    pub epochs_run: u64,
    /// Steps completed inside the current epoch (the shard cursor of
    /// an out-of-core walk: step `s` covers sampled edge indices of
    /// batch `s`).
    pub step_in_epoch: u64,
    /// xoshiro256++ state of the run RNG.
    pub rng: [u64; 4],
    /// Cached spare deviate of the Gaussian sampler, if present.
    pub noise_spare: Option<f64>,
    /// Final-epoch loss accumulator: sum of per-example losses.
    pub loss_sum: f64,
    /// Final-epoch loss accumulator: number of examples.
    pub loss_count: u64,
    /// Centre embeddings `W_in`, full `f64` precision.
    pub w_in: DenseMatrix,
    /// Context embeddings `W_out`, full `f64` precision.
    pub w_out: DenseMatrix,
    /// Largest order of the accountant's RDP grid (0 when the run is
    /// non-private and carries no accountant).
    pub accountant_orders_max: u64,
    /// Raw accumulated RDP curve (empty for non-private runs).
    pub accountant_rdp: Vec<f64>,
    /// Steps recorded by the accountant.
    pub accountant_steps: u64,
}

/// Receives each boundary [`TrainerState`] during
/// [`Trainer::train_checkpointed`] and persists it; an `Err` aborts
/// the run (a run that cannot checkpoint must not continue past its
/// durability guarantee).
pub type CheckpointSink<'a> = &'a mut dyn FnMut(&TrainerState) -> io::Result<()>;

/// Minimum per-batch work (examples × contexts × dim) before an
/// *auto-resolved* thread count fans the gradient pass out over the
/// worker pool. `sp_parallel` spawns a fresh scoped pool every step
/// (~100 µs for 4 workers), so the batch must carry on the order of
/// that much gradient math before parallelism pays; the paper's §VI-A
/// configuration (B=128, k=5, r=128 ⇒ 98 304) crosses the bar, toy and
/// test configs do not. An explicit `TrainConfig::threads = Some(n>1)`
/// bypasses the heuristic — the caller asked for the pool. The cutover
/// never changes results — only which path computes them.
const PAR_GRAD_MIN_WORK: usize = 65_536;

/// Runs Algorithm 2 on a graph + proximity weighting.
#[derive(Clone, Debug)]
pub struct Trainer {
    config: TrainConfig,
}

impl Trainer {
    /// Creates a trainer; panics on invalid configuration (the
    /// experiments construct configs programmatically — a typo should
    /// fail fast, not silently train garbage).
    pub fn new(config: TrainConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid TrainConfig: {e}");
        }
        Self { config }
    }

    /// Access to the configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Trains and returns the model (both embedding matrices — the
    /// published `Θ = {W_in, W_out}`) and a report.
    ///
    /// # Panics
    /// Panics if the graph has no edges (there is nothing to embed).
    pub fn train(&self, g: &Graph, prox: &EdgeProximity) -> (SkipGramModel, TrainReport) {
        self.train_impl(g, prox, None, None, None)
            .expect("training without a checkpoint sink cannot fail")
    }

    /// Trains starting from an existing model (warm start) — the
    /// continual-publishing pattern: the initial model is a previously
    /// *published* (already-DP) artefact, so reusing it is
    /// post-processing and costs no additional budget.
    ///
    /// # Panics
    /// Panics if `initial` does not match the graph's node count or
    /// the configured dimension.
    pub fn train_from(
        &self,
        g: &Graph,
        prox: &EdgeProximity,
        initial: SkipGramModel,
    ) -> (SkipGramModel, TrainReport) {
        assert_eq!(
            initial.num_nodes(),
            g.num_nodes(),
            "warm-start model node count mismatch"
        );
        assert_eq!(
            initial.dim(),
            self.config.dim,
            "warm-start model dimension mismatch"
        );
        self.train_impl(g, prox, Some(initial), None, None)
            .expect("training without a checkpoint sink cannot fail")
    }

    /// Checkpointed (and optionally resumed) training.
    ///
    /// Every [`TrainConfig::checkpoint_every`] completed steps, a
    /// [`TrainerState`] snapshot is handed to `sink` (which persists it
    /// — the trainer itself never touches the filesystem). A sink
    /// error aborts training and is returned: a run that cannot
    /// checkpoint must not silently continue past its durability
    /// guarantee. Passing `resume = Some(state)` restores a snapshot
    /// and continues the run; the final model, report, and privacy
    /// spend are bit-identical to an uninterrupted run of the same
    /// config (see [`TrainerState`]).
    ///
    /// # Errors
    /// `InvalidData` when `resume` does not match this config and
    /// graph; otherwise only errors returned by `sink`.
    pub fn train_checkpointed(
        &self,
        g: &Graph,
        prox: &EdgeProximity,
        initial: Option<SkipGramModel>,
        resume: Option<&TrainerState>,
        sink: CheckpointSink<'_>,
    ) -> io::Result<(SkipGramModel, TrainReport)> {
        self.train_impl(g, prox, initial, resume, Some(sink))
    }

    fn train_impl(
        &self,
        g: &Graph,
        prox: &EdgeProximity,
        initial: Option<SkipGramModel>,
        resume: Option<&TrainerState>,
        mut sink: Option<CheckpointSink<'_>>,
    ) -> io::Result<(SkipGramModel, TrainReport)> {
        let cfg = &self.config;
        assert!(g.num_edges() > 0, "cannot train on an edgeless graph");
        assert_eq!(
            prox.len(),
            g.num_edges(),
            "proximity weights must cover every edge"
        );

        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        // Line 2: G_S via Algorithm 1 — materialised, or (out-of-core
        // mode) a generator that regenerates each sampled subgraph on
        // demand. Both consume exactly one base-seed draw from the run
        // RNG and derive every subgraph from its edge index, so the
        // two modes see identical subgraphs and identical downstream
        // RNG streams: the trained model is byte-identical either way.
        let subgraphs: SubgraphSource<'_> = if cfg.subgraph_shard_edges.is_some() {
            let base_seed: u64 = rng.gen();
            SubgraphSource::Streamed(SubgraphGen::new(
                g,
                cfg.negatives,
                cfg.negative_sampling,
                base_seed,
            ))
        } else {
            SubgraphSource::Materialised(generate_subgraphs(
                g,
                cfg.negatives,
                cfg.negative_sampling,
                &mut rng,
            ))
        };
        // Line 3: initialise Θ (or warm-start from a published model;
        // the fresh init is still drawn to keep the RNG stream — and
        // therefore batch/noise sequences — identical in both paths).
        let fresh = SkipGramModel::new(g.num_nodes(), cfg.dim, &mut rng);
        let mut model = initial.unwrap_or(fresh);

        let num_edges = g.num_edges();
        let batch = cfg.batch_size.min(num_edges);
        let steps_per_epoch = num_edges.div_ceil(batch);
        let gamma = (batch as f64 / num_edges as f64).min(1.0);

        let mut accountant = if cfg.strategy.is_private() {
            Some(BudgetedAccountant::new(
                PrivacyBudget::new(cfg.epsilon, cfg.delta),
                gamma,
                cfg.sigma,
            ))
        } else {
            None
        };

        let mut state = BatchState::new(g.num_nodes(), cfg.dim);
        let mut noise = GaussianSampler::new();
        let mut buf = GradBuffer::new();

        // The per-example pass fans out over the worker pool when the
        // caller asked for threads explicitly, or when an auto-resolved
        // count meets the per-batch work bar; both paths clip and
        // accumulate in batch-sample order, so the result is
        // byte-identical either way (see `TrainConfig::threads`).
        let threads = sp_parallel::resolve_threads(cfg.threads);
        let par_grads = threads > 1
            && (cfg.threads.is_some()
                || batch * (cfg.negatives + 1) * cfg.dim >= PAR_GRAD_MIN_WORK);

        let mut steps_run: u64 = 0;
        let mut epochs_run = 0usize;
        let mut stopped_by_budget = false;
        let mut loss_stats = (0.0f64, 0u64);

        // Resume: the prefix above replayed the same seeded draws as
        // the original run (subgraph source, fresh init), so the
        // derived subgraph streams are identical; now overwrite every
        // piece of live loop state with the snapshot.
        let fingerprint = cfg.fingerprint(g.num_nodes(), g.num_edges());
        let mut resume_step = 0usize;
        if let Some(st) = resume {
            if st.fingerprint != fingerprint {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "checkpoint fingerprint does not match this config and graph \
                     (refusing to resume: the trajectory would diverge)",
                ));
            }
            model = SkipGramModel {
                w_in: st.w_in.clone(),
                w_out: st.w_out.clone(),
            };
            rng = SmallRng::from_state(st.rng);
            noise = GaussianSampler::from_spare(st.noise_spare);
            if let Some(acc) = accountant.as_mut() {
                *acc = BudgetedAccountant::resume(
                    PrivacyBudget::new(cfg.epsilon, cfg.delta),
                    gamma,
                    cfg.sigma,
                    st.accountant_orders_max,
                    st.accountant_rdp.clone(),
                    st.accountant_steps,
                )
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            }
            steps_run = st.steps_run;
            epochs_run = st.epochs_run as usize;
            loss_stats = (st.loss_sum, st.loss_count);
            resume_step = st.step_in_epoch as usize;
        }
        let start_epoch = epochs_run;

        'training: for epoch in start_epoch..cfg.epochs {
            let final_epoch = epoch + 1 == cfg.epochs;
            // First (possibly resumed) epoch starts at the snapshot's
            // step cursor; all later epochs start at 0.
            let first_step = std::mem::take(&mut resume_step);
            for step in first_step..steps_per_epoch {
                // Lines 8–10: stop when the budget would be exceeded.
                if let Some(acc) = accountant.as_mut() {
                    if !acc.try_step() {
                        stopped_by_budget = true;
                        break 'training;
                    }
                }
                // Line 5: B subgraphs uniformly without replacement
                // (the sampler stays serial: one RNG stream per run).
                let idx = rand::seq::index::sample(&mut rng, num_edges, batch);
                if par_grads {
                    let picked: Vec<usize> = idx.iter().collect();
                    // Compute + clip per-example gradients in parallel,
                    // then reduce serially in batch-sample order.
                    let grads = sp_parallel::par_map(&picked, threads, |&i| {
                        let sg = subgraphs.get(i);
                        let p = prox.weights[sg.edge_index];
                        let loss = if final_epoch { model.loss(&sg, p) } else { 0.0 };
                        let mut ebuf = GradBuffer::new();
                        model.example_grad(&sg, p, &mut ebuf);
                        ebuf.clip(cfg.clip);
                        (ebuf, loss)
                    });
                    for (ebuf, loss) in &grads {
                        if final_epoch {
                            loss_stats.0 += loss;
                            loss_stats.1 += 1;
                        }
                        state.accumulate(ebuf);
                    }
                } else {
                    for i in idx.iter() {
                        let sg = subgraphs.get(i);
                        let p = prox.weights[sg.edge_index];
                        if final_epoch {
                            loss_stats.0 += model.loss(&sg, p);
                            loss_stats.1 += 1;
                        }
                        model.example_grad(&sg, p, &mut buf);
                        buf.clip(cfg.clip);
                        state.accumulate(&buf);
                    }
                }
                // Lines 6–7: perturb and apply (serial — the noise
                // stream is part of the seeded RNG sequence).
                self.apply_update(&mut model, &mut state, batch, &mut noise, &mut rng);
                steps_run += 1;
                // Checkpoint at the step boundary: the batch
                // accumulators are zeroed here, so the loop state is
                // exactly (counters, RNG, noise spare, loss, model,
                // accountant) — everything TrainerState captures.
                if let (Some(every), Some(sink)) = (cfg.checkpoint_every, sink.as_mut()) {
                    if steps_run % every == 0 {
                        let snapshot = TrainerState {
                            fingerprint,
                            steps_run,
                            epochs_run: epochs_run as u64,
                            step_in_epoch: (step + 1) as u64,
                            rng: rng.state(),
                            noise_spare: noise.spare(),
                            loss_sum: loss_stats.0,
                            loss_count: loss_stats.1,
                            w_in: model.w_in.clone(),
                            w_out: model.w_out.clone(),
                            accountant_orders_max: accountant
                                .as_ref()
                                .map(|a| a.max_order())
                                .unwrap_or(0),
                            accountant_rdp: accountant
                                .as_ref()
                                .map(|a| a.rdp_raw().to_vec())
                                .unwrap_or_default(),
                            accountant_steps: accountant.as_ref().map(|a| a.steps()).unwrap_or(0),
                        };
                        sink(&snapshot)?;
                    }
                }
            }
            epochs_run += 1;
        }

        let (epsilon_spent, delta_spent) =
            accountant.as_ref().map(|a| a.spent()).unwrap_or((0.0, 0.0));
        let final_loss = if loss_stats.1 > 0 {
            loss_stats.0 / loss_stats.1 as f64
        } else {
            f64::NAN
        };
        Ok((
            model,
            TrainReport {
                epochs_run,
                steps_run,
                stopped_by_budget,
                epsilon_spent,
                delta_spent,
                final_loss,
            },
        ))
    }

    /// Noise + SGD application for one batch, per the strategy.
    fn apply_update(
        &self,
        model: &mut SkipGramModel,
        state: &mut BatchState,
        batch: usize,
        noise: &mut GaussianSampler,
        rng: &mut SmallRng,
    ) {
        let cfg = &self.config;
        let scale = -cfg.learning_rate / batch as f64;
        let noise_std = cfg.strategy.sensitivity(batch, cfg.clip) * cfg.sigma;

        match cfg.strategy {
            PerturbStrategy::None | PerturbStrategy::NonZero => {
                // Update (and, for NonZero, perturb) only touched rows.
                for &row in &state.touched_in {
                    let acc = state.acc_in.row_mut(row as usize);
                    if noise_std > 0.0 {
                        noise.perturb_slice(acc, noise_std, rng);
                    }
                    vector::axpy(scale, acc, model.w_in.row_mut(row as usize));
                    acc.iter_mut().for_each(|v| *v = 0.0);
                }
                for &row in &state.touched_out {
                    let acc = state.acc_out.row_mut(row as usize);
                    if noise_std > 0.0 {
                        noise.perturb_slice(acc, noise_std, rng);
                    }
                    vector::axpy(scale, acc, model.w_out.row_mut(row as usize));
                    acc.iter_mut().for_each(|v| *v = 0.0);
                }
            }
            PerturbStrategy::Naive => {
                // Every row of both gradient matrices is perturbed
                // (Fig. 2(c)), including rows whose gradient is zero.
                let n = model.num_nodes();
                let dim = model.dim();
                let mut noise_row = vec![0.0f64; dim];
                for row in 0..n {
                    noise.fill_slice(&mut noise_row, noise_std, rng);
                    let acc = state.acc_in.row_mut(row);
                    vector::axpy(1.0, acc, &mut noise_row);
                    vector::axpy(scale, &noise_row, model.w_in.row_mut(row));
                    acc.iter_mut().for_each(|v| *v = 0.0);

                    noise.fill_slice(&mut noise_row, noise_std, rng);
                    let acc = state.acc_out.row_mut(row);
                    vector::axpy(1.0, acc, &mut noise_row);
                    vector::axpy(scale, &noise_row, model.w_out.row_mut(row));
                    acc.iter_mut().for_each(|v| *v = 0.0);
                }
            }
        }
        state.clear_touched();
    }
}

/// Where the trainer's subgraphs come from: the whole materialised
/// `G_S`, or an on-demand generator (out-of-core mode). Both hand out
/// the same subgraph for the same index.
enum SubgraphSource<'g> {
    Materialised(Vec<Subgraph>),
    Streamed(SubgraphGen<'g>),
}

impl SubgraphSource<'_> {
    fn get(&self, i: usize) -> Cow<'_, Subgraph> {
        match self {
            SubgraphSource::Materialised(v) => Cow::Borrowed(&v[i]),
            SubgraphSource::Streamed(gen) => Cow::Owned(gen.generate(i)),
        }
    }
}

/// Batch gradient accumulators with touched-row tracking: reused
/// across every step of a run, zeroed row-by-row (only touched rows
/// are ever dirty).
struct BatchState {
    acc_in: DenseMatrix,
    acc_out: DenseMatrix,
    touched_in: Vec<NodeId>,
    touched_out: Vec<NodeId>,
    in_flags: Vec<bool>,
    out_flags: Vec<bool>,
}

impl BatchState {
    fn new(num_nodes: usize, dim: usize) -> Self {
        Self {
            acc_in: DenseMatrix::zeros(num_nodes, dim),
            acc_out: DenseMatrix::zeros(num_nodes, dim),
            touched_in: Vec::new(),
            touched_out: Vec::new(),
            in_flags: vec![false; num_nodes],
            out_flags: vec![false; num_nodes],
        }
    }

    fn accumulate(&mut self, buf: &GradBuffer) {
        let c = buf.center as usize;
        if !self.in_flags[c] {
            self.in_flags[c] = true;
            self.touched_in.push(buf.center);
        }
        vector::axpy(1.0, &buf.grad_center, self.acc_in.row_mut(c));
        for (row, grad) in buf.ctx_rows().iter().zip(buf.ctx_grads()) {
            let r = *row as usize;
            if !self.out_flags[r] {
                self.out_flags[r] = true;
                self.touched_out.push(*row);
            }
            vector::axpy(1.0, grad, self.acc_out.row_mut(r));
        }
    }

    fn clear_touched(&mut self) {
        for &r in &self.touched_in {
            self.in_flags[r as usize] = false;
        }
        for &r in &self.touched_out {
            self.out_flags[r as usize] = false;
        }
        self.touched_in.clear();
        self.touched_out.clear();
    }
}

/// Convenience: builds the default-config trainer, computes the
/// proximity, and trains — the one-liner used by examples.
pub fn train_with_defaults(
    g: &Graph,
    kind: sp_proximity::ProximityKind,
) -> (SkipGramModel, TrainReport) {
    let prox = EdgeProximity::compute(g, kind);
    Trainer::new(TrainConfig::default()).train(g, &prox)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_proximity::ProximityKind;

    fn ring_with_chords(n: usize) -> Graph {
        let mut edges: Vec<(u32, u32)> = (0..n).map(|i| (i as u32, ((i + 1) % n) as u32)).collect();
        for i in (0..n).step_by(5) {
            edges.push((i as u32, ((i + n / 2) % n) as u32));
        }
        Graph::from_edges(n, edges)
    }

    fn quick_config(strategy: PerturbStrategy) -> TrainConfig {
        TrainConfig {
            dim: 16,
            negatives: 3,
            batch_size: 16,
            learning_rate: 0.1,
            clip: 1.0,
            sigma: 5.0,
            epsilon: 3.5,
            delta: 1e-5,
            epochs: 5,
            strategy,
            negative_sampling: NegativeSampling::UniformNonNeighbor,
            seed: 99,
            threads: None,
            subgraph_shard_edges: None,
            checkpoint_every: None,
            checkpoint_dir: None,
        }
    }

    #[test]
    fn nonprivate_training_reduces_loss() {
        let g = ring_with_chords(60);
        let prox = EdgeProximity::compute(&g, ProximityKind::deepwalk_default());
        let mut cfg = quick_config(PerturbStrategy::None);
        cfg.epochs = 1;
        let (_, early) = Trainer::new(cfg.clone()).train(&g, &prox);
        cfg.epochs = 40;
        let (_, late) = Trainer::new(cfg).train(&g, &prox);
        assert!(
            late.final_loss < early.final_loss,
            "loss should fall with more epochs: {} -> {}",
            early.final_loss,
            late.final_loss
        );
    }

    #[test]
    fn report_counts_epochs_and_steps() {
        let g = ring_with_chords(40);
        let prox = EdgeProximity::compute(&g, ProximityKind::Degree);
        let cfg = quick_config(PerturbStrategy::None);
        let (_, rep) = Trainer::new(cfg.clone()).train(&g, &prox);
        assert_eq!(rep.epochs_run, 5);
        let steps_per_epoch = g.num_edges().div_ceil(cfg.batch_size);
        assert_eq!(rep.steps_run, (5 * steps_per_epoch) as u64);
        assert!(!rep.stopped_by_budget);
        assert_eq!(rep.epsilon_spent, 0.0);
    }

    #[test]
    fn private_training_spends_budget() {
        let g = ring_with_chords(40);
        let prox = EdgeProximity::compute(&g, ProximityKind::Degree);
        let (_, rep) = Trainer::new(quick_config(PerturbStrategy::NonZero)).train(&g, &prox);
        assert!(rep.epsilon_spent > 0.0);
        assert!(rep.delta_spent < 1e-5);
    }

    #[test]
    fn tiny_budget_stops_training_early() {
        let g = ring_with_chords(40);
        let prox = EdgeProximity::compute(&g, ProximityKind::Degree);
        let mut cfg = quick_config(PerturbStrategy::NonZero);
        // γ = 16/48 = 1/3 is large; ε = 0.05 is minuscule: the budget
        // must bind almost immediately.
        cfg.epsilon = 0.05;
        cfg.epochs = 100;
        let (_, rep) = Trainer::new(cfg).train(&g, &prox);
        assert!(rep.stopped_by_budget);
        assert!(rep.epochs_run < 100);
    }

    #[test]
    fn streamed_subgraphs_are_bit_identical_to_materialised() {
        let g = ring_with_chords(40);
        let prox = EdgeProximity::compute(&g, ProximityKind::deepwalk_default());
        for sampling in [
            NegativeSampling::UniformNonNeighbor,
            NegativeSampling::DegreeProportional,
        ] {
            let mut cfg = quick_config(PerturbStrategy::NonZero);
            cfg.negative_sampling = sampling;
            let (mat, mat_rep) = Trainer::new(cfg.clone()).train(&g, &prox);
            for shard in [1usize, 7, g.num_edges()] {
                cfg.subgraph_shard_edges = Some(shard);
                let (st, st_rep) = Trainer::new(cfg.clone()).train(&g, &prox);
                assert_eq!(mat.w_in.as_slice(), st.w_in.as_slice(), "{sampling:?}");
                assert_eq!(mat.w_out.as_slice(), st.w_out.as_slice(), "{sampling:?}");
                assert_eq!(mat_rep.steps_run, st_rep.steps_run);
                assert_eq!(
                    mat_rep.epsilon_spent.to_bits(),
                    st_rep.epsilon_spent.to_bits()
                );
            }
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let g = ring_with_chords(30);
        let prox = EdgeProximity::compute(&g, ProximityKind::deepwalk_default());
        let cfg = quick_config(PerturbStrategy::NonZero);
        let (m1, _) = Trainer::new(cfg.clone()).train(&g, &prox);
        let (m2, _) = Trainer::new(cfg).train(&g, &prox);
        assert_eq!(m1.w_in.as_slice(), m2.w_in.as_slice());
        assert_eq!(m1.w_out.as_slice(), m2.w_out.as_slice());
    }

    #[test]
    fn different_seeds_differ() {
        let g = ring_with_chords(30);
        let prox = EdgeProximity::compute(&g, ProximityKind::deepwalk_default());
        let mut cfg = quick_config(PerturbStrategy::NonZero);
        let (m1, _) = Trainer::new(cfg.clone()).train(&g, &prox);
        cfg.seed = 123;
        let (m2, _) = Trainer::new(cfg).train(&g, &prox);
        assert_ne!(m1.w_in.as_slice(), m2.w_in.as_slice());
    }

    #[test]
    fn naive_noise_floods_untouched_rows() {
        // With naive perturbation every row of both matrices receives
        // noise with the B× larger sensitivity each step; with
        // non-zero only touched rows receive C-scaled noise. Compare
        // the *drift* from the (identical, same-seed) initialisation.
        let g = ring_with_chords(30);
        let prox = EdgeProximity::compute(&g, ProximityKind::Degree);
        let mut cfg = quick_config(PerturbStrategy::Naive);
        cfg.epochs = 2;
        let (naive_model, _) = Trainer::new(cfg.clone()).train(&g, &prox);
        cfg.strategy = PerturbStrategy::NonZero;
        let (nz_model, _) = Trainer::new(cfg.clone()).train(&g, &prox);
        cfg.strategy = PerturbStrategy::None;
        cfg.epochs = 1; // init reference: same seed => same init
        let init = {
            let mut rng = rand::rngs::SmallRng::seed_from_u64(cfg.seed);
            let _ = crate::subgraph::generate_subgraphs(
                &g,
                cfg.negatives,
                cfg.negative_sampling,
                &mut rng,
            );
            SkipGramModel::new(g.num_nodes(), cfg.dim, &mut rng)
        };
        let drift = |m: &SkipGramModel| {
            let mut d = m.w_out.clone();
            d.add_scaled(-1.0, &init.w_out);
            d.frobenius_norm()
        };
        let naive_drift = drift(&naive_model);
        let nz_drift = drift(&nz_model);
        assert!(
            naive_drift > 5.0 * nz_drift,
            "naive noise should dominate: drift {naive_drift} vs {nz_drift}"
        );
    }

    #[test]
    fn batch_larger_than_edge_count_is_capped() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let prox = EdgeProximity::compute(&g, ProximityKind::Degree);
        let mut cfg = quick_config(PerturbStrategy::None);
        cfg.batch_size = 1000;
        let (_, rep) = Trainer::new(cfg).train(&g, &prox);
        assert_eq!(rep.steps_run, 5); // one step per epoch, 5 epochs
    }

    #[test]
    #[should_panic(expected = "edgeless")]
    fn refuses_empty_graph() {
        let g = Graph::from_edges(3, std::iter::empty());
        let prox = EdgeProximity {
            weights: vec![],
            min_positive: 1.0,
            kind: ProximityKind::Degree,
        };
        Trainer::new(quick_config(PerturbStrategy::None)).train(&g, &prox);
    }

    #[test]
    #[should_panic(expected = "invalid TrainConfig")]
    fn invalid_config_fails_fast() {
        let mut cfg = quick_config(PerturbStrategy::NonZero);
        cfg.sigma = 0.0;
        Trainer::new(cfg);
    }
}
