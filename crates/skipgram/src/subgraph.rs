//! Algorithm 1: generating disjoint subgraphs.
//!
//! The paper pre-computes, for every edge `(v_i, v_j) ∈ E`, a
//! "subgraph" `S` containing the positive pair plus `k` negative pairs
//! `(v_i, v_n)` where each `v_n` is a uniformly random node that is
//! *not* adjacent to `v_i` (rejection-sampled, footnote 2: negatives
//! are collected **prior to training** to keep the privacy analysis a
//! clean subsampled mechanism over a fixed set `G_S` of `|E|`
//! elements).
//!
//! [`NegativeSampling::DegreeProportional`] implements the
//! conventional unigram sampler of prior skip-gram work (negatives
//! drawn ∝ degree, Eq. 14) so the ablation harness can contrast
//! Theorem 3's design against it.

use crate::alias::{AliasTable, AliasTableBuilder};
use crate::walks::splitmix64;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sp_graph::{Graph, NodeId};
use std::ops::Range;

/// One element of `G_S`: an edge with its pre-drawn negatives.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Subgraph {
    /// Centre node `v_i` (the edge's first endpoint).
    pub center: NodeId,
    /// Positive context `v_j` (the edge's second endpoint).
    pub positive: NodeId,
    /// `k` negative contexts `v_n`.
    pub negatives: Vec<NodeId>,
    /// Index of the source edge in `g.edges()` (for proximity lookup).
    pub edge_index: usize,
}

/// How negatives are drawn.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NegativeSampling {
    /// Algorithm 1: uniform over non-neighbours of the centre
    /// (the sampler under which Theorem 3 holds).
    UniformNonNeighbor,
    /// Prior-work unigram sampler: ∝ degree over all nodes except the
    /// centre (used by the Eq. 15 comparison; may hit true neighbours,
    /// as in word2vec-style implementations).
    DegreeProportional,
}

/// Band height for streaming the degree weights into the alias
/// builder: big enough to amortise the pass, small enough that the
/// transient band is negligible next to the table itself.
const DEGREE_BAND: usize = 4096;

/// Algorithm 1 as an *indexable generator*: subgraph `e` is a pure
/// function of `(graph, k, sampling, base_seed, e)`, derived from a
/// per-edge `SmallRng` exactly like the seeded walk corpus derives
/// per-walk streams (see [`crate::walks::walk_rng`]).
///
/// Two consequences:
/// - **memory**: a consumer can regenerate any subgraph on demand —
///   O(k) transient per sample — instead of holding the `O(|E|·k)`
///   set `G_S`, which is the trainer's out-of-core mode
///   (`TrainConfig::subgraph_shard_edges`);
/// - **sharding**: [`SubgraphGen::range`] yields any edge-partitioned
///   shard of `G_S`, and concatenating shards in index order is
///   identical to [`generate_subgraphs`] over the full edge set.
#[derive(Clone, Debug)]
pub struct SubgraphGen<'g> {
    g: &'g Graph,
    k: usize,
    sampling: NegativeSampling,
    alias: Option<AliasTable>,
    /// `splitmix64(base_seed)`, XORed with the edge index per draw.
    premixed: u64,
}

impl<'g> SubgraphGen<'g> {
    /// A generator over the edges of `g` with `k` negatives per edge.
    ///
    /// For [`NegativeSampling::DegreeProportional`] the degree alias
    /// table is built through the streaming [`AliasTableBuilder`] in
    /// bands of `DEGREE_BAND` (4096) nodes — bit-identical to the
    /// materialised construction, without a resident weight vector.
    ///
    /// # Panics
    /// Panics when `k == 0` or the graph has fewer than two nodes.
    pub fn new(g: &'g Graph, k: usize, sampling: NegativeSampling, base_seed: u64) -> Self {
        assert!(k >= 1, "need at least one negative sample");
        assert!(g.num_nodes() >= 2, "need at least two nodes");
        let alias = match sampling {
            NegativeSampling::DegreeProportional => {
                let n = g.num_nodes();
                let mut b = AliasTableBuilder::new();
                let mut band = Vec::with_capacity(DEGREE_BAND.min(n));
                for pass in 0..2 {
                    let mut start = 0usize;
                    while start < n {
                        let end = (start + DEGREE_BAND).min(n);
                        band.clear();
                        band.extend((start..end).map(|v| g.degree(v as NodeId) as f64));
                        if pass == 0 {
                            b.push_mass(&band);
                        } else {
                            b.push_fill(&band);
                        }
                        start = end;
                    }
                }
                Some(b.finish())
            }
            NegativeSampling::UniformNonNeighbor => None,
        };
        Self {
            g,
            k,
            sampling,
            alias,
            premixed: splitmix64(base_seed),
        }
    }

    /// Number of subgraphs (`|E|`).
    pub fn len(&self) -> usize {
        self.g.num_edges()
    }

    /// True when the graph has no edges.
    pub fn is_empty(&self) -> bool {
        self.g.num_edges() == 0
    }

    /// Regenerates subgraph `edge_index` — always the same output for
    /// the same generator, no matter what was generated before.
    ///
    /// For [`NegativeSampling::UniformNonNeighbor`], a centre adjacent
    /// to every other node has no valid negative; such (pathological,
    /// complete-graph-ish) centres fall back to a uniform node
    /// `≠ centre` so the procedure always terminates — on the paper's
    /// sparse graphs the fallback never triggers.
    pub fn generate(&self, edge_index: usize) -> Subgraph {
        let (u, v) = self.g.edges()[edge_index];
        let mut rng = SmallRng::seed_from_u64(self.premixed ^ edge_index as u64);
        let mut negatives = Vec::with_capacity(self.k);
        for _ in 0..self.k {
            let n = match self.sampling {
                NegativeSampling::UniformNonNeighbor => {
                    self.g.random_non_neighbor(u, &mut rng).unwrap_or_else(|| {
                        // Fallback: any node != centre.
                        loop {
                            let c = self.g.random_node(&mut rng);
                            if c != u {
                                break c;
                            }
                        }
                    })
                }
                NegativeSampling::DegreeProportional => {
                    let table = self.alias.as_ref().expect("alias table built in new");
                    loop {
                        let c = table.sample(&mut rng);
                        if c != u {
                            break c;
                        }
                    }
                }
            };
            negatives.push(n);
        }
        Subgraph {
            center: u,
            positive: v,
            negatives,
            edge_index,
        }
    }

    /// One edge-partitioned shard of `G_S`: the subgraphs of the edges
    /// in `edges`, in index order.
    pub fn range(&self, edges: Range<usize>) -> Vec<Subgraph> {
        assert!(edges.end <= self.len(), "edge shard out of bounds");
        edges.map(|e| self.generate(e)).collect()
    }
}

/// Runs Algorithm 1: one subgraph per edge of `g`, each with `k`
/// negatives drawn per `sampling`.
///
/// Draws a single base seed from `rng` and delegates to
/// [`SubgraphGen`], so each subgraph's randomness depends only on its
/// edge index — regenerating any shard later (out-of-core training)
/// reproduces exactly the subgraphs materialised here.
pub fn generate_subgraphs<R: Rng + ?Sized>(
    g: &Graph,
    k: usize,
    sampling: NegativeSampling,
    rng: &mut R,
) -> Vec<Subgraph> {
    let base_seed: u64 = rng.gen();
    let gen = SubgraphGen::new(g, k, sampling, base_seed);
    gen.range(0..g.num_edges())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ring(n: usize) -> Graph {
        Graph::from_edges(n, (0..n).map(|i| (i as NodeId, ((i + 1) % n) as NodeId)))
    }

    #[test]
    fn one_subgraph_per_edge_with_k_negatives() {
        let g = ring(10);
        let mut rng = StdRng::seed_from_u64(1);
        let gs = generate_subgraphs(&g, 5, NegativeSampling::UniformNonNeighbor, &mut rng);
        assert_eq!(gs.len(), g.num_edges());
        for (i, s) in gs.iter().enumerate() {
            assert_eq!(s.negatives.len(), 5);
            assert_eq!(s.edge_index, i);
            let (u, v) = g.edges()[i];
            assert_eq!((s.center, s.positive), (u, v));
        }
    }

    #[test]
    fn uniform_negatives_are_non_neighbors() {
        let g = ring(12);
        let mut rng = StdRng::seed_from_u64(2);
        let gs = generate_subgraphs(&g, 4, NegativeSampling::UniformNonNeighbor, &mut rng);
        for s in &gs {
            for &n in &s.negatives {
                assert_ne!(n, s.center);
                assert!(
                    !g.has_edge(s.center, n),
                    "negative {n} adjacent to centre {}",
                    s.center
                );
            }
        }
    }

    #[test]
    fn saturated_centre_falls_back_gracefully() {
        // K4: every node is adjacent to every other; Algorithm 1's
        // rejection loop would never terminate, our fallback must.
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let mut rng = StdRng::seed_from_u64(3);
        let gs = generate_subgraphs(&g, 3, NegativeSampling::UniformNonNeighbor, &mut rng);
        for s in &gs {
            for &n in &s.negatives {
                assert_ne!(n, s.center);
            }
        }
    }

    #[test]
    fn degree_proportional_prefers_hubs() {
        // Star: hub 0 has degree 9, leaves degree 1. Negatives for
        // leaf-centred edges should be the hub overwhelmingly often.
        let g = Graph::from_edges(10, (1..10).map(|i| (0, i as NodeId)));
        let mut rng = StdRng::seed_from_u64(4);
        let gs = generate_subgraphs(&g, 20, NegativeSampling::DegreeProportional, &mut rng);
        let mut hub = 0usize;
        let mut total = 0usize;
        for s in &gs {
            if s.center != 0 {
                for &n in &s.negatives {
                    total += 1;
                    if n == 0 {
                        hub += 1;
                    }
                }
            }
        }
        // Hub mass is 9/18 = 0.5 of total degree; among draws != centre
        // the hub share is at least ~0.5.
        if total > 0 {
            let share = hub as f64 / total as f64;
            assert!(share > 0.4, "hub share {share}");
        }
    }

    #[test]
    fn degree_proportional_never_returns_centre() {
        let g = ring(8);
        let mut rng = StdRng::seed_from_u64(5);
        let gs = generate_subgraphs(&g, 6, NegativeSampling::DegreeProportional, &mut rng);
        for s in &gs {
            assert!(s.negatives.iter().all(|&n| n != s.center));
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let g = ring(16);
        let a = generate_subgraphs(
            &g,
            5,
            NegativeSampling::UniformNonNeighbor,
            &mut StdRng::seed_from_u64(7),
        );
        let b = generate_subgraphs(
            &g,
            5,
            NegativeSampling::UniformNonNeighbor,
            &mut StdRng::seed_from_u64(7),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn shards_concatenate_to_full_set() {
        let g = ring(14);
        let m = g.num_edges();
        for sampling in [
            NegativeSampling::UniformNonNeighbor,
            NegativeSampling::DegreeProportional,
        ] {
            let full = generate_subgraphs(&g, 4, sampling, &mut StdRng::seed_from_u64(9));
            // Same base seed as generate_subgraphs drew.
            let base: u64 = StdRng::seed_from_u64(9).gen();
            let gen = SubgraphGen::new(&g, 4, sampling, base);
            assert_eq!(gen.len(), m);
            for shard in [1usize, 5, m] {
                let mut streamed = Vec::new();
                let mut start = 0;
                while start < m {
                    let end = (start + shard).min(m);
                    streamed.extend(gen.range(start..end));
                    start = end;
                }
                assert_eq!(streamed, full, "{sampling:?} shard={shard}");
            }
        }
    }

    #[test]
    fn regeneration_is_idempotent_and_order_free() {
        let g = ring(10);
        let gen = SubgraphGen::new(&g, 3, NegativeSampling::UniformNonNeighbor, 0xABCD);
        let forward: Vec<Subgraph> = (0..gen.len()).map(|e| gen.generate(e)).collect();
        let backward: Vec<Subgraph> = (0..gen.len()).rev().map(|e| gen.generate(e)).collect();
        for (e, sg) in forward.iter().enumerate() {
            assert_eq!(*sg, backward[gen.len() - 1 - e]);
            assert_eq!(*sg, gen.generate(e));
        }
    }

    #[test]
    #[should_panic(expected = "edge shard out of bounds")]
    fn range_rejects_out_of_bounds() {
        let g = ring(5);
        let gen = SubgraphGen::new(&g, 2, NegativeSampling::UniformNonNeighbor, 1);
        gen.range(0..99);
    }

    #[test]
    #[should_panic(expected = "at least one negative")]
    fn rejects_zero_k() {
        let g = ring(4);
        let mut rng = StdRng::seed_from_u64(1);
        generate_subgraphs(&g, 0, NegativeSampling::UniformNonNeighbor, &mut rng);
    }
}
