//! Algorithm 1: generating disjoint subgraphs.
//!
//! The paper pre-computes, for every edge `(v_i, v_j) ∈ E`, a
//! "subgraph" `S` containing the positive pair plus `k` negative pairs
//! `(v_i, v_n)` where each `v_n` is a uniformly random node that is
//! *not* adjacent to `v_i` (rejection-sampled, footnote 2: negatives
//! are collected **prior to training** to keep the privacy analysis a
//! clean subsampled mechanism over a fixed set `G_S` of `|E|`
//! elements).
//!
//! [`NegativeSampling::DegreeProportional`] implements the
//! conventional unigram sampler of prior skip-gram work (negatives
//! drawn ∝ degree, Eq. 14) so the ablation harness can contrast
//! Theorem 3's design against it.

use crate::alias::AliasTable;
use rand::Rng;
use sp_graph::{Graph, NodeId};

/// One element of `G_S`: an edge with its pre-drawn negatives.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Subgraph {
    /// Centre node `v_i` (the edge's first endpoint).
    pub center: NodeId,
    /// Positive context `v_j` (the edge's second endpoint).
    pub positive: NodeId,
    /// `k` negative contexts `v_n`.
    pub negatives: Vec<NodeId>,
    /// Index of the source edge in `g.edges()` (for proximity lookup).
    pub edge_index: usize,
}

/// How negatives are drawn.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NegativeSampling {
    /// Algorithm 1: uniform over non-neighbours of the centre
    /// (the sampler under which Theorem 3 holds).
    UniformNonNeighbor,
    /// Prior-work unigram sampler: ∝ degree over all nodes except the
    /// centre (used by the Eq. 15 comparison; may hit true neighbours,
    /// as in word2vec-style implementations).
    DegreeProportional,
}

/// Runs Algorithm 1: one subgraph per edge of `g`, each with `k`
/// negatives drawn per `sampling`.
///
/// For [`NegativeSampling::UniformNonNeighbor`], a centre adjacent to
/// every other node has no valid negative; such (pathological,
/// complete-graph-ish) centres fall back to a uniform node `≠ centre`
/// so the procedure always terminates — on the paper's sparse graphs
/// the fallback never triggers.
pub fn generate_subgraphs<R: Rng + ?Sized>(
    g: &Graph,
    k: usize,
    sampling: NegativeSampling,
    rng: &mut R,
) -> Vec<Subgraph> {
    assert!(k >= 1, "need at least one negative sample");
    assert!(g.num_nodes() >= 2, "need at least two nodes");
    let alias = match sampling {
        NegativeSampling::DegreeProportional => {
            let w: Vec<f64> = (0..g.num_nodes())
                .map(|v| g.degree(v as NodeId) as f64)
                .collect();
            Some(AliasTable::new(&w))
        }
        NegativeSampling::UniformNonNeighbor => None,
    };

    let mut out = Vec::with_capacity(g.num_edges());
    for (edge_index, &(u, v)) in g.edges().iter().enumerate() {
        let mut negatives = Vec::with_capacity(k);
        for _ in 0..k {
            let n = match sampling {
                NegativeSampling::UniformNonNeighbor => {
                    g.random_non_neighbor(u, rng).unwrap_or_else(|| {
                        // Fallback: any node != centre.
                        loop {
                            let c = g.random_node(rng);
                            if c != u {
                                break c;
                            }
                        }
                    })
                }
                NegativeSampling::DegreeProportional => {
                    let table = alias.as_ref().expect("alias table built above");
                    loop {
                        let c = table.sample(rng);
                        if c != u {
                            break c;
                        }
                    }
                }
            };
            negatives.push(n);
        }
        out.push(Subgraph {
            center: u,
            positive: v,
            negatives,
            edge_index,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ring(n: usize) -> Graph {
        Graph::from_edges(n, (0..n).map(|i| (i as NodeId, ((i + 1) % n) as NodeId)))
    }

    #[test]
    fn one_subgraph_per_edge_with_k_negatives() {
        let g = ring(10);
        let mut rng = StdRng::seed_from_u64(1);
        let gs = generate_subgraphs(&g, 5, NegativeSampling::UniformNonNeighbor, &mut rng);
        assert_eq!(gs.len(), g.num_edges());
        for (i, s) in gs.iter().enumerate() {
            assert_eq!(s.negatives.len(), 5);
            assert_eq!(s.edge_index, i);
            let (u, v) = g.edges()[i];
            assert_eq!((s.center, s.positive), (u, v));
        }
    }

    #[test]
    fn uniform_negatives_are_non_neighbors() {
        let g = ring(12);
        let mut rng = StdRng::seed_from_u64(2);
        let gs = generate_subgraphs(&g, 4, NegativeSampling::UniformNonNeighbor, &mut rng);
        for s in &gs {
            for &n in &s.negatives {
                assert_ne!(n, s.center);
                assert!(
                    !g.has_edge(s.center, n),
                    "negative {n} adjacent to centre {}",
                    s.center
                );
            }
        }
    }

    #[test]
    fn saturated_centre_falls_back_gracefully() {
        // K4: every node is adjacent to every other; Algorithm 1's
        // rejection loop would never terminate, our fallback must.
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let mut rng = StdRng::seed_from_u64(3);
        let gs = generate_subgraphs(&g, 3, NegativeSampling::UniformNonNeighbor, &mut rng);
        for s in &gs {
            for &n in &s.negatives {
                assert_ne!(n, s.center);
            }
        }
    }

    #[test]
    fn degree_proportional_prefers_hubs() {
        // Star: hub 0 has degree 9, leaves degree 1. Negatives for
        // leaf-centred edges should be the hub overwhelmingly often.
        let g = Graph::from_edges(10, (1..10).map(|i| (0, i as NodeId)));
        let mut rng = StdRng::seed_from_u64(4);
        let gs = generate_subgraphs(&g, 20, NegativeSampling::DegreeProportional, &mut rng);
        let mut hub = 0usize;
        let mut total = 0usize;
        for s in &gs {
            if s.center != 0 {
                for &n in &s.negatives {
                    total += 1;
                    if n == 0 {
                        hub += 1;
                    }
                }
            }
        }
        // Hub mass is 9/18 = 0.5 of total degree; among draws != centre
        // the hub share is at least ~0.5.
        if total > 0 {
            let share = hub as f64 / total as f64;
            assert!(share > 0.4, "hub share {share}");
        }
    }

    #[test]
    fn degree_proportional_never_returns_centre() {
        let g = ring(8);
        let mut rng = StdRng::seed_from_u64(5);
        let gs = generate_subgraphs(&g, 6, NegativeSampling::DegreeProportional, &mut rng);
        for s in &gs {
            assert!(s.negatives.iter().all(|&n| n != s.center));
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let g = ring(16);
        let a = generate_subgraphs(
            &g,
            5,
            NegativeSampling::UniformNonNeighbor,
            &mut StdRng::seed_from_u64(7),
        );
        let b = generate_subgraphs(
            &g,
            5,
            NegativeSampling::UniformNonNeighbor,
            &mut StdRng::seed_from_u64(7),
        );
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one negative")]
    fn rejects_zero_k() {
        let g = ring(4);
        let mut rng = StdRng::seed_from_u64(1);
        generate_subgraphs(&g, 0, NegativeSampling::UniformNonNeighbor, &mut rng);
    }
}
