//! Gradient perturbation strategies.
//!
//! The paper's central mechanism design (§III-B vs §IV-A):
//!
//! - **`None`** — no noise; the non-private `SE-GEmb` reference used in
//!   Figs. 3–4.
//! - **`Naive`** (Eq. 6, the "first-cut solution") — treats the whole
//!   batch-summed gradient matrix as one query. Under node-level DP
//!   "the upper bound of `S_∇v` is `B·C`", and the Gaussian mechanism
//!   must randomise *every* coordinate of the `|V| × r` gradient, not
//!   just the touched rows (Fig. 2(c): the entire matrix is
//!   perturbed). Noise std per coordinate: `B·C·σ`.
//! - **`NonZero`** (Eq. 9, the paper's contribution) — exploits the
//!   one-hot input structure: a batch touches at most `B` rows of
//!   `W_in` and `B(k+1)` rows of `W_out`; after per-example joint
//!   clipping to `C`, replacing one example changes the summed
//!   gradient by at most `O(C)`, so noise with std `C·σ` on the
//!   touched rows suffices (`eN(S²σ²I)` "selectively adds noise to
//!   non-zero vectors"). Untouched rows carry no information about the
//!   batch *sum* and — because which edges were sampled is never
//!   published (only the final matrices are, §IV-A) — need no noise.
//!
//! The `B×` sensitivity gap is exactly what Table VI measures.

/// Which noise strategy the trainer applies to batch gradients.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PerturbStrategy {
    /// No noise (non-private `SE-GEmb`). The accountant is disabled.
    None,
    /// Eq. 6: sensitivity `B·C`, noise on every row of both matrices.
    Naive,
    /// Eq. 9: sensitivity `C`, noise only on rows touched by the batch.
    NonZero,
}

impl PerturbStrategy {
    /// Whether this strategy consumes privacy budget.
    pub fn is_private(&self) -> bool {
        !matches!(self, PerturbStrategy::None)
    }

    /// The ℓ2 sensitivity `S_∇v` used to scale the noise:
    /// `C` for non-zero perturbation, `B·C` for naive, `0` for none.
    pub fn sensitivity(&self, batch_size: usize, clip: f64) -> f64 {
        match self {
            PerturbStrategy::None => 0.0,
            PerturbStrategy::Naive => batch_size as f64 * clip,
            PerturbStrategy::NonZero => clip,
        }
    }

    /// Label used in experiment tables (`Naive` / `Non-zero` / `None`).
    pub fn label(&self) -> &'static str {
        match self {
            PerturbStrategy::None => "None",
            PerturbStrategy::Naive => "Naive",
            PerturbStrategy::NonZero => "Non-zero",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn privacy_flags() {
        assert!(!PerturbStrategy::None.is_private());
        assert!(PerturbStrategy::Naive.is_private());
        assert!(PerturbStrategy::NonZero.is_private());
    }

    #[test]
    fn sensitivities_follow_the_paper() {
        let (b, c) = (128, 2.0);
        assert_eq!(PerturbStrategy::None.sensitivity(b, c), 0.0);
        assert_eq!(PerturbStrategy::NonZero.sensitivity(b, c), 2.0);
        assert_eq!(PerturbStrategy::Naive.sensitivity(b, c), 256.0);
    }

    #[test]
    fn naive_gap_is_batch_factor() {
        let (b, c) = (64, 1.5);
        let naive = PerturbStrategy::Naive.sensitivity(b, c);
        let nonzero = PerturbStrategy::NonZero.sensitivity(b, c);
        assert_eq!(naive / nonzero, b as f64);
    }

    #[test]
    fn labels_stable() {
        assert_eq!(PerturbStrategy::Naive.label(), "Naive");
        assert_eq!(PerturbStrategy::NonZero.label(), "Non-zero");
    }
}
