//! Theorem 3 machinery: what the embedding space provably preserves.
//!
//! With the negative-sampling design `Pn(v) ∝ min(P)/Σ_j p_ij`, the
//! expected objective (Eq. 13) decomposes per pair into
//!
//! ```text
//! ℓ(x_ij) = -p_ij log σ(x_ij) - k·min(P) log σ(-x_ij)
//! ```
//!
//! whose unique minimiser is `x_ij* = log(p_ij / (k·min(P)))` — the
//! embedding inner products preserve log-proximity up to a constant
//! shift. This module provides:
//!
//! - [`theorem3_optimal`]: the closed form;
//! - [`optimize_objective`]: a direct gradient-descent minimiser of
//!   Eq. 13 over free variables `x_ij`, used by tests and the
//!   `ablation_theory` bench to verify the closed form *empirically*;
//! - [`prior_work_optimal`]: the degree-based-sampling optimum
//!   (Eq. 15, after Qiu et al.), which carries a `-log(d_i d_j)`
//!   distortion — the paper's argument for why prior work cannot
//!   preserve arbitrary proximities;
//! - [`proximity_alignment`]: Pearson correlation between a trained
//!   model's inner products and `log p_ij`, the end-to-end check that
//!   structure preference actually lands in the embedding space.

use crate::model::SkipGramModel;
use sp_linalg::{stats, vector, CsrMatrix};

/// Theorem 3 closed form: `x_ij* = log(p_ij / (k·min_p))`.
///
/// # Panics
/// Panics unless `p_ij > 0`, `k >= 1`, `min_p > 0` (the optimum of a
/// zero-proximity pair is `-∞` — such pairs are outside the support).
pub fn theorem3_optimal(p_ij: f64, k: usize, min_p: f64) -> f64 {
    assert!(p_ij > 0.0, "p_ij must be positive (got {p_ij})");
    assert!(k >= 1, "k must be >= 1");
    assert!(min_p > 0.0, "min(P) must be positive");
    (p_ij / (k as f64 * min_p)).ln()
}

/// Eq. 15 (prior work, degree-proportional negatives):
/// `x_ij = log(p_ij · D / (d_i · d_j)) - log k`, where `D = Σ p_ij`.
pub fn prior_work_optimal(p_ij: f64, total_p: f64, d_i: f64, d_j: f64, k: usize) -> f64 {
    assert!(p_ij > 0.0 && total_p > 0.0 && d_i > 0.0 && d_j > 0.0 && k >= 1);
    (p_ij * total_p / (d_i * d_j)).ln() - (k as f64).ln()
}

/// Gradient of the per-pair objective
/// `ℓ(x) = -p log σ(x) - q log σ(-x)`: `ℓ'(x) = (p+q) σ(x) - p`.
fn pair_grad(x: f64, p: f64, q: f64) -> f64 {
    (p + q) * vector::sigmoid(x) - p
}

/// Directly minimises Eq. 13 over free variables `x_ij`, one per
/// stored (positive) entry of `p`, by gradient descent. Returns the
/// optimised values parallel to `p.iter()`'s positive entries as
/// `(i, j, x_ij)` triplets.
///
/// Because the objective is separable and strictly convex in each
/// `x_ij`, plain GD with a modest learning rate converges to the
/// Theorem 3 closed form from any start — which is exactly what the
/// tests assert.
pub fn optimize_objective(
    p: &CsrMatrix,
    k: usize,
    iters: usize,
    lr: f64,
) -> Vec<(usize, usize, f64)> {
    assert!(k >= 1 && iters > 0 && lr > 0.0);
    let min_p = p
        .min_positive()
        .expect("proximity matrix must have a positive entry");
    let q = k as f64 * min_p;
    let mut out: Vec<(usize, usize, f64)> = p
        .iter()
        .filter(|&(_, _, v)| v > 0.0)
        .map(|(i, j, _)| (i, j, 0.0))
        .collect();
    let ps: Vec<f64> = p
        .iter()
        .filter(|&(_, _, v)| v > 0.0)
        .map(|(_, _, v)| v)
        .collect();
    for _ in 0..iters {
        for (slot, &pv) in out.iter_mut().zip(&ps) {
            slot.2 -= lr * pair_grad(slot.2, pv, q);
        }
    }
    out
}

/// Pearson correlation between the trained model's inner products
/// `x_ij = v_i·v_j` and `log p_ij` over the positive support of `p`
/// (optionally subsampled to `max_pairs` by taking a strided subset —
/// deterministic, no RNG needed for a correlation estimate).
pub fn proximity_alignment(model: &SkipGramModel, p: &CsrMatrix, max_pairs: usize) -> Option<f64> {
    let positives: Vec<(usize, usize, f64)> = p.iter().filter(|&(_, _, v)| v > 0.0).collect();
    if positives.is_empty() {
        return None;
    }
    let stride = (positives.len() / max_pairs.max(1)).max(1);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for (i, j, v) in positives.into_iter().step_by(stride) {
        xs.push(model.inner(i as u32, j as u32));
        ys.push(v.ln());
    }
    stats::pearson(&xs, &ys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_linalg::CooBuilder;

    fn toy_proximity() -> CsrMatrix {
        let mut b = CooBuilder::new(4, 4);
        // Symmetric positive entries with a 16x dynamic range.
        let entries = [
            (0, 1, 0.08),
            (0, 2, 0.02),
            (1, 2, 0.32),
            (1, 3, 0.04),
            (2, 3, 0.16),
        ];
        for &(i, j, v) in &entries {
            b.push(i, j, v);
            b.push(j, i, v);
        }
        b.build()
    }

    #[test]
    fn closed_form_basics() {
        // p = k·min_p ⇒ optimum 0.
        assert_eq!(theorem3_optimal(0.5, 5, 0.1), 0.0);
        // Doubling p shifts the optimum by ln 2.
        let a = theorem3_optimal(0.2, 5, 0.01);
        let b = theorem3_optimal(0.4, 5, 0.01);
        assert!((b - a - std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    fn gd_converges_to_theorem3_optimum() {
        let p = toy_proximity();
        let k = 5;
        let min_p = p.min_positive().unwrap();
        let xs = optimize_objective(&p, k, 8000, 0.5);
        for (i, j, x) in xs {
            let expect = theorem3_optimal(p.get(i, j), k, min_p);
            assert!(
                (x - expect).abs() < 1e-3,
                "pair ({i},{j}): GD {x} vs closed form {expect}"
            );
        }
    }

    #[test]
    fn gd_optimum_is_stationary() {
        let p = toy_proximity();
        let k = 3;
        let min_p = p.min_positive().unwrap();
        for (_, _, v) in p.iter().filter(|&(_, _, v)| v > 0.0) {
            let x_star = theorem3_optimal(v, k, min_p);
            let g = pair_grad(x_star, v, k as f64 * min_p);
            assert!(g.abs() < 1e-12, "gradient at optimum = {g}");
        }
    }

    #[test]
    fn prior_work_distorts_by_degrees() {
        // Same proximity, different endpoint degrees ⇒ different
        // prior-work optima, while Theorem 3's optimum is identical.
        let (p, total, k) = (0.1, 2.0, 5);
        let ours = theorem3_optimal(p, k, 0.01);
        let low_deg = prior_work_optimal(p, total, 1.0, 2.0, k);
        let high_deg = prior_work_optimal(p, total, 10.0, 20.0, k);
        assert_ne!(low_deg, high_deg);
        let _ = ours; // ours is degree-independent by construction
        assert!((low_deg - high_deg - (100.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn alignment_of_perfect_embedding_is_one() {
        // Build a model whose inner products are exactly log p_ij:
        // 1-d embeddings can't do that in general, so fake it with a
        // diagonal trick: use dim = #nodes and hand-set products.
        let p = toy_proximity();
        let n = p.rows();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
        let mut model = SkipGramModel::new(n, n, &mut rng);
        // w_in = I rows; w_out[j][i] = log p_ij  ⇒ inner(i,j)=log p_ij.
        for i in 0..n {
            for d in 0..n {
                model.w_in.set(i, d, if i == d { 1.0 } else { 0.0 });
            }
        }
        for (i, j, v) in p.iter() {
            if v > 0.0 {
                model.w_out.set(j, i, v.ln());
            }
        }
        let r = proximity_alignment(&model, &p, 10_000).unwrap();
        assert!(r > 0.999, "alignment of exact embedding = {r}");
    }

    use rand::SeedableRng;

    #[test]
    fn alignment_none_on_empty_support() {
        let p = CsrMatrix::zeros(4, 4);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        let model = SkipGramModel::new(4, 2, &mut rng);
        assert!(proximity_alignment(&model, &p, 100).is_none());
    }

    #[test]
    #[should_panic(expected = "p_ij must be positive")]
    fn closed_form_rejects_zero_proximity() {
        theorem3_optimal(0.0, 5, 0.1);
    }
}
