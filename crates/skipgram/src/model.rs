//! The skip-gram model: embedding matrices, proximity-weighted loss,
//! and per-example gradients.
//!
//! Following Fig. 1 of the paper, the model is two matrices: the input
//! (centre) embeddings `W_in ∈ R^{|V|×r}` and the output (context)
//! embeddings `W_out ∈ R^{|V|×r}`. For one subgraph
//! `S = {(v_i, v_j)} ∪ {(v_i, v_n)}_k` and proximity weight `p_ij`,
//! the objective (Eq. 5) is
//!
//! ```text
//! L_nov = -p_ij [ log σ(v_j·v_i) + Σ_n log σ(-v_n·v_i) ]
//! ```
//!
//! with gradients (Eq. 7, 8; `I[n]` = 1 for the positive, 0 otherwise)
//!
//! ```text
//! ∂L/∂v_i = p_ij Σ_n (σ(v_n·v_i) - I[n]) v_n      (one row of W_in)
//! ∂L/∂v_n = p_ij (σ(v_n·v_i) - I[n]) v_i          (k+1 rows of W_out)
//! ```
//!
//! The one-hot input layer is why only these rows are non-zero — the
//! observation behind the paper's non-zero perturbation mechanism.

use crate::subgraph::Subgraph;
use rand::Rng;
use sp_graph::NodeId;
use sp_linalg::{vector, DenseMatrix};

/// The two skip-gram embedding matrices.
#[derive(Clone, Debug)]
pub struct SkipGramModel {
    /// Centre embeddings (`W_in`); the published node vectors.
    pub w_in: DenseMatrix,
    /// Context embeddings (`W_out`).
    pub w_out: DenseMatrix,
}

impl SkipGramModel {
    /// Initialises both matrices uniformly in `[-1/√r, 1/√r)`, giving
    /// rows of expected norm `≈ 0.58` and inner products of order 1.
    ///
    /// word2vec's classic zero-`W_out` init relies on billions of
    /// updates to bootstrap; at the paper's scale (a few thousand
    /// batches) a zero `W_out` makes the `W_in` gradient — a weighted
    /// sum of `W_out` rows (Eq. 7) — vanish for many epochs. A
    /// symmetric `O(1/√r)` init puts gradients in a healthy range from
    /// step one while keeping initial inner products near zero in
    /// expectation.
    pub fn new<R: Rng + ?Sized>(num_nodes: usize, dim: usize, rng: &mut R) -> Self {
        assert!(dim >= 1, "embedding dimension must be >= 1");
        let half = 1.0 / (dim as f64).sqrt();
        Self {
            w_in: DenseMatrix::uniform(num_nodes, dim, -half, half, rng),
            w_out: DenseMatrix::uniform(num_nodes, dim, -half, half, rng),
        }
    }

    /// Embedding dimension `r`.
    pub fn dim(&self) -> usize {
        self.w_in.cols()
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.w_in.rows()
    }

    /// Inner product `v_i · v_j` between a centre row of `W_in` and a
    /// context row of `W_out` — the `x_ij` of Theorem 3.
    #[inline]
    pub fn inner(&self, center: NodeId, context: NodeId) -> f64 {
        vector::dot(
            self.w_in.row(center as usize),
            self.w_out.row(context as usize),
        )
    }

    /// The proximity-weighted SGNS loss of one subgraph (Eq. 5).
    pub fn loss(&self, sg: &Subgraph, p: f64) -> f64 {
        let mut l = -p * vector::log_sigmoid(self.inner(sg.center, sg.positive));
        for &n in &sg.negatives {
            l -= p * vector::log_sigmoid(-self.inner(sg.center, n));
        }
        l
    }

    /// Computes the per-example gradient of Eq. 5 into `buf`.
    ///
    /// Duplicate negative rows (and a negative equal to the positive
    /// under degree-proportional sampling) are accumulated into a
    /// single context row, so `buf` holds the *true* sparse gradient
    /// and the joint clip in the trainer bounds the true sensitivity.
    pub fn example_grad(&self, sg: &Subgraph, p: f64, buf: &mut GradBuffer) {
        let dim = self.dim();
        buf.reset(sg.center, dim);
        let vi = self.w_in.row(sg.center as usize);

        // Positive pair, label 1.
        let err_pos = p * (vector::sigmoid(self.inner(sg.center, sg.positive)) - 1.0);
        vector::axpy(
            err_pos,
            self.w_out.row(sg.positive as usize),
            &mut buf.grad_center,
        );
        buf.accumulate_ctx(sg.positive, err_pos, vi, dim);

        // Negatives, label 0.
        for &n in &sg.negatives {
            let err = p * vector::sigmoid(self.inner(sg.center, n));
            vector::axpy(err, self.w_out.row(n as usize), &mut buf.grad_center);
            buf.accumulate_ctx(n, err, vi, dim);
        }
    }

    /// Applies a plain SGD update `row -= lr * grad` to a `W_in` row.
    pub fn sgd_update_in(&mut self, row: NodeId, lr: f64, grad: &[f64]) {
        vector::axpy(-lr, grad, self.w_in.row_mut(row as usize));
    }

    /// Applies a plain SGD update to a `W_out` row.
    pub fn sgd_update_out(&mut self, row: NodeId, lr: f64, grad: &[f64]) {
        vector::axpy(-lr, grad, self.w_out.row_mut(row as usize));
    }
}

/// Reusable per-example gradient buffer (one `W_in` row + up to `k+1`
/// unique `W_out` rows). Allocation-free across examples once the
/// capacity is warm.
#[derive(Clone, Debug, Default)]
pub struct GradBuffer {
    /// The centre row index (into `W_in`).
    pub center: NodeId,
    /// `∂L/∂v_center` (Eq. 7).
    pub grad_center: Vec<f64>,
    /// Unique `W_out` rows touched.
    ctx_rows: Vec<NodeId>,
    /// Parallel gradients (Eq. 8), accumulated over duplicates.
    ctx_grads: Vec<Vec<f64>>,
    used: usize,
}

impl GradBuffer {
    /// Fresh empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    fn reset(&mut self, center: NodeId, dim: usize) {
        self.center = center;
        self.grad_center.clear();
        self.grad_center.resize(dim, 0.0);
        self.used = 0;
    }

    fn accumulate_ctx(&mut self, row: NodeId, err: f64, vi: &[f64], dim: usize) {
        // Linear scan over ≤ k+1 entries beats a hash map at k ≈ 5.
        for idx in 0..self.used {
            if self.ctx_rows[idx] == row {
                vector::axpy(err, vi, &mut self.ctx_grads[idx]);
                return;
            }
        }
        if self.used == self.ctx_rows.len() {
            self.ctx_rows.push(row);
            self.ctx_grads.push(vec![0.0; dim]);
        } else {
            self.ctx_rows[self.used] = row;
            self.ctx_grads[self.used].clear();
            self.ctx_grads[self.used].resize(dim, 0.0);
        }
        vector::axpy(err, vi, &mut self.ctx_grads[self.used]);
        self.used += 1;
    }

    /// Touched `W_out` rows.
    pub fn ctx_rows(&self) -> &[NodeId] {
        &self.ctx_rows[..self.used]
    }

    /// Gradients parallel to [`GradBuffer::ctx_rows`].
    pub fn ctx_grads(&self) -> &[Vec<f64>] {
        &self.ctx_grads[..self.used]
    }

    /// Joint ℓ2 norm of the whole per-example gradient.
    pub fn joint_norm(&self) -> f64 {
        let mut sq = vector::norm2_sq(&self.grad_center);
        for g in self.ctx_grads() {
            sq += vector::norm2_sq(g);
        }
        sq.sqrt()
    }

    /// Clips the whole per-example gradient to joint norm `c`
    /// (DPSGD's `Clip`, applied to the multi-row gradient). Returns
    /// the scale factor.
    pub fn clip(&mut self, c: f64) -> f64 {
        assert!(c > 0.0, "clip threshold must be positive");
        let norm = self.joint_norm();
        if norm > c {
            let f = c / norm;
            vector::scale(f, &mut self.grad_center);
            for idx in 0..self.used {
                vector::scale(f, &mut self.ctx_grads[idx]);
            }
            f
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subgraph::Subgraph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (SkipGramModel, Subgraph) {
        let mut rng = StdRng::seed_from_u64(11);
        let mut m = SkipGramModel::new(6, 4, &mut rng);
        // Give W_out non-zero content so gradients flow both ways.
        for i in 0..6 {
            for d in 0..4 {
                m.w_out.set(i, d, 0.1 * (i as f64 + 1.0) * (d as f64 - 1.5));
            }
        }
        let sg = Subgraph {
            center: 0,
            positive: 1,
            negatives: vec![2, 3, 2], // duplicate on purpose
            edge_index: 0,
        };
        (m, sg)
    }

    #[test]
    fn init_is_symmetric_inv_sqrt_dim() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = SkipGramModel::new(10, 8, &mut rng);
        let half = 1.0 / 8.0f64.sqrt();
        for mat in [&m.w_in, &m.w_out] {
            assert!(mat.as_slice().iter().all(|&v| (-half..half).contains(&v)));
        }
        // Both matrices are random (no zero init) and distinct.
        assert_ne!(m.w_in.as_slice(), m.w_out.as_slice());
        // Expected row norm ≈ sqrt(r · (2h)²/12) = sqrt(1/3) ≈ 0.577.
        let mean_norm = m.w_in.mean_row_norm();
        assert!(
            (0.4..0.75).contains(&mean_norm),
            "mean row norm {mean_norm}"
        );
        assert_eq!(m.dim(), 8);
        assert_eq!(m.num_nodes(), 10);
    }

    #[test]
    fn loss_is_positive_and_weighted_linearly() {
        let (m, sg) = setup();
        let l1 = m.loss(&sg, 1.0);
        let l2 = m.loss(&sg, 2.0);
        assert!(l1 > 0.0);
        assert!((l2 - 2.0 * l1).abs() < 1e-12);
        assert_eq!(m.loss(&sg, 0.0), 0.0);
    }

    #[test]
    fn duplicate_negatives_merge_into_one_ctx_row() {
        let (m, sg) = setup();
        let mut buf = GradBuffer::new();
        m.example_grad(&sg, 1.0, &mut buf);
        // Unique rows: positive 1, negatives {2, 3}.
        let mut rows = buf.ctx_rows().to_vec();
        rows.sort_unstable();
        assert_eq!(rows, vec![1, 2, 3]);
    }

    #[test]
    fn gradient_matches_finite_differences_on_w_in() {
        let (mut m, sg) = setup();
        let p = 1.7;
        let mut buf = GradBuffer::new();
        m.example_grad(&sg, p, &mut buf);
        let h = 1e-6;
        for d in 0..m.dim() {
            let orig = m.w_in.get(0, d);
            m.w_in.set(0, d, orig + h);
            let lp = m.loss(&sg, p);
            m.w_in.set(0, d, orig - h);
            let lm = m.loss(&sg, p);
            m.w_in.set(0, d, orig);
            let fd = (lp - lm) / (2.0 * h);
            assert!(
                (fd - buf.grad_center[d]).abs() < 1e-6,
                "dim {d}: fd {fd} vs analytic {}",
                buf.grad_center[d]
            );
        }
    }

    #[test]
    fn gradient_matches_finite_differences_on_w_out() {
        let (mut m, sg) = setup();
        let p = 0.9;
        let mut buf = GradBuffer::new();
        m.example_grad(&sg, p, &mut buf);
        let h = 1e-6;
        for (idx, &row) in buf.ctx_rows().iter().enumerate() {
            for d in 0..m.dim() {
                let orig = m.w_out.get(row as usize, d);
                m.w_out.set(row as usize, d, orig + h);
                let lp = m.loss(&sg, p);
                m.w_out.set(row as usize, d, orig - h);
                let lm = m.loss(&sg, p);
                m.w_out.set(row as usize, d, orig);
                let fd = (lp - lm) / (2.0 * h);
                let analytic = buf.ctx_grads()[idx][d];
                assert!(
                    (fd - analytic).abs() < 1e-6,
                    "row {row} dim {d}: fd {fd} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn clip_bounds_joint_norm() {
        let (m, sg) = setup();
        let mut buf = GradBuffer::new();
        m.example_grad(&sg, 50.0, &mut buf); // big p -> big gradient
        let before = buf.joint_norm();
        assert!(before > 0.1);
        let f = buf.clip(0.1);
        assert!(f < 1.0);
        assert!((buf.joint_norm() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn clip_noop_when_under_threshold() {
        let (m, sg) = setup();
        let mut buf = GradBuffer::new();
        m.example_grad(&sg, 1e-3, &mut buf);
        assert_eq!(buf.clip(100.0), 1.0);
    }

    #[test]
    fn sgd_step_decreases_loss() {
        let (mut m, sg) = setup();
        let p = 1.0;
        let before = m.loss(&sg, p);
        let mut buf = GradBuffer::new();
        for _ in 0..20 {
            m.example_grad(&sg, p, &mut buf);
            let center = buf.center;
            let grad_center = buf.grad_center.clone();
            let rows: Vec<_> = buf.ctx_rows().to_vec();
            let grads: Vec<_> = buf.ctx_grads().to_vec();
            m.sgd_update_in(center, 0.1, &grad_center);
            for (row, g) in rows.iter().zip(&grads) {
                m.sgd_update_out(*row, 0.1, g);
            }
        }
        let after = m.loss(&sg, p);
        assert!(
            after < before,
            "20 SGD steps should reduce the loss ({before} -> {after})"
        );
    }

    #[test]
    fn buffer_reuse_is_clean_across_examples() {
        let (m, sg) = setup();
        let sg2 = Subgraph {
            center: 4,
            positive: 5,
            negatives: vec![0],
            edge_index: 1,
        };
        let mut buf = GradBuffer::new();
        m.example_grad(&sg, 1.0, &mut buf);
        m.example_grad(&sg2, 1.0, &mut buf);
        assert_eq!(buf.center, 4);
        let mut rows = buf.ctx_rows().to_vec();
        rows.sort_unstable();
        assert_eq!(rows, vec![0, 5]);
    }
}
