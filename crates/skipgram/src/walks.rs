//! Random-walk corpus generation (the DeepWalk substrate, §II-A).
//!
//! DeepWalk treats truncated random walks as sentences and feeds
//! window co-occurrences to skip-gram. SE-PrivGEmb replaces the
//! sampled corpus with the *analytic* walk proximity
//! `M = (1/T) Σ_t Â^t` (see `sp_proximity::walk::deepwalk_matrix`),
//! which is what makes the per-edge sensitivity analysis tractable.
//! This module provides the classic sampled machinery anyway:
//!
//! - to validate the analytic matrix (the empirical co-occurrence
//!   frequency of `(start, end)` pairs converges to `M` — tested
//!   below), and
//! - to let users train plain DeepWalk-style baselines on walk
//!   corpora if they want a non-private reference with the original
//!   pipeline.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sp_graph::{Graph, NodeId};
use sp_linalg::{CooBuilder, CsrMatrix};

/// Configuration of a walk corpus.
#[derive(Clone, Copy, Debug)]
pub struct WalkConfig {
    /// Walks started per node.
    pub walks_per_node: usize,
    /// Length of each walk (number of steps).
    pub walk_length: usize,
    /// Skip-gram window: pairs `(w_i, w_j)` with `0 < j - i <= window`
    /// are emitted.
    pub window: usize,
}

impl Default for WalkConfig {
    fn default() -> Self {
        Self {
            walks_per_node: 10,
            walk_length: 40,
            window: 2,
        }
    }
}

/// One uniform random walk of `length` steps starting at `start`
/// (stops early at an isolated node; the start node is included).
pub fn random_walk<R: Rng + ?Sized>(
    g: &Graph,
    start: NodeId,
    length: usize,
    rng: &mut R,
) -> Vec<NodeId> {
    let mut walk = Vec::with_capacity(length + 1);
    walk.push(start);
    let mut cur = start;
    for _ in 0..length {
        let nb = g.neighbors(cur);
        if nb.is_empty() {
            break;
        }
        cur = nb[rng.gen_range(0..nb.len())];
        walk.push(cur);
    }
    walk
}

/// Emits the forward-window co-occurrence pairs of one walk into `out`.
fn emit_window_pairs(walk: &[NodeId], window: usize, out: &mut Vec<(NodeId, NodeId)>) {
    for i in 0..walk.len() {
        for j in (i + 1)..walk.len().min(i + 1 + window) {
            out.push((walk[i], walk[j]));
        }
    }
}

/// Generates the full corpus of window co-occurrence pairs
/// `(center, context)` (directed: context follows center in the walk,
/// matching the forward window used by the analytic proximity).
///
/// Walks are drawn sequentially from the single `rng` stream; prefer
/// [`corpus_pairs_seeded`] when the corpus must be reproducible
/// independently of how the walks are scheduled.
pub fn corpus_pairs<R: Rng + ?Sized>(
    g: &Graph,
    cfg: WalkConfig,
    rng: &mut R,
) -> Vec<(NodeId, NodeId)> {
    assert!(cfg.window >= 1 && cfg.walk_length >= 1 && cfg.walks_per_node >= 1);
    let mut pairs = Vec::new();
    for start in 0..g.num_nodes() as NodeId {
        for _ in 0..cfg.walks_per_node {
            let walk = random_walk(g, start, cfg.walk_length, rng);
            emit_window_pairs(&walk, cfg.window, &mut pairs);
        }
    }
    pairs
}

/// One SplitMix64 step — the standard 64-bit finaliser used to spread
/// a seed over the whole space before per-walk derivation.
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The RNG that drives walk number `walk_index` of a seeded corpus:
/// `SmallRng` seeded with `splitmix64(seed) ⊕ walk_index`.
///
/// Deriving each walk's stream from its *index* rather than threading
/// one RNG through the corpus is what makes the sampled corpus
/// **thread-count-invariant**: a walk's randomness no longer depends on
/// how many walks some other worker drew first. The seed is passed
/// through SplitMix64 *before* the XOR so that related seeds (XOR is
/// linear: `s ⊕ i` and `(s ⊕ 1) ⊕ (i ⊕ 1)` collide) still yield
/// disjoint stream families — consecutive seeds must behave as
/// independent replicates, not permutations of the same walk set.
pub fn walk_rng(seed: u64, walk_index: u64) -> SmallRng {
    SmallRng::seed_from_u64(splitmix64(seed) ^ walk_index)
}

/// Seeded, parallel variant of [`corpus_pairs`]: walk `w` of node `v`
/// (walk index `v · walks_per_node + w`) is drawn from
/// [`walk_rng`]`(seed, index)`, walks fan out over the worker pool, and
/// pairs are concatenated in walk-index order — so for a fixed seed
/// the corpus is byte-identical for every thread count (`None`
/// resolves via [`sp_parallel::resolve_threads`]).
pub fn corpus_pairs_seeded(
    g: &Graph,
    cfg: WalkConfig,
    seed: u64,
    threads: Option<usize>,
) -> Vec<(NodeId, NodeId)> {
    let total = g.num_nodes() * cfg.walks_per_node;
    corpus_pairs_band(g, cfg, seed, 0..total, threads)
}

/// The pairs of walk indices `walks` only — the out-of-core band of a
/// seeded corpus. Because each walk's randomness is derived from its
/// index, concatenating bands of any size in index order is
/// byte-identical to [`corpus_pairs_seeded`] over the full range, so a
/// consumer can stream the corpus without ever holding all of it.
pub fn corpus_pairs_band(
    g: &Graph,
    cfg: WalkConfig,
    seed: u64,
    walks: std::ops::Range<usize>,
    threads: Option<usize>,
) -> Vec<(NodeId, NodeId)> {
    assert!(cfg.window >= 1 && cfg.walk_length >= 1 && cfg.walks_per_node >= 1);
    let total = g.num_nodes() * cfg.walks_per_node;
    assert!(walks.end <= total, "walk band out of bounds");
    let base = walks.start;
    let threads = sp_parallel::resolve_threads(threads);
    let chunk = sp_parallel::default_chunk_size(walks.len(), threads);
    let blocks = sp_parallel::par_map_chunks(walks.len(), chunk, threads, |r| {
        let mut pairs = Vec::new();
        for widx in base + r.start..base + r.end {
            let start = (widx / cfg.walks_per_node) as NodeId;
            let mut rng = walk_rng(seed, widx as u64);
            let walk = random_walk(g, start, cfg.walk_length, &mut rng);
            emit_window_pairs(&walk, cfg.window, &mut pairs);
        }
        pairs
    });
    let mut pairs = Vec::with_capacity(blocks.iter().map(Vec::len).sum());
    for block in blocks {
        pairs.extend(block);
    }
    pairs
}

/// Empirical walk-proximity matrix: row-normalised co-occurrence
/// counts from a sampled corpus. As the corpus grows this converges
/// to the analytic `deepwalk_matrix` with the same window (law of
/// large numbers over walk transitions) — the property test that ties
/// the sampled and analytic pipelines together.
pub fn empirical_proximity<R: Rng + ?Sized>(g: &Graph, cfg: WalkConfig, rng: &mut R) -> CsrMatrix {
    let n = g.num_nodes();
    let mut b = CooBuilder::new(n, n);
    for (u, v) in corpus_pairs(g, cfg, rng) {
        b.push(u as usize, v as usize, 1.0);
    }
    let mut m = b.build();
    m.normalize_rows();
    m
}

/// Seeded, parallel variant of [`empirical_proximity`], built from
/// [`corpus_pairs_seeded`]; inherits its thread-count invariance.
pub fn empirical_proximity_seeded(
    g: &Graph,
    cfg: WalkConfig,
    seed: u64,
    threads: Option<usize>,
) -> CsrMatrix {
    let n = g.num_nodes();
    let mut b = CooBuilder::new(n, n);
    for (u, v) in corpus_pairs_seeded(g, cfg, seed, threads) {
        b.push(u as usize, v as usize, 1.0);
    }
    let mut m = b.build();
    m.normalize_rows();
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sp_graph::Graph;

    fn cycle(n: usize) -> Graph {
        Graph::from_edges(n, (0..n).map(|i| (i as NodeId, ((i + 1) % n) as NodeId)))
    }

    #[test]
    fn walk_stays_on_graph() {
        let g = cycle(10);
        let mut rng = StdRng::seed_from_u64(1);
        let w = random_walk(&g, 3, 50, &mut rng);
        assert_eq!(w.len(), 51);
        assert_eq!(w[0], 3);
        for pair in w.windows(2) {
            assert!(g.has_edge(pair[0], pair[1]), "non-edge step {pair:?}");
        }
    }

    #[test]
    fn walk_stops_at_isolated_node() {
        let g = Graph::from_edges(3, [(0, 1)]);
        let mut rng = StdRng::seed_from_u64(2);
        let w = random_walk(&g, 2, 10, &mut rng);
        assert_eq!(w, vec![2]);
    }

    #[test]
    fn corpus_pairs_respect_window() {
        let g = cycle(8);
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = WalkConfig {
            walks_per_node: 2,
            walk_length: 10,
            window: 2,
        };
        let pairs = corpus_pairs(&g, cfg, &mut rng);
        assert!(!pairs.is_empty());
        // On a cycle, window-2 forward pairs are at ring distance <= 2.
        for (u, v) in pairs {
            let d = (u as i64 - v as i64)
                .rem_euclid(8)
                .min((v as i64 - u as i64).rem_euclid(8));
            assert!(d <= 2, "pair ({u},{v}) at ring distance {d}");
        }
    }

    #[test]
    fn empirical_matches_analytic_deepwalk_proximity() {
        // The strongest cross-validation in the crate: the sampled
        // corpus statistics must converge to (Â + Â²)/2.
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5), (1, 4)]);
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = WalkConfig {
            walks_per_node: 600,
            walk_length: 30,
            window: 2,
        };
        let empirical = empirical_proximity(&g, cfg, &mut rng);
        let analytic = sp_proximity::walk::deepwalk_matrix(&g, 2);
        for i in 0..6 {
            for j in 0..6 {
                let e = empirical.get(i, j);
                let a = analytic.get(i, j);
                assert!(
                    (e - a).abs() < 0.02,
                    "({i},{j}): empirical {e:.4} vs analytic {a:.4}"
                );
            }
        }
    }

    #[test]
    fn empirical_rows_are_stochastic() {
        let g = cycle(12);
        let mut rng = StdRng::seed_from_u64(5);
        let m = empirical_proximity(&g, WalkConfig::default(), &mut rng);
        for i in 0..12 {
            let s = m.row_sum(i);
            assert!((s - 1.0).abs() < 1e-9, "row {i} sums to {s}");
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let g = cycle(9);
        let cfg = WalkConfig::default();
        let a = corpus_pairs(&g, cfg, &mut StdRng::seed_from_u64(6));
        let b = corpus_pairs(&g, cfg, &mut StdRng::seed_from_u64(6));
        assert_eq!(a, b);
    }

    #[test]
    fn seeded_corpus_is_thread_count_invariant() {
        let g = Graph::from_edges(7, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 0)]);
        let cfg = WalkConfig {
            walks_per_node: 4,
            walk_length: 12,
            window: 2,
        };
        let one = corpus_pairs_seeded(&g, cfg, 0xFEED, Some(1));
        for threads in [2, 4, 8] {
            assert_eq!(
                one,
                corpus_pairs_seeded(&g, cfg, 0xFEED, Some(threads)),
                "threads={threads}"
            );
        }
        // 13-node walks, window 2: 11 positions emit 2 pairs, one emits 1.
        assert_eq!(one.len(), 7 * 4 * 23);
        // Walks stay on the graph regardless of which worker drew them.
        for (u, v) in &one {
            let d = (*u as i64 - *v as i64)
                .rem_euclid(7)
                .min((*v as i64 - *u as i64).rem_euclid(7));
            assert!(d <= 2, "pair ({u},{v}) at ring distance {d}");
        }
    }

    #[test]
    fn corpus_bands_concatenate_to_full_corpus() {
        let g = cycle(9);
        let cfg = WalkConfig {
            walks_per_node: 3,
            walk_length: 8,
            window: 2,
        };
        let total = g.num_nodes() * cfg.walks_per_node;
        let full = corpus_pairs_seeded(&g, cfg, 0xBAD5EED, Some(1));
        for band in [1, 5, total] {
            for threads in [1, 4] {
                let mut streamed = Vec::new();
                let mut start = 0;
                while start < total {
                    let end = (start + band).min(total);
                    streamed.extend(corpus_pairs_band(
                        &g,
                        cfg,
                        0xBAD5EED,
                        start..end,
                        Some(threads),
                    ));
                    start = end;
                }
                assert_eq!(streamed, full, "band={band} threads={threads}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "walk band out of bounds")]
    fn corpus_band_rejects_out_of_range() {
        let g = cycle(3);
        let cfg = WalkConfig::default();
        corpus_pairs_band(&g, cfg, 1, 0..1000, Some(1));
    }

    #[test]
    fn seeded_corpus_differs_across_seeds() {
        let g = cycle(10);
        let cfg = WalkConfig::default();
        assert_ne!(
            corpus_pairs_seeded(&g, cfg, 1, Some(2)),
            corpus_pairs_seeded(&g, cfg, 2, Some(2))
        );
    }

    #[test]
    fn consecutive_seeds_are_not_walk_permutations() {
        // Regression: with a raw `seed ^ index` derivation, seeds s and
        // s ⊕ 1 reuse each other's walk streams (adjacent walks swap),
        // so replicate runs over consecutive seeds had zero corpus
        // variance. The SplitMix64 premix must break that linearity.
        let g = cycle(10);
        let cfg = WalkConfig::default();
        for s in [0u64, 7, 42, 1000] {
            let a = corpus_pairs_seeded(&g, cfg, s, Some(1));
            let b = corpus_pairs_seeded(&g, cfg, s ^ 1, Some(1));
            let mut a_sorted = a.clone();
            let mut b_sorted = b.clone();
            a_sorted.sort_unstable();
            b_sorted.sort_unstable();
            assert_ne!(
                a_sorted,
                b_sorted,
                "seeds {s} and {} produced the same walk multiset",
                s ^ 1
            );
        }
    }

    #[test]
    fn seeded_empirical_proximity_converges_to_analytic() {
        // The seeded/parallel corpus must converge to the same analytic
        // (Â + Â²)/2 matrix the serial corpus does.
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5), (1, 4)]);
        let cfg = WalkConfig {
            walks_per_node: 600,
            walk_length: 30,
            window: 2,
        };
        let empirical = empirical_proximity_seeded(&g, cfg, 4, Some(4));
        let analytic = sp_proximity::walk::deepwalk_matrix(&g, 2);
        for i in 0..6 {
            for j in 0..6 {
                let e = empirical.get(i, j);
                let a = analytic.get(i, j);
                assert!(
                    (e - a).abs() < 0.02,
                    "({i},{j}): empirical {e:.4} vs analytic {a:.4}"
                );
            }
        }
    }
}
