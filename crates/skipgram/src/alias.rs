//! Walker alias method: O(1) sampling from an arbitrary discrete
//! distribution after O(n) setup.
//!
//! SGNS implementations conventionally draw negatives from a unigram
//! distribution (∝ degree, possibly raised to 3/4). The paper replaces
//! that with uniform non-neighbour sampling (Algorithm 1) to obtain
//! Theorem 3; the alias table remains in the toolbox for the
//! prior-work comparison (Eq. 14/15) and for the dataset generators'
//! preferential attachment.

use rand::Rng;

/// Pre-processed alias table over `0..n`.
#[derive(Clone, Debug)]
pub struct AliasTable {
    /// Acceptance probability of each bucket's "own" outcome.
    prob: Vec<f64>,
    /// Fallback outcome of each bucket.
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds a table for the distribution proportional to `weights`.
    ///
    /// # Panics
    /// Panics if `weights` is empty, contains a negative/non-finite
    /// value, or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(
            !weights.is_empty(),
            "alias table needs at least one outcome"
        );
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && total.is_finite(),
            "weights must sum to a positive finite value"
        );
        for &w in weights {
            assert!(w >= 0.0 && w.is_finite(), "weight {w} invalid");
        }
        let n = weights.len();
        let scale = n as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
        let mut alias = vec![0u32; n];

        // Partition buckets into under- and over-full.
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s as usize] = l;
            // Donate the slack of `s` from `l`.
            prob[l as usize] -= 1.0 - prob[s as usize];
            if prob[l as usize] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Remaining buckets are numerically full.
        for i in small.into_iter().chain(large) {
            prob[i as usize] = 1.0;
        }
        Self { prob, alias }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True when the table has no outcomes (never: constructor panics).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one outcome in O(1).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i as u32
        } else {
            self.alias[i]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn empirical(weights: &[f64], draws: usize, seed: u64) -> Vec<f64> {
        let t = AliasTable::new(weights);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = vec![0usize; weights.len()];
        for _ in 0..draws {
            counts[t.sample(&mut rng) as usize] += 1;
        }
        counts
            .into_iter()
            .map(|c| c as f64 / draws as f64)
            .collect()
    }

    #[test]
    fn uniform_weights_give_uniform_samples() {
        let freq = empirical(&[1.0; 8], 400_000, 1);
        for f in freq {
            assert!((f - 0.125).abs() < 0.005, "freq {f}");
        }
    }

    #[test]
    fn skewed_weights_match_distribution() {
        let w = [1.0, 2.0, 3.0, 4.0];
        let freq = empirical(&w, 400_000, 2);
        let total: f64 = w.iter().sum();
        for (i, f) in freq.iter().enumerate() {
            let expect = w[i] / total;
            assert!((f - expect).abs() < 0.01, "outcome {i}: {f} vs {expect}");
        }
    }

    #[test]
    fn zero_weight_outcomes_never_sampled() {
        let freq = empirical(&[0.0, 1.0, 0.0, 1.0], 100_000, 3);
        assert_eq!(freq[0], 0.0);
        assert_eq!(freq[2], 0.0);
        assert!((freq[1] - 0.5).abs() < 0.01);
    }

    #[test]
    fn single_outcome_always_chosen() {
        let t = AliasTable::new(&[42.0]);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            assert_eq!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    fn power_law_tail_is_respected() {
        // Zipf-ish weights: the head outcome should dominate exactly
        // in proportion.
        let w: Vec<f64> = (1..=50).map(|i| 1.0 / i as f64).collect();
        let freq = empirical(&w, 500_000, 5);
        let total: f64 = w.iter().sum();
        assert!((freq[0] - 1.0 / total).abs() < 0.01);
        assert!((freq[1] - 0.5 / total).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "at least one outcome")]
    fn rejects_empty() {
        AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "positive finite")]
    fn rejects_all_zero() {
        AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn rejects_negative() {
        AliasTable::new(&[1.0, -0.5]);
    }
}
