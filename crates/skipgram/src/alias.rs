//! Walker alias method: O(1) sampling from an arbitrary discrete
//! distribution after O(n) setup.
//!
//! SGNS implementations conventionally draw negatives from a unigram
//! distribution (∝ degree, possibly raised to 3/4). The paper replaces
//! that with uniform non-neighbour sampling (Algorithm 1) to obtain
//! Theorem 3; the alias table remains in the toolbox for the
//! prior-work comparison (Eq. 14/15) and for the dataset generators'
//! preferential attachment.

use rand::Rng;

/// Pre-processed alias table over `0..n`.
#[derive(Clone, Debug)]
pub struct AliasTable {
    /// Acceptance probability of each bucket's "own" outcome.
    prob: Vec<f64>,
    /// Fallback outcome of each bucket.
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds a table for the distribution proportional to `weights`.
    ///
    /// # Panics
    /// Panics if `weights` is empty, contains a negative/non-finite
    /// value, or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(
            !weights.is_empty(),
            "alias table needs at least one outcome"
        );
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && total.is_finite(),
            "weights must sum to a positive finite value"
        );
        for &w in weights {
            assert!(w >= 0.0 && w.is_finite(), "weight {w} invalid");
        }
        let n = weights.len();
        let scale = n as f64 / total;
        let prob: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
        Self::from_scaled_probs(prob)
    }

    /// Runs the bucket-partition loop on already-scaled probabilities
    /// (`prob[i] = w_i · n / Σw`). Shared by [`AliasTable::new`] and
    /// [`AliasTableBuilder::finish`], so the streamed and materialised
    /// constructions execute the exact same arithmetic and produce
    /// bit-identical tables.
    fn from_scaled_probs(mut prob: Vec<f64>) -> Self {
        let n = prob.len();
        let mut alias = vec![0u32; n];

        // Partition buckets into under- and over-full.
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s as usize] = l;
            // Donate the slack of `s` from `l`.
            prob[l as usize] -= 1.0 - prob[s as usize];
            if prob[l as usize] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Remaining buckets are numerically full.
        for i in small.into_iter().chain(large) {
            prob[i as usize] = 1.0;
        }
        Self { prob, alias }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True when the table has no outcomes (never: constructor panics).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one outcome in O(1).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i as u32
        } else {
            self.alias[i]
        }
    }

    /// The raw bucket arrays `(prob, alias)` — exposed so tests can
    /// assert bit-identity between construction paths.
    pub fn buckets(&self) -> (&[f64], &[u32]) {
        (&self.prob, &self.alias)
    }
}

/// Incremental two-pass [`AliasTable`] construction for weights that
/// arrive as a stream of chunks (proximity row-bands, degree bands)
/// rather than one resident slice.
///
/// Pass 1 ([`AliasTableBuilder::push_mass`]) accumulates the total
/// mass in chunk order; pass 2 ([`AliasTableBuilder::push_fill`])
/// streams the *same* weights again and fills the scaled-probability
/// array. Peak memory is the table itself plus one chunk — the weight
/// source is never materialised whole.
///
/// Determinism: the mass pass adds weights in index order, exactly
/// like `weights.iter().sum::<f64>()` over the concatenated stream,
/// and [`AliasTableBuilder::finish`] runs the same partition loop as
/// [`AliasTable::new`], so for any chunking the finished table is
/// bit-identical to the materialised construction.
#[derive(Clone, Debug, Default)]
pub struct AliasTableBuilder {
    total: f64,
    count: usize,
    scale: Option<f64>,
    prob: Vec<f64>,
}

impl AliasTableBuilder {
    /// An empty builder awaiting its first mass chunk.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pass 1: accounts a chunk of weights (in stream order) toward
    /// the total mass.
    ///
    /// # Panics
    /// Panics on a negative or non-finite weight (same contract as
    /// [`AliasTable::new`]), or if called after pass 2 has begun.
    pub fn push_mass(&mut self, weights: &[f64]) {
        assert!(
            self.scale.is_none(),
            "push_mass after the fill pass has begun"
        );
        for &w in weights {
            assert!(w >= 0.0 && w.is_finite(), "weight {w} invalid");
            self.total += w;
        }
        self.count += weights.len();
    }

    /// Outcomes seen by the mass pass so far.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True before the first outcome has been pushed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Pass 2: streams the same weights again, in the same order,
    /// filling the scaled-probability array.
    ///
    /// # Panics
    /// On the first call, panics if the mass pass saw no outcomes or a
    /// non-positive/non-finite total (same messages as
    /// [`AliasTable::new`]); later calls panic if the fill overruns the
    /// mass pass's outcome count.
    pub fn push_fill(&mut self, weights: &[f64]) {
        let scale = *self.scale.get_or_insert_with(|| {
            assert!(self.count > 0, "alias table needs at least one outcome");
            assert!(
                self.total > 0.0 && self.total.is_finite(),
                "weights must sum to a positive finite value"
            );
            self.prob.reserve_exact(self.count);
            self.count as f64 / self.total
        });
        assert!(
            self.prob.len() + weights.len() <= self.count,
            "fill pass saw more outcomes than the mass pass"
        );
        self.prob.extend(weights.iter().map(|&w| w * scale));
    }

    /// Finalises into an [`AliasTable`].
    ///
    /// # Panics
    /// Panics if the fill pass did not replay exactly the outcomes the
    /// mass pass counted.
    pub fn finish(mut self) -> AliasTable {
        self.push_fill(&[]); // trigger first-fill validation when both passes were empty
        assert!(
            self.prob.len() == self.count,
            "fill pass saw {} of {} outcomes",
            self.prob.len(),
            self.count
        );
        AliasTable::from_scaled_probs(self.prob)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn empirical(weights: &[f64], draws: usize, seed: u64) -> Vec<f64> {
        let t = AliasTable::new(weights);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = vec![0usize; weights.len()];
        for _ in 0..draws {
            counts[t.sample(&mut rng) as usize] += 1;
        }
        counts
            .into_iter()
            .map(|c| c as f64 / draws as f64)
            .collect()
    }

    #[test]
    fn uniform_weights_give_uniform_samples() {
        let freq = empirical(&[1.0; 8], 400_000, 1);
        for f in freq {
            assert!((f - 0.125).abs() < 0.005, "freq {f}");
        }
    }

    #[test]
    fn skewed_weights_match_distribution() {
        let w = [1.0, 2.0, 3.0, 4.0];
        let freq = empirical(&w, 400_000, 2);
        let total: f64 = w.iter().sum();
        for (i, f) in freq.iter().enumerate() {
            let expect = w[i] / total;
            assert!((f - expect).abs() < 0.01, "outcome {i}: {f} vs {expect}");
        }
    }

    #[test]
    fn zero_weight_outcomes_never_sampled() {
        let freq = empirical(&[0.0, 1.0, 0.0, 1.0], 100_000, 3);
        assert_eq!(freq[0], 0.0);
        assert_eq!(freq[2], 0.0);
        assert!((freq[1] - 0.5).abs() < 0.01);
    }

    #[test]
    fn single_outcome_always_chosen() {
        let t = AliasTable::new(&[42.0]);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            assert_eq!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    fn power_law_tail_is_respected() {
        // Zipf-ish weights: the head outcome should dominate exactly
        // in proportion.
        let w: Vec<f64> = (1..=50).map(|i| 1.0 / i as f64).collect();
        let freq = empirical(&w, 500_000, 5);
        let total: f64 = w.iter().sum();
        assert!((freq[0] - 1.0 / total).abs() < 0.01);
        assert!((freq[1] - 0.5 / total).abs() < 0.01);
    }

    fn assert_same_buckets(a: &AliasTable, b: &AliasTable) {
        let (ap, aa) = a.buckets();
        let (bp, ba) = b.buckets();
        assert_eq!(aa, ba);
        assert_eq!(
            ap.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
            bp.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn builder_matches_materialised_for_any_chunking() {
        let w: Vec<f64> = (1..=37).map(|i| 1.0 / i as f64).collect();
        let reference = AliasTable::new(&w);
        for chunk in [1usize, 7, w.len()] {
            let mut b = AliasTableBuilder::new();
            for c in w.chunks(chunk) {
                b.push_mass(c);
            }
            assert_eq!(b.len(), w.len());
            for c in w.chunks(chunk) {
                b.push_fill(c);
            }
            let streamed = b.finish();
            assert_same_buckets(&reference, &streamed);
        }
    }

    #[test]
    fn builder_sampling_agrees_with_table() {
        let w = [3.0, 0.0, 1.0, 2.0];
        let mut b = AliasTableBuilder::new();
        b.push_mass(&w);
        b.push_fill(&w);
        let t = b.finish();
        let mut rng = StdRng::seed_from_u64(6);
        let mut counts = [0usize; 4];
        for _ in 0..200_000 {
            counts[t.sample(&mut rng) as usize] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!((counts[0] as f64 / 200_000.0 - 0.5).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "at least one outcome")]
    fn builder_rejects_empty() {
        AliasTableBuilder::new().finish();
    }

    #[test]
    #[should_panic(expected = "positive finite")]
    fn builder_rejects_all_zero() {
        let mut b = AliasTableBuilder::new();
        b.push_mass(&[0.0, 0.0]);
        b.push_fill(&[0.0, 0.0]);
        b.finish();
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn builder_rejects_negative() {
        AliasTableBuilder::new().push_mass(&[1.0, -0.5]);
    }

    #[test]
    #[should_panic(expected = "more outcomes than the mass pass")]
    fn builder_rejects_fill_overrun() {
        let mut b = AliasTableBuilder::new();
        b.push_mass(&[1.0]);
        b.push_fill(&[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "after the fill pass")]
    fn builder_rejects_mass_after_fill() {
        let mut b = AliasTableBuilder::new();
        b.push_mass(&[1.0]);
        b.push_fill(&[1.0]);
        b.push_mass(&[2.0]);
    }

    #[test]
    #[should_panic(expected = "fill pass saw 1 of 2 outcomes")]
    fn builder_rejects_incomplete_fill() {
        let mut b = AliasTableBuilder::new();
        b.push_mass(&[1.0, 2.0]);
        b.push_fill(&[1.0]);
        b.finish();
    }

    #[test]
    #[should_panic(expected = "at least one outcome")]
    fn rejects_empty() {
        AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "positive finite")]
    fn rejects_all_zero() {
        AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn rejects_negative() {
        AliasTable::new(&[1.0, -0.5]);
    }
}
