//! # sp-nn
//!
//! A minimal neural-network substrate for the paper's deep-learning
//! baselines (DPGGAN, DPGVAE, GAP, ProGAP). The baselines are small
//! MLP/GCN models over graph-structured inputs, so the substrate is
//! deliberately compact: dense layers with manual backprop, a few
//! element-wise activations, Adam/SGD, the standard losses, and the
//! DP-SGD bookkeeping (per-example clipping + batch noise) shared by
//! the privately-trained baselines.
//!
//! What this is *not*: a general autograd. Every baseline's backward
//! pass is written out explicitly against these layers — matching how
//! the reference implementations hand-roll their training loops, and
//! keeping every gradient auditable (finite-difference tests cover
//! each layer and loss).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activation;
pub mod gcn;
pub mod linear;
pub mod loss;
pub mod mlp;

pub use activation::Activation;
pub use gcn::GcnLayer;
pub use linear::Linear;
pub use mlp::Mlp;
