//! Graph-convolution layer: `H' = act(Â H W + b)` with a fixed,
//! symmetric propagation matrix `Â` (e.g. `D^{-1/2}(A+I)D^{-1/2}`).
//!
//! Backprop uses `Â`'s symmetry: `dH = Â (d_pre W ᵀ)` where `d_pre`
//! is the gradient at the pre-activation — so the same SpMM kernel
//! serves both directions. This layer is the building block of the
//! GAP/ProGAP and DPGVAE baseline stand-ins.

use crate::activation::Activation;
use crate::linear::Linear;
use rand::Rng;
use sp_linalg::{CsrMatrix, DenseMatrix};

/// One graph-convolution layer.
#[derive(Clone, Debug)]
pub struct GcnLayer {
    /// The affine part (`W`, `b`), reusing [`Linear`]'s DP-SGD
    /// bookkeeping.
    pub linear: Linear,
    act: Activation,
    cache_agg: Option<DenseMatrix>,
    cache_out: Option<DenseMatrix>,
}

impl GcnLayer {
    /// New layer `in_dim -> out_dim` with the given activation.
    pub fn new<R: Rng + ?Sized>(
        in_dim: usize,
        out_dim: usize,
        act: Activation,
        rng: &mut R,
    ) -> Self {
        Self {
            linear: Linear::new(in_dim, out_dim, rng),
            act,
            cache_agg: None,
            cache_out: None,
        }
    }

    /// Forward: `act(Â h W + b)`, caching `Â h` and the output.
    ///
    /// # Panics
    /// Panics if `a_hat` is not square with side `h.rows()`.
    pub fn forward(&mut self, a_hat: &CsrMatrix, h: &DenseMatrix) -> DenseMatrix {
        assert_eq!(
            a_hat.rows(),
            a_hat.cols(),
            "propagation matrix must be square"
        );
        assert_eq!(a_hat.cols(), h.rows(), "Â and H disagree on |V|");
        let agg = a_hat.spmm_dense(h);
        let mut out = self.linear.forward(&agg);
        self.act.forward(&mut out);
        self.cache_agg = Some(agg);
        self.cache_out = Some(out.clone());
        out
    }

    /// Inference-only forward.
    pub fn predict(&self, a_hat: &CsrMatrix, h: &DenseMatrix) -> DenseMatrix {
        let agg = a_hat.spmm_dense(h);
        let mut out = self.linear.forward(&agg);
        self.act.forward(&mut out);
        out
    }

    /// Backward from `dy` (gradient w.r.t. this layer's output);
    /// accumulates weight gradients and returns `dH`.
    ///
    /// # Panics
    /// Panics if called before [`GcnLayer::forward`].
    pub fn backward(&mut self, a_hat: &CsrMatrix, dy: &DenseMatrix) -> DenseMatrix {
        let out = self.cache_out.take().expect("backward before forward");
        let agg = self.cache_agg.take().expect("backward before forward");
        let mut d_pre = dy.clone();
        self.act.backward(&out, &mut d_pre);
        let d_agg = self.linear.backward(&agg, &d_pre);
        // dH = Âᵀ d_agg = Â d_agg (Â symmetric).
        a_hat.spmm_dense(&d_agg)
    }
}

/// Builds the standard GCN propagation matrix
/// `Â = D̃^{-1/2} (A + I) D̃^{-1/2}` from a graph.
pub fn gcn_propagation(g: &sp_graph::Graph) -> CsrMatrix {
    let n = g.num_nodes();
    let mut b = sp_linalg::CooBuilder::new(n, n);
    for &(u, v) in g.edges() {
        b.push(u as usize, v as usize, 1.0);
        b.push(v as usize, u as usize, 1.0);
    }
    for i in 0..n {
        b.push(i, i, 1.0);
    }
    let mut a = b.build();
    let deg: Vec<f64> = a.row_sums();
    a.normalize_sym(&deg);
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sp_graph::Graph;
    use sp_linalg::vector;

    fn tiny() -> (CsrMatrix, Graph) {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        (gcn_propagation(&g), g)
    }

    #[test]
    fn propagation_is_symmetric_with_unit_spectral_radius() {
        let (a, _) = tiny();
        assert!(a.is_symmetric());
        // Power iteration: the largest eigenvalue of D^{-1/2}(A+I)D^{-1/2}
        // is exactly 1 (eigenvector D^{1/2} 1).
        let mut x = vec![1.0; 4];
        for _ in 0..100 {
            x = a.spmv(&x);
            let n = vector::norm2(&x);
            vector::scale(1.0 / n, &mut x);
        }
        let lambda = vector::dot(&a.spmv(&x), &x);
        assert!((lambda - 1.0).abs() < 1e-6, "spectral radius {lambda}");
    }

    #[test]
    fn forward_shape() {
        let (a, _) = tiny();
        let mut rng = StdRng::seed_from_u64(1);
        let mut layer = GcnLayer::new(3, 5, Activation::Relu, &mut rng);
        let h = DenseMatrix::uniform(4, 3, -1.0, 1.0, &mut rng);
        let out = layer.forward(&a, &h);
        assert_eq!(out.shape(), (4, 5));
    }

    #[test]
    fn aggregation_mixes_neighbours() {
        // One-hot feature on node 0 must propagate to neighbour 1.
        let (a, _) = tiny();
        let mut rng = StdRng::seed_from_u64(2);
        let layer = GcnLayer::new(1, 1, Activation::Identity, &mut rng);
        let mut h = DenseMatrix::zeros(4, 1);
        h.set(0, 0, 1.0);
        let out = layer.predict(&a, &h);
        // Row 1 of Â has a non-zero entry for node 0, so out[1] != 0
        // unless the single weight is 0 (Xavier makes that measure-zero).
        assert!(out.get(1, 0).abs() > 1e-12);
        // Node 3 is two hops away: one layer must NOT reach it.
        assert_eq!(out.get(3, 0), 0.0);
    }

    #[test]
    fn backward_matches_finite_differences() {
        let (a, _) = tiny();
        let mut rng = StdRng::seed_from_u64(3);
        let mut layer = GcnLayer::new(2, 2, Activation::Tanh, &mut rng);
        let h = DenseMatrix::uniform(4, 2, -1.0, 1.0, &mut rng);
        let out = layer.forward(&a, &h);
        // Loss = sum of outputs -> dy = ones.
        let dy = DenseMatrix::from_vec(4, 2, vec![1.0; 8]);
        let dh = layer.backward(&a, &dy);
        let loss = |layer: &GcnLayer, h: &DenseMatrix| -> f64 {
            layer.predict(&a, h).as_slice().iter().sum()
        };
        let h_step = 1e-6;
        for r in 0..4 {
            for c in 0..2 {
                let mut hp = h.clone();
                hp.set(r, c, h.get(r, c) + h_step);
                let mut hm = h.clone();
                hm.set(r, c, h.get(r, c) - h_step);
                let fd = (loss(&layer, &hp) - loss(&layer, &hm)) / (2.0 * h_step);
                assert!(
                    (dh.get(r, c) - fd).abs() < 1e-5,
                    "dH({r},{c}): {} vs {fd}",
                    dh.get(r, c)
                );
            }
        }
        let _ = out;
    }

    #[test]
    #[should_panic(expected = "backward before forward")]
    fn backward_requires_forward() {
        let (a, _) = tiny();
        let mut rng = StdRng::seed_from_u64(4);
        let mut layer = GcnLayer::new(2, 2, Activation::Identity, &mut rng);
        layer.backward(&a, &DenseMatrix::zeros(4, 2));
    }
}
