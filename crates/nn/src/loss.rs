//! Losses with analytic gradients: each returns `(loss, d_loss/d_pred)`.
//!
//! All losses are *means* over every element (not sums), so gradient
//! magnitudes are insensitive to batch/width choices — the convention
//! the baselines' learning rates are tuned against.

use sp_linalg::{vector, DenseMatrix};

/// Mean squared error: `L = mean((pred - target)²)`.
pub fn mse(pred: &DenseMatrix, target: &DenseMatrix) -> (f64, DenseMatrix) {
    assert_eq!(pred.shape(), target.shape(), "mse: shape mismatch");
    let n = pred.as_slice().len().max(1) as f64;
    let mut grad = DenseMatrix::zeros(pred.rows(), pred.cols());
    let mut loss = 0.0;
    for (idx, (&p, &t)) in pred.as_slice().iter().zip(target.as_slice()).enumerate() {
        let d = p - t;
        loss += d * d;
        grad.as_mut_slice()[idx] = 2.0 * d / n;
    }
    (loss / n, grad)
}

/// Binary cross-entropy on logits:
/// `L = mean( log(1+e^z) - y z )` (numerically-stable softplus form),
/// gradient `σ(z) - y`, everything averaged over all elements.
pub fn bce_with_logits(logits: &DenseMatrix, targets: &DenseMatrix) -> (f64, DenseMatrix) {
    assert_eq!(logits.shape(), targets.shape(), "bce: shape mismatch");
    let n = logits.as_slice().len().max(1) as f64;
    let mut grad = DenseMatrix::zeros(logits.rows(), logits.cols());
    let mut loss = 0.0;
    for (idx, (&z, &y)) in logits.as_slice().iter().zip(targets.as_slice()).enumerate() {
        debug_assert!((0.0..=1.0).contains(&y), "bce target {y} outside [0,1]");
        // softplus(z) - y z, stable for both signs of z.
        let softplus = if z > 0.0 {
            z + (-z).exp().ln_1p()
        } else {
            z.exp().ln_1p()
        };
        loss += softplus - y * z;
        grad.as_mut_slice()[idx] = (vector::sigmoid(z) - y) / n;
    }
    (loss / n, grad)
}

/// KL divergence of a diagonal Gaussian `N(μ, e^{logvar})` from
/// `N(0, I)`, the VAE regulariser:
/// `KL = -½ mean(1 + logvar - μ² - e^{logvar})`.
/// Returns `(loss, dμ, d_logvar)`.
pub fn kl_standard_normal(
    mu: &DenseMatrix,
    logvar: &DenseMatrix,
) -> (f64, DenseMatrix, DenseMatrix) {
    assert_eq!(mu.shape(), logvar.shape(), "kl: shape mismatch");
    let n = mu.as_slice().len().max(1) as f64;
    let mut dmu = DenseMatrix::zeros(mu.rows(), mu.cols());
    let mut dlv = DenseMatrix::zeros(mu.rows(), mu.cols());
    let mut loss = 0.0;
    for idx in 0..mu.as_slice().len() {
        let m = mu.as_slice()[idx];
        let lv = logvar.as_slice()[idx];
        loss += -(1.0 + lv - m * m - lv.exp());
        // d/dμ of -½(1+lv-μ²-e^lv)/n is μ/n; d/d_lv is (e^lv - 1)/(2n).
        dmu.as_mut_slice()[idx] = m / n;
        dlv.as_mut_slice()[idx] = (lv.exp() - 1.0) / (2.0 * n);
    }
    (loss / (2.0 * n), dmu, dlv)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_zero_at_perfect_prediction() {
        let a = DenseMatrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let (l, g) = mse(&a, &a);
        assert_eq!(l, 0.0);
        assert!(g.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn mse_known_value_and_grad() {
        let p = DenseMatrix::from_vec(1, 2, vec![1.0, 3.0]);
        let t = DenseMatrix::from_vec(1, 2, vec![0.0, 1.0]);
        let (l, g) = mse(&p, &t);
        assert!((l - 2.5).abs() < 1e-12); // (1 + 4)/2
        assert_eq!(g.as_slice(), &[1.0, 2.0]); // 2d/n
    }

    #[test]
    fn bce_gradient_matches_fd() {
        let z = DenseMatrix::from_vec(1, 3, vec![-2.0, 0.3, 4.0]);
        let y = DenseMatrix::from_vec(1, 3, vec![0.0, 1.0, 1.0]);
        let (_, g) = bce_with_logits(&z, &y);
        let h = 1e-6;
        for i in 0..3 {
            let mut zp = z.clone();
            zp.as_mut_slice()[i] += h;
            let (lp, _) = bce_with_logits(&zp, &y);
            let mut zm = z.clone();
            zm.as_mut_slice()[i] -= h;
            let (lm, _) = bce_with_logits(&zm, &y);
            let fd = (lp - lm) / (2.0 * h);
            assert!((g.as_slice()[i] - fd).abs() < 1e-6, "i={i}");
        }
    }

    #[test]
    fn bce_is_minimal_at_confident_correct_logits() {
        let y = DenseMatrix::from_vec(1, 2, vec![1.0, 0.0]);
        let good = DenseMatrix::from_vec(1, 2, vec![10.0, -10.0]);
        let bad = DenseMatrix::from_vec(1, 2, vec![-10.0, 10.0]);
        let (lg, _) = bce_with_logits(&good, &y);
        let (lb, _) = bce_with_logits(&bad, &y);
        assert!(lg < 1e-3);
        assert!(lb > 5.0);
    }

    #[test]
    fn bce_stable_at_extreme_logits() {
        let z = DenseMatrix::from_vec(1, 2, vec![800.0, -800.0]);
        let y = DenseMatrix::from_vec(1, 2, vec![1.0, 0.0]);
        let (l, g) = bce_with_logits(&z, &y);
        assert!(l.is_finite());
        assert!(g.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn kl_zero_at_standard_normal() {
        let mu = DenseMatrix::zeros(1, 4);
        let lv = DenseMatrix::zeros(1, 4);
        let (l, dmu, dlv) = kl_standard_normal(&mu, &lv);
        assert!(l.abs() < 1e-12);
        assert!(dmu.as_slice().iter().all(|&v| v == 0.0));
        assert!(dlv.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn kl_gradients_match_fd() {
        let mu = DenseMatrix::from_vec(1, 2, vec![0.7, -0.3]);
        let lv = DenseMatrix::from_vec(1, 2, vec![0.2, -0.5]);
        let (_, dmu, dlv) = kl_standard_normal(&mu, &lv);
        let h = 1e-6;
        for i in 0..2 {
            let mut mp = mu.clone();
            mp.as_mut_slice()[i] += h;
            let (lp, _, _) = kl_standard_normal(&mp, &lv);
            let mut mm = mu.clone();
            mm.as_mut_slice()[i] -= h;
            let (lm, _, _) = kl_standard_normal(&mm, &lv);
            let fd = (lp - lm) / (2.0 * h);
            assert!((dmu.as_slice()[i] - fd).abs() < 1e-6, "dmu i={i}");

            let mut lp2 = lv.clone();
            lp2.as_mut_slice()[i] += h;
            let (l2, _, _) = kl_standard_normal(&mu, &lp2);
            let mut lm2 = lv.clone();
            lm2.as_mut_slice()[i] -= h;
            let (l3, _, _) = kl_standard_normal(&mu, &lm2);
            let fd2 = (l2 - l3) / (2.0 * h);
            assert!((dlv.as_slice()[i] - fd2).abs() < 1e-6, "dlv i={i}");
        }
    }

    #[test]
    fn kl_positive_away_from_prior() {
        let mu = DenseMatrix::from_vec(1, 2, vec![2.0, -2.0]);
        let lv = DenseMatrix::zeros(1, 2);
        let (l, _, _) = kl_standard_normal(&mu, &lv);
        assert!(l > 0.0);
    }
}
