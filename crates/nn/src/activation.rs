//! Element-wise activations with output-based backward passes.
//!
//! Each activation's derivative is expressed in terms of its *output*
//! (`relu' = 1[out > 0]`, `sigmoid' = out(1-out)`, `tanh' = 1-out²`),
//! so layers only need to cache their outputs, halving the cache
//! footprint of the baselines' forward passes.

use sp_linalg::{vector, DenseMatrix};

/// Supported element-wise activations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Activation {
    /// `max(0, x)`.
    Relu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Pass-through (used for output layers producing logits).
    Identity,
}

impl Activation {
    /// Applies the activation in place.
    pub fn forward(&self, x: &mut DenseMatrix) {
        match self {
            Activation::Relu => {
                for v in x.as_mut_slice() {
                    if *v < 0.0 {
                        *v = 0.0;
                    }
                }
            }
            Activation::Sigmoid => {
                for v in x.as_mut_slice() {
                    *v = vector::sigmoid(*v);
                }
            }
            Activation::Tanh => {
                for v in x.as_mut_slice() {
                    *v = v.tanh();
                }
            }
            Activation::Identity => {}
        }
    }

    /// Transforms upstream gradient `dy` in place into the gradient
    /// w.r.t. the pre-activation, given the cached activation output.
    pub fn backward(&self, out: &DenseMatrix, dy: &mut DenseMatrix) {
        assert_eq!(
            out.shape(),
            dy.shape(),
            "activation backward: shape mismatch"
        );
        match self {
            Activation::Relu => {
                for (d, &o) in dy.as_mut_slice().iter_mut().zip(out.as_slice()) {
                    if o <= 0.0 {
                        *d = 0.0;
                    }
                }
            }
            Activation::Sigmoid => {
                for (d, &o) in dy.as_mut_slice().iter_mut().zip(out.as_slice()) {
                    *d *= o * (1.0 - o);
                }
            }
            Activation::Tanh => {
                for (d, &o) in dy.as_mut_slice().iter_mut().zip(out.as_slice()) {
                    *d *= 1.0 - o * o;
                }
            }
            Activation::Identity => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fd_check(act: Activation) {
        // Finite-difference the composition x -> act(x) -> sum.
        let xs = [-1.5, -0.2, 0.0, 0.3, 2.0];
        let h = 1e-6;
        for &x0 in &xs {
            let mut fwd = DenseMatrix::from_vec(1, 1, vec![x0]);
            act.forward(&mut fwd);
            let mut dy = DenseMatrix::from_vec(1, 1, vec![1.0]);
            act.backward(&fwd, &mut dy);

            let mut p = DenseMatrix::from_vec(1, 1, vec![x0 + h]);
            act.forward(&mut p);
            let mut m = DenseMatrix::from_vec(1, 1, vec![x0 - h]);
            act.forward(&mut m);
            let fd = (p.get(0, 0) - m.get(0, 0)) / (2.0 * h);
            // ReLU is non-differentiable at exactly 0; skip that point.
            if matches!(act, Activation::Relu) && x0 == 0.0 {
                continue;
            }
            assert!(
                (dy.get(0, 0) - fd).abs() < 1e-5,
                "{act:?} at {x0}: analytic {} vs fd {fd}",
                dy.get(0, 0)
            );
        }
    }

    #[test]
    fn relu_matches_fd() {
        fd_check(Activation::Relu);
    }

    #[test]
    fn sigmoid_matches_fd() {
        fd_check(Activation::Sigmoid);
    }

    #[test]
    fn tanh_matches_fd() {
        fd_check(Activation::Tanh);
    }

    #[test]
    fn identity_is_noop() {
        let mut x = DenseMatrix::from_vec(1, 3, vec![-1.0, 0.0, 2.0]);
        let orig = x.clone();
        Activation::Identity.forward(&mut x);
        assert_eq!(x, orig);
        let mut dy = DenseMatrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let dy_orig = dy.clone();
        Activation::Identity.backward(&x, &mut dy);
        assert_eq!(dy, dy_orig);
    }

    #[test]
    fn relu_zeroes_negatives() {
        let mut x = DenseMatrix::from_vec(1, 4, vec![-2.0, -0.1, 0.1, 3.0]);
        Activation::Relu.forward(&mut x);
        assert_eq!(x.as_slice(), &[0.0, 0.0, 0.1, 3.0]);
    }

    #[test]
    fn sigmoid_output_in_unit_interval() {
        let mut x = DenseMatrix::from_vec(1, 3, vec![-30.0, 0.0, 30.0]);
        Activation::Sigmoid.forward(&mut x);
        for &v in x.as_slice() {
            assert!((0.0..=1.0).contains(&v));
        }
        assert!((x.get(0, 1) - 0.5).abs() < 1e-12);
    }
}
