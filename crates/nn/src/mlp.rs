//! Multi-layer perceptron: a stack of [`Linear`] + [`Activation`]
//! pairs with cached forward state for backprop.

use crate::activation::Activation;
use crate::linear::Linear;
use rand::Rng;
use sp_dp::GaussianSampler;
use sp_linalg::DenseMatrix;

/// An MLP; layer `i` maps `dims[i] -> dims[i+1]` through `acts[i]`.
#[derive(Clone, Debug)]
pub struct Mlp {
    layers: Vec<Linear>,
    acts: Vec<Activation>,
    /// Cached per-layer inputs (x of each linear) from the last forward.
    cache_inputs: Vec<DenseMatrix>,
    /// Cached activation outputs from the last forward.
    cache_outputs: Vec<DenseMatrix>,
}

impl Mlp {
    /// Builds an MLP with the given layer widths and activations
    /// (`acts.len() == dims.len() - 1`).
    pub fn new<R: Rng + ?Sized>(dims: &[usize], acts: &[Activation], rng: &mut R) -> Self {
        assert!(dims.len() >= 2, "need at least input and output widths");
        assert_eq!(acts.len(), dims.len() - 1, "one activation per layer");
        let layers = dims
            .windows(2)
            .map(|w| Linear::new(w[0], w[1], rng))
            .collect();
        Self {
            layers,
            acts: acts.to_vec(),
            cache_inputs: Vec::new(),
            cache_outputs: Vec::new(),
        }
    }

    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Immutable access to a layer (weights inspection in tests).
    pub fn layer(&self, i: usize) -> &Linear {
        &self.layers[i]
    }

    /// Forward pass, caching intermediates for [`Mlp::backward`].
    pub fn forward(&mut self, x: &DenseMatrix) -> DenseMatrix {
        self.cache_inputs.clear();
        self.cache_outputs.clear();
        let mut h = x.clone();
        for (layer, act) in self.layers.iter().zip(&self.acts) {
            self.cache_inputs.push(h.clone());
            let mut y = layer.forward(&h);
            act.forward(&mut y);
            self.cache_outputs.push(y.clone());
            h = y;
        }
        h
    }

    /// Inference-only forward (no caches touched).
    pub fn predict(&self, x: &DenseMatrix) -> DenseMatrix {
        let mut h = x.clone();
        for (layer, act) in self.layers.iter().zip(&self.acts) {
            let mut y = layer.forward(&h);
            act.forward(&mut y);
            h = y;
        }
        h
    }

    /// Backward pass from upstream gradient `dy` (w.r.t. the final
    /// activation output); accumulates per-example gradients in every
    /// layer and returns the gradient w.r.t. the input.
    ///
    /// # Panics
    /// Panics if called before `forward`.
    pub fn backward(&mut self, dy: &DenseMatrix) -> DenseMatrix {
        assert_eq!(
            self.cache_inputs.len(),
            self.layers.len(),
            "backward called before forward"
        );
        let mut grad = dy.clone();
        for i in (0..self.layers.len()).rev() {
            self.acts[i].backward(&self.cache_outputs[i], &mut grad);
            grad = self.layers[i].backward(&self.cache_inputs[i], &grad);
        }
        grad
    }

    /// Joint per-example gradient norm across all layers.
    pub fn grad_norm(&self) -> f64 {
        self.layers
            .iter()
            .map(|l| l.grad_norm_sq())
            .sum::<f64>()
            .sqrt()
    }

    /// Clips the joint per-example gradient to `c`; returns the factor.
    pub fn clip_grads(&mut self, c: f64) -> f64 {
        assert!(c > 0.0, "clip threshold must be positive");
        let n = self.grad_norm();
        if n > c {
            let f = c / n;
            for l in &mut self.layers {
                l.scale_grads(f);
            }
            f
        } else {
            1.0
        }
    }

    /// Flushes per-example gradients into the batch accumulators.
    pub fn flush_grads(&mut self) {
        for l in &mut self.layers {
            l.flush_grads();
        }
    }

    /// Zeroes per-example gradients.
    pub fn zero_grads(&mut self) {
        for l in &mut self.layers {
            l.zero_grads();
        }
    }

    /// Adds Gaussian noise to every batch accumulator (DP-SGD).
    pub fn add_noise<R: Rng + ?Sized>(
        &mut self,
        std: f64,
        sampler: &mut GaussianSampler,
        rng: &mut R,
    ) {
        for l in &mut self.layers {
            l.add_noise_to_acc(std, sampler, rng);
        }
    }

    /// SGD step for all layers from the batch accumulators.
    pub fn step_sgd(&mut self, lr: f64, batch: usize) {
        for l in &mut self.layers {
            l.step_sgd(lr, batch);
        }
    }

    /// Adam step for all layers from the batch accumulators.
    pub fn step_adam(&mut self, lr: f64, batch: usize, t: u64) {
        for l in &mut self.layers {
            l.step_adam(lr, batch, t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mlp(seed: u64) -> Mlp {
        let mut rng = StdRng::seed_from_u64(seed);
        Mlp::new(
            &[3, 8, 2],
            &[Activation::Tanh, Activation::Identity],
            &mut rng,
        )
    }

    #[test]
    fn forward_shapes() {
        let mut m = mlp(1);
        let y = m.forward(&DenseMatrix::zeros(5, 3));
        assert_eq!(y.shape(), (5, 2));
        assert_eq!(m.depth(), 2);
    }

    #[test]
    fn predict_matches_forward() {
        let mut m = mlp(2);
        let mut rng = StdRng::seed_from_u64(3);
        let x = DenseMatrix::uniform(4, 3, -1.0, 1.0, &mut rng);
        let a = m.forward(&x);
        let b = m.predict(&x);
        assert_eq!(a, b);
    }

    #[test]
    fn end_to_end_gradient_matches_fd() {
        let mut m = mlp(4);
        let mut rng = StdRng::seed_from_u64(5);
        let x = DenseMatrix::uniform(2, 3, -1.0, 1.0, &mut rng);
        let target = DenseMatrix::uniform(2, 2, -1.0, 1.0, &mut rng);

        let y = m.forward(&x);
        let (_, dy) = loss::mse(&y, &target);
        let dx = m.backward(&dy);

        // FD on the input.
        let h = 1e-6;
        for r in 0..2 {
            for c in 0..3 {
                let mut xp = x.clone();
                xp.set(r, c, x.get(r, c) + h);
                let (lp, _) = loss::mse(&m.predict(&xp), &target);
                let mut xm = x.clone();
                xm.set(r, c, x.get(r, c) - h);
                let (lm, _) = loss::mse(&m.predict(&xm), &target);
                let fd = (lp - lm) / (2.0 * h);
                assert!(
                    (dx.get(r, c) - fd).abs() < 1e-5,
                    "dx({r},{c}): {} vs {fd}",
                    dx.get(r, c)
                );
            }
        }
    }

    #[test]
    fn training_reduces_mse() {
        let mut m = mlp(6);
        let mut rng = StdRng::seed_from_u64(7);
        let x = DenseMatrix::uniform(16, 3, -1.0, 1.0, &mut rng);
        let target = DenseMatrix::uniform(16, 2, -0.5, 0.5, &mut rng);
        let (initial, _) = loss::mse(&m.forward(&x), &target);
        for t in 1..=200u64 {
            let y = m.forward(&x);
            let (_, dy) = loss::mse(&y, &target);
            m.backward(&dy);
            m.flush_grads();
            m.step_adam(0.01, 1, t);
        }
        let (fin, _) = loss::mse(&m.predict(&x), &target);
        assert!(fin < initial / 4.0, "MSE {initial} -> {fin}");
    }

    #[test]
    fn clip_bounds_joint_norm() {
        let mut m = mlp(8);
        let mut rng = StdRng::seed_from_u64(9);
        let x = DenseMatrix::uniform(1, 3, -1.0, 1.0, &mut rng);
        let y = m.forward(&x);
        let big_target = DenseMatrix::from_vec(1, 2, vec![100.0, -100.0]);
        let (_, dy) = loss::mse(&y, &big_target);
        m.backward(&dy);
        assert!(m.grad_norm() > 1.0);
        m.clip_grads(1.0);
        assert!((m.grad_norm() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "before forward")]
    fn backward_requires_forward() {
        let mut m = mlp(10);
        m.backward(&DenseMatrix::zeros(1, 2));
    }
}
