//! Dense affine layer with manual backprop and DP-SGD bookkeeping.
//!
//! Gradient flow is split into two stages to support per-example
//! clipping (DPSGD, Eq. 3 of the paper):
//!
//! 1. `backward` accumulates into the *per-example* buffers
//!    (`grad_w/grad_b`);
//! 2. the caller inspects/clips the joint per-example norm, then
//!    `flush_grads` moves them into the *batch* accumulators
//!    (`acc_w/acc_b`), which receive Gaussian noise once per batch and
//!    feed the optimiser step.
//!
//! Non-private training simply flushes without clipping.

use rand::Rng;
use sp_dp::GaussianSampler;
use sp_linalg::{vector, DenseMatrix};

/// A fully-connected layer `y = x W + b`.
#[derive(Clone, Debug)]
pub struct Linear {
    /// Weights, `in_dim x out_dim`.
    pub w: DenseMatrix,
    /// Bias, `out_dim`.
    pub b: Vec<f64>,
    grad_w: DenseMatrix,
    grad_b: Vec<f64>,
    acc_w: DenseMatrix,
    acc_b: Vec<f64>,
    // Adam state.
    m_w: DenseMatrix,
    v_w: DenseMatrix,
    m_b: Vec<f64>,
    v_b: Vec<f64>,
}

impl Linear {
    /// Xavier-uniform initialisation.
    pub fn new<R: Rng + ?Sized>(in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        assert!(in_dim > 0 && out_dim > 0, "zero-sized layer");
        let bound = (6.0 / (in_dim + out_dim) as f64).sqrt();
        Self {
            w: DenseMatrix::uniform(in_dim, out_dim, -bound, bound, rng),
            b: vec![0.0; out_dim],
            grad_w: DenseMatrix::zeros(in_dim, out_dim),
            grad_b: vec![0.0; out_dim],
            acc_w: DenseMatrix::zeros(in_dim, out_dim),
            acc_b: vec![0.0; out_dim],
            m_w: DenseMatrix::zeros(in_dim, out_dim),
            v_w: DenseMatrix::zeros(in_dim, out_dim),
            m_b: vec![0.0; out_dim],
            v_b: vec![0.0; out_dim],
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.w.rows()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.w.cols()
    }

    /// `y = x W + b` for a batch `x` of shape `B x in_dim`.
    pub fn forward(&self, x: &DenseMatrix) -> DenseMatrix {
        assert_eq!(x.cols(), self.in_dim(), "forward: dim mismatch");
        let mut y = x.matmul(&self.w);
        for r in 0..y.rows() {
            vector::axpy(1.0, &self.b, y.row_mut(r));
        }
        y
    }

    /// Backprop: given the layer input `x` and upstream `dy`,
    /// accumulates `dW = xᵀ dy`, `db = Σ_rows dy` into the
    /// per-example buffers and returns `dx = dy Wᵀ`.
    #[allow(clippy::needless_range_loop)] // index arithmetic is the point here
    pub fn backward(&mut self, x: &DenseMatrix, dy: &DenseMatrix) -> DenseMatrix {
        assert_eq!(dy.cols(), self.out_dim(), "backward: dy dim mismatch");
        assert_eq!(x.rows(), dy.rows(), "backward: batch mismatch");
        // dW += xᵀ dy (accumulated row by row, no transpose materialised).
        for r in 0..x.rows() {
            let xr = x.row(r);
            let dyr = dy.row(r);
            for (i, &xi) in xr.iter().enumerate() {
                if xi != 0.0 {
                    vector::axpy(xi, dyr, self.grad_w.row_mut(i));
                }
            }
            vector::axpy(1.0, dyr, &mut self.grad_b);
        }
        // dx = dy Wᵀ.
        let mut dx = DenseMatrix::zeros(dy.rows(), self.in_dim());
        for r in 0..dy.rows() {
            let dyr = dy.row(r);
            let dxr = dx.row_mut(r);
            for i in 0..self.in_dim() {
                dxr[i] = vector::dot(self.w.row(i), dyr);
            }
        }
        dx
    }

    /// Squared ℓ2 norm of the per-example gradient buffers.
    pub fn grad_norm_sq(&self) -> f64 {
        vector::norm2_sq(self.grad_w.as_slice()) + vector::norm2_sq(&self.grad_b)
    }

    /// Scales the per-example gradient buffers (clipping support).
    pub fn scale_grads(&mut self, f: f64) {
        vector::scale(f, self.grad_w.as_mut_slice());
        vector::scale(f, &mut self.grad_b);
    }

    /// Moves per-example gradients into the batch accumulators and
    /// zeroes them.
    pub fn flush_grads(&mut self) {
        self.acc_w.add_scaled(1.0, &self.grad_w);
        vector::axpy(1.0, &self.grad_b, &mut self.acc_b);
        self.zero_grads();
    }

    /// Zeroes the per-example buffers (e.g. after an abandoned pass).
    pub fn zero_grads(&mut self) {
        self.grad_w.fill_zero();
        self.grad_b.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Adds `N(0, std²)` noise to every batch-accumulator coordinate
    /// (the Gaussian mechanism of DP-SGD).
    pub fn add_noise_to_acc<R: Rng + ?Sized>(
        &mut self,
        std: f64,
        sampler: &mut GaussianSampler,
        rng: &mut R,
    ) {
        sampler.perturb_slice(self.acc_w.as_mut_slice(), std, rng);
        sampler.perturb_slice(&mut self.acc_b, std, rng);
    }

    /// SGD step from the batch accumulators (averaged over `batch`),
    /// then clears them.
    pub fn step_sgd(&mut self, lr: f64, batch: usize) {
        let f = -lr / batch.max(1) as f64;
        self.w.add_scaled(f, &self.acc_w);
        vector::axpy(f, &self.acc_b, &mut self.b);
        self.clear_acc();
    }

    /// Adam step (bias-corrected, `t` is the 1-based step count) from
    /// the batch accumulators, then clears them.
    pub fn step_adam(&mut self, lr: f64, batch: usize, t: u64) {
        const B1: f64 = 0.9;
        const B2: f64 = 0.999;
        const EPS: f64 = 1e-8;
        let inv_b = 1.0 / batch.max(1) as f64;
        let bc1 = 1.0 - B1.powi(t as i32);
        let bc2 = 1.0 - B2.powi(t as i32);
        for idx in 0..self.w.as_slice().len() {
            let g = self.acc_w.as_slice()[idx] * inv_b;
            let m = &mut self.m_w.as_mut_slice()[idx];
            *m = B1 * *m + (1.0 - B1) * g;
            let v = &mut self.v_w.as_mut_slice()[idx];
            *v = B2 * *v + (1.0 - B2) * g * g;
            let mhat = self.m_w.as_slice()[idx] / bc1;
            let vhat = self.v_w.as_slice()[idx] / bc2;
            self.w.as_mut_slice()[idx] -= lr * mhat / (vhat.sqrt() + EPS);
        }
        for idx in 0..self.b.len() {
            let g = self.acc_b[idx] * inv_b;
            self.m_b[idx] = B1 * self.m_b[idx] + (1.0 - B1) * g;
            self.v_b[idx] = B2 * self.v_b[idx] + (1.0 - B2) * g * g;
            let mhat = self.m_b[idx] / bc1;
            let vhat = self.v_b[idx] / bc2;
            self.b[idx] -= lr * mhat / (vhat.sqrt() + EPS);
        }
        self.clear_acc();
    }

    fn clear_acc(&mut self) {
        self.acc_w.fill_zero();
        self.acc_b.iter_mut().for_each(|v| *v = 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn layer() -> Linear {
        let mut rng = StdRng::seed_from_u64(1);
        Linear::new(3, 2, &mut rng)
    }

    #[test]
    fn forward_shape_and_bias() {
        let mut l = layer();
        l.b = vec![10.0, 20.0];
        let x = DenseMatrix::zeros(4, 3);
        let y = l.forward(&x);
        assert_eq!(y.shape(), (4, 2));
        for r in 0..4 {
            assert_eq!(y.row(r), &[10.0, 20.0]);
        }
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut l = layer();
        let mut rng = StdRng::seed_from_u64(2);
        let x = DenseMatrix::uniform(2, 3, -1.0, 1.0, &mut rng);
        // Scalar loss = sum(y), so dy = ones.
        let dy = DenseMatrix::from_vec(2, 2, vec![1.0; 4]);
        let dx = l.backward(&x, &dy);
        let h = 1e-6;
        // Check dW via finite differences.
        for i in 0..3 {
            for j in 0..2 {
                let orig = l.w.get(i, j);
                l.w.set(i, j, orig + h);
                let lp: f64 = l.forward(&x).as_slice().iter().sum();
                l.w.set(i, j, orig - h);
                let lm: f64 = l.forward(&x).as_slice().iter().sum();
                l.w.set(i, j, orig);
                let fd = (lp - lm) / (2.0 * h);
                assert!(
                    (fd - l.grad_w.get(i, j)).abs() < 1e-6,
                    "dW({i},{j}): {fd} vs {}",
                    l.grad_w.get(i, j)
                );
            }
        }
        // Check dx: d(sum y)/dx_rc = Σ_j W[c][j].
        for r in 0..2 {
            for c in 0..3 {
                let expect: f64 = l.w.row(c).iter().sum();
                assert!((dx.get(r, c) - expect).abs() < 1e-9);
            }
        }
        // db = column sums of dy = batch size each.
        assert_eq!(l.grad_b, vec![2.0, 2.0]);
    }

    #[test]
    fn clip_then_flush_accumulates() {
        let mut l = layer();
        let x = DenseMatrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let dy = DenseMatrix::from_vec(1, 2, vec![1.0, -1.0]);
        l.backward(&x, &dy);
        let n = l.grad_norm_sq().sqrt();
        assert!(n > 0.0);
        // Clip to norm 1, then flush.
        l.scale_grads(1.0 / n);
        l.flush_grads();
        assert_eq!(l.grad_norm_sq(), 0.0, "per-example buffers cleared");
        let acc_norm = (vector::norm2_sq(l.acc_w.as_slice()) + vector::norm2_sq(&l.acc_b)).sqrt();
        assert!((acc_norm - 1.0).abs() < 1e-9, "acc norm {acc_norm}");
    }

    #[test]
    fn sgd_step_moves_against_gradient() {
        let mut l = layer();
        let before = l.w.get(0, 0);
        let x = DenseMatrix::from_vec(1, 3, vec![1.0, 0.0, 0.0]);
        let dy = DenseMatrix::from_vec(1, 2, vec![1.0, 0.0]);
        l.backward(&x, &dy);
        l.flush_grads();
        l.step_sgd(0.5, 1);
        assert!((l.w.get(0, 0) - (before - 0.5)).abs() < 1e-12);
        // Accumulators cleared: second step is a no-op.
        let w_after = l.w.get(0, 0);
        l.step_sgd(0.5, 1);
        assert_eq!(l.w.get(0, 0), w_after);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        // Minimise ||W||² with gradient 2W: Adam should drive W to ~0.
        let mut l = layer();
        for t in 1..=500u64 {
            // grad = 2W, injected directly into acc via grad buffers.
            let g = l.w.clone();
            l.grad_w.add_scaled(2.0, &g);
            l.flush_grads();
            l.step_adam(0.05, 1, t);
        }
        assert!(
            l.w.frobenius_norm() < 1e-2,
            "Adam failed to shrink W: {}",
            l.w.frobenius_norm()
        );
    }

    #[test]
    fn noise_perturbs_accumulators() {
        let mut l = layer();
        let mut rng = StdRng::seed_from_u64(5);
        let mut sampler = GaussianSampler::new();
        l.add_noise_to_acc(1.0, &mut sampler, &mut rng);
        assert!(vector::norm2_sq(l.acc_w.as_slice()) > 0.0);
    }

    #[test]
    #[should_panic(expected = "dim mismatch")]
    fn forward_rejects_wrong_width() {
        let l = layer();
        l.forward(&DenseMatrix::zeros(1, 5));
    }
}
