//! Property tests for the NN substrate: gradient correctness over
//! random architectures and inputs, DP bookkeeping invariants.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sp_linalg::DenseMatrix;
use sp_nn::{loss, Activation, Linear, Mlp};

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-2.0f64..2.0, rows * cols)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn linear_dx_matches_fd(seed in 0u64..1000, xs in matrix(2, 3)) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layer = Linear::new(3, 2, &mut rng);
        let x = DenseMatrix::from_vec(2, 3, xs);
        let dy = DenseMatrix::from_vec(2, 2, vec![1.0; 4]);
        let dx = layer.backward(&x, &dy);
        let h = 1e-6;
        let loss_of = |layer: &Linear, x: &DenseMatrix| -> f64 {
            layer.forward(x).as_slice().iter().sum()
        };
        for r in 0..2 {
            for c in 0..3 {
                let mut xp = x.clone();
                xp.set(r, c, x.get(r, c) + h);
                let mut xm = x.clone();
                xm.set(r, c, x.get(r, c) - h);
                let fd = (loss_of(&layer, &xp) - loss_of(&layer, &xm)) / (2.0 * h);
                prop_assert!((dx.get(r, c) - fd).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn mlp_grad_clip_invariant(seed in 0u64..1000, c in 0.01f64..5.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = Mlp::new(&[3, 6, 2], &[Activation::Tanh, Activation::Identity], &mut rng);
        let x = DenseMatrix::uniform(2, 3, -1.0, 1.0, &mut rng);
        let target = DenseMatrix::uniform(2, 2, -5.0, 5.0, &mut rng);
        let y = m.forward(&x);
        let (_, dy) = loss::mse(&y, &target);
        m.backward(&dy);
        m.clip_grads(c);
        prop_assert!(m.grad_norm() <= c + 1e-9);
    }

    #[test]
    fn bce_loss_nonnegative_and_grad_bounded(
        zs in proptest::collection::vec(-30.0f64..30.0, 1..12),
        labels in proptest::collection::vec(0u8..2, 1..12),
    ) {
        let n = zs.len().min(labels.len());
        let z = DenseMatrix::from_vec(1, n, zs[..n].to_vec());
        let y = DenseMatrix::from_vec(1, n, labels[..n].iter().map(|&b| b as f64).collect());
        let (l, g) = loss::bce_with_logits(&z, &y);
        prop_assert!(l >= 0.0);
        // Per-element gradient magnitude is at most 1/n.
        for &gv in g.as_slice() {
            prop_assert!(gv.abs() <= 1.0 / n as f64 + 1e-12);
        }
    }

    #[test]
    fn kl_is_nonnegative(
        mus in proptest::collection::vec(-3.0f64..3.0, 1..8),
        lvs in proptest::collection::vec(-2.0f64..2.0, 1..8),
    ) {
        let n = mus.len().min(lvs.len());
        let mu = DenseMatrix::from_vec(1, n, mus[..n].to_vec());
        let lv = DenseMatrix::from_vec(1, n, lvs[..n].to_vec());
        let (l, _, _) = loss::kl_standard_normal(&mu, &lv);
        prop_assert!(l >= -1e-12, "KL must be non-negative, got {l}");
    }

    #[test]
    fn sgd_with_zero_grads_is_identity(seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = Mlp::new(&[2, 3, 1], &[Activation::Relu, Activation::Identity], &mut rng);
        let before: Vec<f64> = m.layer(0).w.as_slice().to_vec();
        m.flush_grads(); // nothing accumulated
        m.step_sgd(0.5, 4);
        prop_assert_eq!(m.layer(0).w.as_slice().to_vec(), before);
    }
}
