//! Criterion micro-benchmarks for the hot kernels of every substrate:
//! one group per crate, sized to finish quickly while still resolving
//! the costs that dominate experiment wall-clock (gradient steps,
//! noise injection, proximity construction, accountant updates,
//! metric kernels).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::{SmallRng, StdRng};
use rand::SeedableRng;
use se_privgemb::{PerturbStrategy, ProximityKind, SePrivGEmb};
use sp_datasets::generators;
use sp_dp::{subsampled_gaussian_rdp, GaussianSampler, RdpAccountant};
use sp_eval::{auc_from_scores, struc_equ, PairSelection};
use sp_graph::Graph;
use sp_linalg::{vector, DenseMatrix};
use sp_proximity::{proximity_matrix, EdgeProximity};
use sp_skipgram::alias::AliasTable;
use sp_skipgram::model::{GradBuffer, SkipGramModel};
use sp_skipgram::{generate_subgraphs, NegativeSampling};

fn bench_graph(n: usize) -> Graph {
    let mut rng = StdRng::seed_from_u64(1);
    generators::barabasi_albert(n, 5, &mut rng)
}

fn linalg_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("linalg");
    let x: Vec<f64> = (0..128).map(|i| (i as f64).sin()).collect();
    let y: Vec<f64> = (0..128).map(|i| (i as f64).cos()).collect();
    g.bench_function("dot_128", |b| {
        b.iter(|| vector::dot(black_box(&x), black_box(&y)))
    });
    g.bench_function("sigmoid", |b| b.iter(|| vector::sigmoid(black_box(0.37))));
    let mut z = y.clone();
    g.bench_function("axpy_128", |b| {
        b.iter(|| vector::axpy(black_box(0.5), black_box(&x), black_box(&mut z)))
    });
    let a = proximity_matrix(&bench_graph(500), ProximityKind::DeepWalk { window: 1 });
    let d = DenseMatrix::uniform(500, 64, -1.0, 1.0, &mut StdRng::seed_from_u64(2));
    g.bench_function("spmm_dense_500x64", |b| {
        b.iter(|| a.spmm_dense(black_box(&d)))
    });
    g.bench_function("spgemm_500", |b| b.iter(|| a.spgemm(black_box(&a))));
    g.finish();
}

fn dp_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("dp");
    let mut rng = SmallRng::seed_from_u64(3);
    let mut sampler = GaussianSampler::new();
    let mut buf = vec![0.0f64; 128];
    g.bench_function("gaussian_row_128", |b| {
        b.iter(|| sampler.fill_slice(black_box(&mut buf), 1.0, &mut rng))
    });
    g.bench_function("rdp_subsampled_alpha32", |b| {
        b.iter(|| subsampled_gaussian_rdp(black_box(32), black_box(0.004), black_box(5.0)))
    });
    let mut acc = RdpAccountant::default();
    acc.step_many(0.004, 5.0, 100);
    g.bench_function("rdp_delta_conversion", |b| {
        b.iter(|| acc.delta(black_box(3.5)))
    });
    g.finish();
}

fn proximity_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("proximity");
    let graph = bench_graph(1000);
    for kind in [
        ProximityKind::DeepWalk { window: 2 },
        ProximityKind::CommonNeighbors,
        ProximityKind::ResourceAllocation,
    ] {
        g.bench_with_input(
            BenchmarkId::new("matrix", kind.label()),
            &kind,
            |b, &kind| b.iter(|| proximity_matrix(black_box(&graph), kind)),
        );
    }
    g.bench_function("degree_edge_weights", |b| {
        b.iter(|| EdgeProximity::compute(black_box(&graph), ProximityKind::Degree))
    });
    g.finish();
}

fn skipgram_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("skipgram");
    let graph = bench_graph(1000);
    let mut rng = StdRng::seed_from_u64(4);
    g.bench_function("alias_build_1000", |b| {
        let w: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        b.iter(|| AliasTable::new(black_box(&w)))
    });
    let table = AliasTable::new(&(1..=1000).map(|i| i as f64).collect::<Vec<_>>());
    let mut srng = SmallRng::seed_from_u64(5);
    g.bench_function("alias_sample", |b| b.iter(|| table.sample(&mut srng)));
    g.bench_function("subgraphs_alg1", |b| {
        b.iter(|| {
            generate_subgraphs(
                black_box(&graph),
                5,
                NegativeSampling::UniformNonNeighbor,
                &mut rng,
            )
        })
    });
    let model = SkipGramModel::new(1000, 128, &mut rng);
    let sgs = generate_subgraphs(&graph, 5, NegativeSampling::UniformNonNeighbor, &mut rng);
    let mut buf = GradBuffer::new();
    g.bench_function("example_grad_r128_k5", |b| {
        b.iter(|| model.example_grad(black_box(&sgs[0]), 1.0, &mut buf))
    });
    g.finish();
}

fn eval_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("eval");
    let graph = bench_graph(500);
    let emb = DenseMatrix::uniform(500, 64, -1.0, 1.0, &mut StdRng::seed_from_u64(6));
    g.bench_function("strucequ_sampled_20k", |b| {
        b.iter(|| {
            struc_equ(
                black_box(&graph),
                black_box(&emb),
                PairSelection::Sampled {
                    pairs: 20_000,
                    seed: 1,
                },
            )
        })
    });
    let pos: Vec<f64> = (0..2000).map(|i| (i as f64 * 0.37).sin()).collect();
    let neg: Vec<f64> = (0..2000).map(|i| (i as f64 * 0.11).cos() - 0.2).collect();
    g.bench_function("auc_4k_scores", |b| {
        b.iter(|| auc_from_scores(black_box(&pos), black_box(&neg)))
    });
    g.finish();
}

fn parallel_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("parallel");
    let items: Vec<u64> = (0..10_000).collect();
    // Pool dispatch + per-chunk slot overhead on a trivial body — the
    // regression guard for the old per-item-lock design.
    g.bench_function("par_map_10k_trivial", |b| {
        b.iter(|| sp_parallel::par_map(black_box(&items), 4, |&x| x ^ 0x5EED))
    });
    let xs: Vec<f64> = (0..100_000).map(|i| (i as f64).sin()).collect();
    g.bench_function("par_reduce_sum_100k", |b| {
        b.iter(|| {
            sp_parallel::par_reduce(
                xs.len(),
                4096,
                4,
                |r| black_box(&xs)[r].iter().sum::<f64>(),
                |a, b| a + b,
            )
        })
    });
    g.finish();
}

fn end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    let graph = bench_graph(300);
    g.bench_function("train_private_10_epochs", |b| {
        b.iter(|| {
            SePrivGEmb::builder()
                .dim(32)
                .epochs(10)
                .strategy(PerturbStrategy::NonZero)
                .proximity(ProximityKind::Degree)
                .seed(1)
                .build()
                .fit(black_box(&graph))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    linalg_kernels,
    dp_kernels,
    proximity_kernels,
    skipgram_kernels,
    eval_kernels,
    parallel_kernels,
    end_to_end
);
criterion_main!(benches);
