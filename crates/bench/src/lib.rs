//! # sp-bench
//!
//! The experiment harness reproducing every table and figure of the
//! paper's evaluation (§VI). Each `table*`/`fig*` binary regenerates
//! one artefact; `run_all` regenerates everything; results are printed
//! as paper-style rows and mirrored as TSV under
//! `crates/bench/results/`.
//!
//! Two modes (see [`harness::BenchMode`]):
//! - **quick** (default): scaled-down dataset stand-ins and fewer
//!   repetitions, sized so the whole suite finishes in minutes on a
//!   2-core machine;
//! - **full** (`--full` or `SP_BENCH_FULL=1`): the paper's published
//!   dataset sizes, epochs, and 10 repetitions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod harness;
pub mod kernels;
pub mod methods;
pub mod scale;
