//! Table VI: impact of the perturbation strategy (naive Eq. 6 vs
//! non-zero Eq. 9) on structural equivalence, at ε ∈ {0.5, 2, 3.5} on
//! Chameleon, Power, and Arxiv, for both proximity variants.

use crate::harness::{banner, dataset_graph, fmt_stats, sweep_threads, write_tsv, BenchMode};
use se_privgemb::{PerturbStrategy, ProximityKind, SePrivGEmb};
use sp_datasets::PaperDataset;
use sp_eval::{struc_equ, PairSelection};
use sp_linalg::RunningStats;
use sp_proximity::EdgeProximity;

/// The ε grid of Table VI.
pub fn epsilons() -> [f64; 3] {
    [0.5, 2.0, 3.5]
}

struct Job {
    prox: ProximityKind,
    ds: PaperDataset,
    eps: f64,
    strategy: PerturbStrategy,
    rep: usize,
}

/// Runs Table VI.
pub fn run(mode: BenchMode) {
    banner(
        "Table VI: perturbation strategies (naive vs non-zero)",
        mode,
    );
    let reps = mode.reps();
    let variants = [
        ("SE-PrivGEmbDW", ProximityKind::DeepWalk { window: 2 }),
        ("SE-PrivGEmbDeg", ProximityKind::Degree),
    ];
    let datasets = PaperDataset::parameter_study();
    let strategies = [PerturbStrategy::Naive, PerturbStrategy::NonZero];

    let prepared: Vec<(PaperDataset, sp_graph::Graph)> = datasets
        .iter()
        .map(|&ds| (ds, dataset_graph(mode, ds, 7)))
        .collect();
    let graph_of = |ds: PaperDataset| -> &sp_graph::Graph {
        &prepared.iter().find(|(d, _)| *d == ds).unwrap().1
    };

    let mut jobs = Vec::new();
    for &(_, prox) in &variants {
        for &(ds, _) in &prepared {
            for &eps in &epsilons() {
                for &strategy in &strategies {
                    for rep in 0..reps {
                        jobs.push(Job {
                            prox,
                            ds,
                            eps,
                            strategy,
                            rep,
                        });
                    }
                }
            }
        }
    }

    let scores = sp_parallel::par_map(&jobs, sweep_threads(jobs.len()), |job| {
        let g = graph_of(job.ds);
        // Inner parallelism stays at 1: the sweep is the pool.
        let prox = EdgeProximity::compute_threads(g, job.prox, Some(1));
        let result = SePrivGEmb::builder()
            .dim(mode.dim())
            .epsilon(job.eps)
            .epochs(mode.strucequ_epochs())
            .strategy(job.strategy)
            .proximity(job.prox)
            .threads(1)
            .seed(2000 + job.rep as u64)
            .build()
            .fit_with_proximity(g, prox);
        struc_equ(
            g,
            result.embeddings(),
            PairSelection::Auto {
                seed: job.rep as u64,
            },
        )
        .unwrap_or(0.0)
    });

    let mut tsv_rows = Vec::new();
    let mut cursor = 0usize;
    for &(vname, _) in &variants {
        println!("\n{vname}");
        println!("{:>18}  {:>16}  {:>16}", "config", "Naive", "Non-zero");
        for &(ds, _) in &prepared {
            for &eps in &epsilons() {
                let mut cells = Vec::new();
                for _ in &strategies {
                    let mut st = RunningStats::new();
                    for _ in 0..reps {
                        st.push(scores[cursor]);
                        cursor += 1;
                    }
                    cells.push(fmt_stats(&st));
                }
                let label = format!("{}(eps={eps})", ds.name());
                println!("{label:>18}  {:>16}  {:>16}", cells[0], cells[1]);
                tsv_rows.push(vec![
                    vname.to_string(),
                    ds.name().to_string(),
                    eps.to_string(),
                    cells[0].clone(),
                    cells[1].clone(),
                ]);
            }
        }
    }
    write_tsv(
        "table6_perturb",
        &["variant", "dataset", "epsilon", "naive", "nonzero"],
        &tsv_rows,
    );
}

#[cfg(test)]
mod tests {
    #[test]
    fn epsilon_grid_matches_paper() {
        assert_eq!(super::epsilons(), [0.5, 2.0, 3.5]);
    }
}
