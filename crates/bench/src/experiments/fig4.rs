//! Fig. 4: link-prediction AUC vs privacy budget for all eight
//! methods on Chameleon, Power, and Arxiv.
//!
//! Protocol per §VI-A: 90/10 edge split, methods train on the graph
//! induced by the training edges, the held-out edges plus an equal
//! number of sampled non-edges form the test set, scoring is the
//! inner product of the endpoint embeddings, metric is rank-AUC.

use crate::harness::{banner, dataset_graph, fmt_stats, sweep_threads, write_tsv, BenchMode};
use crate::methods::Method;
use rand::rngs::StdRng;
use rand::SeedableRng;
use se_privgemb::presets::epsilon_grid;
use sp_datasets::PaperDataset;
use sp_eval::LinkSplit;
use sp_linalg::RunningStats;

struct Job {
    method: Method,
    ds_index: usize,
    eps: f64,
    rep: usize,
}

/// Runs Fig. 4.
pub fn run(mode: BenchMode) {
    banner("Fig. 4: impact of privacy budget on link prediction", mode);
    let reps = mode.reps();
    let datasets = [
        PaperDataset::Chameleon,
        PaperDataset::Power,
        PaperDataset::Arxiv,
    ];
    let eps_grid = epsilon_grid();

    // One split per (dataset, rep): the paper re-splits per run.
    let splits: Vec<Vec<LinkSplit>> = datasets
        .iter()
        .map(|&ds| {
            let g = dataset_graph(mode, ds, 7);
            (0..reps)
                .map(|rep| {
                    let mut rng = StdRng::seed_from_u64(4000 + rep as u64);
                    LinkSplit::new(&g, 0.1, &mut rng)
                })
                .collect()
        })
        .collect();

    let mut jobs = Vec::new();
    for (ds_index, _) in datasets.iter().enumerate() {
        for method in Method::all() {
            for &eps in &eps_grid {
                for rep in 0..reps {
                    jobs.push(Job {
                        method,
                        ds_index,
                        eps,
                        rep,
                    });
                }
            }
        }
    }

    let scores = sp_parallel::par_map(&jobs, sweep_threads(jobs.len()), |job| {
        let split = &splits[job.ds_index][job.rep];
        let emb = job.method.embed(
            &split.train,
            mode.dim(),
            job.eps,
            mode.linkpred_epochs(),
            5000 + job.rep as u64,
        );
        split.auc(&emb).unwrap_or(0.5)
    });

    let mut tsv_rows = Vec::new();
    let mut cursor = 0usize;
    for (ds_index, ds) in datasets.iter().enumerate() {
        let _ = ds_index;
        println!(
            "\n[{}] link-prediction AUC by method and epsilon",
            ds.name()
        );
        print!("{:>16}", "method");
        for eps in &eps_grid {
            print!("  {:>13}", format!("eps={eps}"));
        }
        println!();
        for method in Method::all() {
            print!("{:>16}", method.name());
            for &eps in &eps_grid {
                let mut st = RunningStats::new();
                for _ in 0..reps {
                    st.push(scores[cursor]);
                    cursor += 1;
                }
                print!("  {:>13}", fmt_stats(&st));
                tsv_rows.push(vec![
                    ds.name().to_string(),
                    method.name().to_string(),
                    eps.to_string(),
                    format!("{:.4}", st.mean()),
                    format!("{:.4}", st.std_dev()),
                ]);
            }
            println!();
        }
    }
    write_tsv(
        "fig4_linkpred",
        &["dataset", "method", "epsilon", "auc_mean", "auc_sd"],
        &tsv_rows,
    );
}
