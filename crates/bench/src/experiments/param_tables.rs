//! Tables II–V: parameter studies of SE-PrivGEmb on Chameleon, Power,
//! and Arxiv at ε = 3.5, for both the DW and Deg variants.
//!
//! Each table sweeps one hyper-parameter around the paper's defaults
//! (B = 128, η = 0.1, C = 2, k = 5) and reports `StrucEqu ± SD` over
//! repeated seeded runs.

use crate::harness::{banner, dataset_graph, fmt_stats, sweep_threads, write_tsv, BenchMode};
use se_privgemb::{ProximityKind, SePrivGEmb, SePrivGEmbBuilder};
use sp_datasets::PaperDataset;
use sp_eval::{struc_equ, PairSelection};
use sp_linalg::RunningStats;
use sp_proximity::EdgeProximity;

/// Which parameter a table sweeps.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SweepParam {
    /// Table II: batch size `B`.
    Batch(usize),
    /// Table III: learning rate `η`.
    LearningRate(f64),
    /// Table IV: clipping threshold `C`.
    Clip(f64),
    /// Table V: negative-sample count `k`.
    Negatives(usize),
}

impl SweepParam {
    fn apply(&self, b: SePrivGEmbBuilder) -> SePrivGEmbBuilder {
        match *self {
            SweepParam::Batch(v) => b.batch_size(v),
            SweepParam::LearningRate(v) => b.learning_rate(v),
            SweepParam::Clip(v) => b.clip(v),
            SweepParam::Negatives(v) => b.negatives(v),
        }
    }

    fn value_label(&self) -> String {
        match *self {
            SweepParam::Batch(v) => v.to_string(),
            SweepParam::LearningRate(v) => format!("{v}"),
            SweepParam::Clip(v) => format!("{v}"),
            SweepParam::Negatives(v) => v.to_string(),
        }
    }
}

/// The two SE-PrivGEmb variants of the tables.
const VARIANTS: [(&str, ProximityKind); 2] = [
    ("SE-PrivGEmbDW", ProximityKind::DeepWalk { window: 2 }),
    ("SE-PrivGEmbDeg", ProximityKind::Degree),
];

/// One (variant, dataset, parameter value, repetition) work item.
struct Job {
    prox: ProximityKind,
    ds: PaperDataset,
    param: SweepParam,
    rep: usize,
}

/// Runs one parameter-study table and prints/mirrors it.
pub fn run(mode: BenchMode, table_name: &str, title: &str, values: &[SweepParam]) {
    banner(title, mode);
    let reps = mode.reps();
    let datasets = PaperDataset::parameter_study();

    // Pre-generate graphs + proximities once per (dataset, variant).
    let prepared: Vec<(PaperDataset, sp_graph::Graph)> = datasets
        .iter()
        .map(|&ds| (ds, dataset_graph(mode, ds, 7)))
        .collect();

    let mut jobs = Vec::new();
    for &(vname, prox) in &VARIANTS {
        let _ = vname;
        for &(ds, _) in &prepared {
            for &param in values {
                for rep in 0..reps {
                    jobs.push(Job {
                        prox,
                        ds,
                        param,
                        rep,
                    });
                }
            }
        }
    }

    let graph_of = |ds: PaperDataset| -> &sp_graph::Graph {
        &prepared.iter().find(|(d, _)| *d == ds).unwrap().1
    };

    let scores = sp_parallel::par_map(&jobs, sweep_threads(jobs.len()), |job| {
        let g = graph_of(job.ds);
        // Inner parallelism stays at 1: the sweep is the pool.
        let prox = EdgeProximity::compute_threads(g, job.prox, Some(1));
        let builder = SePrivGEmb::builder()
            .dim(mode.dim())
            .epsilon(3.5)
            .epochs(mode.strucequ_epochs())
            .proximity(job.prox)
            .threads(1)
            .seed(1000 + job.rep as u64);
        let model = job.param.apply(builder).build();
        let result = model.fit_with_proximity(g, prox);
        struc_equ(
            g,
            result.embeddings(),
            PairSelection::Auto {
                seed: job.rep as u64,
            },
        )
        .unwrap_or(0.0)
    });

    // Aggregate back into (variant, dataset, value) cells.
    let mut tsv_rows: Vec<Vec<String>> = Vec::new();
    let mut cursor = 0usize;
    for &(vname, _) in &VARIANTS {
        println!("\n{vname}");
        println!(
            "{:>8}  {:>16}  {:>16}  {:>16}",
            "value", "Chameleon", "Power", "Arxiv"
        );
        // scores are laid out variant-major, then dataset, value, rep.
        let mut per_value: Vec<Vec<RunningStats>> =
            vec![vec![RunningStats::new(); datasets.len()]; values.len()];
        for (di, _) in datasets.iter().enumerate() {
            for (vi, _) in values.iter().enumerate() {
                for _ in 0..reps {
                    per_value[vi][di].push(scores[cursor]);
                    cursor += 1;
                }
            }
        }
        for (vi, param) in values.iter().enumerate() {
            let cells: Vec<String> = per_value[vi].iter().map(fmt_stats).collect();
            println!(
                "{:>8}  {:>16}  {:>16}  {:>16}",
                param.value_label(),
                cells[0],
                cells[1],
                cells[2]
            );
            tsv_rows.push(vec![
                vname.to_string(),
                param.value_label(),
                cells[0].clone(),
                cells[1].clone(),
                cells[2].clone(),
            ]);
        }
    }
    write_tsv(
        table_name,
        &["variant", "value", "Chameleon", "Power", "Arxiv"],
        &tsv_rows,
    );
}

/// Table II values (batch size).
pub fn table2_values() -> Vec<SweepParam> {
    [32usize, 64, 128, 256, 512, 1024]
        .iter()
        .map(|&b| SweepParam::Batch(b))
        .collect()
}

/// Table III values (learning rate).
pub fn table3_values() -> Vec<SweepParam> {
    [0.01, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3]
        .iter()
        .map(|&v| SweepParam::LearningRate(v))
        .collect()
}

/// Table IV values (clipping threshold).
pub fn table4_values() -> Vec<SweepParam> {
    (1..=6).map(|c| SweepParam::Clip(c as f64)).collect()
}

/// Table V values (negative-sample count).
pub fn table5_values() -> Vec<SweepParam> {
    (1..=7).map(SweepParam::Negatives).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_grids_match_paper() {
        assert_eq!(table2_values().len(), 6);
        assert_eq!(table3_values().len(), 7);
        assert_eq!(table4_values().len(), 6);
        assert_eq!(table5_values().len(), 7);
        assert_eq!(table2_values()[2], SweepParam::Batch(128));
        assert_eq!(table4_values()[1], SweepParam::Clip(2.0));
    }

    #[test]
    fn sweep_param_applies_to_builder() {
        let b = SePrivGEmb::builder();
        let m = SweepParam::Batch(256).apply(b).build();
        assert_eq!(m.train_config().batch_size, 256);
        let m = SweepParam::LearningRate(0.25)
            .apply(SePrivGEmb::builder())
            .build();
        assert_eq!(m.train_config().learning_rate, 0.25);
        let m = SweepParam::Clip(4.0).apply(SePrivGEmb::builder()).build();
        assert_eq!(m.train_config().clip, 4.0);
        let m = SweepParam::Negatives(7)
            .apply(SePrivGEmb::builder())
            .build();
        assert_eq!(m.train_config().negatives, 7);
    }

    #[test]
    fn labels_render() {
        assert_eq!(SweepParam::Batch(64).value_label(), "64");
        assert_eq!(SweepParam::LearningRate(0.05).value_label(), "0.05");
    }
}
