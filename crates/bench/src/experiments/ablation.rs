//! Ablations beyond the paper's tables — the design-choice studies
//! DESIGN.md calls out:
//!
//! 1. **Theorem 3 verification**: the closed-form optimum
//!    `x* = log(p_ij/(k·min P))` against a direct gradient-descent
//!    minimisation of the deterministic objective (Eq. 13), per
//!    proximity measure;
//! 2. **Negative-sampling design**: Theorem-3 alignment
//!    (`corr(x_ij, log p_ij)`) of models trained with the paper's
//!    uniform non-neighbour sampler vs the prior-work
//!    degree-proportional sampler (Eq. 14/15);
//! 3. **Evaluation-norm artifact**: raw vs row-normalised StrucEqu for
//!    noisy and noiseless models (the degree-norm effect analysed in
//!    EXPERIMENTS.md);
//! 4. **Sensitivity scaling**: StrucEqu of the naive strategy as the
//!    batch size grows (its `S = B·C` noise scales linearly with `B`,
//!    the non-zero strategy's does not).

use crate::harness::{banner, write_tsv, BenchMode};
use rand::rngs::StdRng;
use rand::SeedableRng;
use se_privgemb::{NegativeSampling, PerturbStrategy, ProximityKind, SePrivGEmb};
use sp_datasets::generators;
use sp_eval::{normalize_rows, struc_equ, PairSelection};
use sp_graph::Graph;
use sp_proximity::proximity_matrix;
use sp_skipgram::theory;

fn study_graph() -> Graph {
    let mut rng = StdRng::seed_from_u64(11);
    generators::barabasi_albert(400, 4, &mut rng)
}

/// Runs all four ablations.
pub fn run(mode: BenchMode) {
    theorem3_convergence(mode);
    sampling_design(mode);
    norm_artifact(mode);
    naive_sensitivity_scaling(mode);
}

/// Ablation 1: GD on Eq. 13 lands on the closed form, per measure.
fn theorem3_convergence(mode: BenchMode) {
    banner(
        "Ablation 1: Theorem 3 closed form vs direct optimisation",
        mode,
    );
    let g = {
        let mut rng = StdRng::seed_from_u64(5);
        generators::barabasi_albert(60, 3, &mut rng)
    };
    let kinds = [
        ProximityKind::DeepWalk { window: 2 },
        ProximityKind::Ppr {
            alpha: 0.15,
            iters: 6,
        },
        ProximityKind::Katz {
            beta: 0.2,
            max_len: 3,
        },
        ProximityKind::ResourceAllocation,
    ];
    let k = 5;
    let mut rows = Vec::new();
    println!(
        "{:>10}  {:>14}  {:>12}",
        "proximity", "max |gd - x*|", "pairs"
    );
    for kind in kinds {
        let p = proximity_matrix(&g, kind);
        let min_p = match p.min_positive() {
            Some(m) => m,
            None => continue,
        };
        let gd = theory::optimize_objective(&p, k, 6000, 0.4);
        let mut max_err: f64 = 0.0;
        for &(i, j, x) in &gd {
            let x_star = theory::theorem3_optimal(p.get(i, j), k, min_p);
            max_err = max_err.max((x - x_star).abs());
        }
        println!("{:>10}  {:>14.6}  {:>12}", kind.label(), max_err, gd.len());
        rows.push(vec![
            kind.label().to_string(),
            format!("{max_err:.6}"),
            gd.len().to_string(),
        ]);
    }
    write_tsv(
        "ablation1_theorem3",
        &["proximity", "max_err", "pairs"],
        &rows,
    );
}

/// Ablation 2: the paper's sampler aligns embeddings with log p; the
/// degree-proportional sampler distorts them by endpoint degrees.
fn sampling_design(mode: BenchMode) {
    banner(
        "Ablation 2: negative-sampling design (Thm 3 vs Eq. 15)",
        mode,
    );
    let g = study_graph();
    let p = proximity_matrix(&g, ProximityKind::DeepWalk { window: 2 });
    let mut rows = Vec::new();
    println!("{:>22}  {:>12}", "sampler", "corr(x, log p)");
    for (label, sampling) in [
        ("uniform-non-neighbor", NegativeSampling::UniformNonNeighbor),
        ("degree-proportional", NegativeSampling::DegreeProportional),
    ] {
        let result = SePrivGEmb::builder()
            .dim(64)
            .epochs(mode.strucequ_epochs() * 4)
            .learning_rate(0.3)
            .strategy(PerturbStrategy::None)
            .negative_sampling(sampling)
            .proximity(ProximityKind::DeepWalk { window: 2 })
            .seed(77)
            .build()
            .fit(&g);
        let corr = theory::proximity_alignment(&result.model, &p, 50_000).unwrap_or(0.0);
        println!("{label:>22}  {corr:>12.4}");
        rows.push(vec![label.to_string(), format!("{corr:.4}")]);
    }
    write_tsv("ablation2_sampling", &["sampler", "alignment"], &rows);
}

/// Ablation 3: raw vs row-normalised StrucEqu under noise.
fn norm_artifact(mode: BenchMode) {
    banner(
        "Ablation 3: degree-norm artifact (raw vs normalised eval)",
        mode,
    );
    let g = study_graph();
    let mut rows = Vec::new();
    println!(
        "{:>12}  {:>10}  {:>12}  {:>12}",
        "strategy", "epsilon", "raw", "normalised"
    );
    for (label, strategy, eps) in [
        ("non-private", PerturbStrategy::None, 3.5),
        ("non-zero", PerturbStrategy::NonZero, 3.5),
        ("non-zero", PerturbStrategy::NonZero, 1.0),
    ] {
        let result = SePrivGEmb::builder()
            .dim(mode.dim())
            .epochs(mode.strucequ_epochs())
            .strategy(strategy)
            .epsilon(eps)
            .proximity(ProximityKind::DeepWalk { window: 2 })
            .seed(88)
            .build()
            .fit(&g);
        let raw = struc_equ(&g, result.embeddings(), PairSelection::All).unwrap_or(0.0);
        let norm =
            struc_equ(&g, &normalize_rows(result.embeddings()), PairSelection::All).unwrap_or(0.0);
        println!("{label:>12}  {eps:>10}  {raw:>12.4}  {norm:>12.4}");
        rows.push(vec![
            label.to_string(),
            eps.to_string(),
            format!("{raw:.4}"),
            format!("{norm:.4}"),
        ]);
    }
    write_tsv(
        "ablation3_norm_artifact",
        &["strategy", "epsilon", "raw", "normalized"],
        &rows,
    );
}

/// Ablation 4: the naive strategy's utility collapses as B grows
/// (S = B·C), while non-zero is stable.
fn naive_sensitivity_scaling(mode: BenchMode) {
    banner("Ablation 4: sensitivity scaling with batch size", mode);
    let g = study_graph();
    let mut rows = Vec::new();
    println!("{:>6}  {:>14}  {:>14}", "B", "naive", "non-zero");
    for batch in [16usize, 64, 256] {
        let mut cells = Vec::new();
        for strategy in [PerturbStrategy::Naive, PerturbStrategy::NonZero] {
            let result = SePrivGEmb::builder()
                .dim(mode.dim())
                .epochs(mode.strucequ_epochs())
                .batch_size(batch)
                .strategy(strategy)
                .epsilon(3.5)
                .proximity(ProximityKind::Degree)
                .seed(99)
                .build()
                .fit(&g);
            let s = struc_equ(&g, result.embeddings(), PairSelection::All).unwrap_or(0.0);
            cells.push(s);
        }
        println!("{batch:>6}  {:>14.4}  {:>14.4}", cells[0], cells[1]);
        rows.push(vec![
            batch.to_string(),
            format!("{:.4}", cells[0]),
            format!("{:.4}", cells[1]),
        ]);
    }
    write_tsv(
        "ablation4_sensitivity",
        &["batch", "naive", "nonzero"],
        &rows,
    );
}
