//! Fig. 3: structural equivalence vs privacy budget for all eight
//! methods on all six datasets, ε ∈ {0.5, 1, 1.5, 2, 2.5, 3, 3.5}.

use crate::harness::{banner, dataset_graph, fmt_stats, sweep_threads, write_tsv, BenchMode};
use crate::methods::Method;
use se_privgemb::presets::epsilon_grid;
use sp_datasets::PaperDataset;
use sp_eval::{struc_equ, PairSelection};
use sp_linalg::RunningStats;

struct Job {
    method: Method,
    ds: PaperDataset,
    eps: f64,
    rep: usize,
}

/// Runs Fig. 3 (one series per method per dataset).
pub fn run(mode: BenchMode) {
    banner(
        "Fig. 3: impact of privacy budget on structural equivalence",
        mode,
    );
    let reps = mode.reps();
    let datasets = PaperDataset::all();
    let eps_grid = epsilon_grid();

    let prepared: Vec<(PaperDataset, sp_graph::Graph)> = datasets
        .iter()
        .map(|&ds| (ds, dataset_graph(mode, ds, 7)))
        .collect();
    let graph_of = |ds: PaperDataset| -> &sp_graph::Graph {
        &prepared.iter().find(|(d, _)| *d == ds).unwrap().1
    };

    let mut jobs = Vec::new();
    for &(ds, _) in &prepared {
        for method in Method::all() {
            for &eps in &eps_grid {
                for rep in 0..reps {
                    jobs.push(Job {
                        method,
                        ds,
                        eps,
                        rep,
                    });
                }
            }
        }
    }

    let scores = sp_parallel::par_map(&jobs, sweep_threads(jobs.len()), |job| {
        let g = graph_of(job.ds);
        let emb = job.method.embed(
            g,
            mode.dim(),
            job.eps,
            mode.strucequ_epochs(),
            3000 + job.rep as u64,
        );
        struc_equ(
            g,
            &emb,
            PairSelection::Auto {
                seed: job.rep as u64,
            },
        )
        .unwrap_or(0.0)
    });

    let mut tsv_rows = Vec::new();
    let mut cursor = 0usize;
    for &(ds, _) in &prepared {
        println!("\n[{}] StrucEqu by method and epsilon", ds.name());
        print!("{:>16}", "method");
        for eps in &eps_grid {
            print!("  {:>13}", format!("eps={eps}"));
        }
        println!();
        for method in Method::all() {
            print!("{:>16}", method.name());
            for &eps in &eps_grid {
                let mut st = RunningStats::new();
                for _ in 0..reps {
                    st.push(scores[cursor]);
                    cursor += 1;
                }
                print!("  {:>13}", fmt_stats(&st));
                tsv_rows.push(vec![
                    ds.name().to_string(),
                    method.name().to_string(),
                    eps.to_string(),
                    format!("{:.4}", st.mean()),
                    format!("{:.4}", st.std_dev()),
                ]);
            }
            println!();
        }
    }
    write_tsv(
        "fig3_strucequ",
        &[
            "dataset",
            "method",
            "epsilon",
            "strucequ_mean",
            "strucequ_sd",
        ],
        &tsv_rows,
    );
}
