//! One module per paper artefact. Every `run` function prints the
//! paper-style rows and mirrors them to TSV (see `results/`).

pub mod ablation;
pub mod fig3;
pub mod fig4;
pub mod param_tables;
pub mod table6;
