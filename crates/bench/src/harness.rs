//! Run-mode handling, dataset provisioning, and TSV output.
//!
//! Parallel experiment sweeps run on the shared [`sp_parallel`]
//! worker-pool crate (this module's original `parallel_map` was
//! generalised into it); see [`sweep_threads`] for how the sweeps pick
//! their thread count.
//!
//! Every experiment bin accepts `--data-dir <dir>` (or `SP_DATA_DIR`):
//! when set, [`dataset_graph`] loads the real SNAP/KONECT edge lists
//! from that directory via [`PaperDataset::resolve`] and only falls
//! back to the synthetic stand-ins for datasets that are not present.
//! Without it, behaviour is bit-identical to the synthetic-only runs.

use sp_datasets::PaperDataset;
use sp_graph::Graph;
use sp_linalg::RunningStats;
use std::io::Write;
use std::path::PathBuf;

/// Quick (default) vs full (paper-scale) execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BenchMode {
    /// Scaled stand-ins, few repetitions: minutes on a laptop.
    Quick,
    /// Published sizes, paper epochs, 10 repetitions: hours.
    Full,
}

impl BenchMode {
    /// Resolves the mode from CLI args (`--full`) or `SP_BENCH_FULL`.
    pub fn from_env() -> Self {
        let full_flag = std::env::args().any(|a| a == "--full");
        let full_env = std::env::var("SP_BENCH_FULL")
            .map(|v| v == "1")
            .unwrap_or(false);
        if full_flag || full_env {
            BenchMode::Full
        } else {
            BenchMode::Quick
        }
    }

    /// Repetitions per configuration (paper: 10). Overridable with
    /// `SP_REPS`.
    pub fn reps(&self) -> usize {
        if let Ok(v) = std::env::var("SP_REPS") {
            if let Ok(n) = v.parse::<usize>() {
                return n.max(1);
            }
        }
        match self {
            BenchMode::Quick => 2,
            BenchMode::Full => 10,
        }
    }

    /// Dataset scale factor for a given dataset (1.0 = published size).
    pub fn scale(&self, ds: PaperDataset) -> f64 {
        match self {
            BenchMode::Full => match ds {
                // Even in full mode DBLP (2.2M nodes) is scaled to 10%:
                // the full graph is supported but takes hours per run.
                PaperDataset::Dblp => 0.1,
                _ => 1.0,
            },
            BenchMode::Quick => match ds {
                PaperDataset::Chameleon => 0.15,
                PaperDataset::Ppi => 0.10,
                PaperDataset::Power => 0.12,
                PaperDataset::Arxiv => 0.12,
                PaperDataset::BlogCatalog => 0.05,
                PaperDataset::Dblp => 0.002,
            },
        }
    }

    /// Training epochs for the structural-equivalence task
    /// (paper: 200).
    pub fn strucequ_epochs(&self) -> usize {
        match self {
            BenchMode::Quick => 60,
            BenchMode::Full => 200,
        }
    }

    /// Training epochs for link prediction (paper: 2000).
    pub fn linkpred_epochs(&self) -> usize {
        match self {
            BenchMode::Quick => 150,
            BenchMode::Full => 2000,
        }
    }

    /// Embedding dimension (paper: 128).
    pub fn dim(&self) -> usize {
        match self {
            BenchMode::Quick => 64,
            BenchMode::Full => 128,
        }
    }

    /// Human label.
    pub fn label(&self) -> &'static str {
        match self {
            BenchMode::Quick => "quick",
            BenchMode::Full => "full",
        }
    }
}

/// Directory holding real dataset files, from `--data-dir <dir>` on
/// the command line or the `SP_DATA_DIR` environment variable (the
/// flag wins).
pub fn data_dir() -> Option<PathBuf> {
    let argv: Vec<String> = std::env::args().collect();
    if let Some(i) = argv.iter().position(|a| a == "--data-dir") {
        if let Some(dir) = argv.get(i + 1) {
            return Some(PathBuf::from(dir));
        }
    }
    std::env::var_os("SP_DATA_DIR").map(PathBuf::from)
}

/// Provisions the graph for `ds` under this mode: the real edge list
/// when [`data_dir`] is configured and holds one, the synthetic
/// stand-in (scaled per mode) otherwise.
pub fn dataset_graph(mode: BenchMode, ds: PaperDataset, seed: u64) -> Graph {
    dataset_graph_from(data_dir().as_deref(), mode, ds, seed)
}

/// [`dataset_graph`] with an explicit data directory instead of the
/// process-wide flag/env lookup (`None` = always synthetic).
pub fn dataset_graph_from(
    dir: Option<&std::path::Path>,
    mode: BenchMode,
    ds: PaperDataset,
    seed: u64,
) -> Graph {
    ds.resolve(dir, mode.scale(ds), seed)
}

/// `mean ± sd` formatting used in every table row (paper style:
/// 4 decimals).
pub fn fmt_stats(s: &RunningStats) -> String {
    format!("{:.4}±{:.4}", s.mean(), s.std_dev())
}

/// Thread count for experiment sweeps: `SP_THREADS` wins, then the
/// available parallelism, capped at the sweep's config count (each
/// config is an independent training run, so more workers than configs
/// buys nothing).
pub fn sweep_threads(num_configs: usize) -> usize {
    sp_parallel::resolve_threads(None).min(num_configs.max(1))
}

/// Directory where TSV mirrors of the tables land.
pub fn results_dir() -> PathBuf {
    let base = std::env::var("SP_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("results"));
    std::fs::create_dir_all(&base).ok();
    base
}

/// Writes header + rows as TSV into `results/<name>.tsv`.
pub fn write_tsv(name: &str, header: &[&str], rows: &[Vec<String>]) {
    let path = results_dir().join(format!("{name}.tsv"));
    let mut out = match std::fs::File::create(&path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("warning: cannot write {}: {e}", path.display());
            return;
        }
    };
    let _ = writeln!(out, "{}", header.join("\t"));
    for row in rows {
        let _ = writeln!(out, "{}", row.join("\t"));
    }
    println!("[tsv] {}", path.display());
}

/// Prints a section banner.
pub fn banner(title: &str, mode: BenchMode) {
    println!();
    println!("=== {title} [{} mode] ===", mode.label());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_threads_is_capped_by_configs() {
        assert_eq!(sweep_threads(1), 1);
        assert!(sweep_threads(64) >= 1);
        // Zero configs still yields a valid pool size.
        assert_eq!(sweep_threads(0), 1);
    }

    #[test]
    fn quick_mode_scales_are_small() {
        for ds in PaperDataset::all() {
            let s = BenchMode::Quick.scale(ds);
            assert!(s > 0.0 && s <= 0.2, "{:?} scale {s}", ds);
        }
    }

    #[test]
    fn fmt_stats_shape() {
        let mut s = RunningStats::new();
        s.push(0.5);
        s.push(0.7);
        let txt = fmt_stats(&s);
        assert!(txt.starts_with("0.6000±"), "{txt}");
    }

    #[test]
    fn dataset_graph_is_deterministic() {
        let a = dataset_graph(BenchMode::Quick, PaperDataset::Power, 3);
        let b = dataset_graph(BenchMode::Quick, PaperDataset::Power, 3);
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn dataset_graph_loads_real_file_from_data_dir() {
        // Exercises the same path `--data-dir`/`SP_DATA_DIR` feeds into
        // dataset_graph, without mutating the process environment
        // (setenv races the other tests on this multithreaded harness).
        let dir = std::env::temp_dir().join(format!("sp_bench_data_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("blogcatalog.txt"), "1 2\n2 3\n3 1\n4 1\n").unwrap();
        let g = dataset_graph_from(Some(&dir), BenchMode::Quick, PaperDataset::BlogCatalog, 3);
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        // And without a directory it is the synthetic stand-in.
        let synth = dataset_graph_from(None, BenchMode::Quick, PaperDataset::BlogCatalog, 3);
        assert_eq!(
            synth.edges(),
            PaperDataset::BlogCatalog
                .generate(BenchMode::Quick.scale(PaperDataset::BlogCatalog), 3)
                .edges()
        );
    }
}
