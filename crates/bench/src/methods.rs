//! Unified runner for the eight compared methods of Figs. 3–4.

use se_privgemb::{PerturbStrategy, ProximityKind, SePrivGEmb};
use sp_baselines::{BaselineConfig, DpgGan, DpgVae, Embedder, Gap, ProGap};
use sp_graph::Graph;
use sp_linalg::DenseMatrix;

/// The eight methods of the paper's comparison, in legend order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// DPGGAN (Yang et al., IJCAI'21).
    DpgGan,
    /// DPGVAE (Yang et al., IJCAI'21).
    DpgVae,
    /// GAP (Sajadmanesh et al., USENIX Sec'23).
    Gap,
    /// ProGAP (Sajadmanesh & Gatica-Perez, WSDM'24).
    ProGap,
    /// Non-private skip-gram with DeepWalk proximity.
    SeGembDw,
    /// SE-PrivGEmb with DeepWalk proximity (this paper).
    SePrivGembDw,
    /// Non-private skip-gram with degree proximity.
    SeGembDeg,
    /// SE-PrivGEmb with degree proximity (this paper).
    SePrivGembDeg,
}

impl Method {
    /// All eight, in the paper's legend order.
    pub fn all() -> [Method; 8] {
        [
            Method::DpgGan,
            Method::DpgVae,
            Method::Gap,
            Method::ProGap,
            Method::SeGembDw,
            Method::SePrivGembDw,
            Method::SeGembDeg,
            Method::SePrivGembDeg,
        ]
    }

    /// Display name matching the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            Method::DpgGan => "DPGGAN",
            Method::DpgVae => "DPGVAE",
            Method::Gap => "GAP",
            Method::ProGap => "ProGAP",
            Method::SeGembDw => "SE-GEmbDW",
            Method::SePrivGembDw => "SE-PrivGEmbDW",
            Method::SeGembDeg => "SE-GEmbDeg",
            Method::SePrivGembDeg => "SE-PrivGEmbDeg",
        }
    }

    /// Whether the method consumes the privacy budget (the two
    /// SE-GEmb references are non-private upper bounds).
    pub fn is_private(&self) -> bool {
        !matches!(self, Method::SeGembDw | Method::SeGembDeg)
    }

    /// Runs the method and returns the `|V| × dim` embeddings.
    ///
    /// `epochs` is the task-dependent training length (200-equivalent
    /// for StrucEqu, 2000-equivalent for link prediction); `epsilon`
    /// is ignored by the non-private methods.
    pub fn embed(
        &self,
        g: &Graph,
        dim: usize,
        epsilon: f64,
        epochs: usize,
        seed: u64,
    ) -> DenseMatrix {
        match self {
            Method::DpgGan => {
                let cfg = baseline_cfg(dim, epsilon, epochs, seed);
                DpgGan::new(cfg).embed(g).0
            }
            Method::DpgVae => {
                let cfg = baseline_cfg(dim, epsilon, epochs, seed);
                DpgVae::new(cfg).embed(g).0
            }
            Method::Gap => {
                let cfg = baseline_cfg(dim, epsilon, epochs, seed);
                Gap::new(cfg).embed(g).0
            }
            Method::ProGap => {
                let cfg = baseline_cfg(dim, epsilon, epochs, seed);
                ProGap::new(cfg).embed(g).0
            }
            Method::SeGembDw => se_privgemb_embed(
                g,
                dim,
                epsilon,
                epochs,
                seed,
                ProximityKind::deepwalk_default(),
                PerturbStrategy::None,
            ),
            Method::SePrivGembDw => se_privgemb_embed(
                g,
                dim,
                epsilon,
                epochs,
                seed,
                ProximityKind::deepwalk_default(),
                PerturbStrategy::NonZero,
            ),
            Method::SeGembDeg => se_privgemb_embed(
                g,
                dim,
                epsilon,
                epochs,
                seed,
                ProximityKind::Degree,
                PerturbStrategy::None,
            ),
            Method::SePrivGembDeg => se_privgemb_embed(
                g,
                dim,
                epsilon,
                epochs,
                seed,
                ProximityKind::Degree,
                PerturbStrategy::NonZero,
            ),
        }
    }
}

fn baseline_cfg(dim: usize, epsilon: f64, epochs: usize, seed: u64) -> BaselineConfig {
    BaselineConfig {
        dim,
        epsilon,
        // The deep baselines use a shorter epoch budget: their steps
        // are full passes over |E| pairs, matching SE-PrivGEmb's total
        // example count at 1/6 the epoch count.
        epochs: (epochs / 6).max(3),
        seed,
        ..BaselineConfig::default()
    }
}

fn se_privgemb_embed(
    g: &Graph,
    dim: usize,
    epsilon: f64,
    epochs: usize,
    seed: u64,
    prox: ProximityKind,
    strategy: PerturbStrategy,
) -> DenseMatrix {
    SePrivGEmb::builder()
        .dim(dim)
        .proximity(prox)
        .strategy(strategy)
        .epsilon(epsilon)
        .epochs(epochs)
        .seed(seed)
        // The experiment sweeps already parallelise across configs
        // (harness::sweep_threads); nesting a full-width pool inside
        // each job would oversubscribe the machine.
        .threads(1)
        .build()
        .fit(g)
        .embeddings()
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sp_datasets::generators;

    #[test]
    fn all_methods_produce_embeddings() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = generators::barabasi_albert(60, 3, &mut rng);
        for m in Method::all() {
            let emb = m.embed(&g, 8, 1.0, 6, 1);
            assert_eq!(emb.rows(), 60, "{}", m.name());
            assert_eq!(emb.cols(), 8, "{}", m.name());
            assert!(
                emb.as_slice().iter().all(|v| v.is_finite()),
                "{} produced non-finite embeddings",
                m.name()
            );
        }
    }

    #[test]
    fn names_match_paper_legend() {
        let names: Vec<_> = Method::all().iter().map(|m| m.name()).collect();
        assert_eq!(
            names,
            vec![
                "DPGGAN",
                "DPGVAE",
                "GAP",
                "ProGAP",
                "SE-GEmbDW",
                "SE-PrivGEmbDW",
                "SE-GEmbDeg",
                "SE-PrivGEmbDeg"
            ]
        );
    }

    #[test]
    fn privacy_flags() {
        assert!(!Method::SeGembDw.is_private());
        assert!(!Method::SeGembDeg.is_private());
        for m in [
            Method::DpgGan,
            Method::DpgVae,
            Method::Gap,
            Method::ProGap,
            Method::SePrivGembDw,
            Method::SePrivGembDeg,
        ] {
            assert!(m.is_private(), "{}", m.name());
        }
    }
}
