//! Kernel-bench bookkeeping: the `kernels.tsv` schema, median helper,
//! and the regression-gate comparison shared by `sp_kernel_bench` and
//! the CI `bench-gate` job.
//!
//! The TSV is the gate's interface: CI re-runs the bench into a fresh
//! directory and diffs the new per-kernel medians against the
//! committed baseline at `crates/bench/results/kernels.tsv`. Only
//! `variant == "lanes"` rows (the shipping kernels) gate the build;
//! `scalar` rows are reference points for the speedup column and for
//! humans reading the artefact.

/// One measured kernel configuration, i.e. one TSV row.
#[derive(Clone, Debug, PartialEq)]
pub struct KernelRow {
    /// Kernel name (`dot_f64`, `axpy_f64`, `clip_norm_f64`,
    /// `dot_f32`, `dist2_sq_f32`).
    pub kernel: String,
    /// `scalar` (reference loop) or `lanes` (shipping kernel).
    pub variant: String,
    /// Vector length the kernel was measured at.
    pub dim: usize,
    /// Median nanoseconds per kernel call across all repetitions.
    pub median_ns: f64,
}

impl KernelRow {
    /// Identity of the measurement: medians are only comparable
    /// between rows with equal keys.
    pub fn key(&self) -> (String, String, usize) {
        (self.kernel.clone(), self.variant.clone(), self.dim)
    }
}

/// Column order of `kernels.tsv`.
pub const TSV_HEADER: [&str; 4] = ["kernel", "variant", "dim", "median_ns"];

/// Median of a sample set (midpoint average for even counts).
/// Panics on an empty slice — a bench that produced no samples is a
/// harness bug, not a measurement.
pub fn median_ns(samples: &mut [f64]) -> f64 {
    assert!(!samples.is_empty(), "median_ns: no samples");
    samples.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
    let n = samples.len();
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        0.5 * (samples[n / 2 - 1] + samples[n / 2])
    }
}

/// Parses `kernels.tsv` text (header + rows) back into rows.
/// Unknown extra columns are rejected so that a schema change cannot
/// silently disarm the gate.
pub fn parse_tsv(text: &str) -> Result<Vec<KernelRow>, String> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or("empty kernels.tsv")?;
    let cols: Vec<&str> = header.split('\t').collect();
    if cols != TSV_HEADER {
        return Err(format!(
            "kernels.tsv header mismatch: expected {:?}, got {cols:?}",
            TSV_HEADER
        ));
    }
    let mut rows = Vec::new();
    for (i, line) in lines.enumerate() {
        let f: Vec<&str> = line.split('\t').collect();
        if f.len() != TSV_HEADER.len() {
            return Err(format!(
                "row {}: expected {} fields, got {}",
                i + 2,
                TSV_HEADER.len(),
                f.len()
            ));
        }
        rows.push(KernelRow {
            kernel: f[0].to_string(),
            variant: f[1].to_string(),
            dim: f[2]
                .parse()
                .map_err(|e| format!("row {}: bad dim: {e}", i + 2))?,
            median_ns: f[3]
                .parse()
                .map_err(|e| format!("row {}: bad median_ns: {e}", i + 2))?,
        });
    }
    Ok(rows)
}

/// Outcome of a baseline-vs-fresh comparison.
#[derive(Debug, Default)]
pub struct GateOutcome {
    /// Gated rows compared (baseline `lanes` rows found in fresh).
    pub compared: usize,
    /// Human-readable regression lines, one per failing kernel.
    pub regressions: Vec<String>,
    /// Baseline `lanes` rows with no fresh counterpart — a removed
    /// kernel also fails the gate (it cannot be "not slower").
    pub missing: Vec<String>,
}

impl GateOutcome {
    /// True when every gated kernel is within tolerance and none
    /// disappeared.
    pub fn pass(&self) -> bool {
        self.regressions.is_empty() && self.missing.is_empty()
    }
}

/// Compares fresh medians against the committed baseline.
///
/// A `lanes` row regresses when
/// `fresh > baseline * (1 + tolerance)`; `tolerance` is fractional
/// (0.15 = the 15% gate). Fresh-only rows (a newly added kernel) are
/// fine: they become gated once the baseline is re-committed.
pub fn compare(baseline: &[KernelRow], fresh: &[KernelRow], tolerance: f64) -> GateOutcome {
    let mut out = GateOutcome::default();
    for b in baseline.iter().filter(|r| r.variant == "lanes") {
        let Some(f) = fresh.iter().find(|r| r.key() == b.key()) else {
            out.missing
                .push(format!("{} dim={} missing from fresh run", b.kernel, b.dim));
            continue;
        };
        out.compared += 1;
        let limit = b.median_ns * (1.0 + tolerance);
        if f.median_ns > limit {
            out.regressions.push(format!(
                "{} dim={}: {:.1} ns vs baseline {:.1} ns (+{:.0}%, limit +{:.0}%)",
                b.kernel,
                b.dim,
                f.median_ns,
                b.median_ns,
                100.0 * (f.median_ns / b.median_ns - 1.0),
                100.0 * tolerance,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(kernel: &str, variant: &str, dim: usize, median_ns: f64) -> KernelRow {
        KernelRow {
            kernel: kernel.into(),
            variant: variant.into(),
            dim,
            median_ns,
        }
    }

    #[test]
    fn median_handles_odd_even_and_unsorted() {
        assert_eq!(median_ns(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median_ns(&mut [4.0, 1.0, 3.0, 2.0]), 2.5);
        assert_eq!(median_ns(&mut [7.0]), 7.0);
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn median_rejects_empty() {
        median_ns(&mut []);
    }

    #[test]
    fn tsv_round_trips() {
        let rows = vec![
            row("dot_f64", "lanes", 128, 41.5),
            row("dot_f64", "scalar", 128, 103.0),
        ];
        let mut text = TSV_HEADER.join("\t") + "\n";
        for r in &rows {
            text += &format!("{}\t{}\t{}\t{}\n", r.kernel, r.variant, r.dim, r.median_ns);
        }
        assert_eq!(parse_tsv(&text).unwrap(), rows);
    }

    #[test]
    fn tsv_rejects_wrong_header_and_short_rows() {
        assert!(parse_tsv("").is_err());
        assert!(parse_tsv("a\tb\tc\td\n").is_err());
        let bad = TSV_HEADER.join("\t") + "\ndot_f64\tlanes\t128\n";
        assert!(parse_tsv(&bad).is_err());
    }

    #[test]
    fn gate_passes_within_tolerance_and_ignores_scalar_rows() {
        let base = vec![
            row("dot_f64", "lanes", 128, 100.0),
            row("dot_f64", "scalar", 128, 100.0),
        ];
        // lanes within 15%; scalar wildly slower but ungated.
        let fresh = vec![
            row("dot_f64", "lanes", 128, 114.0),
            row("dot_f64", "scalar", 128, 900.0),
        ];
        let out = compare(&base, &fresh, 0.15);
        assert!(out.pass(), "{out:?}");
        assert_eq!(out.compared, 1);
    }

    #[test]
    fn gate_fails_beyond_tolerance() {
        let base = vec![row("dot_f64", "lanes", 128, 100.0)];
        let fresh = vec![row("dot_f64", "lanes", 128, 116.0)];
        let out = compare(&base, &fresh, 0.15);
        assert!(!out.pass());
        assert_eq!(out.regressions.len(), 1);
        assert!(out.regressions[0].contains("dot_f64"));
    }

    #[test]
    fn gate_fails_when_a_gated_kernel_disappears() {
        let base = vec![row("dot_f64", "lanes", 128, 100.0)];
        let out = compare(&base, &[], 0.15);
        assert!(!out.pass());
        assert_eq!(out.missing.len(), 1);
    }

    #[test]
    fn fresh_only_kernels_do_not_gate_until_baselined() {
        let fresh = vec![row("new_kernel", "lanes", 64, 10.0)];
        let out = compare(&[], &fresh, 0.15);
        assert!(out.pass());
        assert_eq!(out.compared, 0);
    }
}
