//! Reproduces Fig. 4: link-prediction AUC vs privacy budget, 8 methods x 3 datasets.
//! Runs on real graphs when `--data-dir <dir>` (or `SP_DATA_DIR`) points
//! at downloaded SNAP/KONECT edge lists; synthetic stand-ins otherwise.
use sp_bench::experiments::fig4;
use sp_bench::harness::BenchMode;

fn main() {
    fig4::run(BenchMode::from_env());
}
