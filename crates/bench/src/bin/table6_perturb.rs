//! Reproduces Table VI: naive vs non-zero perturbation strategies.
use sp_bench::experiments::table6;
use sp_bench::harness::BenchMode;

fn main() {
    table6::run(BenchMode::from_env());
}
