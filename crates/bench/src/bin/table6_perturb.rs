//! Reproduces Table VI: naive vs non-zero perturbation strategies.
//! Runs on real graphs when `--data-dir <dir>` (or `SP_DATA_DIR`) points
//! at downloaded SNAP/KONECT edge lists; synthetic stand-ins otherwise.
use sp_bench::experiments::table6;
use sp_bench::harness::BenchMode;

fn main() {
    table6::run(BenchMode::from_env());
}
