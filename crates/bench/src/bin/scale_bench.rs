//! Out-of-core pipeline scale bench + CI memory-regression gate.
//!
//! Drives the blocked/streaming execution path end to end on a
//! synthetic bounded-degree graph: streamed CSR ingestion
//! ([`StreamingCsr`]), row-banded proximity
//! ([`EdgeProximity::compute_blocked`]), a chunked two-pass
//! [`AliasTableBuilder`] over the edge weights (the Alg. 1
//! structure-preference sampling table, built without holding P), and
//! the edge-sharded trainer (`subgraph_shard_edges`) with a per-shard
//! RDP accountant composition check. Every resident and transient
//! buffer is byte-accounted through one [`MemTracker`] — the
//! "self-tracked peak RSS" reported here, chosen over `/proc` because
//! the container makes no `/proc` guarantees and byte accounting is
//! deterministic enough to gate in CI.
//!
//! Modes:
//! - `--smoke` (CI): a small graph; additionally runs the materialised
//!   path and **asserts bit-identity** (proximity weights, trained
//!   embeddings, alias buckets, accountant state) plus the RSS budget,
//!   exiting non-zero on any violation.
//! - default (full): a 1.25M-node graph under a 4 GB budget the
//!   materialised path provably cannot meet (its P matrix alone is
//!   ~12 GB); the materialised side is a len-based byte estimate, not
//!   an allocation.
//!
//! Flags / env:
//! - `--out <path>`: JSON summary path (default `BENCH_scale.json`).
//! - `--baseline <tsv>`: gate the deterministic byte metrics against
//!   this committed baseline (`crates/bench/results/scale.tsv`).
//! - `--budget-bytes <n>`: RSS budget (default 64 MiB smoke, 4 GiB
//!   full).
//! - `--band-rows <n>` / `--shard-edges <n>`: blocked-path granularity.
//! - `SP_BENCH_GATE_TOLERANCE`: fractional gate tolerance
//!   (default `0.15`).
//! - `SP_RESULTS_DIR`: where `scale.tsv` lands.

use sp_bench::harness::write_tsv;
use sp_bench::scale::{
    compare_scale, parse_scale_tsv, ScaleGateOutcome, ScaleRow, SCALE_TSV_HEADER,
};
use sp_dp::RdpAccountant;
use sp_graph::{Graph, StreamingCsr};
use sp_mem::MemTracker;
use sp_proximity::band::WedgeBander;
use sp_proximity::{EdgeProximity, ProximityKind};
use sp_skipgram::{
    AliasTable, AliasTableBuilder, NegativeSampling, PerturbStrategy, Subgraph, TrainConfig,
    Trainer,
};
use std::io::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Chunk height (weights per pass) of the streamed alias build.
const ALIAS_CHUNK: usize = 65_536;
/// Shards of the per-shard RDP composition demonstration.
const RDP_SHARDS: usize = 8;

/// One scale-bench scenario.
struct Scenario {
    label: &'static str,
    nodes: usize,
    /// Chord strides per node on top of the ring (degree ≈ 2·(1+chords)).
    chords: usize,
    dim: usize,
    batch_size: usize,
    band_rows: usize,
    shard_edges: usize,
    budget_bytes: u64,
    /// Run the materialised path too and assert bit-identity.
    verify_materialised: bool,
}

impl Scenario {
    fn smoke() -> Self {
        Self {
            label: "smoke",
            nodes: 60_000,
            chords: 7,
            dim: 8,
            batch_size: 128,
            band_rows: 1024,
            shard_edges: 4096,
            budget_bytes: 64 << 20,
            verify_materialised: true,
        }
    }

    fn full() -> Self {
        Self {
            label: "full",
            nodes: 1_250_000,
            chords: 15,
            dim: 16,
            batch_size: 256,
            band_rows: 4096,
            shard_edges: 1 << 20,
            budget_bytes: 4 << 30,
            verify_materialised: false,
        }
    }

    fn train_config(&self, shard: Option<usize>) -> TrainConfig {
        TrainConfig {
            dim: self.dim,
            negatives: 3,
            batch_size: self.batch_size,
            learning_rate: 0.1,
            clip: 1.0,
            sigma: 5.0,
            epsilon: 2.0,
            delta: 1e-5,
            epochs: 1,
            strategy: PerturbStrategy::NonZero,
            negative_sampling: NegativeSampling::DegreeProportional,
            seed: 0x5CA1E,
            threads: None,
            subgraph_shard_edges: shard,
            checkpoint_every: None,
            checkpoint_dir: None,
        }
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let mut sc = if argv.iter().any(|a| a == "--smoke") {
        Scenario::smoke()
    } else {
        Scenario::full()
    };
    if let Some(v) = flag_value(&argv, "--budget-bytes") {
        sc.budget_bytes = v.parse().expect("--budget-bytes: not a byte count");
    }
    if let Some(v) = flag_value(&argv, "--band-rows") {
        sc.band_rows = v.parse().expect("--band-rows: not a row count");
    }
    if let Some(v) = flag_value(&argv, "--shard-edges") {
        sc.shard_edges = v.parse().expect("--shard-edges: not an edge count");
    }
    let out_path = flag_value(&argv, "--out").unwrap_or_else(|| "BENCH_scale.json".to_string());
    let baseline_path = flag_value(&argv, "--baseline");
    let tolerance = std::env::var("SP_BENCH_GATE_TOLERANCE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.15);

    println!(
        "=== sp_scale_bench [{}]: {} nodes, budget {} MiB, band_rows={}, shard_edges={} ===",
        sc.label,
        sc.nodes,
        sc.budget_bytes >> 20,
        sc.band_rows,
        sc.shard_edges
    );

    let mut failures: Vec<String> = Vec::new();
    let tracker = MemTracker::shared();
    let t_start = Instant::now();

    // --- 1. Streamed ingestion: edges arrive one at a time. ---
    let t0 = Instant::now();
    let g = synthetic_graph(sc.nodes, sc.chords, Some(Arc::clone(&tracker)));
    let ingest_ms = t0.elapsed().as_millis();
    let graph_bytes = g.heap_bytes();
    println!(
        "[ingest] {} nodes, {} edges, {:.1} MiB resident, {} ms",
        g.num_nodes(),
        g.num_edges(),
        mib(graph_bytes),
        ingest_ms
    );

    // --- 2. Materialised-path size (len-based, no allocation). ---
    let t0 = Instant::now();
    let (p_nnz, band_peak_bytes) = banded_nnz(&g, sc.band_rows);
    let materialized_p_bytes = (p_nnz * (8 + 4) + (g.num_nodes() + 1) * 8) as u64;
    let materialized_gs_bytes = (g.num_edges() * (std::mem::size_of::<Subgraph>() + 3 * 4)) as u64;
    println!(
        "[estimate] P nnz {} -> materialised P {:.1} MiB, G_S {:.1} MiB ({} ms)",
        p_nnz,
        mib(materialized_p_bytes),
        mib(materialized_gs_bytes),
        t0.elapsed().as_millis()
    );

    // --- 3. Row-banded proximity under the tracker. ---
    let t0 = Instant::now();
    tracker.add((g.num_edges() * 8) as u64); // the weights vector
    let prox = EdgeProximity::compute_blocked(
        &g,
        ProximityKind::CommonNeighbors,
        sc.band_rows,
        None,
        Some(&tracker),
    );
    let proximity_ms = t0.elapsed().as_millis();
    let weights_bytes = (prox.len() * 8) as u64;
    println!(
        "[proximity] {} edge weights in {} ms (bands of {} rows)",
        prox.len(),
        proximity_ms,
        sc.band_rows
    );

    // --- 4. Streamed alias table over the edge weights (Alg. 1's
    //        structure-preference sampling table, built band-wise). ---
    let t0 = Instant::now();
    let mut builder = AliasTableBuilder::new();
    for chunk in prox.weights.chunks(ALIAS_CHUNK) {
        builder.push_mass(chunk);
    }
    for chunk in prox.weights.chunks(ALIAS_CHUNK) {
        builder.push_fill(chunk);
    }
    let alias = builder.finish();
    let alias_bytes = (alias.len() * (8 + 4)) as u64;
    tracker.add(alias_bytes);
    let alias_ms = t0.elapsed().as_millis();
    println!(
        "[alias] {} outcomes in {} ms, {:.1} MiB",
        alias.len(),
        alias_ms,
        mib(alias_bytes)
    );

    // --- 5. Edge-sharded training (on-demand subgraph regeneration). ---
    let t0 = Instant::now();
    let trainer_resident_bytes = (4 * g.num_nodes() * sc.dim * 8 + 2 * g.num_nodes()) as u64;
    tracker.add(trainer_resident_bytes);
    let cfg = sc.train_config(Some(sc.shard_edges));
    let (model, report) = Trainer::new(cfg.clone()).train(&g, &prox);
    let train_ms = t0.elapsed().as_millis();
    println!(
        "[train] {} steps, {} epochs, eps {:.4}, {} ms",
        report.steps_run, report.epochs_run, report.epsilon_spent, train_ms
    );

    let blocked_peak_bytes = tracker.peak();
    let wall_ns = t_start.elapsed().as_nanos() as u64;
    let bytes_per_edge = blocked_peak_bytes as f64 / g.num_edges() as f64;
    let materialized_peak_bytes = blocked_peak_bytes + materialized_p_bytes + materialized_gs_bytes;
    println!(
        "[rss] blocked peak {:.1} MiB ({:.1} bytes/edge); materialised path needs \
         >= {:.1} MiB; budget {:.1} MiB",
        mib(blocked_peak_bytes),
        bytes_per_edge,
        mib(materialized_peak_bytes),
        mib(sc.budget_bytes)
    );

    // --- 6. Budget assertions. ---
    if blocked_peak_bytes > sc.budget_bytes {
        failures.push(format!(
            "blocked peak {} bytes exceeds the {} byte budget",
            blocked_peak_bytes, sc.budget_bytes
        ));
    }
    if materialized_peak_bytes <= sc.budget_bytes {
        failures.push(format!(
            "materialised estimate {} bytes fits the {} byte budget — the scenario \
             no longer demonstrates the out-of-core path",
            materialized_peak_bytes, sc.budget_bytes
        ));
    }

    // --- 7. Per-shard RDP accountant composition. ---
    let gamma = (cfg.batch_size.min(g.num_edges()) as f64 / g.num_edges() as f64).min(1.0);
    let (eps_mono, eps_sharded) = sharded_epsilon(gamma, cfg.sigma, cfg.delta, report.steps_run);
    println!(
        "[rdp] monolithic eps {:.9} vs {}-shard composed eps {:.9}",
        eps_mono, RDP_SHARDS, eps_sharded
    );
    if (eps_mono - eps_sharded).abs() > 1e-9 {
        failures.push(format!(
            "sharded RDP composition diverged: {eps_mono} vs {eps_sharded}"
        ));
    }

    // --- 8. Smoke: the materialised path, bit-for-bit. ---
    let mut identity_checked = false;
    if sc.verify_materialised {
        identity_checked = true;
        let t0 = Instant::now();
        let mat_prox = EdgeProximity::compute_threads(&g, ProximityKind::CommonNeighbors, None);
        if !bits_equal(&mat_prox.weights, &prox.weights)
            || mat_prox.min_positive.to_bits() != prox.min_positive.to_bits()
        {
            failures.push("blocked proximity diverged from materialised".to_string());
        }
        let mat_alias = AliasTable::new(&prox.weights);
        if mat_alias.buckets().0 != alias.buckets().0 || mat_alias.buckets().1 != alias.buckets().1
        {
            failures.push("streamed alias table diverged from materialised".to_string());
        }
        let (mat_model, mat_report) = Trainer::new(sc.train_config(None)).train(&g, &prox);
        if !bits_equal(mat_model.w_in.as_slice(), model.w_in.as_slice())
            || !bits_equal(mat_model.w_out.as_slice(), model.w_out.as_slice())
            || mat_report.steps_run != report.steps_run
            || mat_report.epsilon_spent.to_bits() != report.epsilon_spent.to_bits()
        {
            failures.push("sharded training diverged from materialised".to_string());
        }
        println!(
            "[identity] materialised path re-run in {} ms: {}",
            t0.elapsed().as_millis(),
            if failures.is_empty() {
                "bit-identical"
            } else {
                "DIVERGED"
            }
        );
    }

    // --- 9. Artefacts: scale.tsv + BENCH_scale.json. ---
    let rows = vec![
        count_row("nodes", g.num_nodes()),
        count_row("edges", g.num_edges()),
        count_row("p_nnz", p_nnz),
        bytes_row("graph_bytes", graph_bytes),
        bytes_row("weights_bytes", weights_bytes),
        bytes_row("alias_bytes", alias_bytes),
        bytes_row("trainer_resident_bytes", trainer_resident_bytes),
        bytes_row("band_peak_bytes", band_peak_bytes),
        bytes_row("blocked_peak_bytes", blocked_peak_bytes),
        ScaleRow {
            metric: "bytes_per_edge".to_string(),
            unit: "bytes".to_string(),
            value: bytes_per_edge,
        },
        bytes_row("materialized_p_bytes", materialized_p_bytes),
        bytes_row("materialized_gs_bytes", materialized_gs_bytes),
        bytes_row("materialized_peak_bytes", materialized_peak_bytes),
        ScaleRow {
            metric: "wall_ns".to_string(),
            unit: "ns".to_string(),
            value: wall_ns as f64,
        },
    ];
    let tsv_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.metric.clone(), r.unit.clone(), format!("{}", r.value)])
        .collect();
    write_tsv("scale", &SCALE_TSV_HEADER, &tsv_rows);
    write_json(
        &out_path,
        &sc,
        &rows,
        &report,
        eps_mono,
        eps_sharded,
        identity_checked,
        failures.is_empty(),
    );

    // --- 10. Gate against the committed baseline. ---
    if let Some(path) = baseline_path {
        match std::fs::read_to_string(&path).map_err(|e| e.to_string()) {
            Ok(text) => match parse_scale_tsv(&text) {
                Ok(baseline) => {
                    let outcome = compare_scale(&baseline, &rows, tolerance);
                    report_gate(&outcome, tolerance);
                    if !outcome.pass() {
                        failures.push("memory baseline gate failed".to_string());
                    }
                }
                Err(e) => failures.push(format!("cannot parse baseline {path}: {e}")),
            },
            Err(e) => failures.push(format!("cannot read baseline {path}: {e}")),
        }
    }

    if failures.is_empty() {
        println!("[scale] PASS");
    } else {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}

fn flag_value(argv: &[String], flag: &str) -> Option<String> {
    argv.iter()
        .position(|a| a == flag)
        .and_then(|i| argv.get(i + 1).cloned())
}

fn mib(bytes: u64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

fn bytes_row(metric: &str, bytes: u64) -> ScaleRow {
    ScaleRow {
        metric: metric.to_string(),
        unit: "bytes".to_string(),
        value: bytes as f64,
    }
}

fn count_row(metric: &str, count: usize) -> ScaleRow {
    ScaleRow {
        metric: metric.to_string(),
        unit: "count".to_string(),
        value: count as f64,
    }
}

fn bits_equal(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Ring + chords: node `i` connects to `i+1` and to `i + stride_j`
/// for `chords` fixed strides — bounded degree ≈ `2·(1 + chords)`,
/// deterministic, and generated edge-by-edge so ingestion is a true
/// stream (no edge list ever materialises outside the builder).
fn synthetic_graph(n: usize, chords: usize, tracker: Option<Arc<MemTracker>>) -> Graph {
    let mut csr = match tracker {
        Some(t) => StreamingCsr::with_tracker(n, t),
        None => StreamingCsr::new(n),
    };
    let strides: Vec<usize> = (1..=chords)
        .map(|j| ((j * n) / (chords + 3)).max(2) + j)
        .collect();
    for i in 0..n {
        csr.push(i as u32, ((i + 1) % n) as u32);
        for &s in &strides {
            csr.push(i as u32, ((i + s) % n) as u32);
        }
    }
    csr.finish()
}

/// Sweeps the common-neighbour row bands once without keeping any of
/// them: returns the total nnz the materialised P would hold and the
/// largest single band's heap footprint (the blocked path's transient
/// high-water mark for this band height).
fn banded_nnz(g: &Graph, band_rows: usize) -> (usize, u64) {
    let bander = WedgeBander::new(g, ProximityKind::CommonNeighbors)
        .expect("common neighbours is a wedge measure");
    let n = bander.rows();
    let mut nnz = 0usize;
    let mut peak = 0u64;
    let mut start = 0usize;
    while start < n {
        let end = (start + band_rows).min(n);
        let block = bander.band(start..end, None);
        nnz += block.indices.len();
        peak = peak.max(block.heap_bytes());
        start = end;
    }
    (nnz, peak)
}

/// Composes `RDP_SHARDS` per-shard accountants over a fixed-order
/// partition of the step count and returns
/// `(monolithic ε, composed ε)` at `delta`.
fn sharded_epsilon(gamma: f64, sigma: f64, delta: f64, steps: u64) -> (f64, f64) {
    let mut mono = RdpAccountant::new(64);
    mono.step_many(gamma, sigma, steps);
    let base = steps / RDP_SHARDS as u64;
    let extra = steps % RDP_SHARDS as u64;
    let shards: Vec<RdpAccountant> = (0..RDP_SHARDS as u64)
        .map(|i| {
            let mut a = RdpAccountant::new(64);
            a.step_many(gamma, sigma, base + u64::from(i < extra));
            a
        })
        .collect();
    let composed = RdpAccountant::compose(&shards);
    (mono.epsilon(delta).0, composed.epsilon(delta).0)
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    path: &str,
    sc: &Scenario,
    rows: &[ScaleRow],
    report: &sp_skipgram::TrainReport,
    eps_mono: f64,
    eps_sharded: f64,
    identity_checked: bool,
    pass: bool,
) {
    let mut metrics = String::new();
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            metrics.push_str(",\n");
        }
        metrics.push_str(&format!(
            "    {{\"metric\": \"{}\", \"unit\": \"{}\", \"value\": {}}}",
            r.metric, r.unit, r.value
        ));
    }
    let json = format!(
        r#"{{
  "bench": "sp_scale_bench",
  "mode": "{label}",
  "config": {{
    "nodes": {nodes},
    "chords": {chords},
    "dim": {dim},
    "batch_size": {batch},
    "band_rows": {band_rows},
    "shard_edges": {shard_edges},
    "budget_bytes": {budget}
  }},
  "train": {{
    "steps_run": {steps},
    "epochs_run": {epochs},
    "epsilon_spent": {eps}
  }},
  "rdp": {{
    "epsilon_monolithic": {eps_mono},
    "epsilon_sharded": {eps_sharded},
    "shards": {shards}
  }},
  "identity_checked": {identity_checked},
  "pass": {pass},
  "metrics": [
{metrics}
  ]
}}
"#,
        label = sc.label,
        nodes = sc.nodes,
        chords = sc.chords,
        dim = sc.dim,
        batch = sc.batch_size,
        band_rows = sc.band_rows,
        shard_edges = sc.shard_edges,
        budget = sc.budget_bytes,
        steps = report.steps_run,
        epochs = report.epochs_run,
        eps = report.epsilon_spent,
        shards = RDP_SHARDS,
    );
    match std::fs::File::create(path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => println!("[json] {path}"),
        Err(e) => eprintln!("warning: cannot write {path}: {e}"),
    }
}

fn report_gate(outcome: &ScaleGateOutcome, tolerance: f64) {
    println!(
        "[gate] compared {} byte metrics against baseline (tolerance +{:.0}%)",
        outcome.compared,
        100.0 * tolerance
    );
    for m in &outcome.missing {
        eprintln!("FAIL: {m}");
    }
    for r in &outcome.regressions {
        eprintln!("FAIL: regression: {r}");
    }
    if outcome.pass() {
        println!("[gate] PASS");
    }
}
