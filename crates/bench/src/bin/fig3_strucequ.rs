//! Reproduces Fig. 3: StrucEqu vs privacy budget, 8 methods x 6 datasets.
//! Runs on real graphs when `--data-dir <dir>` (or `SP_DATA_DIR`) points
//! at downloaded SNAP/KONECT edge lists; synthetic stand-ins otherwise.
use sp_bench::experiments::fig3;
use sp_bench::harness::BenchMode;

fn main() {
    fig3::run(BenchMode::from_env());
}
