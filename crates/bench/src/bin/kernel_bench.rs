//! Hot-path kernel microbench + CI regression gate.
//!
//! Measures the shipping lane-shaped kernels in `sp_linalg::vector`
//! (and the serving f32 score path that delegates to them) against
//! plain scalar reference loops, writes the per-kernel medians as
//! `kernels.tsv` via the shared harness (`SP_RESULTS_DIR` respected)
//! plus a `BENCH_kernels.json` summary, and — with `--baseline
//! <tsv>` — exits non-zero when any `lanes` median regressed more
//! than the gate tolerance versus the committed baseline.
//!
//! Flags / env:
//! - `--out <path>`: JSON summary path (default `BENCH_kernels.json`).
//! - `--baseline <tsv>`: run the regression gate against this file.
//! - `SP_BENCH_GATE_TOLERANCE`: fractional gate tolerance
//!   (default `0.15` = 15%).
//! - `SP_KERNEL_BENCH_SLOW=1`: honestly slow the lanes variants down
//!   (each timed call runs the kernel twice) — used once to prove the
//!   gate trips; never set in CI.
//!
//! Methodology: each sample times a calibrated batch of kernel calls
//! (sized so one batch spans roughly [`TARGET_SAMPLE_NS`], keeping
//! the timer overhead negligible even for single-digit-ns kernels)
//! and divides by the batch size. Samples are taken **round-robin
//! across all kernels** — a noisy scheduling window on a shared
//! runner then inflates one sample of many kernels instead of every
//! sample of one kernel — and the reported number is the median of an
//! odd count of rounds. Scalar rows are reference points only — the
//! gate compares lanes medians against the committed lanes medians,
//! never scalar vs lanes.

use sp_bench::harness::write_tsv;
use sp_bench::kernels::{compare, median_ns, parse_tsv, GateOutcome, KernelRow, TSV_HEADER};
use sp_linalg::vector;
use std::hint::black_box;
use std::io::Write as _;
use std::time::Instant;

/// Paper embedding dimension — the trainer's gradient/clip width.
const DIM_F64: usize = 128;
/// Serving dimension (BlogCatalog-scale store in `sp_serve_bench`).
const DIM_F32: usize = 16;
/// Second f32 point: full-width embeddings served without quantising.
const DIM_F32_WIDE: usize = 128;
/// Odd sample count -> median is a real observation.
const SAMPLES: usize = 31;
/// Target wall-clock span of one timed batch; the per-kernel batch
/// size is calibrated to hit it.
const TARGET_SAMPLE_NS: f64 = 250_000.0;
/// Kernel calls per closure invocation: amortises the dynamic
/// dispatch to ~0.03 ns/call so single-digit-ns kernels measure the
/// kernel, not the call.
const UNROLL: usize = 64;
/// Closure invocations used for the calibration pass itself.
const CALIBRATION_BATCHES: usize = 64;

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let out_path = flag_value(&argv, "--out").unwrap_or_else(|| "BENCH_kernels.json".to_string());
    let baseline_path = flag_value(&argv, "--baseline");
    let slow = std::env::var("SP_KERNEL_BENCH_SLOW")
        .map(|v| v == "1")
        .unwrap_or(false);
    let tolerance = std::env::var("SP_BENCH_GATE_TOLERANCE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.15);

    println!(
        "=== sp_kernel_bench: {SAMPLES} interleaved samples x ~{}us per batch ===",
        TARGET_SAMPLE_NS as u64 / 1000
    );
    if slow {
        println!("[slow] SP_KERNEL_BENCH_SLOW=1: lanes variants run twice per call");
    }

    let rows = run_all(slow);
    print_table(&rows);

    let tsv_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.kernel.clone(),
                r.variant.clone(),
                r.dim.to_string(),
                format!("{:.2}", r.median_ns),
            ]
        })
        .collect();
    write_tsv("kernels", &TSV_HEADER, &tsv_rows);
    write_json(&out_path, &rows, tolerance);

    if let Some(path) = baseline_path {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("FAIL: cannot read baseline {path}: {e}");
                std::process::exit(1);
            }
        };
        let baseline = match parse_tsv(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("FAIL: cannot parse baseline {path}: {e}");
                std::process::exit(1);
            }
        };
        let outcome = compare(&baseline, &rows, tolerance);
        report_gate(&outcome, tolerance);
        if !outcome.pass() {
            std::process::exit(1);
        }
    }
}

fn flag_value(argv: &[String], flag: &str) -> Option<String> {
    argv.iter()
        .position(|a| a == flag)
        .and_then(|i| argv.get(i + 1).cloned())
}

/// One kernel/variant/dim measurement candidate: `body` performs
/// [`UNROLL`] kernel calls (operands pre-bound; with the slowdown
/// injection the driver calls it twice per iteration).
struct Candidate<'a> {
    kernel: &'static str,
    variant: &'static str,
    dim: usize,
    body: Box<dyn FnMut() + 'a>,
}

/// Wraps one kernel call into an [`UNROLL`]-call boxed batch; the
/// kernel is monomorphised and inlined inside the loop, so only the
/// batch boundary pays the dynamic dispatch.
fn batched<'a>(mut f: impl FnMut() + 'a) -> Box<dyn FnMut() + 'a> {
    Box::new(move || {
        for _ in 0..UNROLL {
            f();
        }
    })
}

/// Runs every kernel/variant/dim combination and returns the rows in
/// TSV order.
fn run_all(slow: bool) -> Vec<KernelRow> {
    let mut rng = 0x5EED_CAFE_u64;
    let xa: Vec<f64> = (0..DIM_F64).map(|_| unit_f64(&mut rng)).collect();
    let ya: Vec<f64> = (0..DIM_F64).map(|_| unit_f64(&mut rng)).collect();
    let xf: Vec<f32> = (0..DIM_F32_WIDE)
        .map(|_| unit_f64(&mut rng) as f32)
        .collect();
    let yf: Vec<f32> = (0..DIM_F32_WIDE)
        .map(|_| unit_f64(&mut rng) as f32)
        .collect();
    let mut acc = ya.clone();
    let mut acc2 = ya.clone();
    let mut ga = xa.clone();
    let mut gb = xa.clone();

    let mut cands: Vec<Candidate> = Vec::new();

    // dot (f64): the trainer's score/gradient inner product.
    cands.push(Candidate {
        kernel: "dot_f64",
        variant: "scalar",
        dim: DIM_F64,
        body: batched(|| {
            black_box(dot_scalar(black_box(&xa), black_box(&ya)));
        }),
    });
    cands.push(Candidate {
        kernel: "dot_f64",
        variant: "lanes",
        dim: DIM_F64,
        body: batched(|| {
            black_box(vector::dot(black_box(&xa), black_box(&ya)));
        }),
    });

    // axpy (f64): the gradient accumulate/apply step.
    cands.push(Candidate {
        kernel: "axpy_f64",
        variant: "scalar",
        dim: DIM_F64,
        body: batched(|| {
            axpy_scalar(black_box(&mut acc), 1.0e-9, black_box(&xa));
            black_box(acc[0]);
        }),
    });
    cands.push(Candidate {
        kernel: "axpy_f64",
        variant: "lanes",
        dim: DIM_F64,
        body: batched(|| {
            vector::axpy(1.0e-9, black_box(&xa), black_box(&mut acc2));
            black_box(acc2[0]);
        }),
    });

    // clip_norm (f64): per-example DP gradient clipping
    // (norm2_sq + conditional scale through the lane kernels).
    cands.push(Candidate {
        kernel: "clip_norm_f64",
        variant: "scalar",
        dim: DIM_F64,
        body: batched(|| {
            black_box(clip_norm_scalar(black_box(&mut ga), 1.0));
        }),
    });
    cands.push(Candidate {
        kernel: "clip_norm_f64",
        variant: "lanes",
        dim: DIM_F64,
        body: batched(|| {
            black_box(vector::clip_norm(black_box(&mut gb), 1.0));
        }),
    });

    // dot (f32): the single serving score path (exact oracle, IVF
    // rerank, and the TCP front-end all route through it).
    for dim in [DIM_F32, DIM_F32_WIDE] {
        let (x, y) = (&xf[..dim], &yf[..dim]);
        cands.push(Candidate {
            kernel: "dot_f32",
            variant: "scalar",
            dim,
            body: batched(move || {
                black_box(dot_f32_scalar(black_box(x), black_box(y)));
            }),
        });
        cands.push(Candidate {
            kernel: "dot_f32",
            variant: "lanes",
            dim,
            body: batched(move || {
                black_box(vector::dot_f32(black_box(x), black_box(y)));
            }),
        });
    }

    // dist2_sq (f32): IVF k-means assignment distance.
    let (x, y) = (&xf[..DIM_F32], &yf[..DIM_F32]);
    cands.push(Candidate {
        kernel: "dist2_sq_f32",
        variant: "scalar",
        dim: DIM_F32,
        body: batched(move || {
            black_box(dist2_sq_f32_scalar(black_box(x), black_box(y)));
        }),
    });
    cands.push(Candidate {
        kernel: "dist2_sq_f32",
        variant: "lanes",
        dim: DIM_F32,
        body: batched(move || {
            black_box(vector::dist2_sq_f32(black_box(x), black_box(y)));
        }),
    });

    measure(&mut cands, slow)
}

/// Calibrates a batch size per candidate, then samples all candidates
/// round-robin: round `r` times one batch of every kernel before any
/// kernel sees round `r + 1`, so a noisy scheduling window perturbs
/// one sample of many kernels instead of every sample of one. With
/// `slow`, `lanes` bodies run twice per iteration — an honest ~2x
/// slowdown for the gate demonstration.
fn measure(cands: &mut [Candidate], slow: bool) -> Vec<KernelRow> {
    // Calibration doubles as warm-up. `reps` counts UNROLL-call
    // batches per timed sample.
    let reps: Vec<usize> = cands
        .iter_mut()
        .map(|c| {
            let t0 = Instant::now();
            for _ in 0..CALIBRATION_BATCHES {
                (c.body)();
            }
            let per_batch = t0.elapsed().as_nanos() as f64 / CALIBRATION_BATCHES as f64;
            ((TARGET_SAMPLE_NS / per_batch.max(1.0)) as usize).clamp(16, 100_000)
        })
        .collect();

    let mut samples: Vec<Vec<f64>> = vec![Vec::with_capacity(SAMPLES); cands.len()];
    for _ in 0..SAMPLES {
        for (i, c) in cands.iter_mut().enumerate() {
            let double = slow && c.variant == "lanes";
            let t0 = Instant::now();
            for _ in 0..reps[i] {
                (c.body)();
                if double {
                    (c.body)();
                }
            }
            samples[i].push(t0.elapsed().as_nanos() as f64 / (reps[i] * UNROLL) as f64);
        }
    }

    cands
        .iter()
        .zip(samples.iter_mut())
        .map(|(c, s)| KernelRow {
            kernel: c.kernel.to_string(),
            variant: c.variant.to_string(),
            dim: c.dim,
            median_ns: median_ns(s),
        })
        .collect()
}

// --- scalar reference loops (plain indexed code, no lane shaping) ---

fn dot_scalar(x: &[f64], y: &[f64]) -> f64 {
    let mut s = 0.0;
    for i in 0..x.len().min(y.len()) {
        s += x[i] * y[i];
    }
    s
}

fn axpy_scalar(y: &mut [f64], a: f64, x: &[f64]) {
    for i in 0..y.len().min(x.len()) {
        y[i] += a * x[i];
    }
}

fn clip_norm_scalar(x: &mut [f64], max_norm: f64) -> f64 {
    let mut n2 = 0.0;
    for &v in x.iter() {
        n2 += v * v;
    }
    let n = n2.sqrt();
    if n > max_norm {
        let f = max_norm / n;
        for v in x.iter_mut() {
            *v *= f;
        }
        f
    } else {
        1.0
    }
}

fn dot_f32_scalar(x: &[f32], y: &[f32]) -> f32 {
    let mut s = 0.0f32;
    for i in 0..x.len().min(y.len()) {
        s += x[i] * y[i];
    }
    s
}

fn dist2_sq_f32_scalar(x: &[f32], y: &[f32]) -> f32 {
    let mut s = 0.0f32;
    for i in 0..x.len().min(y.len()) {
        let d = x[i] - y[i];
        s += d * d;
    }
    s
}

/// splitmix64-fed uniform in [-1, 1): deterministic operand fill.
fn unit_f64(state: &mut u64) -> f64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 52) as f64 * 2.0 - 1.0
}

// --- reporting ---

fn print_table(rows: &[KernelRow]) {
    println!(
        "{:<14} {:<7} {:>4} {:>12}",
        "kernel", "variant", "dim", "median_ns"
    );
    for r in rows {
        println!(
            "{:<14} {:<7} {:>4} {:>12.2}",
            r.kernel, r.variant, r.dim, r.median_ns
        );
    }
    for r in rows.iter().filter(|r| r.variant == "lanes") {
        if let Some(s) = rows
            .iter()
            .find(|s| s.variant == "scalar" && s.kernel == r.kernel && s.dim == r.dim)
        {
            println!(
                "  {} dim={}: lanes {:.2} ns vs scalar {:.2} ns ({:.2}x)",
                r.kernel,
                r.dim,
                r.median_ns,
                s.median_ns,
                s.median_ns / r.median_ns
            );
        }
    }
}

fn write_json(path: &str, rows: &[KernelRow], tolerance: f64) {
    let mut body = String::new();
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            body.push_str(",\n");
        }
        body.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"variant\": \"{}\", \"dim\": {}, \"median_ns\": {:.2}}}",
            r.kernel, r.variant, r.dim, r.median_ns
        ));
    }
    let json = format!(
        r#"{{
  "bench": "sp_kernel_bench",
  "config": {{
    "samples": {SAMPLES},
    "target_sample_us": {target_us},
    "gate_tolerance": {tolerance}
  }},
  "results": [
{body}
  ]
}}
"#,
        target_us = TARGET_SAMPLE_NS as u64 / 1000,
    );
    match std::fs::File::create(path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => println!("[json] {path}"),
        Err(e) => eprintln!("warning: cannot write {path}: {e}"),
    }
}

fn report_gate(outcome: &GateOutcome, tolerance: f64) {
    println!(
        "[gate] compared {} lanes kernels against baseline (tolerance +{:.0}%)",
        outcome.compared,
        100.0 * tolerance
    );
    for m in &outcome.missing {
        eprintln!("FAIL: {m}");
    }
    for r in &outcome.regressions {
        eprintln!("FAIL: regression: {r}");
    }
    if outcome.pass() {
        println!("[gate] PASS");
    }
}
