//! Reproduces Table II: StrucEqu vs batch size B at epsilon = 3.5.
//! Runs on real graphs when `--data-dir <dir>` (or `SP_DATA_DIR`) points
//! at downloaded SNAP/KONECT edge lists; synthetic stand-ins otherwise.
use sp_bench::experiments::param_tables;
use sp_bench::harness::BenchMode;

fn main() {
    let mode = BenchMode::from_env();
    param_tables::run(
        mode,
        "table2_batch",
        "Table II: StrucEqu vs batch size B (eps = 3.5)",
        &param_tables::table2_values(),
    );
}
