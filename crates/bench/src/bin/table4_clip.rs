//! Reproduces Table IV: StrucEqu vs clipping threshold C at epsilon = 3.5.
//! Runs on real graphs when `--data-dir <dir>` (or `SP_DATA_DIR`) points
//! at downloaded SNAP/KONECT edge lists; synthetic stand-ins otherwise.
use sp_bench::experiments::param_tables;
use sp_bench::harness::BenchMode;

fn main() {
    let mode = BenchMode::from_env();
    param_tables::run(
        mode,
        "table4_clip",
        "Table IV: StrucEqu vs clipping threshold C (eps = 3.5)",
        &param_tables::table4_values(),
    );
}
