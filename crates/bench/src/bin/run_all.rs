//! Runs every experiment (Tables II-VI, Figs. 3-4, ablations) in order.
//! Runs on real graphs when `--data-dir <dir>` (or `SP_DATA_DIR`) points
//! at downloaded SNAP/KONECT edge lists; synthetic stand-ins otherwise.
use sp_bench::experiments::{ablation, fig3, fig4, param_tables, table6};
use sp_bench::harness::BenchMode;

fn main() {
    let mode = BenchMode::from_env();
    param_tables::run(
        mode,
        "table2_batch",
        "Table II: StrucEqu vs batch size B (eps = 3.5)",
        &param_tables::table2_values(),
    );
    param_tables::run(
        mode,
        "table3_lr",
        "Table III: StrucEqu vs learning rate eta (eps = 3.5)",
        &param_tables::table3_values(),
    );
    param_tables::run(
        mode,
        "table4_clip",
        "Table IV: StrucEqu vs clipping threshold C (eps = 3.5)",
        &param_tables::table4_values(),
    );
    param_tables::run(
        mode,
        "table5_negs",
        "Table V: StrucEqu vs negative samples k (eps = 3.5)",
        &param_tables::table5_values(),
    );
    table6::run(mode);
    fig3::run(mode);
    fig4::run(mode);
    ablation::run(mode);
}
