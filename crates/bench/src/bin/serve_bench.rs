//! Serving-stack benchmark: queries/sec and recall@10 for the IVF
//! index in `sp_serve`, measured with a multithreaded closed-loop
//! query load against a BlogCatalog-scale seeded embedding.
//!
//! Emits `BENCH_serve.json` (machine-readable, committed at the repo
//! root) and a human summary on stdout. The run doubles as a
//! regression gate: it exits non-zero if recall@10 drops below 0.95 or
//! if the IVF result sets differ between 1-thread and 4-thread index
//! builds (the workspace determinism contract).
//!
//! Flags: `--out <path>` (default `BENCH_serve.json`), `--full`
//! (larger query load; same corpus — size is fixed so the recall gate
//! is comparable across runs).

use sp_model::Provenance;
use sp_serve::{
    synthetic, EmbeddingStore, IvfConfig, IvfIndex, Neighbor, ServeClient, Server, ServerConfig,
    ServingStore,
};
use std::io::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A hung loopback accept must fail the bench run, not wedge CI.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(10);

/// BlogCatalog's published node count: the smallest "real" scale the
/// paper evaluates, and the floor the acceptance gate names (>=10k).
const NODES: usize = 10_312;
const DIM: usize = 16;
const CLUSTERS: usize = 40;
const SEED: u64 = 0x5E21;
const K: usize = 10;
const RECALL_FLOOR: f64 = 0.95;

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let out_path = argv
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| argv.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_serve.json".to_string());
    let full = argv.iter().any(|a| a == "--full");
    let query_nodes: Vec<u32> = sample_nodes(if full { 2000 } else { 500 });
    let load_threads = sp_parallel::resolve_threads(None).max(1);

    println!("=== sp_serve bench: {NODES} nodes, dim {DIM}, k={K} ===");
    let store = EmbeddingStore::from_f32(
        synthetic::clustered_embedding(NODES, DIM, CLUSTERS, SEED),
        Provenance::non_private(SEED),
    );

    // Index build (timed) at the default quality point, plus a
    // 1-thread rebuild for the determinism gate.
    let cfg = IvfConfig {
        nlist: 64,
        nprobe: 16,
        ..IvfConfig::default()
    };
    let t0 = Instant::now();
    let index = IvfIndex::build(&store, cfg, Some(4));
    let build_secs = t0.elapsed().as_secs_f64();
    let index_t1 = IvfIndex::build(&store, cfg, Some(1));

    // Ground truth from the brute-force oracle.
    let t0 = Instant::now();
    let exact: Vec<Vec<Neighbor>> = query_nodes
        .iter()
        .map(|&q| store.exact_top_k_node(q, K))
        .collect();
    let exact_secs = t0.elapsed().as_secs_f64();

    // Recall@10 and the cross-thread determinism gate in one pass.
    let mut recall_sum = 0.0;
    let mut deterministic = true;
    for (i, &q) in query_nodes.iter().enumerate() {
        let approx = index.top_k_node(&store, q, K, cfg.nprobe);
        let approx_t1 = index_t1.top_k_node(&store, q, K, cfg.nprobe);
        if approx != approx_t1 {
            deterministic = false;
        }
        recall_sum += sp_serve::recall_at_k(&approx, &exact[i]);
    }
    let recall = recall_sum / query_nodes.len() as f64;
    println!(
        "recall@{K} = {recall:.4} over {} queries (floor {RECALL_FLOOR})",
        query_nodes.len()
    );
    println!("deterministic across SP_THREADS=1/4 index builds: {deterministic}");

    // Closed-loop load: each worker issues its share of the query set
    // in a loop until every thread has completed `rounds` passes.
    let rounds = if full { 40 } else { 10 };
    let (ivf_qps, ivf_queries) = closed_loop(load_threads, rounds, &query_nodes, |q| {
        index.top_k_node(&store, q, K, cfg.nprobe).len()
    });
    let (exact_qps, _) = closed_loop(load_threads, 1.max(rounds / 10), &query_nodes, |q| {
        store.exact_top_k_node(q, K).len()
    });
    println!(
        "IVF: {ivf_qps:.0} queries/sec ({ivf_queries} queries, {load_threads} threads); \
         exact: {exact_qps:.0} queries/sec"
    );

    // TCP closed loop: the same IVF answers through the sp_served
    // network boundary (SPSERVE 1), measured end to end per request.
    let tcp_rounds = if full { 20 } else { 5 };
    let tcp = tcp_closed_loop(store, index, load_threads, tcp_rounds, &query_nodes);
    println!(
        "TCP: {:.0} queries/sec ({} queries, {load_threads} connections), \
         p50 {} µs, p99 {} µs",
        tcp.qps, tcp.queries, tcp.p50_us, tcp.p99_us
    );

    let json = format!(
        r#"{{
  "description": "sp_serve IVF serving benchmark: closed-loop top-{K} queries over a seeded clustered embedding, in-process and through the sp_served TCP front-end (SPSERVE 1). Regenerate with `cargo run --release -p sp_bench --bin sp_serve_bench`.",
  "config": {{
    "nodes": {NODES},
    "dim": {DIM},
    "clusters": {CLUSTERS},
    "seed": {SEED},
    "k": {K},
    "nlist": {nlist},
    "nprobe": {nprobe},
    "queries": {nq},
    "load_threads": {load_threads},
    "rounds": {rounds},
    "tcp_rounds": {tcp_rounds}
  }},
  "results": {{
    "recall_at_10": {recall:.4},
    "recall_floor": {RECALL_FLOOR},
    "deterministic_across_thread_counts": {deterministic},
    "ivf_queries_per_sec": {ivf_qps:.1},
    "exact_queries_per_sec": {exact_qps:.1},
    "ivf_speedup_over_exact": {speedup:.2},
    "index_build_secs": {build_secs:.3},
    "exact_oracle_secs_per_query": {oracle_per_q:.6},
    "tcp": {{
      "queries_per_sec": {tcp_qps:.1},
      "queries": {tcp_queries},
      "connections": {load_threads},
      "p50_us": {tcp_p50},
      "p99_us": {tcp_p99}
    }}
  }}
}}
"#,
        nlist = cfg.nlist,
        nprobe = cfg.nprobe,
        nq = query_nodes.len(),
        speedup = ivf_qps / exact_qps,
        oracle_per_q = exact_secs / query_nodes.len() as f64,
        tcp_qps = tcp.qps,
        tcp_queries = tcp.queries,
        tcp_p50 = tcp.p50_us,
        tcp_p99 = tcp.p99_us,
    );
    match std::fs::File::create(&out_path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => println!("[json] {out_path}"),
        Err(e) => eprintln!("warning: cannot write {out_path}: {e}"),
    }

    if recall < RECALL_FLOOR {
        eprintln!("FAIL: recall@{K} {recall:.4} below floor {RECALL_FLOOR}");
        std::process::exit(1);
    }
    if !deterministic {
        eprintln!("FAIL: IVF result sets differ across index-build thread counts");
        std::process::exit(1);
    }
}

/// Deterministic query-node sample: a fixed stride through the id
/// space so every run (and CI) asks the same questions.
fn sample_nodes(count: usize) -> Vec<u32> {
    let stride = (NODES / count).max(1);
    (0..count).map(|i| ((i * stride) % NODES) as u32).collect()
}

/// TCP closed-loop results.
struct TcpBench {
    qps: f64,
    queries: usize,
    p50_us: u64,
    p99_us: u64,
}

/// Serves the store+index over a loopback `sp_serve::Server` and runs
/// the closed-loop load through `threads` persistent TCP connections,
/// one worker each; per-request latency is measured client-side.
///
/// Before the load starts, one probe query is checked **bit-for-bit**
/// against the in-process IVF answer — the bench doubles as a gate
/// that the network boundary is transparent.
fn tcp_closed_loop(
    store: EmbeddingStore,
    index: IvfIndex,
    threads: usize,
    rounds: usize,
    queries: &[u32],
) -> TcpBench {
    let probe = queries[0];
    let reference = index.top_k_node(&store, probe, K, index.nprobe_default());
    let serving = Arc::new(ServingStore::new(store, Some(index)));
    let config = ServerConfig {
        max_conns: threads + 4,
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", Arc::clone(&serving), config)
        .expect("bind loopback bench server");
    let addr = server.local_addr().expect("bench server address");
    let handle = server.shutdown_handle();
    let server_thread = std::thread::spawn(move || server.run().expect("bench server run"));

    {
        let mut client =
            ServeClient::connect_timeout(addr, CONNECT_TIMEOUT).expect("connect probe client");
        let (_, tcp_answer) = client.top_k(probe, K).expect("probe TOPK");
        assert_eq!(tcp_answer.len(), reference.len());
        for (a, b) in tcp_answer.iter().zip(reference.iter()) {
            assert!(
                a.node == b.node && a.score.to_bits() == b.score.to_bits(),
                "TCP answer diverged from the in-process IVF answer"
            );
        }
        client.quit().expect("probe quit");
    }

    let latencies = Mutex::new(Vec::<u64>::new());
    let issued = AtomicUsize::new(0);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for worker in 0..threads {
            let latencies = &latencies;
            let issued = &issued;
            scope.spawn(move || {
                let mut client = ServeClient::connect_timeout(addr, CONNECT_TIMEOUT)
                    .expect("connect load client");
                let mut local = Vec::new();
                for _ in 0..rounds {
                    for (i, &q) in queries.iter().enumerate() {
                        if i % threads == worker {
                            let t = Instant::now();
                            let (_, answer) = client.top_k(q, K).expect("load TOPK");
                            local.push(t.elapsed().as_micros() as u64);
                            std::hint::black_box(answer.len());
                            issued.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                client.quit().expect("load quit");
                latencies.lock().unwrap().extend(local);
            });
        }
    });
    let elapsed = t0.elapsed().as_secs_f64();
    let total = issued.load(Ordering::Relaxed);
    handle.shutdown();
    server_thread.join().expect("join bench server");

    let mut lat = latencies.into_inner().unwrap();
    lat.sort_unstable();
    let quantile = |p: f64| lat[((lat.len() - 1) as f64 * p) as usize];
    TcpBench {
        qps: total as f64 / elapsed,
        queries: total,
        p50_us: quantile(0.5),
        p99_us: quantile(0.99),
    }
}

/// Runs `work` over the query set from `threads` closed-loop workers,
/// `rounds` full passes each; returns (queries/sec, total queries).
fn closed_loop<F>(threads: usize, rounds: usize, queries: &[u32], work: F) -> (f64, usize)
where
    F: Fn(u32) -> usize + Sync,
{
    let issued = AtomicUsize::new(0);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for worker in 0..threads {
            let issued = &issued;
            let work = &work;
            scope.spawn(move || {
                let mut sink = 0usize;
                for _ in 0..rounds {
                    // Each worker walks the query list at its own
                    // offset so threads don't stampede one node.
                    for (i, &q) in queries.iter().enumerate() {
                        if i % threads == worker {
                            sink += work(q);
                            issued.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                std::hint::black_box(sink);
            });
        }
    });
    let total = issued.load(Ordering::Relaxed);
    (total as f64 / t0.elapsed().as_secs_f64(), total)
}
