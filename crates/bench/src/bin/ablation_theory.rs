//! Ablation studies: Theorem 3 verification, negative-sampling design,
//! the evaluation-norm artifact, and sensitivity scaling.
//! Runs on real graphs when `--data-dir <dir>` (or `SP_DATA_DIR`) points
//! at downloaded SNAP/KONECT edge lists; synthetic stand-ins otherwise.
use sp_bench::experiments::ablation;
use sp_bench::harness::BenchMode;

fn main() {
    ablation::run(BenchMode::from_env());
}
