//! Ablation studies: Theorem 3 verification, negative-sampling design,
//! the evaluation-norm artifact, and sensitivity scaling.
use sp_bench::experiments::ablation;
use sp_bench::harness::BenchMode;

fn main() {
    ablation::run(BenchMode::from_env());
}
