//! Scale-bench bookkeeping: the `scale.tsv` schema and the
//! memory-regression gate shared by `sp_scale_bench` and the CI
//! `bench-gate` job.
//!
//! Unlike the kernel bench, the gated quantities here are
//! **deterministic byte counts** from the [`sp_mem::MemTracker`]
//! accounting of the blocked pipeline — not wall-clock medians — so
//! the gate is meaningful even on a noisy shared runner. Rows with
//! `unit == "bytes"` gate the build; `unit == "ns"` rows (wall time)
//! and `unit == "count"` rows are recorded for humans reading the
//! artefact but never gate.

/// One recorded scale metric, i.e. one TSV row.
#[derive(Clone, Debug, PartialEq)]
pub struct ScaleRow {
    /// Metric name (`blocked_peak_bytes`, `graph_bytes`, …).
    pub metric: String,
    /// `bytes` (gated), `ns`, or `count` (informational).
    pub unit: String,
    /// The measured value.
    pub value: f64,
}

/// Column order of `scale.tsv`.
pub const SCALE_TSV_HEADER: [&str; 3] = ["metric", "unit", "value"];

/// Parses `scale.tsv` text (header + rows) back into rows. Unknown
/// extra columns are rejected so a schema change cannot silently
/// disarm the gate.
pub fn parse_scale_tsv(text: &str) -> Result<Vec<ScaleRow>, String> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or("empty scale.tsv")?;
    let cols: Vec<&str> = header.split('\t').collect();
    if cols != SCALE_TSV_HEADER {
        return Err(format!(
            "scale.tsv header mismatch: expected {:?}, got {cols:?}",
            SCALE_TSV_HEADER
        ));
    }
    let mut rows = Vec::new();
    for (i, line) in lines.enumerate() {
        let f: Vec<&str> = line.split('\t').collect();
        if f.len() != SCALE_TSV_HEADER.len() {
            return Err(format!(
                "row {}: expected {} fields, got {}",
                i + 2,
                SCALE_TSV_HEADER.len(),
                f.len()
            ));
        }
        rows.push(ScaleRow {
            metric: f[0].to_string(),
            unit: f[1].to_string(),
            value: f[2]
                .parse()
                .map_err(|e| format!("row {}: bad value: {e}", i + 2))?,
        });
    }
    Ok(rows)
}

/// Outcome of a baseline-vs-fresh comparison over the byte metrics.
#[derive(Debug, Default)]
pub struct ScaleGateOutcome {
    /// Gated rows compared (baseline `bytes` rows found in fresh).
    pub compared: usize,
    /// Human-readable regression lines, one per failing metric.
    pub regressions: Vec<String>,
    /// Baseline `bytes` rows with no fresh counterpart — a removed
    /// metric also fails (it cannot be "not bigger").
    pub missing: Vec<String>,
}

impl ScaleGateOutcome {
    /// True when every gated metric is within tolerance and none
    /// disappeared.
    pub fn pass(&self) -> bool {
        self.regressions.is_empty() && self.missing.is_empty()
    }
}

/// Compares fresh byte metrics against the committed baseline: a
/// `bytes` row regresses when `fresh > baseline * (1 + tolerance)`.
/// The counts are deterministic, but `Vec` growth capacities can shift
/// across toolchains, so the gate keeps a tolerance instead of
/// demanding equality. Fresh-only rows (a newly tracked metric) pass
/// until the baseline is re-committed.
pub fn compare_scale(
    baseline: &[ScaleRow],
    fresh: &[ScaleRow],
    tolerance: f64,
) -> ScaleGateOutcome {
    let mut out = ScaleGateOutcome::default();
    for b in baseline.iter().filter(|r| r.unit == "bytes") {
        let Some(f) = fresh
            .iter()
            .find(|r| r.metric == b.metric && r.unit == b.unit)
        else {
            out.missing
                .push(format!("{} missing from fresh run", b.metric));
            continue;
        };
        out.compared += 1;
        let limit = b.value * (1.0 + tolerance);
        if f.value > limit {
            out.regressions.push(format!(
                "{}: {:.0} bytes vs baseline {:.0} bytes (+{:.1}%, limit +{:.0}%)",
                b.metric,
                f.value,
                b.value,
                100.0 * (f.value / b.value - 1.0),
                100.0 * tolerance,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(metric: &str, unit: &str, value: f64) -> ScaleRow {
        ScaleRow {
            metric: metric.into(),
            unit: unit.into(),
            value,
        }
    }

    #[test]
    fn tsv_round_trips() {
        let rows = vec![
            row("blocked_peak_bytes", "bytes", 1048576.0),
            row("wall_ns", "ns", 12345.0),
        ];
        let mut text = SCALE_TSV_HEADER.join("\t") + "\n";
        for r in &rows {
            text += &format!("{}\t{}\t{}\n", r.metric, r.unit, r.value);
        }
        assert_eq!(parse_scale_tsv(&text).unwrap(), rows);
    }

    #[test]
    fn tsv_rejects_wrong_header_and_short_rows() {
        assert!(parse_scale_tsv("").is_err());
        assert!(parse_scale_tsv("a\tb\tc\n").is_err());
        let bad = SCALE_TSV_HEADER.join("\t") + "\nblocked_peak_bytes\tbytes\n";
        assert!(parse_scale_tsv(&bad).is_err());
    }

    #[test]
    fn gate_ignores_time_rows_and_gates_byte_rows() {
        let base = vec![
            row("blocked_peak_bytes", "bytes", 100.0),
            row("wall_ns", "ns", 100.0),
        ];
        // Bytes within tolerance; wall time wildly slower but ungated.
        let fresh = vec![
            row("blocked_peak_bytes", "bytes", 110.0),
            row("wall_ns", "ns", 9000.0),
        ];
        let out = compare_scale(&base, &fresh, 0.15);
        assert!(out.pass(), "{out:?}");
        assert_eq!(out.compared, 1);
    }

    #[test]
    fn gate_fails_beyond_tolerance() {
        let base = vec![row("blocked_peak_bytes", "bytes", 100.0)];
        let fresh = vec![row("blocked_peak_bytes", "bytes", 116.0)];
        let out = compare_scale(&base, &fresh, 0.15);
        assert!(!out.pass());
        assert_eq!(out.regressions.len(), 1);
        assert!(out.regressions[0].contains("blocked_peak_bytes"));
    }

    #[test]
    fn gate_fails_when_a_gated_metric_disappears() {
        let base = vec![row("blocked_peak_bytes", "bytes", 100.0)];
        let out = compare_scale(&base, &[], 0.15);
        assert!(!out.pass());
        assert_eq!(out.missing.len(), 1);
    }

    #[test]
    fn fresh_only_metrics_do_not_gate_until_baselined() {
        let fresh = vec![row("new_metric", "bytes", 10.0)];
        let out = compare_scale(&[], &fresh, 0.15);
        assert!(out.pass());
        assert_eq!(out.compared, 0);
    }
}
