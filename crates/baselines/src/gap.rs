//! GAP stand-in: differentially private GNN via aggregation
//! perturbation.
//!
//! GAP (Sajadmanesh et al., USENIX Security'23) makes the *neighbour
//! aggregation* step private: each hop's aggregate matrix is row-wise
//! bounded and Gaussian-perturbed. The paper under reproduction
//! stresses GAP's weakness in this setting (§VI-D): "the aggregation
//! perturbation encounters compatibility issues with GNNs.
//! Consequently, all aggregate outputs need to be re-perturbed at each
//! training iteration, resulting in poor performance."
//!
//! The stand-in models exactly that budget split: the `(ε, δ)` budget
//! is divided over `hops × epochs` Gaussian mechanisms (one fresh
//! perturbation of every hop per training iteration), the noise
//! multiplier is calibrated with the same RDP machinery as
//! SE-PrivGEmb, and the embedding is a fixed random projection of the
//! concatenated noisy aggregates (post-processing, free of charge).
//! Only the final iteration's aggregates feed the published embedding
//! — earlier re-perturbations exist in the accounting (that is GAP's
//! problem) but need not be materialised, which keeps the stand-in
//! cheap without changing the privacy arithmetic.
//!
//! Node features do not exist in the paper's graphs, so random
//! features are used "to ensure a fair evaluation, similar to prior
//! research \[32\]".

use crate::common::{BaselineConfig, EmbedReport, Embedder};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sp_dp::{calibrate_noise_multiplier, GaussianSampler};
use sp_graph::Graph;
use sp_linalg::{vector, DenseMatrix};

/// Number of aggregation hops (GAP's default K in the 2–3 range).
pub(crate) const HOPS: usize = 2;

/// The GAP baseline.
#[derive(Clone, Debug)]
pub struct Gap {
    config: BaselineConfig,
}

impl Gap {
    /// New instance; panics on invalid config.
    pub fn new(config: BaselineConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid BaselineConfig: {e}");
        }
        Self { config }
    }
}

impl Embedder for Gap {
    fn name(&self) -> &'static str {
        "GAP"
    }

    fn embed(&self, g: &Graph) -> (DenseMatrix, EmbedReport) {
        let cfg = &self.config;
        // Budget split over hops × epochs mechanisms (re-perturbation
        // at every training iteration).
        let mechanisms = (HOPS * cfg.epochs.max(1)) as u64;
        let sigma = calibrate_noise_multiplier(mechanisms, cfg.epsilon, cfg.delta);
        let emb = noisy_multihop_embedding(g, cfg.dim, HOPS, sigma, cfg.seed ^ 0x6A9);
        (
            emb,
            EmbedReport {
                method: self.name(),
                epsilon_spent: cfg.epsilon,
                epochs_run: cfg.epochs,
                stopped_by_budget: false,
            },
        )
    }
}

/// Shared aggregation core for GAP and ProGAP.
///
/// 1. Random unit-norm features `X_0` (`|V| × dim`);
/// 2. for each hop: `X_l = rownorm(Â X_{l-1}) + N(0, σ²)` with
///    row-normalisation bounding each node's contribution to 1
///    (sensitivity 1 per mechanism);
/// 3. embedding = random projection of `[X_0 ‖ X_1 ‖ … ‖ X_L]` to
///    `dim` columns (data-independent post-processing).
pub(crate) fn noisy_multihop_embedding(
    g: &Graph,
    dim: usize,
    hops: usize,
    sigma: f64,
    seed: u64,
) -> DenseMatrix {
    assert!(g.num_nodes() > 0, "empty graph");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut noise = GaussianSampler::new();
    let n = g.num_nodes();

    let a_hat = sp_proximity_free_normalized_adjacency(g);

    // X_0: random unit rows.
    let mut x = DenseMatrix::uniform(n, dim, -1.0, 1.0, &mut rng);
    normalize_rows(&mut x);

    let mut stacked: Vec<DenseMatrix> = vec![x.clone()];
    for _ in 0..hops {
        let mut agg = a_hat.spmm_dense(&x);
        normalize_rows(&mut agg);
        noise.perturb_slice(agg.as_mut_slice(), sigma, &mut rng);
        stacked.push(agg.clone());
        x = agg;
    }

    // Random projection of the concatenation back to `dim`.
    let total = dim * (hops + 1);
    let scale = 1.0 / (total as f64).sqrt();
    let mut proj = DenseMatrix::zeros(total, dim);
    for v in proj.as_mut_slice() {
        *v = if rng.gen::<bool>() { scale } else { -scale };
    }
    let mut out = DenseMatrix::zeros(n, dim);
    for (block, xs) in stacked.iter().enumerate() {
        for r in 0..n {
            for (c, &val) in xs.row(r).iter().enumerate() {
                if val != 0.0 {
                    vector::axpy(val, proj.row(block * dim + c), out.row_mut(r));
                }
            }
        }
    }
    out
}

/// Row-normalised adjacency without dragging in sp-proximity (keeps
/// the baseline crate's dependency set minimal).
fn sp_proximity_free_normalized_adjacency(g: &Graph) -> sp_linalg::CsrMatrix {
    let n = g.num_nodes();
    let mut b = sp_linalg::CooBuilder::new(n, n);
    for &(u, v) in g.edges() {
        b.push(u as usize, v as usize, 1.0);
        b.push(v as usize, u as usize, 1.0);
    }
    let mut a = b.build();
    a.normalize_rows();
    a
}

/// Scales every row to unit norm (zero rows stay zero).
fn normalize_rows(m: &mut DenseMatrix) {
    for r in 0..m.rows() {
        let row = m.row_mut(r);
        let n = vector::norm2(row);
        if n > 0.0 {
            vector::scale(1.0 / n, row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use sp_datasets::generators;

    fn test_graph() -> Graph {
        let mut rng = StdRng::seed_from_u64(3);
        generators::barabasi_albert(80, 3, &mut rng)
    }

    #[test]
    fn embedding_shape_and_determinism() {
        let g = test_graph();
        let cfg = BaselineConfig {
            dim: 16,
            epochs: 5,
            ..BaselineConfig::default()
        };
        let (a, rep) = Gap::new(cfg.clone()).embed(&g);
        assert_eq!(a.shape(), (80, 16));
        assert_eq!(rep.method, "GAP");
        let (b, _) = Gap::new(cfg).embed(&g);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn smaller_epsilon_means_more_noise() {
        // The calibrated σ must grow as ε shrinks; verify through the
        // calibration function the embedder uses.
        let tight = calibrate_noise_multiplier((HOPS * 5) as u64, 0.5, 1e-5);
        let loose = calibrate_noise_multiplier((HOPS * 5) as u64, 3.5, 1e-5);
        assert!(tight > loose);
    }

    #[test]
    fn re_perturbation_wastes_budget_versus_single_shot() {
        // GAP's per-iteration re-perturbation = hops×epochs mechanisms;
        // the single-shot split (ProGAP-style) = hops mechanisms. The
        // former must demand strictly more noise.
        let gap_sigma = calibrate_noise_multiplier((HOPS * 30) as u64, 1.0, 1e-5);
        let pro_sigma = calibrate_noise_multiplier(HOPS as u64, 1.0, 1e-5);
        assert!(
            gap_sigma > 2.0 * pro_sigma,
            "gap {gap_sigma} vs progap {pro_sigma}"
        );
    }

    #[test]
    fn zero_noise_aggregation_reflects_structure() {
        // With σ→0 the multihop embedding separates a two-cluster
        // graph: nodes in the same clique get closer embeddings than
        // nodes across cliques.
        let mut edges = Vec::new();
        for i in 0..10u32 {
            for j in (i + 1)..10 {
                edges.push((i, j));
                edges.push((i + 10, j + 10));
            }
        }
        edges.push((0, 10)); // single bridge
        let g = Graph::from_edges(20, edges);
        let emb = noisy_multihop_embedding(&g, 8, 2, 1e-9, 7);
        // Average over all pairs (skipping the bridge endpoints 0 and 10):
        // a single pair's distance is dominated by the random X_0 draw,
        // while the mean isolates the structural signal.
        let mut within = 0.0;
        let mut n_within = 0.0;
        let mut across = 0.0;
        let mut n_across = 0.0;
        for i in 1..10usize {
            for j in (i + 1)..10 {
                within += vector::dist2(emb.row(i), emb.row(j));
                within += vector::dist2(emb.row(i + 10), emb.row(j + 10));
                n_within += 2.0;
            }
            for j in 11..20usize {
                across += vector::dist2(emb.row(i), emb.row(j));
                n_across += 1.0;
            }
        }
        let (within, across) = (within / n_within, across / n_across);
        assert!(
            within < across,
            "mean within-clique {within} should be < across {across}"
        );
    }
}
