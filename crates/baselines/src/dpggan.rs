//! DPGGAN stand-in: adversarially regularised graph autoencoder
//! trained with DP-SGD.
//!
//! The original (Yang et al., IJCAI'21) couples a graph generator with
//! link differential privacy via noisy gradients and a moments-style
//! accountant, and "tends to converge prematurely … especially when
//! the privacy budget is small" (§VI-D). The stand-in preserves that
//! mechanism profile:
//!
//! - **encoder**: MLP over random-projected normalised adjacency rows
//!   (a Johnson–Lindenstrauss sketch of each node's neighbourhood —
//!   the projection is data-independent, so it costs no privacy);
//! - **decoder**: inner-product edge reconstruction with BCE loss on
//!   sampled edges and non-edges;
//! - **adversarial regulariser**: a discriminator pushing the latent
//!   distribution towards `N(0, I)`; the encoder receives the
//!   generator gradient, the discriminator trains on its own Adam
//!   steps;
//! - **privacy**: per-pair example gradients through the encoder are
//!   jointly clipped and Gaussian-noised (DP-SGD, Eq. 3 of the paper),
//!   charged to the same subsampled-RDP accountant as SE-PrivGEmb;
//!   training stops the moment the budget binds — the premature
//!   convergence the paper reports.

use crate::common::{adjacency_row_feature, BaselineConfig, EmbedReport, Embedder};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sp_dp::{BudgetedAccountant, GaussianSampler, PrivacyBudget};
use sp_graph::Graph;
use sp_linalg::{vector, DenseMatrix};
use sp_nn::{Activation, Mlp};

/// Width of the random-projection input sketch.
const SKETCH_DIM: usize = 128;
/// Encoder hidden width.
const HIDDEN: usize = 64;
/// Weight of the adversarial (generator) term in the encoder loss.
const ADV_WEIGHT: f64 = 0.1;

/// The DPGGAN baseline.
#[derive(Clone, Debug)]
pub struct DpgGan {
    config: BaselineConfig,
}

impl DpgGan {
    /// New instance; panics on invalid config.
    pub fn new(config: BaselineConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid BaselineConfig: {e}");
        }
        Self { config }
    }
}

/// Random ±1/√d sketch of the normalised adjacency rows: `|V| × d`.
pub(crate) fn sketch_features<R: Rng + ?Sized>(g: &Graph, d: usize, rng: &mut R) -> DenseMatrix {
    let n = g.num_nodes();
    let scale = 1.0 / (d as f64).sqrt();
    // Projection matrix R: |V| x d of ±scale.
    let proj = {
        let mut m = DenseMatrix::zeros(n, d);
        for v in m.as_mut_slice() {
            *v = if rng.gen::<bool>() { scale } else { -scale };
        }
        m
    };
    // X[v] = a_v · R where a_v is the normalised adjacency row.
    let mut x = DenseMatrix::zeros(n, d);
    let mut row = vec![0.0; n];
    for v in 0..n {
        adjacency_row_feature(g, v as u32, &mut row);
        for (u, &w) in row.iter().enumerate() {
            if w != 0.0 {
                vector::axpy(w, proj.row(u), x.row_mut(v));
            }
        }
    }
    x
}

impl Embedder for DpgGan {
    fn name(&self) -> &'static str {
        "DPGGAN"
    }

    fn embed(&self, g: &Graph) -> (DenseMatrix, EmbedReport) {
        let cfg = &self.config;
        assert!(g.num_edges() > 0, "cannot embed an edgeless graph");
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let n = g.num_nodes();
        let features = sketch_features(g, SKETCH_DIM, &mut rng);

        let mut encoder = Mlp::new(
            &[SKETCH_DIM, HIDDEN, cfg.dim],
            &[Activation::Tanh, Activation::Identity],
            &mut rng,
        );
        let mut disc = Mlp::new(
            &[cfg.dim, 32, 1],
            &[Activation::Tanh, Activation::Identity],
            &mut rng,
        );

        let batch = cfg.batch.min(g.num_edges());
        let gamma = (batch as f64 / g.num_edges() as f64).min(1.0);
        let mut accountant =
            BudgetedAccountant::new(PrivacyBudget::new(cfg.epsilon, cfg.delta), gamma, cfg.sigma);
        let steps_per_epoch = g.num_edges().div_ceil(batch);
        let noise_std = cfg.clip * cfg.sigma;
        let mut noise = GaussianSampler::new();

        let mut epochs_run = 0usize;
        let mut stopped = false;
        let mut adam_t = 0u64;

        'outer: for _epoch in 0..cfg.epochs {
            for _ in 0..steps_per_epoch {
                if !accountant.try_step() {
                    stopped = true;
                    break 'outer;
                }
                let mut fake_z = DenseMatrix::zeros(batch, cfg.dim);
                // DP-SGD pass over `batch` (edge, non-edge) pairs.
                let idx = rand::seq::index::sample(&mut rng, g.num_edges(), batch);
                for (row_slot, e) in idx.iter().enumerate() {
                    let (u, v) = g.edges()[e];
                    // A paired negative for class balance.
                    let (nu, nv) = random_non_edge(g, &mut rng);
                    let x = stack_rows(&features, &[u, v, nu, nv]);
                    let z = encoder.forward(&x);
                    // Edge logits: positive pair rows 0-1, negative 2-3.
                    let pos_logit = vector::dot(z.row(0), z.row(1));
                    let neg_logit = vector::dot(z.row(2), z.row(3));
                    let g_pos = vector::sigmoid(pos_logit) - 1.0;
                    let g_neg = vector::sigmoid(neg_logit);
                    let mut dz = DenseMatrix::zeros(4, cfg.dim);
                    vector::axpy(g_pos, z.row(1), dz.row_mut(0));
                    vector::axpy(g_pos, z.row(0), dz.row_mut(1));
                    vector::axpy(g_neg, z.row(3), dz.row_mut(2));
                    vector::axpy(g_neg, z.row(2), dz.row_mut(3));

                    // Adversarial generator gradient on z_u: encoder
                    // wants D(z_u) to read "real".
                    let zu = DenseMatrix::from_vec(1, cfg.dim, z.row(0).to_vec());
                    let d_logit = disc.forward(&zu);
                    let g_adv = ADV_WEIGHT * (vector::sigmoid(d_logit.get(0, 0)) - 1.0);
                    let d_in = disc.backward(&DenseMatrix::from_vec(1, 1, vec![g_adv]));
                    disc.zero_grads(); // discard D grads from the generator pass
                    vector::axpy(1.0, d_in.row(0), dz.row_mut(0));

                    encoder.backward(&dz);
                    encoder.clip_grads(cfg.clip);
                    encoder.flush_grads();

                    fake_z.row_mut(row_slot).copy_from_slice(z.row(0));
                }
                encoder.add_noise(noise_std, &mut noise, &mut rng);
                encoder.step_sgd(cfg.lr, batch);

                // Discriminator step (Adam) on real-vs-fake latents.
                adam_t += 1;
                let mut real_z = DenseMatrix::zeros(batch, cfg.dim);
                noise.fill_slice(real_z.as_mut_slice(), 1.0, &mut rng);
                let d_real = disc.forward(&real_z);
                let mut dy = DenseMatrix::zeros(batch, 1);
                for r in 0..batch {
                    dy.set(
                        r,
                        0,
                        (vector::sigmoid(d_real.get(r, 0)) - 1.0) / batch as f64,
                    );
                }
                disc.backward(&dy);
                disc.flush_grads();
                let d_fake = disc.forward(&fake_z);
                let mut dy = DenseMatrix::zeros(batch, 1);
                for r in 0..batch {
                    dy.set(r, 0, vector::sigmoid(d_fake.get(r, 0)) / batch as f64);
                }
                disc.backward(&dy);
                disc.flush_grads();
                disc.step_adam(1e-3, 2 * batch, adam_t);
            }
            epochs_run += 1;
        }

        // Final embeddings: one inference pass over all nodes.
        let emb = encoder.predict(&features);
        debug_assert_eq!(emb.rows(), n);
        let (eps_spent, _) = accountant.spent();
        (
            emb,
            EmbedReport {
                method: self.name(),
                epsilon_spent: eps_spent,
                epochs_run,
                stopped_by_budget: stopped,
            },
        )
    }
}

/// Copies the given feature rows into a fresh `k × d` matrix.
pub(crate) fn stack_rows(features: &DenseMatrix, rows: &[u32]) -> DenseMatrix {
    let mut m = DenseMatrix::zeros(rows.len(), features.cols());
    for (slot, &r) in rows.iter().enumerate() {
        m.row_mut(slot).copy_from_slice(features.row(r as usize));
    }
    m
}

/// Uniform non-edge pair (rejection sampling with a bounded fallback).
pub(crate) fn random_non_edge<R: Rng + ?Sized>(g: &Graph, rng: &mut R) -> (u32, u32) {
    let n = g.num_nodes() as u32;
    for _ in 0..256 {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v && !g.has_edge(u, v) {
            return (u, v);
        }
    }
    // Dense-graph fallback: an arbitrary distinct pair.
    (0, n - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use sp_datasets::generators;

    fn test_graph() -> Graph {
        let mut rng = StdRng::seed_from_u64(1);
        generators::barabasi_albert(120, 3, &mut rng)
    }

    fn quick_config() -> BaselineConfig {
        BaselineConfig {
            dim: 16,
            epochs: 2,
            batch: 16,
            ..BaselineConfig::default()
        }
    }

    #[test]
    fn embed_shape_and_report() {
        let g = test_graph();
        let (emb, rep) = DpgGan::new(quick_config()).embed(&g);
        assert_eq!(emb.rows(), g.num_nodes());
        assert_eq!(emb.cols(), 16);
        assert_eq!(rep.method, "DPGGAN");
        assert!(rep.epsilon_spent > 0.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let g = test_graph();
        let (a, _) = DpgGan::new(quick_config()).embed(&g);
        let (b, _) = DpgGan::new(quick_config()).embed(&g);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn tiny_budget_stops_early() {
        let g = test_graph();
        let mut cfg = quick_config();
        cfg.epsilon = 0.02;
        cfg.epochs = 50;
        cfg.sigma = 1.0; // burn budget fast
        let (_, rep) = DpgGan::new(cfg).embed(&g);
        assert!(rep.stopped_by_budget);
        assert!(rep.epochs_run < 50);
    }

    #[test]
    fn sketch_features_have_reasonable_norms() {
        let g = test_graph();
        let mut rng = SmallRng::seed_from_u64(2);
        let x = sketch_features(&g, 32, &mut rng);
        // JL sketch of a unit vector has expected squared norm 1.
        let mean_norm: f64 =
            (0..x.rows()).map(|r| vector::norm2(x.row(r))).sum::<f64>() / x.rows() as f64;
        assert!(
            (0.5..1.5).contains(&mean_norm),
            "mean sketch norm {mean_norm}"
        );
    }

    #[test]
    fn non_edge_sampler_avoids_edges() {
        let g = test_graph();
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..200 {
            let (u, v) = random_non_edge(&g, &mut rng);
            assert!(!g.has_edge(u, v));
        }
    }
}
