//! Shared baseline configuration and the [`Embedder`] interface.

use sp_graph::Graph;
use sp_linalg::DenseMatrix;

/// Hyper-parameters shared by every baseline. Defaults mirror the
/// paper's evaluation protocol (r = 128, δ = 1e-5, σ = 5) with
/// model-specific training lengths chosen to keep runs comparable to
/// SE-PrivGEmb's.
#[derive(Clone, Debug)]
pub struct BaselineConfig {
    /// Embedding dimension `r`.
    pub dim: usize,
    /// Target privacy ε.
    pub epsilon: f64,
    /// Target failure probability δ.
    pub delta: f64,
    /// Noise multiplier σ for the DP-SGD-based baselines
    /// (the aggregation-perturbation ones calibrate σ from the budget
    /// instead).
    pub sigma: f64,
    /// DP-SGD clipping threshold.
    pub clip: f64,
    /// Learning rate.
    pub lr: f64,
    /// Maximum training epochs.
    pub epochs: usize,
    /// Batch size (per-example unit depends on the model: node pairs
    /// for the autoencoders).
    pub batch: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        Self {
            dim: 128,
            epsilon: 3.5,
            delta: 1e-5,
            sigma: 5.0,
            clip: 2.0,
            lr: 0.01,
            epochs: 30,
            batch: 64,
            seed: 0xBA5E,
        }
    }
}

impl BaselineConfig {
    /// Validates ranges; first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.dim == 0 {
            return Err("dim must be >= 1".into());
        }
        if self.epsilon.is_nan() || self.epsilon <= 0.0 {
            return Err("epsilon must be positive".into());
        }
        if self.delta.is_nan() || self.delta <= 0.0 || self.delta >= 1.0 {
            return Err("delta must be in (0,1)".into());
        }
        if self.sigma.is_nan()
            || self.sigma <= 0.0
            || self.clip.is_nan()
            || self.clip <= 0.0
            || self.lr.is_nan()
            || self.lr <= 0.0
        {
            return Err("sigma, clip, lr must be positive".into());
        }
        if self.epochs == 0 || self.batch == 0 {
            return Err("epochs and batch must be >= 1".into());
        }
        Ok(())
    }
}

/// What a baseline run reports back.
#[derive(Clone, Debug)]
pub struct EmbedReport {
    /// Human-readable method name (`DPGGAN`, `GAP`, ...).
    pub method: &'static str,
    /// ε spent (DP-SGD methods) or ε the noise was calibrated to
    /// (aggregation-perturbation methods).
    pub epsilon_spent: f64,
    /// Epochs actually run (early stop on budget exhaustion).
    pub epochs_run: usize,
    /// True when the privacy budget ended training early.
    pub stopped_by_budget: bool,
}

/// Anything that maps a graph to node embeddings under a privacy
/// budget.
pub trait Embedder {
    /// The method's display name.
    fn name(&self) -> &'static str;
    /// Produces a `|V| × dim` embedding matrix and a run report.
    fn embed(&self, g: &Graph) -> (DenseMatrix, EmbedReport);
}

/// Builds the row-normalised adjacency-row feature for node `v` into
/// `out` (length `|V|`): the input representation of the autoencoder
/// baselines. Normalisation keeps per-example input norms at 1, which
/// in turn keeps DP-SGD's clipping threshold meaningful across
/// degrees.
pub fn adjacency_row_feature(g: &Graph, v: u32, out: &mut [f64]) {
    assert_eq!(out.len(), g.num_nodes(), "feature buffer length mismatch");
    out.iter_mut().for_each(|x| *x = 0.0);
    let d = g.degree(v);
    if d == 0 {
        return;
    }
    let w = 1.0 / (d as f64).sqrt();
    for &u in g.neighbors(v) {
        out[u as usize] = w;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        BaselineConfig::default().validate().unwrap();
    }

    #[test]
    fn validation_catches_each_field() {
        let ok = BaselineConfig::default();
        let mut c = ok.clone();
        c.dim = 0;
        assert!(c.validate().is_err());
        let mut c = ok.clone();
        c.epsilon = -1.0;
        assert!(c.validate().is_err());
        let mut c = ok.clone();
        c.delta = 1.0;
        assert!(c.validate().is_err());
        let mut c = ok.clone();
        c.sigma = 0.0;
        assert!(c.validate().is_err());
        let mut c = ok;
        c.epochs = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn adjacency_feature_is_unit_norm() {
        let g = Graph::from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)]);
        let mut buf = vec![0.0; 5];
        adjacency_row_feature(&g, 0, &mut buf);
        let norm: f64 = buf.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-12);
        // Isolated-ish node handling: leaf 1 has degree 1.
        adjacency_row_feature(&g, 1, &mut buf);
        assert_eq!(buf[0], 1.0);
        assert_eq!(buf.iter().filter(|&&x| x != 0.0).count(), 1);
    }

    #[test]
    fn isolated_node_feature_is_zero() {
        let g = Graph::from_edges(3, [(0, 1)]);
        let mut buf = vec![9.0; 3];
        adjacency_row_feature(&g, 2, &mut buf);
        assert!(buf.iter().all(|&x| x == 0.0));
    }
}
