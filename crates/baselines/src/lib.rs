//! # sp-baselines
//!
//! Rust stand-ins for the four private graph-learning baselines the
//! paper compares against (§VI-A), all exposing the same
//! [`Embedder`] interface so the experiment harness treats every
//! method uniformly:
//!
//! - [`dpggan`]: **DPGGAN** (Yang et al., IJCAI'21) — an adversarially
//!   regularised graph autoencoder trained with DP-SGD and a moments-
//!   style accountant; converges prematurely at small ε, as the paper
//!   observes;
//! - [`dpgvae`]: **DPGVAE** (same work) — the variational variant:
//!   per-node Gaussian posteriors, reparameterised samples, KL to the
//!   prior, inner-product decoder, DP-SGD;
//! - [`gap`]: **GAP** (Sajadmanesh et al., USENIX Sec'23) —
//!   aggregation perturbation: Gaussian noise injected into every hop
//!   of multi-hop neighbourhood aggregation, re-perturbed each
//!   training epoch (the compatibility issue the paper describes),
//!   with a non-private post-processing head;
//! - [`progap`]: **ProGAP** (Sajadmanesh & Gatica-Perez, WSDM'24) —
//!   the progressive variant: each stage's noisy aggregate is computed
//!   once and cached, so the budget divides over `L` mechanisms
//!   instead of `L × epochs`, buying slightly better utility than GAP.
//!
//! These are faithful *small-scale* reimplementations, not ports of
//! the official TensorFlow/PyTorch code: the mechanism type, noise
//! calibration (same RDP accountant as SE-PrivGEmb), model family,
//! and embedding dimension match; absolute utilities differ (see the
//! substitution notes in DESIGN.md). Graphs carry no node features in
//! the paper's setting, so — "similar to prior research \[32\]" — GAP
//! and ProGAP receive randomly generated features.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod common;
pub mod dpggan;
pub mod dpgvae;
pub mod gap;
pub mod progap;

pub use common::{BaselineConfig, EmbedReport, Embedder};
pub use dpggan::DpgGan;
pub use dpgvae::DpgVae;
pub use gap::Gap;
pub use progap::ProGap;
