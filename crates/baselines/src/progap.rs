//! ProGAP stand-in: progressive aggregation perturbation.
//!
//! ProGAP (Sajadmanesh & Gatica-Perez, WSDM'24) restructures GAP into
//! progressive stages: each stage computes its noisy aggregate *once*,
//! caches it, and trains on top of the frozen result. The privacy
//! budget therefore divides over `hops` mechanisms instead of GAP's
//! `hops × epochs`, which is why the paper observes "ProGAP offers
//! slightly better utility than GAP" while both trail SE-PrivGEmb.
//! The aggregation core is shared with [`crate::gap`]; only the
//! mechanism count differs.

use crate::common::{BaselineConfig, EmbedReport, Embedder};
use crate::gap::{noisy_multihop_embedding, HOPS};
use sp_dp::calibrate_noise_multiplier;
use sp_graph::Graph;
use sp_linalg::DenseMatrix;

/// The ProGAP baseline.
#[derive(Clone, Debug)]
pub struct ProGap {
    config: BaselineConfig,
}

impl ProGap {
    /// New instance; panics on invalid config.
    pub fn new(config: BaselineConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid BaselineConfig: {e}");
        }
        Self { config }
    }
}

impl Embedder for ProGap {
    fn name(&self) -> &'static str {
        "ProGAP"
    }

    fn embed(&self, g: &Graph) -> (DenseMatrix, EmbedReport) {
        let cfg = &self.config;
        // Progressive caching: one mechanism per stage, full stop.
        let sigma = calibrate_noise_multiplier(HOPS as u64, cfg.epsilon, cfg.delta);
        let emb = noisy_multihop_embedding(g, cfg.dim, HOPS, sigma, cfg.seed ^ 0x960);
        (
            emb,
            EmbedReport {
                method: self.name(),
                epsilon_spent: cfg.epsilon,
                epochs_run: cfg.epochs,
                stopped_by_budget: false,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gap::Gap;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sp_datasets::generators;
    use sp_eval::{struc_equ, PairSelection};

    fn test_graph() -> Graph {
        let mut rng = StdRng::seed_from_u64(4);
        generators::barabasi_albert(150, 4, &mut rng)
    }

    #[test]
    fn embedding_shape() {
        let g = test_graph();
        let cfg = BaselineConfig {
            dim: 16,
            ..BaselineConfig::default()
        };
        let (emb, rep) = ProGap::new(cfg).embed(&g);
        assert_eq!(emb.shape(), (150, 16));
        assert_eq!(rep.method, "ProGAP");
        assert!(!rep.stopped_by_budget);
    }

    #[test]
    fn progap_beats_gap_on_structural_signal() {
        // Same budget, same seed family: ProGAP's lower mechanism
        // count must preserve more structure. Averaged over seeds to
        // keep the comparison robust.
        let g = test_graph();
        let mut pro_total = 0.0;
        let mut gap_total = 0.0;
        for seed in 0..5u64 {
            let cfg = BaselineConfig {
                dim: 32,
                epsilon: 1.0,
                epochs: 20,
                seed,
                ..BaselineConfig::default()
            };
            let (pro, _) = ProGap::new(cfg.clone()).embed(&g);
            let (gap, _) = Gap::new(cfg).embed(&g);
            pro_total += struc_equ(&g, &pro, PairSelection::All).unwrap_or(0.0);
            gap_total += struc_equ(&g, &gap, PairSelection::All).unwrap_or(0.0);
        }
        assert!(
            pro_total > gap_total,
            "ProGAP {pro_total} should beat GAP {gap_total} over 5 seeds"
        );
    }
}
