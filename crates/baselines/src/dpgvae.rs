//! DPGVAE stand-in: variational graph autoencoder with DP-SGD.
//!
//! The variational sibling of DPGGAN (Yang et al., IJCAI'21): the
//! encoder produces a per-node Gaussian posterior `N(μ_v, e^{lv_v})`,
//! latents are drawn with the reparameterisation trick, the decoder is
//! the usual inner product, and the loss adds a KL regulariser pulling
//! the posterior towards `N(0, I)`. Privacy: per-pair DP-SGD on the
//! full encoder (trunk + both heads) — joint clip, Gaussian noise,
//! subsampled RDP accounting with early stop.

use crate::common::{BaselineConfig, EmbedReport, Embedder};
use crate::dpggan::{random_non_edge, sketch_features, stack_rows};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sp_dp::{BudgetedAccountant, GaussianSampler, PrivacyBudget};
use sp_graph::Graph;
use sp_linalg::{vector, DenseMatrix};
use sp_nn::{Activation, Mlp};

/// Width of the random-projection input sketch.
const SKETCH_DIM: usize = 128;
/// Trunk hidden width.
const HIDDEN: usize = 64;
/// KL weight (β-VAE style down-weighting keeps reconstruction the
/// dominant signal, as in the reference implementation's defaults).
const KL_WEIGHT: f64 = 0.05;

/// The DPGVAE baseline.
#[derive(Clone, Debug)]
pub struct DpgVae {
    config: BaselineConfig,
}

impl DpgVae {
    /// New instance; panics on invalid config.
    pub fn new(config: BaselineConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid BaselineConfig: {e}");
        }
        Self { config }
    }
}

impl Embedder for DpgVae {
    fn name(&self) -> &'static str {
        "DPGVAE"
    }

    fn embed(&self, g: &Graph) -> (DenseMatrix, EmbedReport) {
        let cfg = &self.config;
        assert!(g.num_edges() > 0, "cannot embed an edgeless graph");
        let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x0A0E);
        let features = sketch_features(g, SKETCH_DIM, &mut rng);

        let mut trunk = Mlp::new(&[SKETCH_DIM, HIDDEN], &[Activation::Tanh], &mut rng);
        let mut head_mu = Mlp::new(&[HIDDEN, cfg.dim], &[Activation::Identity], &mut rng);
        let mut head_lv = Mlp::new(&[HIDDEN, cfg.dim], &[Activation::Identity], &mut rng);

        let batch = cfg.batch.min(g.num_edges());
        let gamma = (batch as f64 / g.num_edges() as f64).min(1.0);
        let mut accountant =
            BudgetedAccountant::new(PrivacyBudget::new(cfg.epsilon, cfg.delta), gamma, cfg.sigma);
        let steps_per_epoch = g.num_edges().div_ceil(batch);
        let noise_std = cfg.clip * cfg.sigma;
        let mut noise = GaussianSampler::new();

        let mut epochs_run = 0usize;
        let mut stopped = false;

        'outer: for _epoch in 0..cfg.epochs {
            for _ in 0..steps_per_epoch {
                if !accountant.try_step() {
                    stopped = true;
                    break 'outer;
                }
                let idx = rand::seq::index::sample(&mut rng, g.num_edges(), batch);
                for e in idx.iter() {
                    let (u, v) = g.edges()[e];
                    let (nu, nv) = random_non_edge(g, &mut rng);
                    let x = stack_rows(&features, &[u, v, nu, nv]);

                    // Forward: trunk -> (mu, logvar) -> reparameterised z.
                    let h = trunk.forward(&x);
                    let mu = head_mu.forward(&h);
                    let lv = head_lv.forward(&h);
                    let mut eps = DenseMatrix::zeros(4, cfg.dim);
                    noise.fill_slice(eps.as_mut_slice(), 1.0, &mut rng);
                    let mut z = mu.clone();
                    for i in 0..z.as_slice().len() {
                        z.as_mut_slice()[i] += (0.5 * lv.as_slice()[i]).exp() * eps.as_slice()[i];
                    }

                    // Reconstruction gradients (BCE on inner products).
                    let g_pos = vector::sigmoid(vector::dot(z.row(0), z.row(1))) - 1.0;
                    let g_neg = vector::sigmoid(vector::dot(z.row(2), z.row(3)));
                    let mut dz = DenseMatrix::zeros(4, cfg.dim);
                    vector::axpy(g_pos, z.row(1), dz.row_mut(0));
                    vector::axpy(g_pos, z.row(0), dz.row_mut(1));
                    vector::axpy(g_neg, z.row(3), dz.row_mut(2));
                    vector::axpy(g_neg, z.row(2), dz.row_mut(3));

                    // Chain rule through the reparameterisation plus KL.
                    let mut dmu = dz.clone();
                    let mut dlv = DenseMatrix::zeros(4, cfg.dim);
                    let count = dz.as_slice().len().max(1) as f64;
                    for i in 0..dz.as_slice().len() {
                        let std = (0.5 * lv.as_slice()[i]).exp();
                        dlv.as_mut_slice()[i] = dz.as_slice()[i] * eps.as_slice()[i] * std * 0.5;
                        // KL terms: dKL/dμ = μ/n, dKL/dlv = (e^lv - 1)/(2n).
                        dmu.as_mut_slice()[i] += KL_WEIGHT * mu.as_slice()[i] / count;
                        dlv.as_mut_slice()[i] +=
                            KL_WEIGHT * (lv.as_slice()[i].exp() - 1.0) / (2.0 * count);
                    }

                    // Backward through heads into the trunk.
                    let dh_mu = head_mu.backward(&dmu);
                    let dh_lv = head_lv.backward(&dlv);
                    let mut dh = dh_mu;
                    dh.add_scaled(1.0, &dh_lv);
                    trunk.backward(&dh);

                    // Joint clip across trunk + heads, then flush.
                    let joint = (trunk.grad_norm().powi(2)
                        + head_mu.grad_norm().powi(2)
                        + head_lv.grad_norm().powi(2))
                    .sqrt();
                    if joint > cfg.clip {
                        let f = cfg.clip / joint;
                        scale_all(&mut trunk, f);
                        scale_all(&mut head_mu, f);
                        scale_all(&mut head_lv, f);
                    }
                    trunk.flush_grads();
                    head_mu.flush_grads();
                    head_lv.flush_grads();
                }
                trunk.add_noise(noise_std, &mut noise, &mut rng);
                head_mu.add_noise(noise_std, &mut noise, &mut rng);
                head_lv.add_noise(noise_std, &mut noise, &mut rng);
                trunk.step_sgd(cfg.lr, batch);
                head_mu.step_sgd(cfg.lr, batch);
                head_lv.step_sgd(cfg.lr, batch);
            }
            epochs_run += 1;
        }

        // Embeddings = posterior means.
        let h = trunk.predict(&features);
        let emb = head_mu.predict(&h);
        let (eps_spent, _) = accountant.spent();
        (
            emb,
            EmbedReport {
                method: self.name(),
                epsilon_spent: eps_spent,
                epochs_run,
                stopped_by_budget: stopped,
            },
        )
    }
}

/// Scales per-example gradients of every layer in an MLP (clip helper;
/// `Mlp::clip_grads` clips per-network, the VAE needs a *joint* clip
/// across three networks).
fn scale_all(mlp: &mut Mlp, f: f64) {
    // Implemented via the public clip API: clipping to `current * f`
    // norm scales by exactly f when f < 1.
    let n = mlp.grad_norm();
    if n > 0.0 && f < 1.0 {
        mlp.clip_grads(n * f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use sp_datasets::generators;

    fn test_graph() -> Graph {
        let mut rng = StdRng::seed_from_u64(2);
        generators::barabasi_albert(100, 3, &mut rng)
    }

    fn quick_config() -> BaselineConfig {
        BaselineConfig {
            dim: 12,
            epochs: 2,
            batch: 16,
            ..BaselineConfig::default()
        }
    }

    #[test]
    fn embed_shape_and_budget() {
        let g = test_graph();
        let (emb, rep) = DpgVae::new(quick_config()).embed(&g);
        assert_eq!(emb.shape(), (100, 12));
        assert_eq!(rep.method, "DPGVAE");
        assert!(rep.epsilon_spent > 0.0);
        assert!(emb.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn deterministic_under_seed() {
        let g = test_graph();
        let (a, _) = DpgVae::new(quick_config()).embed(&g);
        let (b, _) = DpgVae::new(quick_config()).embed(&g);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn budget_exhaustion_stops_training() {
        let g = test_graph();
        let mut cfg = quick_config();
        cfg.epsilon = 0.02;
        cfg.sigma = 1.0;
        cfg.epochs = 50;
        let (_, rep) = DpgVae::new(cfg).embed(&g);
        assert!(rep.stopped_by_budget);
    }
}
