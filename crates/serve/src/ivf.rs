//! IVF-style coarse quantizer: seeded k-means centroids, inverted
//! lists, exact per-list rerank.
//!
//! The index answers maximum-inner-product top-k by probing the
//! `nprobe` inverted lists whose centroids are nearest (L2) to the
//! query and reranking their members with the **exact** scoring used by
//! the brute-force oracle. `nprobe = nlist` therefore degenerates to
//! the oracle itself — recall 1.0 by construction — which is the
//! property the smoke tests lean on for tiny models.
//!
//! Construction is deterministic for any thread count: the per-node
//! centroid assignment runs through [`sp_parallel::par_map`] (order
//! preserving), and the centroid update folds the assignments serially
//! in node order with f64 accumulators. Ties in nearest-centroid
//! selection break toward the lower centroid id via a total order.

use crate::store::{EmbeddingStore, Neighbor, TopK};
use sp_parallel::{par_map, resolve_threads};

/// Index construction and default-query parameters.
#[derive(Clone, Copy, Debug)]
pub struct IvfConfig {
    /// Number of coarse centroids (inverted lists). Clamped to the
    /// node count at build time.
    pub nlist: usize,
    /// Default number of lists probed per query (clamped to `nlist`).
    pub nprobe: usize,
    /// Lloyd iterations for the k-means training.
    pub iters: usize,
    /// Seed for the centroid initialisation.
    pub seed: u64,
}

impl Default for IvfConfig {
    fn default() -> Self {
        Self {
            nlist: 64,
            nprobe: 8,
            iters: 6,
            seed: 0x1DF5EED,
        }
    }
}

/// The built index: coarse centroids plus one node list per centroid.
#[derive(Clone, Debug)]
pub struct IvfIndex {
    dim: usize,
    nprobe_default: usize,
    /// `nlist * dim`, row-major.
    centroids: Vec<f32>,
    /// Node ids per list, ascending within each list.
    lists: Vec<Vec<u32>>,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Squared L2 distance with a fixed canonical accumulation order —
/// the lane-structured [`sp_linalg::vector::dist2_sq_f32`] kernel
/// (k-means assignment and probe ordering both route through here, so
/// build and query see the identical order).
#[inline]
fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    sp_linalg::vector::dist2_sq_f32(a, b)
}

/// The seeded distinct-node pick sequence used to initialise the
/// k-means centroids: walk a splitmix64 stream over node indices,
/// skipping repeats via a seen-bitmap (O(1) per candidate; the old
/// `picked.contains` scan was O(nlist) each, O(nlist²) total, which
/// hurt at `nlist >= 512`). Falls back to a plain sweep if the stream
/// is unlucky (tiny n). The sequence is pinned by a golden test: the
/// bitmap rewrite must keep it bit-identical to the original scan.
fn seed_centroid_nodes(seed: u64, n: usize, nlist: usize) -> Vec<u32> {
    let mut picked: Vec<u32> = Vec::with_capacity(nlist);
    if n == 0 {
        return picked;
    }
    let mut seen = vec![false; n];
    let mut state = seed;
    let mut guard = 0usize;
    while picked.len() < nlist {
        state = splitmix64(state);
        let cand = (state % n as u64) as u32;
        if !seen[cand as usize] {
            seen[cand as usize] = true;
            picked.push(cand);
        }
        guard += 1;
        if guard > 64 * nlist {
            for cand in 0..n as u32 {
                if picked.len() == nlist {
                    break;
                }
                if !seen[cand as usize] {
                    seen[cand as usize] = true;
                    picked.push(cand);
                }
            }
        }
    }
    picked
}

/// Nearest centroid of `v` under L2, ties toward the lower id.
fn nearest_centroid(v: &[f32], centroids: &[f32], dim: usize) -> u32 {
    let mut best = 0u32;
    let mut best_d = f32::INFINITY;
    for (c, row) in centroids.chunks_exact(dim.max(1)).enumerate() {
        let d = l2_sq(v, row);
        if d.total_cmp(&best_d) == std::cmp::Ordering::Less {
            best = c as u32;
            best_d = d;
        }
    }
    best
}

impl IvfIndex {
    /// Builds the index over every node of `store`. `threads = None`
    /// resolves via `SP_THREADS` / available parallelism; the built
    /// index is bit-identical for every thread count.
    pub fn build(store: &EmbeddingStore, cfg: IvfConfig, threads: Option<usize>) -> Self {
        let n = store.num_nodes();
        let dim = store.dim();
        let nlist = cfg.nlist.clamp(1, n.max(1));
        let threads = resolve_threads(threads);

        // Seeded distinct-node initialisation (seen-bitmap, see
        // `seed_centroid_nodes`).
        let picked = seed_centroid_nodes(cfg.seed, n, nlist);
        let mut centroids: Vec<f32> = Vec::with_capacity(nlist * dim);
        for &node in &picked {
            centroids.extend_from_slice(store.embedding(node));
        }

        let nodes: Vec<u32> = (0..n as u32).collect();
        let mut assignment: Vec<u32> = Vec::new();
        for _ in 0..cfg.iters.max(1) {
            // Deterministic parallel assignment (order-preserving map).
            assignment = par_map(&nodes, threads, |&node| {
                nearest_centroid(store.embedding(node), &centroids, dim)
            });
            // Serial fixed-order update with f64 accumulators.
            let mut sums = vec![0.0f64; nlist * dim];
            let mut counts = vec![0u64; nlist];
            for (node, &c) in assignment.iter().enumerate() {
                counts[c as usize] += 1;
                let row = store.embedding(node as u32);
                let acc = &mut sums[c as usize * dim..(c as usize + 1) * dim];
                for (a, &v) in acc.iter_mut().zip(row) {
                    *a += v as f64;
                }
            }
            for c in 0..nlist {
                if counts[c] == 0 {
                    continue; // empty list keeps its previous centroid
                }
                let inv = 1.0 / counts[c] as f64;
                for d in 0..dim {
                    centroids[c * dim + d] = (sums[c * dim + d] * inv) as f32;
                }
            }
        }

        // Final inverted lists from the last assignment, node-ascending
        // within each list by construction.
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); nlist];
        for (node, &c) in assignment.iter().enumerate() {
            lists[c as usize].push(node as u32);
        }

        Self {
            dim,
            nprobe_default: cfg.nprobe.clamp(1, nlist),
            centroids,
            lists,
        }
    }

    /// Number of inverted lists.
    pub fn nlist(&self) -> usize {
        self.lists.len()
    }

    /// The default probe count baked in at build time.
    pub fn nprobe_default(&self) -> usize {
        self.nprobe_default
    }

    /// Inverted-list sizes (diagnostics; sums to the node count).
    pub fn list_sizes(&self) -> Vec<usize> {
        self.lists.iter().map(|l| l.len()).collect()
    }

    /// The `nprobe` list ids nearest the query (L2 to centroid,
    /// ascending; ties toward the lower list id).
    fn probe_order(&self, query: &[f32], nprobe: usize) -> Vec<u32> {
        let mut order: Vec<(u32, f32)> = self
            .centroids
            .chunks_exact(self.dim.max(1))
            .enumerate()
            .map(|(c, row)| (c as u32, l2_sq(query, row)))
            .collect();
        order.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        order.truncate(nprobe.clamp(1, self.nlist()));
        order.into_iter().map(|(c, _)| c).collect()
    }

    /// Approximate top-k by inner product: probe the nearest `nprobe`
    /// lists, exact-rerank their members.
    ///
    /// # Panics
    /// Panics if `query.len()` differs from the store dimension, or if
    /// the index was built over a different store size.
    pub fn top_k(
        &self,
        store: &EmbeddingStore,
        query: &[f32],
        k: usize,
        nprobe: usize,
    ) -> Vec<Neighbor> {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        assert_eq!(store.dim(), self.dim, "store dimension mismatch");
        let mut top = TopK::new(k);
        for c in self.probe_order(query, nprobe) {
            for &node in &self.lists[c as usize] {
                top.push(Neighbor {
                    node,
                    score: store.score(query, node),
                });
            }
        }
        top.into_sorted()
    }

    /// [`IvfIndex::top_k`] with the build-time default probe count.
    pub fn top_k_default(&self, store: &EmbeddingStore, query: &[f32], k: usize) -> Vec<Neighbor> {
        self.top_k(store, query, k, self.nprobe_default)
    }

    /// Approximate top-k neighbours of a stored node, excluding the
    /// node itself.
    pub fn top_k_node(
        &self,
        store: &EmbeddingStore,
        node: u32,
        k: usize,
        nprobe: usize,
    ) -> Vec<Neighbor> {
        let query = store.embedding(node).to_vec();
        let mut out = self.top_k(store, &query, k + 1, nprobe);
        out.retain(|n| n.node != node);
        out.truncate(k);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::recall_at_k;
    use crate::synthetic::clustered_embedding;
    use sp_model::Provenance;

    fn clustered_store(n: usize, dim: usize, clusters: usize) -> EmbeddingStore {
        EmbeddingStore::from_f32(
            clustered_embedding(n, dim, clusters, 0xBEEF),
            Provenance::non_private(0),
        )
    }

    #[test]
    fn lists_partition_the_nodes() {
        let store = clustered_store(500, 8, 10);
        let idx = IvfIndex::build(&store, IvfConfig::default(), Some(1));
        let sizes = idx.list_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 500);
        let mut seen = vec![false; 500];
        for c in 0..idx.nlist() {
            for &node in &idx.lists[c] {
                assert!(!seen[node as usize], "node {node} in two lists");
                seen[node as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn full_probe_equals_the_oracle() {
        let store = clustered_store(300, 6, 8);
        let cfg = IvfConfig {
            nlist: 16,
            ..IvfConfig::default()
        };
        let idx = IvfIndex::build(&store, cfg, Some(1));
        for node in [0u32, 7, 123, 299] {
            let exact = store.exact_top_k_node(node, 10);
            let approx = idx.top_k_node(&store, node, 10, idx.nlist());
            assert_eq!(
                approx
                    .iter()
                    .map(|n| (n.node, n.score.to_bits()))
                    .collect::<Vec<_>>(),
                exact
                    .iter()
                    .map(|n| (n.node, n.score.to_bits()))
                    .collect::<Vec<_>>(),
                "node {node}: nprobe=nlist must reproduce the oracle exactly"
            );
        }
    }

    #[test]
    fn partial_probe_recall_is_high_on_clustered_data() {
        let store = clustered_store(2000, 12, 16);
        let cfg = IvfConfig {
            nlist: 16,
            nprobe: 4,
            ..IvfConfig::default()
        };
        let idx = IvfIndex::build(&store, cfg, Some(1));
        let mut total = 0.0;
        let queries = 40;
        for q in 0..queries {
            let node = (q * 47) as u32 % 2000;
            let exact = store.exact_top_k_node(node, 10);
            let approx = idx.top_k_node(&store, node, 10, 4);
            total += recall_at_k(&approx, &exact);
        }
        let recall = total / queries as f64;
        assert!(recall >= 0.95, "recall@10 {recall} below 0.95");
    }

    #[test]
    fn build_is_thread_count_invariant() {
        let store = clustered_store(400, 8, 8);
        let cfg = IvfConfig {
            nlist: 8,
            ..IvfConfig::default()
        };
        let one = IvfIndex::build(&store, cfg, Some(1));
        let four = IvfIndex::build(&store, cfg, Some(4));
        assert_eq!(
            one.centroids
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            four.centroids
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
        );
        assert_eq!(one.lists, four.lists);
    }

    /// Pre-bitmap reference: the original `picked.contains` scan.
    fn seed_centroid_nodes_reference(seed: u64, n: usize, nlist: usize) -> Vec<u32> {
        let mut picked: Vec<u32> = Vec::with_capacity(nlist);
        let mut state = seed;
        let mut guard = 0usize;
        while picked.len() < nlist && n > 0 {
            state = splitmix64(state);
            let cand = (state % n as u64) as u32;
            if !picked.contains(&cand) {
                picked.push(cand);
            }
            guard += 1;
            if guard > 64 * nlist {
                for cand in 0..n as u32 {
                    if picked.len() == nlist {
                        break;
                    }
                    if !picked.contains(&cand) {
                        picked.push(cand);
                    }
                }
            }
        }
        picked
    }

    #[test]
    fn bitmap_seeding_is_bit_identical_to_the_contains_scan() {
        // The O(n) bitmap must reproduce the O(nlist²) original
        // exactly — same candidates accepted in the same order —
        // including the unlucky-stream sweep fallback (n == nlist).
        for (seed, n, nlist) in [
            (IvfConfig::default().seed, 10_312, 64),
            (IvfConfig::default().seed, 1000, 512),
            (0, 7, 7),
            (42, 100, 100),
            (0xDEAD_BEEF, 3, 1),
            (1, 2048, 1024),
        ] {
            assert_eq!(
                seed_centroid_nodes(seed, n, nlist),
                seed_centroid_nodes_reference(seed, n, nlist),
                "seeding diverged for seed={seed:#x} n={n} nlist={nlist}"
            );
        }
        assert!(seed_centroid_nodes(1, 0, 4).is_empty());
    }

    #[test]
    fn seeding_golden_on_default_seed() {
        // Golden pin for the default seed at the acceptance-gate scale
        // (10,312 nodes, 64 lists): FNV-1a over the picked sequence.
        let picked = seed_centroid_nodes(IvfConfig::default().seed, 10_312, 64);
        assert_eq!(picked.len(), 64);
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &node in &picked {
            for b in (node as u64).to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        assert_eq!(
            h, 0x1257_fc66_aa61_2c38,
            "centroid pick sequence drifted from the pinned golden"
        );
    }

    #[test]
    fn nlist_larger_than_n_is_clamped() {
        let store = clustered_store(5, 4, 2);
        let cfg = IvfConfig {
            nlist: 64,
            ..IvfConfig::default()
        };
        let idx = IvfIndex::build(&store, cfg, Some(1));
        assert_eq!(idx.nlist(), 5);
        assert_eq!(idx.list_sizes().iter().sum::<usize>(), 5);
    }
}
