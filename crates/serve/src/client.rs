//! A small blocking client for the `SPSERVE 1` line protocol — the
//! counterpart of [`crate::server`], used by the TCP benchmark path,
//! the integration suites, and any tool that wants typed answers
//! instead of raw lines.
//!
//! The client parses the `bits=` field (raw f32 bit patterns), so the
//! scores it returns are **bit-identical** to what the server computed
//! — no decimal round-tripping on the wire.

use crate::protocol::PROTOCOL_VERSION;
use crate::store::Neighbor;
use sp_fault::retry::{transient_io, RetryPolicy};
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Typed failure of a client call.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (refused, reset, timeout, …).
    Io(std::io::Error),
    /// The server answered with an `ERR` line.
    Server {
        /// Protocol error code (`400`, `404`, `408`, `500`, `503`).
        code: u16,
        /// The server's message.
        message: String,
    },
    /// The server sent something the client cannot parse (version
    /// skew, truncated block, garbage).
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Server { code, message } => write!(f, "server error {code}: {message}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Provenance and shape reported by `INFO`.
#[derive(Clone, Debug, PartialEq)]
pub struct ServerInfo {
    /// Served model generation.
    pub version: u64,
    /// Node count.
    pub nodes: usize,
    /// Embedding dimension.
    pub dim: usize,
    /// Training seed from the model's provenance header.
    pub seed: u64,
    /// ε spent by the run that produced the served model.
    pub epsilon: f64,
    /// δ spent by the run that produced the served model.
    pub delta: f64,
    /// Index description (`exact` or `ivf(nlist=…,nprobe=…)`).
    pub index: String,
}

/// One node's ranked answer inside a bulk [`ServeClient::top_k_bulk`]
/// response: `(queried node, neighbours)`.
pub type BulkAnswer = (u32, Vec<Neighbor>);

/// One connection speaking `SPSERVE 1`.
#[derive(Debug)]
pub struct ServeClient {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl ServeClient {
    /// Connects and validates the greeting.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        Self::from_stream(TcpStream::connect(addr)?)
    }

    /// Like [`ServeClient::connect`], but bounds the TCP connect to
    /// `timeout` **per resolved address** via
    /// `TcpStream::connect_timeout` — a dead or black-holed server
    /// fails fast instead of hanging on the OS default (minutes on
    /// most platforms). Addresses are tried in resolution order; the
    /// last failure is returned if none succeeds.
    pub fn connect_timeout(
        addr: impl ToSocketAddrs,
        timeout: Duration,
    ) -> Result<Self, ClientError> {
        let mut last: Option<std::io::Error> = None;
        for resolved in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&resolved, timeout) {
                Ok(stream) => return Self::from_stream(stream),
                Err(e) => last = Some(e),
            }
        }
        Err(ClientError::Io(last.unwrap_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "address resolved to no socket addresses",
            )
        })))
    }

    /// [`ServeClient::connect_timeout`] with bounded retry under
    /// `policy`: transient connect/greeting failures (refused while the
    /// server restarts, reset, a connection dropped before the
    /// greeting) are absorbed with the policy's deterministic jittered
    /// backoff; permanent errors and protocol errors surface
    /// immediately.
    pub fn connect_with_retry(
        addr: impl ToSocketAddrs,
        timeout: Duration,
        policy: &RetryPolicy,
    ) -> Result<Self, ClientError> {
        policy.run(
            |e: &ClientError| matches!(e, ClientError::Io(io) if transient_io(io.kind())),
            || Self::connect_timeout(&addr, timeout),
        )
    }

    /// Runs `op` against a fresh connection, reconnecting (with
    /// `policy`'s backoff) when the attempt dies on a transient IO
    /// error — the graceful-degradation loop for callers that can
    /// replay an idempotent request, e.g. a query retried across a
    /// server restart. Each attempt gets a new connection, so no torn
    /// protocol state leaks between tries.
    pub fn with_retry<T>(
        addr: impl ToSocketAddrs,
        timeout: Duration,
        policy: &RetryPolicy,
        mut op: impl FnMut(&mut ServeClient) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        policy.run(
            |e: &ClientError| matches!(e, ClientError::Io(io) if transient_io(io.kind())),
            || {
                let mut client = Self::connect_timeout(&addr, timeout)?;
                op(&mut client)
            },
        )
    }

    fn from_stream(stream: TcpStream) -> Result<Self, ClientError> {
        stream.set_nodelay(true).ok();
        let mut client = Self {
            reader: BufReader::new(stream.try_clone()?),
            stream,
        };
        let greeting = client.read_line()?;
        if let Some(rest) = greeting.strip_prefix("ERR ") {
            let (code, message) = split_err(rest);
            return Err(ClientError::Server { code, message });
        }
        let expected = format!("SPSERVE {PROTOCOL_VERSION} READY");
        if greeting != expected {
            return Err(ClientError::Protocol(format!(
                "unexpected greeting {greeting:?} (want {expected:?})"
            )));
        }
        Ok(client)
    }

    /// Applies socket read/write timeouts to subsequent calls.
    pub fn set_timeout(&self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.stream.set_read_timeout(timeout)?;
        self.stream.set_write_timeout(timeout)?;
        Ok(())
    }

    /// Sends raw bytes (failure-injection tests use this to speak
    /// garbage at the server).
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), ClientError> {
        self.stream.write_all(bytes)?;
        Ok(())
    }

    /// Reads one response line, stripped of the terminator.
    pub fn read_line(&mut self) -> Result<String, ClientError> {
        let mut line = String::new();
        let mut raw = Vec::new();
        self.reader.read_until(b'\n', &mut raw)?;
        if raw.is_empty() {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        line.push_str(&String::from_utf8_lossy(&raw));
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    fn request_line(&mut self, request: &str) -> Result<String, ClientError> {
        self.stream.write_all(request.as_bytes())?;
        self.stream.write_all(b"\n")?;
        let line = self.read_line()?;
        if let Some(rest) = line.strip_prefix("ERR ") {
            let (code, message) = split_err(rest);
            return Err(ClientError::Server { code, message });
        }
        Ok(line)
    }

    /// `TOPK node k` → `(generation version, ranked neighbours)`,
    /// scores recovered bit-exactly from the wire.
    pub fn top_k(&mut self, node: u32, k: usize) -> Result<(u64, Vec<Neighbor>), ClientError> {
        let header = self.request_line(&format!("TOPK {node} {k}"))?;
        let version = field(&header, "version=")?;
        let count: usize = field(&header, "count=")?;
        let mut answer = Vec::with_capacity(count);
        for rank in 0..count {
            let line = self.read_line()?;
            let mut parts = line.split_ascii_whitespace();
            let got_rank: usize = parse_next(&mut parts, "rank")?;
            if got_rank != rank + 1 {
                return Err(ClientError::Protocol(format!(
                    "rank {got_rank} out of order (expected {})",
                    rank + 1
                )));
            }
            let node: u32 = parse_next(&mut parts, "node")?;
            let bits_text = parts
                .next()
                .ok_or_else(|| ClientError::Protocol("missing bits field".to_string()))?;
            let bits = u32::from_str_radix(bits_text, 16)
                .map_err(|e| ClientError::Protocol(format!("bad bits field: {e}")))?;
            answer.push(Neighbor {
                node,
                score: f32::from_bits(bits),
            });
        }
        self.expect_end()?;
        Ok((version, answer))
    }

    /// `TOPKN k node…` → `(generation version, per-node ranked
    /// neighbours in request order)`, all answered from one server-side
    /// snapshot; scores recovered bit-exactly from the wire.
    pub fn top_k_bulk(
        &mut self,
        nodes: &[u32],
        k: usize,
    ) -> Result<(u64, Vec<BulkAnswer>), ClientError> {
        let mut request = format!("TOPKN {k}");
        for node in nodes {
            request.push(' ');
            request.push_str(&node.to_string());
        }
        let header = self.request_line(&request)?;
        let version = field(&header, "version=")?;
        let count: usize = field(&header, "nodes=")?;
        let mut answers = Vec::with_capacity(count);
        for _ in 0..count {
            let sub = self.read_line()?;
            let rest = sub
                .strip_prefix("NODE ")
                .ok_or_else(|| ClientError::Protocol(format!("expected NODE, got {sub:?}")))?;
            let mut parts = rest.split_ascii_whitespace();
            let node: u32 = parse_next(&mut parts, "node")?;
            let block_len: usize = parse_next(&mut parts, "count")?;
            let mut answer = Vec::with_capacity(block_len);
            for rank in 0..block_len {
                let line = self.read_line()?;
                let mut parts = line.split_ascii_whitespace();
                let got_rank: usize = parse_next(&mut parts, "rank")?;
                if got_rank != rank + 1 {
                    return Err(ClientError::Protocol(format!(
                        "rank {got_rank} out of order (expected {})",
                        rank + 1
                    )));
                }
                let neighbor: u32 = parse_next(&mut parts, "node")?;
                let bits_text = parts
                    .next()
                    .ok_or_else(|| ClientError::Protocol("missing bits field".to_string()))?;
                let bits = u32::from_str_radix(bits_text, 16)
                    .map_err(|e| ClientError::Protocol(format!("bad bits field: {e}")))?;
                answer.push(Neighbor {
                    node: neighbor,
                    score: f32::from_bits(bits),
                });
            }
            answers.push((node, answer));
        }
        self.expect_end()?;
        Ok((version, answers))
    }

    /// `LINK u v` → `(generation version, bit-exact score)`.
    pub fn link(&mut self, u: u32, v: u32) -> Result<(u64, f32), ClientError> {
        let line = self.request_line(&format!("LINK {u} {v}"))?;
        let version = field(&line, "version=")?;
        let bits_text: String = field(&line, "bits=")?;
        let bits = u32::from_str_radix(&bits_text, 16)
            .map_err(|e| ClientError::Protocol(format!("bad bits field: {e}")))?;
        Ok((version, f32::from_bits(bits)))
    }

    /// `INFO` → provenance and serving parameters.
    pub fn info(&mut self) -> Result<ServerInfo, ClientError> {
        let line = self.request_line("INFO")?;
        Ok(ServerInfo {
            version: field(&line, "version=")?,
            nodes: field(&line, "nodes=")?,
            dim: field(&line, "dim=")?,
            seed: field(&line, "seed=")?,
            epsilon: field(&line, "epsilon=")?,
            delta: field(&line, "delta=")?,
            index: field::<String>(&line, "index=")?,
        })
    }

    /// `STATS` → the raw response lines (header first, `END` stripped).
    pub fn stats(&mut self) -> Result<Vec<String>, ClientError> {
        let header = self.request_line("STATS")?;
        let mut lines = vec![header];
        loop {
            let line = self.read_line()?;
            if line == "END" {
                return Ok(lines);
            }
            lines.push(line);
        }
    }

    /// `RELOAD` → the new generation version.
    pub fn reload(&mut self) -> Result<u64, ClientError> {
        let line = self.request_line("RELOAD")?;
        field(&line, "version=")
    }

    /// `SHUTDOWN`: asks the server to drain and exit.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        self.request_line("SHUTDOWN").map(|_| ())
    }

    /// `QUIT`: closes this connection cleanly.
    pub fn quit(mut self) -> Result<(), ClientError> {
        self.request_line("QUIT").map(|_| ())
    }

    fn expect_end(&mut self) -> Result<(), ClientError> {
        let line = self.read_line()?;
        if line == "END" {
            Ok(())
        } else {
            Err(ClientError::Protocol(format!("expected END, got {line:?}")))
        }
    }
}

fn split_err(rest: &str) -> (u16, String) {
    let mut parts = rest.splitn(2, ' ');
    let code = parts.next().and_then(|c| c.parse().ok()).unwrap_or(0);
    let message = parts.next().unwrap_or("").to_string();
    (code, message)
}

/// Extracts `key=value` from a response line and parses the value.
fn field<T: std::str::FromStr>(line: &str, key: &str) -> Result<T, ClientError>
where
    T::Err: fmt::Display,
{
    let value = line
        .split_ascii_whitespace()
        .find_map(|part| part.strip_prefix(key))
        .ok_or_else(|| ClientError::Protocol(format!("missing {key} in {line:?}")))?;
    value
        .parse()
        .map_err(|e| ClientError::Protocol(format!("bad {key} field: {e}")))
}

fn parse_next<'a, T: std::str::FromStr>(
    parts: &mut impl Iterator<Item = &'a str>,
    what: &str,
) -> Result<T, ClientError>
where
    T::Err: fmt::Display,
{
    parts
        .next()
        .ok_or_else(|| ClientError::Protocol(format!("missing {what} field")))?
        .parse()
        .map_err(|e| ClientError::Protocol(format!("bad {what} field: {e}")))
}
