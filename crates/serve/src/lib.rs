//! # sp-serve
//!
//! The inference-side counterpart of the DP training pipeline: *train
//! once, serve millions of queries*. A model published in the
//! [`sp_model`] format is pure post-processing under the paper's
//! guarantee (Theorem 2), so everything in this crate — loading,
//! indexing, and answering top-k nearest-neighbour or link-score
//! queries — happens at **zero marginal privacy cost**.
//!
//! Three layers:
//!
//! - [`store::EmbeddingStore`]: the published f32 matrices in memory
//!   (bulk-read from an `.spm` file, or built from a just-trained model
//!   through the *same* f32 rounding the writer applies, so in-memory
//!   and loaded-from-disk stores answer queries bit-identically), plus
//!   the **brute-force exact top-k oracle** every approximate answer is
//!   verified against in the test suites;
//! - [`ivf::IvfIndex`]: an IVF-style coarse quantizer — seeded k-means
//!   centroids built deterministically with [`sp_parallel::par_map`],
//!   per-list **exact** rerank at query time — trading a tunable probe
//!   count for sublinear scans;
//! - [`swap::ServingStore`]: the atomic-republish seam for the dynamic
//!   pipeline. Queries run against an [`std::sync::Arc`] snapshot of
//!   one *generation* (store + index + version); a republish swaps the
//!   generation pointer, so in-flight queries see the old or the new
//!   model in full, never a torn mix.
//!
//! ## Determinism contract
//!
//! Index construction inherits the workspace-wide guarantee: for a
//! fixed seed the centroids, inverted lists, and therefore every query
//! answer are **bit-identical for any thread count**. Query execution
//! itself is serial per query (concurrency is across queries), and all
//! ranking uses a total order — score descending by [`f32::total_cmp`],
//! node id ascending on ties — so result sets are reproducible
//! everywhere, including across the `SP_THREADS` CI matrix.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ivf;
pub mod store;
pub mod swap;
pub mod synthetic;

pub use ivf::{IvfConfig, IvfIndex};
pub use store::{recall_at_k, EmbeddingStore, Neighbor};
pub use swap::{Generation, ServingStore};
