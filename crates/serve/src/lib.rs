//! # sp-serve
//!
//! The inference-side counterpart of the DP training pipeline: *train
//! once, serve millions of queries*. A model published in the
//! [`sp_model`] format is pure post-processing under the paper's
//! guarantee (Theorem 2), so everything in this crate — loading,
//! indexing, and answering top-k nearest-neighbour or link-score
//! queries — happens at **zero marginal privacy cost**.
//!
//! Three layers:
//!
//! - [`store::EmbeddingStore`]: the published f32 matrices in memory
//!   (bulk-read from an `.spm` file, or built from a just-trained model
//!   through the *same* f32 rounding the writer applies, so in-memory
//!   and loaded-from-disk stores answer queries bit-identically), plus
//!   the **brute-force exact top-k oracle** every approximate answer is
//!   verified against in the test suites;
//! - [`ivf::IvfIndex`]: an IVF-style coarse quantizer — seeded k-means
//!   centroids built deterministically with [`sp_parallel::par_map`],
//!   per-list **exact** rerank at query time — trading a tunable probe
//!   count for sublinear scans;
//! - [`swap::ServingStore`]: the atomic-republish seam for the dynamic
//!   pipeline. Queries run against an [`std::sync::Arc`] snapshot of
//!   one *generation* (store + index + version); a republish swaps the
//!   generation pointer, so in-flight queries see the old or the new
//!   model in full, never a torn mix.
//!
//! On top of those sits the network boundary: [`server::Server`] (the
//! `sp_served` binary) speaks the versioned [`protocol`] line protocol
//! over std TCP — thread-per-connection, bounded concurrency, typed
//! rejection of malformed input, graceful drain — with [`metrics`]
//! counters behind the `STATS` command and a [`client::ServeClient`]
//! for programmatic access. Every response carries scores as raw f32
//! bit patterns, so TCP answers are bit-identical to in-process ones.
//!
//! ## Determinism contract
//!
//! Index construction inherits the workspace-wide guarantee: for a
//! fixed seed the centroids, inverted lists, and therefore every query
//! answer are **bit-identical for any thread count**. Query execution
//! itself is serial per query (concurrency is across queries), and all
//! ranking uses a total order — score descending by [`f32::total_cmp`],
//! node id ascending on ties — so result sets are reproducible
//! everywhere, including across the `SP_THREADS` CI matrix.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod ivf;
pub mod metrics;
pub mod protocol;
pub mod server;
pub mod store;
pub mod swap;
pub mod synthetic;

pub use client::{ClientError, ServeClient, ServerInfo};
pub use ivf::{IvfConfig, IvfIndex};
pub use metrics::{MetricsSnapshot, ServerMetrics};
pub use server::{Server, ServerConfig, ServerReport, ShutdownHandle};
pub use store::{recall_at_k, EmbeddingStore, Neighbor, QueryError};
pub use swap::{Generation, ServingStore};
