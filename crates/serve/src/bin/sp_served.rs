//! `sp_served` — serve a published `.spm` model over TCP.
//!
//! ```text
//! sp_served --model model.spm --listen 127.0.0.1:7878 \
//!     [--ivf-nlist 64 [--nprobe 8]] [--max-conns 64] \
//!     [--read-timeout-ms 30000] [--write-timeout-ms 10000] [--threads N]
//! ```
//!
//! The server speaks the `SPSERVE 1` line protocol (`TOPK`, `LINK`,
//! `INFO`, `STATS`, `RELOAD`, `QUIT`, `SHUTDOWN`); serving a published
//! DP model is pure post-processing, so queries spend no privacy
//! budget. `RELOAD` re-reads `--model` and swaps the new generation in
//! atomically; `SHUTDOWN` drains in-flight requests and exits 0.

use sp_serve::{EmbeddingStore, IvfConfig, IvfIndex, Server, ServerConfig, ServingStore};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

fn usage() -> &'static str {
    "usage: sp_served --model <file.spm> --listen <addr:port>\n\
     \t[--ivf-nlist <n> [--nprobe <p>]] [--max-conns 64] [--threads <n>]\n\
     \t[--read-timeout-ms 30000] [--write-timeout-ms 10000] [--max-line-bytes 1024]\n\
     \tServes TOPK/LINK/INFO/STATS/RELOAD/QUIT/SHUTDOWN over the\n\
     \tSPSERVE 1 line protocol; SHUTDOWN drains and exits 0."
}

struct Args {
    model: PathBuf,
    listen: String,
    ivf_nlist: Option<usize>,
    nprobe: Option<usize>,
    max_conns: usize,
    threads: Option<usize>,
    read_timeout_ms: u64,
    write_timeout_ms: u64,
    max_line_bytes: usize,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        model: PathBuf::new(),
        listen: String::new(),
        ivf_nlist: None,
        nprobe: None,
        max_conns: 64,
        threads: None,
        read_timeout_ms: 30_000,
        write_timeout_ms: 10_000,
        max_line_bytes: sp_serve::protocol::DEFAULT_MAX_LINE_BYTES,
    };
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            argv.get(*i)
                .cloned()
                .ok_or_else(|| format!("missing value for {flag}"))
        };
        let parse = |s: String, what: &str| -> Result<usize, String> {
            s.parse().map_err(|e| format!("{what}: {e}"))
        };
        match flag {
            "--model" => args.model = PathBuf::from(value(&mut i)?),
            "--listen" => args.listen = value(&mut i)?,
            "--ivf-nlist" => args.ivf_nlist = Some(parse(value(&mut i)?, "--ivf-nlist")?),
            "--nprobe" => args.nprobe = Some(parse(value(&mut i)?, "--nprobe")?),
            "--max-conns" => args.max_conns = parse(value(&mut i)?, "--max-conns")?,
            "--threads" => args.threads = Some(parse(value(&mut i)?, "--threads")?),
            "--read-timeout-ms" => {
                args.read_timeout_ms = parse(value(&mut i)?, "--read-timeout-ms")? as u64
            }
            "--write-timeout-ms" => {
                args.write_timeout_ms = parse(value(&mut i)?, "--write-timeout-ms")? as u64
            }
            "--max-line-bytes" => args.max_line_bytes = parse(value(&mut i)?, "--max-line-bytes")?,
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
        i += 1;
    }
    if args.model.as_os_str().is_empty() {
        return Err(format!("--model is required\n{}", usage()));
    }
    if args.listen.is_empty() {
        return Err(format!("--listen is required\n{}", usage()));
    }
    if args.ivf_nlist.is_none() && args.nprobe.is_some() {
        return Err(format!("--nprobe requires --ivf-nlist\n{}", usage()));
    }
    if args.max_conns == 0 {
        return Err("--max-conns must be at least 1".to_string());
    }
    Ok(args)
}

fn run(args: Args) -> Result<(), String> {
    let store = EmbeddingStore::open(&args.model)
        .map_err(|e| format!("cannot load {}: {e}", args.model.display()))?;
    let p = store.provenance();
    eprintln!(
        "loaded {}: {} nodes, dim {}, seed {}, ε {:.4}, δ {:.2e}",
        args.model.display(),
        store.num_nodes(),
        store.dim(),
        p.seed,
        p.epsilon,
        p.delta
    );
    let ivf = args.ivf_nlist.map(|nlist| IvfConfig {
        nlist,
        nprobe: args.nprobe.unwrap_or_else(|| nlist.div_ceil(4)),
        ..IvfConfig::default()
    });
    let index = ivf.map(|cfg| IvfIndex::build(&store, cfg, args.threads));
    let serving = Arc::new(ServingStore::new(store, index));
    let config = ServerConfig {
        max_conns: args.max_conns,
        read_timeout: Duration::from_millis(args.read_timeout_ms),
        write_timeout: Duration::from_millis(args.write_timeout_ms),
        max_line_bytes: args.max_line_bytes,
        model_path: Some(args.model.clone()),
        ivf,
        threads: args.threads,
    };
    let server = Server::bind(args.listen.as_str(), serving, config)
        .map_err(|e| format!("cannot listen on {}: {e}", args.listen))?;
    let addr = server
        .local_addr()
        .map_err(|e| format!("cannot read bound address: {e}"))?;
    println!(
        "sp_served listening on {addr} (SPSERVE {})",
        sp_serve::protocol::PROTOCOL_VERSION
    );
    let report = server.run().map_err(|e| format!("server failed: {e}"))?;
    println!(
        "sp_served drained: {} requests ({} errors) over {} connections ({} rejected)",
        report.requests, report.errors, report.connections, report.rejected
    );
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&argv).and_then(run) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
