//! `sp_served` — the std-only TCP front-end over a [`ServingStore`].
//!
//! Design: **no async runtime**. A nonblocking accept loop hands each
//! connection to a scoped thread (`std::thread::scope`, the same
//! primitive `sp_parallel` builds on), bounded by
//! [`ServerConfig::max_conns`] — connections beyond the bound are
//! turned away with `ERR 503` instead of queueing unboundedly. Each
//! connection gets read/write timeouts; a request that cannot be
//! parsed is answered with a protocol `ERR` line and **never**
//! terminates the process.
//!
//! Shutdown is SIGTERM-style: a shared flag (set by the protocol
//! `SHUTDOWN` command or a [`ShutdownHandle`]) stops the accept loop,
//! closes the listener, and lets every in-flight connection finish its
//! current request before [`Server::run`] returns with a drain report.
//!
//! The correctness contract of the whole front-end: every `TOPK` and
//! `LINK` response is **bit-identical** to the same query answered
//! in-process against the same [`ServingStore`] generation — scores
//! travel as raw f32 bit patterns (`tests/served_tcp.rs` asserts
//! this; the privacy story is unchanged because serving a published
//! model is pure post-processing).

use crate::ivf::IvfConfig;
use crate::metrics::ServerMetrics;
use crate::protocol::{self, Request};
use crate::swap::ServingStore;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often the accept loop wakes to check the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(10);
/// How often an idle connection wakes to check the shutdown flag.
const READ_POLL: Duration = Duration::from_millis(50);

/// Tunables of one server instance.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Maximum concurrently served connections; further clients get
    /// `ERR 503` and are disconnected.
    pub max_conns: usize,
    /// A connection idle longer than this is closed with `ERR 408`.
    pub read_timeout: Duration,
    /// A response write stalled longer than this drops the connection.
    pub write_timeout: Duration,
    /// Longest accepted request line; longer lines get `ERR 400` and
    /// the connection is closed (framing cannot resync).
    pub max_line_bytes: usize,
    /// The `.spm` file `RELOAD` republishes from; `None` disables
    /// `RELOAD` (`ERR 400`).
    pub model_path: Option<PathBuf>,
    /// IVF parameters applied when `RELOAD` rebuilds the index;
    /// `None` reloads exact-only.
    pub ivf: Option<IvfConfig>,
    /// Thread count for `RELOAD` index rebuilds (`None`: `SP_THREADS`
    /// / available parallelism).
    pub threads: Option<usize>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_conns: 64,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            max_line_bytes: protocol::DEFAULT_MAX_LINE_BYTES,
            model_path: None,
            ivf: None,
            threads: None,
        }
    }
}

/// Counters reported when [`Server::run`] drains and returns.
#[derive(Clone, Copy, Debug)]
pub struct ServerReport {
    /// Connections accepted over the server lifetime.
    pub connections: u64,
    /// Connections rejected at the `max_conns` bound.
    pub rejected: u64,
    /// Requests handled.
    pub requests: u64,
    /// Requests answered with an `ERR` line.
    pub errors: u64,
}

/// Sets the shutdown flag of a running [`Server`] from another thread
/// (the programmatic equivalent of the protocol `SHUTDOWN` command).
#[derive(Clone, Debug)]
pub struct ShutdownHandle(Arc<AtomicBool>);

impl ShutdownHandle {
    /// Requests a graceful drain: stop accepting, finish in-flight
    /// requests, return from [`Server::run`].
    pub fn shutdown(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether a shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// A bound (but not yet running) TCP server over a [`ServingStore`].
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    serving: Arc<ServingStore>,
    config: ServerConfig,
    metrics: Arc<ServerMetrics>,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Binds the listener. The store is shared — a republisher (e.g.
    /// `sp_dynamic::DynamicEmbedder::fit_and_serve`) can keep swapping
    /// generations into `serving` while the server answers from it.
    pub fn bind(
        addr: impl ToSocketAddrs,
        serving: Arc<ServingStore>,
        config: ServerConfig,
    ) -> std::io::Result<Self> {
        Ok(Self {
            listener: TcpListener::bind(addr)?,
            serving,
            config,
            metrics: Arc::new(ServerMetrics::new()),
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can request a graceful drain from any thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle(Arc::clone(&self.shutdown))
    }

    /// The live metrics (shared with the running server).
    pub fn metrics(&self) -> Arc<ServerMetrics> {
        Arc::clone(&self.metrics)
    }

    /// The serving store this server answers from.
    pub fn serving(&self) -> Arc<ServingStore> {
        Arc::clone(&self.serving)
    }

    /// Runs the accept loop until shutdown, then drains: the listener
    /// closes first, every in-flight connection finishes its current
    /// request, and the final counters are returned.
    pub fn run(self) -> std::io::Result<ServerReport> {
        let Server {
            listener,
            serving,
            config,
            metrics,
            shutdown,
        } = self;
        listener.set_nonblocking(true)?;
        let serving = &*serving;
        let config = &config;
        let metrics_ref = &*metrics;
        let shutdown_ref = &*shutdown;
        std::thread::scope(|scope| {
            while !shutdown_ref.load(Ordering::Acquire) {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        if !metrics_ref.try_accept(config.max_conns as u64) {
                            reject_at_capacity(stream, config);
                            continue;
                        }
                        scope.spawn(move || {
                            handle_connection(stream, serving, config, metrics_ref, shutdown_ref);
                            metrics_ref.conn_closed();
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        // Transient accept failure (EMFILE, ECONNABORTED,
                        // …): keep serving; the offending socket is gone.
                        std::thread::sleep(ACCEPT_POLL);
                    }
                }
            }
            // Close the listening socket before draining, so clients
            // get connection-refused instead of a hang during drain.
            drop(listener);
        });
        let s = metrics.snapshot();
        Ok(ServerReport {
            connections: s.conns_total,
            rejected: s.conns_rejected,
            requests: s.requests,
            errors: s.errors,
        })
    }
}

/// Best-effort `ERR 503` to a connection over the capacity bound.
fn reject_at_capacity(mut stream: TcpStream, config: &ServerConfig) {
    stream.set_write_timeout(Some(config.write_timeout)).ok();
    stream
        .write_all(protocol::err_line(503, "server at connection capacity").as_bytes())
        .ok();
}

/// What the connection loop does after writing a response.
enum ConnAction {
    Continue,
    Close,
    Shutdown,
}

/// Outcome of one line read, distinguishing every way a connection can
/// stop yielding requests.
enum LineEvent {
    Line(Vec<u8>),
    Eof,
    IdleTimeout,
    TooLong,
    ShuttingDown,
}

/// Bounded, shutdown-aware line framing over a blocking socket. Reads
/// happen in [`READ_POLL`] slices so an idle connection notices the
/// shutdown flag and the idle deadline without async machinery.
#[derive(Default)]
struct LineReader {
    buf: Vec<u8>,
}

impl LineReader {
    fn next_line(
        &mut self,
        stream: &mut TcpStream,
        max_line: usize,
        idle: Duration,
        shutdown: &AtomicBool,
    ) -> std::io::Result<LineEvent> {
        let deadline = Instant::now() + idle;
        let mut chunk = [0u8; 512];
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let mut line: Vec<u8> = self.buf.drain(..=pos).collect();
                line.pop();
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return Ok(if line.len() > max_line {
                    LineEvent::TooLong
                } else {
                    LineEvent::Line(line)
                });
            }
            if self.buf.len() > max_line {
                return Ok(LineEvent::TooLong);
            }
            if shutdown.load(Ordering::Acquire) {
                return Ok(LineEvent::ShuttingDown);
            }
            if Instant::now() >= deadline {
                return Ok(LineEvent::IdleTimeout);
            }
            match stream.read(&mut chunk) {
                Ok(0) => return Ok(LineEvent::Eof),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut
                        || e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

/// One connection, greeting to close. Malformed input is answered with
/// `ERR` lines; only I/O failure, timeout, `QUIT`/`SHUTDOWN`, or the
/// drain flag end the loop.
fn handle_connection(
    mut stream: TcpStream,
    serving: &ServingStore,
    config: &ServerConfig,
    metrics: &ServerMetrics,
    shutdown: &AtomicBool,
) {
    // Deterministic fault seam: a plan targeting `serve.conn` drops the
    // connection before the greeting, as a crashed handler thread would.
    if sp_fault::inject(sp_fault::sites::SERVE_CONN).is_err() {
        return;
    }
    stream.set_nodelay(true).ok();
    if stream.set_read_timeout(Some(READ_POLL)).is_err()
        || stream
            .set_write_timeout(Some(config.write_timeout))
            .is_err()
        || stream.write_all(protocol::greeting().as_bytes()).is_err()
    {
        return;
    }
    let mut reader = LineReader::default();
    loop {
        match reader.next_line(
            &mut stream,
            config.max_line_bytes,
            config.read_timeout,
            shutdown,
        ) {
            Ok(LineEvent::Line(raw)) => {
                let t0 = Instant::now();
                let parsed = std::str::from_utf8(&raw)
                    .map_err(|_| "request is not valid UTF-8".to_string())
                    .and_then(Request::parse);
                let req = match parsed {
                    Ok(req) => req,
                    Err(msg) => {
                        metrics.record_malformed(Some(t0.elapsed().as_micros() as u64));
                        if stream
                            .write_all(protocol::err_line(400, &msg).as_bytes())
                            .is_err()
                        {
                            return;
                        }
                        continue;
                    }
                };
                let cmd = req.command_name();
                let (response, generation, ok, action) = execute(req, serving, config, metrics);
                metrics.record_request(cmd, t0.elapsed().as_micros() as u64, generation, ok);
                if stream.write_all(response.as_bytes()).is_err() {
                    return;
                }
                match action {
                    ConnAction::Continue => {}
                    ConnAction::Close => return,
                    ConnAction::Shutdown => {
                        shutdown.store(true, Ordering::Release);
                        return;
                    }
                }
            }
            Ok(LineEvent::Eof) | Ok(LineEvent::ShuttingDown) | Err(_) => return,
            Ok(LineEvent::IdleTimeout) => {
                // Unattributed (no request line was read): counted in
                // `malformed`, no fabricated latency sample.
                metrics.record_malformed(None);
                stream
                    .write_all(protocol::err_line(408, "idle timeout").as_bytes())
                    .ok();
                return;
            }
            Ok(LineEvent::TooLong) => {
                metrics.record_malformed(None);
                stream
                    .write_all(
                        protocol::err_line(
                            400,
                            &format!("request line exceeds {} bytes", config.max_line_bytes),
                        )
                        .as_bytes(),
                    )
                    .ok();
                return;
            }
        }
    }
}

/// Answers one parsed request: `(response, generation answered from,
/// was OK, what to do with the connection)`.
fn execute(
    req: Request,
    serving: &ServingStore,
    config: &ServerConfig,
    metrics: &ServerMetrics,
) -> (String, Option<u64>, bool, ConnAction) {
    match req {
        Request::TopK { node, k } => {
            let generation = serving.snapshot();
            match generation.try_top_k_node(node, k) {
                Ok(answer) => (
                    protocol::format_topk(generation.version, &answer),
                    Some(generation.version),
                    true,
                    ConnAction::Continue,
                ),
                Err(e) => (
                    protocol::err_line(protocol::query_error_code(&e), &e.to_string()),
                    None,
                    false,
                    ConnAction::Continue,
                ),
            }
        }
        Request::TopKN { nodes, k } => {
            // One snapshot answers the whole batch: every per-node
            // block carries the same generation even if a RELOAD races
            // the request. Any failing node fails the whole request
            // with one ERR (the first failure, so the client sees a
            // deterministic message) — partial responses would leave
            // the framing ambiguous.
            let generation = serving.snapshot();
            let mut answers = Vec::with_capacity(nodes.len());
            for node in nodes {
                match generation.try_top_k_node(node, k) {
                    Ok(answer) => answers.push((node, answer)),
                    Err(e) => {
                        return (
                            protocol::err_line(protocol::query_error_code(&e), &e.to_string()),
                            None,
                            false,
                            ConnAction::Continue,
                        )
                    }
                }
            }
            (
                protocol::format_topkn(generation.version, k, &answers),
                Some(generation.version),
                true,
                ConnAction::Continue,
            )
        }
        Request::Link { u, v } => {
            let generation = serving.snapshot();
            match generation.try_link_score(u, v) {
                Ok(score) => (
                    protocol::format_link(generation.version, score),
                    Some(generation.version),
                    true,
                    ConnAction::Continue,
                ),
                Err(e) => (
                    protocol::err_line(protocol::query_error_code(&e), &e.to_string()),
                    None,
                    false,
                    ConnAction::Continue,
                ),
            }
        }
        Request::Info => {
            let generation = serving.snapshot();
            let p = generation.store.provenance();
            let index = match &generation.index {
                Some(idx) => format!("ivf(nlist={},nprobe={})", idx.nlist(), idx.nprobe_default()),
                None => "exact".to_string(),
            };
            (
                protocol::format_info(
                    generation.version,
                    generation.store.num_nodes(),
                    generation.store.dim(),
                    p.seed,
                    p.epsilon,
                    p.delta,
                    &index,
                ),
                Some(generation.version),
                true,
                ConnAction::Continue,
            )
        }
        Request::Stats => (
            metrics.snapshot().to_stats_block(),
            None,
            true,
            ConnAction::Continue,
        ),
        Request::Reload => match &config.model_path {
            None => (
                protocol::err_line(400, "no model path configured for RELOAD"),
                None,
                false,
                ConnAction::Continue,
            ),
            Some(path) => match serving.reload_from(path, config.ivf, config.threads) {
                Ok(version) => (
                    protocol::format_reload(version),
                    None,
                    true,
                    ConnAction::Continue,
                ),
                Err(e) => {
                    // The swap never happened: the last-good generation
                    // keeps serving. Surface the degradation in STATS.
                    metrics.record_reload_failed();
                    (
                        protocol::err_line(500, &format!("reload failed: {e}")),
                        None,
                        false,
                        ConnAction::Continue,
                    )
                }
            },
        },
        Request::Quit => ("OK BYE\n".to_string(), None, true, ConnAction::Close),
        Request::Shutdown => (
            "OK SHUTDOWN draining\n".to_string(),
            None,
            true,
            ConnAction::Shutdown,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::EmbeddingStore;
    use sp_model::{F32Matrix, Provenance};
    use std::io::BufRead;

    fn tiny_serving() -> Arc<ServingStore> {
        let m = F32Matrix::from_vec(4, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0, -1.0, 0.0]);
        Arc::new(ServingStore::new(
            EmbeddingStore::from_f32(m, Provenance::non_private(5)),
            None,
        ))
    }

    fn start(
        config: ServerConfig,
    ) -> (
        SocketAddr,
        ShutdownHandle,
        std::thread::JoinHandle<ServerReport>,
    ) {
        let server = Server::bind("127.0.0.1:0", tiny_serving(), config).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.shutdown_handle();
        let join = std::thread::spawn(move || server.run().unwrap());
        (addr, handle, join)
    }

    fn send_line(stream: &mut TcpStream, line: &str) {
        stream.write_all(line.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
    }

    #[test]
    fn greets_answers_and_drains_on_handle() {
        let (addr, handle, join) = start(ServerConfig::default());
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
        let mut stream = stream;
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim(), "SPSERVE 1 READY");

        send_line(&mut stream, "INFO");
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(
            line.starts_with("OK INFO version=1 nodes=4 dim=2 seed=5"),
            "{line}"
        );

        send_line(&mut stream, "QUIT");
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim(), "OK BYE");
        // Server closes its side after BYE.
        line.clear();
        assert_eq!(reader.read_line(&mut line).unwrap(), 0);

        handle.shutdown();
        let report = join.join().unwrap();
        assert_eq!(report.connections, 1);
        assert_eq!(report.requests, 2);
        assert_eq!(report.errors, 0);
    }

    #[test]
    fn shutdown_command_stops_the_server() {
        let (addr, _handle, join) = start(ServerConfig::default());
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap(); // greeting
        send_line(&mut stream, "SHUTDOWN");
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim(), "OK SHUTDOWN draining");
        let report = join.join().unwrap();
        assert_eq!(report.requests, 1);
        // The listener is closed: new connections are refused (allow a
        // beat for the OS to tear the socket down).
        std::thread::sleep(Duration::from_millis(50));
        assert!(TcpStream::connect(addr).is_err());
    }

    #[test]
    fn topkn_matches_per_node_topk_and_keeps_stats_invariant() {
        use crate::client::{ClientError, ServeClient};
        let (addr, handle, join) = start(ServerConfig::default());
        let mut c = ServeClient::connect(addr).unwrap();
        let nodes = [0u32, 2, 3];
        let (bulk_version, bulk) = c.top_k_bulk(&nodes, 2).unwrap();
        assert_eq!(bulk.len(), nodes.len());
        for (queried, (node, answer)) in nodes.iter().zip(&bulk) {
            assert_eq!(queried, node, "blocks arrive in request order");
            let (v, single) = c.top_k(*node, 2).unwrap();
            assert_eq!(v, bulk_version, "one snapshot answers the batch");
            assert_eq!(single.len(), answer.len());
            for (a, b) in single.iter().zip(answer) {
                assert_eq!(a.node, b.node);
                assert_eq!(
                    a.score.to_bits(),
                    b.score.to_bits(),
                    "bulk and single answers are bit-identical"
                );
            }
        }
        // A failing node fails the whole batch with one ERR.
        match c.top_k_bulk(&[0, 999], 2) {
            Err(ClientError::Server { code: 404, .. }) => {}
            other => panic!("expected ERR 404, got {other:?}"),
        }
        // Malformed TOPKN lines are counted as malformed, and the
        // STATS invariant holds across every command kind.
        c.send_raw(b"TOPKN 2\n").unwrap();
        match c.read_line() {
            Ok(line) => assert!(line.starts_with("ERR 400"), "{line}"),
            Err(e) => panic!("{e}"),
        }
        let stats = c.stats().unwrap();
        let header = &stats[0];
        let get = |key: &str| -> u64 {
            header
                .split_ascii_whitespace()
                .find_map(|f| f.strip_prefix(key))
                .unwrap_or_else(|| panic!("missing {key} in {header}"))
                .parse()
                .unwrap()
        };
        assert_eq!(get("topkn="), 2, "one ok + one 404 bulk request");
        assert_eq!(get("topk="), nodes.len() as u64);
        assert_eq!(get("malformed="), 1);
        let per_command: u64 = [
            "topk=",
            "topkn=",
            "link=",
            "info=",
            "stats=",
            "reload=",
            "quit=",
            "shutdown=",
        ]
        .iter()
        .map(|k| get(k))
        .sum();
        assert_eq!(
            get("requests="),
            per_command + get("malformed="),
            "STATS invariant: requests == Σ per_command + malformed"
        );
        drop(c);
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn capacity_bound_rejects_with_503() {
        let server = Server::bind(
            "127.0.0.1:0",
            tiny_serving(),
            ServerConfig {
                max_conns: 1,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.shutdown_handle();
        let metrics = server.metrics();
        let join = std::thread::spawn(move || server.run().unwrap());
        let first = TcpStream::connect(addr).unwrap();
        let mut r1 = std::io::BufReader::new(first.try_clone().unwrap());
        let mut line = String::new();
        r1.read_line(&mut line).unwrap(); // greeting: slot taken
                                          // Second connection must be turned away.
        let second = TcpStream::connect(addr).unwrap();
        let mut r2 = std::io::BufReader::new(second);
        line.clear();
        r2.read_line(&mut line).unwrap();
        assert!(line.starts_with("ERR 503"), "{line}");
        drop(first);
        handle.shutdown();
        let report = join.join().unwrap();
        assert_eq!(report.rejected, 1);
        // "Connections accepted over the server lifetime" means exactly
        // that: the rejected connection must not inflate the count.
        assert_eq!(
            report.connections, 1,
            "a 503-rejected connection was counted as accepted"
        );
        let s = metrics.snapshot();
        assert_eq!(s.conns_total, 1);
        assert_eq!(s.conns_rejected, 1);
        assert_eq!(s.conns_active, 0, "all accepted connections drained");
    }
}
