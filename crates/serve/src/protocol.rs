//! The `SPSERVE` line protocol version 1 — the wire format of the
//! [`sp_served`](crate::server) TCP front-end.
//!
//! Every request is one UTF-8 line (`\n`-terminated, `\r\n` tolerated)
//! and every response is either a single `OK …`/`ERR …` line or an
//! `OK …` header followed by payload lines and a terminating `END`.
//! On connect the server greets with `SPSERVE 1 READY` so clients can
//! verify the protocol version before sending anything.
//!
//! | Request | Response |
//! |---|---|
//! | `TOPK <node> <k>` | `OK TOPK version=<v> count=<n>`, then `<rank> <node> <bits> <score>` × n, then `END` |
//! | `TOPKN <k> <node…>` | `OK TOPKN version=<v> nodes=<n> k=<k>`, then per node `NODE <node> <count>` + `<rank> <node> <bits> <score>` × count, then `END` |
//! | `LINK <u> <v>` | `OK LINK version=<v> bits=<hex8> score=<dec>` |
//! | `INFO` | `OK INFO version=<v> nodes=<n> dim=<d> seed=<s> epsilon=<e> delta=<e> index=<desc>` |
//! | `STATS` | `OK STATS <counters…>`, then `GEN <version> <hits>` per generation, then `END` |
//! | `RELOAD` | `OK RELOAD version=<v>` |
//! | `QUIT` | `OK BYE`, connection closes |
//! | `SHUTDOWN` | `OK SHUTDOWN draining`, server drains and exits |
//!
//! Scores travel twice: as the exact **f32 bit pattern** (`bits`, eight
//! lowercase hex digits) and as a human-readable decimal. The bit
//! pattern is the contract — a client that parses it with
//! [`f32::from_bits`] recovers answers bit-identical to an in-process
//! query (asserted by `tests/served_tcp.rs`).
//!
//! Failures are `ERR <code> <message>` lines and never terminate the
//! server: `400` malformed request, `404` unknown node / dimension
//! mismatch, `408` idle timeout, `500` reload failure, `503` over
//! capacity or shutting down.

use crate::store::{Neighbor, QueryError};

/// The protocol version this build speaks (greeting `SPSERVE 1`).
pub const PROTOCOL_VERSION: u32 = 1;

/// Default cap on one request line; longer lines are rejected with
/// `ERR 400` and the connection is closed (the stream cannot resync).
/// Sized so a full `TOPKN` line ([`MAX_BULK_NODES`] ten-digit node
/// ids plus the command and `k`) fits with room to spare.
pub const DEFAULT_MAX_LINE_BYTES: usize = 4096;

/// Upper bound on `k` in a `TOPK` request — a single query must not be
/// able to pin a worker on an absurd result size.
pub const MAX_K: usize = 10_000;

/// Upper bound on the node count of one `TOPKN` request — bulk
/// queries amortise round-trips, they must not become a way to pin a
/// worker on an unbounded batch.
pub const MAX_BULK_NODES: usize = 128;

/// One parsed client request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Top-k neighbours of a stored node.
    TopK {
        /// Query node id.
        node: u32,
        /// Result size.
        k: usize,
    },
    /// Top-k neighbours of several stored nodes, answered from one
    /// store snapshot (every per-node block carries the same
    /// generation version).
    TopKN {
        /// Query node ids, answered in request order.
        nodes: Vec<u32>,
        /// Result size per node.
        k: usize,
    },
    /// Link score between two stored nodes.
    Link {
        /// Source node.
        u: u32,
        /// Target node.
        v: u32,
    },
    /// Model provenance and serving parameters.
    Info,
    /// Server counters and latency quantiles.
    Stats,
    /// Atomic generation swap from the configured model path.
    Reload,
    /// Close this connection.
    Quit,
    /// Drain in-flight requests and stop the server.
    Shutdown,
}

impl Request {
    /// Parses one request line (already stripped of `\n`/`\r\n`).
    pub fn parse(line: &str) -> Result<Self, String> {
        let mut parts = line.split_ascii_whitespace();
        let cmd = parts.next().ok_or_else(|| "empty request".to_string())?;
        let rest: Vec<&str> = parts.collect();
        let arg = |i: usize, what: &str| -> Result<&str, String> {
            rest.get(i)
                .copied()
                .ok_or_else(|| format!("{cmd} missing <{what}>"))
        };
        let exactly = |n: usize| -> Result<(), String> {
            if rest.len() == n {
                Ok(())
            } else {
                Err(format!(
                    "{cmd} takes {n} argument{}, got {}",
                    if n == 1 { "" } else { "s" },
                    rest.len()
                ))
            }
        };
        match cmd.to_ascii_uppercase().as_str() {
            "TOPK" => {
                exactly(2)?;
                let node: u32 = arg(0, "node")?
                    .parse()
                    .map_err(|e| format!("TOPK node: {e}"))?;
                let k: usize = arg(1, "k")?.parse().map_err(|e| format!("TOPK k: {e}"))?;
                if k == 0 || k > MAX_K {
                    return Err(format!("TOPK k must be in 1..={MAX_K}, got {k}"));
                }
                Ok(Request::TopK { node, k })
            }
            "TOPKN" => {
                if rest.len() < 2 {
                    return Err(format!(
                        "TOPKN takes <k> and at least one <node>, got {} argument{}",
                        rest.len(),
                        if rest.len() == 1 { "" } else { "s" }
                    ));
                }
                let k: usize = arg(0, "k")?.parse().map_err(|e| format!("TOPKN k: {e}"))?;
                if k == 0 || k > MAX_K {
                    return Err(format!("TOPKN k must be in 1..={MAX_K}, got {k}"));
                }
                let node_args = &rest[1..];
                if node_args.len() > MAX_BULK_NODES {
                    return Err(format!(
                        "TOPKN takes at most {MAX_BULK_NODES} nodes, got {}",
                        node_args.len()
                    ));
                }
                let nodes = node_args
                    .iter()
                    .map(|s| s.parse::<u32>().map_err(|e| format!("TOPKN node: {e}")))
                    .collect::<Result<Vec<u32>, String>>()?;
                Ok(Request::TopKN { nodes, k })
            }
            "LINK" => {
                exactly(2)?;
                let u: u32 = arg(0, "u")?.parse().map_err(|e| format!("LINK u: {e}"))?;
                let v: u32 = arg(1, "v")?.parse().map_err(|e| format!("LINK v: {e}"))?;
                Ok(Request::Link { u, v })
            }
            "INFO" => exactly(0).map(|()| Request::Info),
            "STATS" => exactly(0).map(|()| Request::Stats),
            "RELOAD" => exactly(0).map(|()| Request::Reload),
            "QUIT" => exactly(0).map(|()| Request::Quit),
            "SHUTDOWN" => exactly(0).map(|()| Request::Shutdown),
            other => Err(format!("unknown command {other:?}")),
        }
    }

    /// The canonical command name (metrics label).
    pub fn command_name(&self) -> &'static str {
        match self {
            Request::TopK { .. } => "TOPK",
            Request::TopKN { .. } => "TOPKN",
            Request::Link { .. } => "LINK",
            Request::Info => "INFO",
            Request::Stats => "STATS",
            Request::Reload => "RELOAD",
            Request::Quit => "QUIT",
            Request::Shutdown => "SHUTDOWN",
        }
    }
}

/// The connection greeting, newline-terminated.
pub fn greeting() -> String {
    format!("SPSERVE {PROTOCOL_VERSION} READY\n")
}

/// One `ERR` line. The message is flattened to a single line so a
/// multi-line error can never desynchronise the framing.
pub fn err_line(code: u16, message: &str) -> String {
    let flat: String = message
        .chars()
        .map(|c| if c == '\n' || c == '\r' { ' ' } else { c })
        .collect();
    format!("ERR {code} {flat}\n")
}

/// The protocol error code a typed query rejection maps to.
pub fn query_error_code(err: &QueryError) -> u16 {
    match err {
        QueryError::DimensionMismatch { .. } | QueryError::NodeOutOfRange { .. } => 404,
    }
}

/// The `TOPK` response block: header, one line per neighbour (rank is
/// 1-based; `bits` is the exact f32 bit pattern), `END`.
pub fn format_topk(version: u64, answer: &[Neighbor]) -> String {
    let mut out = format!("OK TOPK version={version} count={}\n", answer.len());
    for (rank, n) in answer.iter().enumerate() {
        out.push_str(&format!(
            "{} {} {:08x} {}\n",
            rank + 1,
            n.node,
            n.score.to_bits(),
            n.score
        ));
    }
    out.push_str("END\n");
    out
}

/// The `TOPKN` response block: header, then one `NODE <node> <count>`
/// sub-header per queried node followed by its neighbour lines (same
/// `<rank> <node> <bits> <score>` shape as `TOPK`), then one `END`.
/// Every block was answered from the same store snapshot, so a single
/// `version=` field covers them all.
pub fn format_topkn(version: u64, k: usize, answers: &[(u32, Vec<Neighbor>)]) -> String {
    let mut out = format!("OK TOPKN version={version} nodes={} k={k}\n", answers.len());
    for (node, answer) in answers {
        out.push_str(&format!("NODE {node} {}\n", answer.len()));
        for (rank, n) in answer.iter().enumerate() {
            out.push_str(&format!(
                "{} {} {:08x} {}\n",
                rank + 1,
                n.node,
                n.score.to_bits(),
                n.score
            ));
        }
    }
    out.push_str("END\n");
    out
}

/// The `LINK` response line.
pub fn format_link(version: u64, score: f32) -> String {
    format!(
        "OK LINK version={version} bits={:08x} score={score}\n",
        score.to_bits()
    )
}

/// The `INFO` response line. `f64` fields use Rust's shortest
/// round-trip formatting, so `epsilon`/`delta` parse back exactly.
#[allow(clippy::too_many_arguments)]
pub fn format_info(
    version: u64,
    nodes: usize,
    dim: usize,
    seed: u64,
    epsilon: f64,
    delta: f64,
    index: &str,
) -> String {
    format!(
        "OK INFO version={version} nodes={nodes} dim={dim} seed={seed} \
         epsilon={epsilon} delta={delta} index={index}\n"
    )
}

/// The `RELOAD` acknowledgement.
pub fn format_reload(version: u64) -> String {
    format!("OK RELOAD version={version}\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_command() {
        assert_eq!(
            Request::parse("TOPK 3 10"),
            Ok(Request::TopK { node: 3, k: 10 })
        );
        assert_eq!(
            Request::parse("TOPKN 5 1 2 3"),
            Ok(Request::TopKN {
                nodes: vec![1, 2, 3],
                k: 5
            })
        );
        assert_eq!(
            Request::parse("topkn 2 9"),
            Ok(Request::TopKN {
                nodes: vec![9],
                k: 2
            })
        );
        assert_eq!(Request::parse("link 1 2"), Ok(Request::Link { u: 1, v: 2 }));
        assert_eq!(Request::parse("INFO"), Ok(Request::Info));
        assert_eq!(Request::parse("STATS"), Ok(Request::Stats));
        assert_eq!(Request::parse("RELOAD"), Ok(Request::Reload));
        assert_eq!(Request::parse("QUIT"), Ok(Request::Quit));
        assert_eq!(Request::parse("SHUTDOWN"), Ok(Request::Shutdown));
        // Extra whitespace is tolerated.
        assert_eq!(
            Request::parse("  TOPK   7   2  "),
            Ok(Request::TopK { node: 7, k: 2 })
        );
    }

    #[test]
    fn rejects_malformed_requests_with_reasons() {
        assert!(Request::parse("").unwrap_err().contains("empty"));
        assert!(Request::parse("FROB 1").unwrap_err().contains("unknown"));
        assert!(Request::parse("TOPK").unwrap_err().contains("argument"));
        assert!(Request::parse("TOPK 1").unwrap_err().contains("argument"));
        assert!(Request::parse("TOPK 1 2 3")
            .unwrap_err()
            .contains("argument"));
        assert!(Request::parse("TOPK x 2").unwrap_err().contains("node"));
        assert!(Request::parse("TOPK 1 -2").unwrap_err().contains("k"));
        assert!(Request::parse("LINK 1 nope").unwrap_err().contains("v"));
        assert!(Request::parse("INFO now").unwrap_err().contains("argument"));
        let huge = format!("TOPK 1 {}", MAX_K + 1);
        assert!(Request::parse(&huge).unwrap_err().contains("1..="));
        assert!(Request::parse("TOPK 1 0").unwrap_err().contains("1..="));
    }

    #[test]
    fn topkn_bounds_are_enforced() {
        assert!(Request::parse("TOPKN").unwrap_err().contains("at least"));
        assert!(Request::parse("TOPKN 5").unwrap_err().contains("at least"));
        assert!(Request::parse("TOPKN 0 1").unwrap_err().contains("1..="));
        let huge_k = format!("TOPKN {} 1", MAX_K + 1);
        assert!(Request::parse(&huge_k).unwrap_err().contains("1..="));
        assert!(Request::parse("TOPKN x 1").unwrap_err().contains("k"));
        assert!(Request::parse("TOPKN 5 1 nope")
            .unwrap_err()
            .contains("node"));
        let ids: Vec<String> = (0..=MAX_BULK_NODES as u32).map(|i| i.to_string()).collect();
        let too_many = format!("TOPKN 3 {}", ids.join(" "));
        assert!(Request::parse(&too_many).unwrap_err().contains("at most"));
        // Exactly MAX_BULK_NODES is accepted — and fits the default
        // line cap even with worst-case ten-digit ids.
        let wide: Vec<String> = (0..MAX_BULK_NODES).map(|_| u32::MAX.to_string()).collect();
        let at_cap = format!("TOPKN {MAX_K} {}", wide.join(" "));
        assert!(at_cap.len() <= DEFAULT_MAX_LINE_BYTES, "{}", at_cap.len());
        match Request::parse(&at_cap) {
            Ok(Request::TopKN { nodes, k }) => {
                assert_eq!(nodes.len(), MAX_BULK_NODES);
                assert_eq!(k, MAX_K);
            }
            other => panic!("expected TopKN, got {other:?}"),
        }
    }

    #[test]
    fn topkn_block_round_trips_bits() {
        let answers = vec![
            (
                7u32,
                vec![
                    Neighbor {
                        node: 1,
                        score: 0.5,
                    },
                    Neighbor {
                        node: 2,
                        score: f32::NAN,
                    },
                ],
            ),
            (9u32, vec![]),
        ];
        let block = format_topkn(3, 2, &answers);
        let lines: Vec<&str> = block.lines().collect();
        assert_eq!(lines[0], "OK TOPKN version=3 nodes=2 k=2");
        assert_eq!(lines[1], "NODE 7 2");
        assert_eq!(lines[4], "NODE 9 0");
        assert_eq!(*lines.last().unwrap(), "END");
        let fields: Vec<&str> = lines[3].split(' ').collect();
        let bits = u32::from_str_radix(fields[2], 16).unwrap();
        assert_eq!(bits, f32::NAN.to_bits(), "bit pattern survives the wire");
    }

    #[test]
    fn topk_block_round_trips_bits() {
        let answer = vec![
            Neighbor {
                node: 5,
                score: f32::NAN,
            },
            Neighbor {
                node: 2,
                score: -0.0,
            },
        ];
        let block = format_topk(7, &answer);
        let lines: Vec<&str> = block.lines().collect();
        assert_eq!(lines[0], "OK TOPK version=7 count=2");
        assert_eq!(lines[3], "END");
        for (i, n) in answer.iter().enumerate() {
            let fields: Vec<&str> = lines[1 + i].split(' ').collect();
            assert_eq!(fields[0], (i + 1).to_string());
            assert_eq!(fields[1], n.node.to_string());
            let bits = u32::from_str_radix(fields[2], 16).unwrap();
            assert_eq!(bits, n.score.to_bits(), "bit pattern survives the wire");
        }
    }

    #[test]
    fn err_line_flattens_newlines() {
        let line = err_line(400, "bad\nrequest\r\nhere");
        assert_eq!(line.matches('\n').count(), 1);
        assert!(line.starts_with("ERR 400 "));
    }

    #[test]
    fn info_numbers_round_trip() {
        let line = format_info(3, 100, 16, 42, 3.5, 1e-5, "exact");
        let eps: f64 = line
            .split_whitespace()
            .find_map(|f| f.strip_prefix("epsilon="))
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(eps, 3.5);
        let inf = format_info(1, 1, 1, 0, f64::INFINITY, 0.0, "exact");
        let eps: f64 = inf
            .split_whitespace()
            .find_map(|f| f.strip_prefix("epsilon="))
            .unwrap()
            .parse()
            .unwrap();
        assert!(eps.is_infinite());
    }
}
