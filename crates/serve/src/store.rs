//! The in-memory embedding store and the exact query oracle.

use sp_linalg::DenseMatrix;
use sp_model::{F32Matrix, ModelError, ModelFile, ModelPayload, Provenance};
use sp_skipgram::SkipGramModel;
use std::cmp::Ordering;
use std::fmt;
use std::path::Path;

/// Typed rejection of an invalid query. The serving front-end maps
/// these to protocol errors; nothing on the query path panics on bad
/// client input. In particular a wrong-dimension query vector is
/// rejected here, at the public [`EmbeddingStore`] boundary — the
/// internal fixed-order `dot` would otherwise silently zip-truncate in
/// release builds and return plausible-but-wrong scores.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// The query vector's length differs from the store dimension.
    DimensionMismatch {
        /// The store's embedding dimension.
        expected: usize,
        /// The query vector's length.
        found: usize,
    },
    /// A node id at or beyond the store's node count.
    NodeOutOfRange {
        /// The offending node id.
        node: u32,
        /// Number of nodes the store serves.
        nodes: usize,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::DimensionMismatch { expected, found } => {
                write!(
                    f,
                    "query dimension {found} does not match model dimension {expected}"
                )
            }
            QueryError::NodeOutOfRange { node, nodes } => {
                write!(f, "node {node} out of range (model has {nodes} nodes)")
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// One ranked answer: a node and its (inner-product) score.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Neighbor {
    /// Dense node id (row index of the published matrix).
    pub node: u32,
    /// Inner-product score against the query vector.
    pub score: f32,
}

impl Neighbor {
    /// The total ranking order: score descending ([`f32::total_cmp`],
    /// so NaN scores sort deterministically too), node id ascending on
    /// ties. Every ranked result in this crate uses this order.
    pub fn rank_cmp(&self, other: &Neighbor) -> Ordering {
        other
            .score
            .total_cmp(&self.score)
            .then_with(|| self.node.cmp(&other.node))
    }
}

/// Bounded accumulator keeping the best `k` neighbours under
/// [`Neighbor::rank_cmp`]. Insertion keeps the buffer sorted, so the
/// scan order of candidates never changes the result — only the set of
/// candidates does.
#[derive(Clone, Debug)]
pub(crate) struct TopK {
    k: usize,
    items: Vec<Neighbor>,
}

impl TopK {
    pub(crate) fn new(k: usize) -> Self {
        Self {
            k,
            items: Vec::with_capacity(k + 1),
        }
    }

    pub(crate) fn push(&mut self, cand: Neighbor) {
        if self.k == 0 {
            return;
        }
        if self.items.len() == self.k {
            // Full: reject anything not better than the current worst.
            if cand.rank_cmp(self.items.last().expect("non-empty")) != Ordering::Less {
                return;
            }
            self.items.pop();
        }
        let at = self
            .items
            .partition_point(|n| n.rank_cmp(&cand) == Ordering::Less);
        self.items.insert(at, cand);
    }

    pub(crate) fn into_sorted(self) -> Vec<Neighbor> {
        self.items
    }
}

/// Numerically plain f32 logistic; the serve path never touches f64.
#[inline]
pub(crate) fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// f32 dot product with a fixed canonical accumulation order (part of
/// the bit-for-bit query reproducibility contract). Delegates to the
/// lane-structured [`sp_linalg::vector::dot_f32`] kernel: every score
/// in this crate — exact oracle, IVF rerank, TCP front-end — routes
/// through this one function, so all paths see the identical order.
#[inline]
pub(crate) fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    sp_linalg::vector::dot_f32(a, b)
}

/// The published embedding matrices, resident in memory, plus their
/// provenance. This is the object a serving process holds per model
/// generation.
#[derive(Clone, Debug)]
pub struct EmbeddingStore {
    vectors: F32Matrix,
    context: Option<F32Matrix>,
    provenance: Provenance,
}

impl EmbeddingStore {
    /// Wraps a parsed model file.
    pub fn from_model_file(file: ModelFile) -> Self {
        let provenance = file.provenance;
        let (vectors, context) = match file.payload {
            ModelPayload::Dense(m) => (m, None),
            ModelPayload::SkipGram { w_in, w_out } => (w_in, Some(w_out)),
        };
        Self {
            vectors,
            context,
            provenance,
        }
    }

    /// Bulk-reads a published `.spm` file. (The format is mmap-ready —
    /// 64-byte-aligned payload — but the workspace forbids `unsafe`,
    /// so the std-only reader copies once instead of mapping.)
    pub fn open(path: &Path) -> Result<Self, ModelError> {
        Ok(Self::from_model_file(ModelFile::read(path)?))
    }

    /// Builds a store from a just-trained model **through the same f32
    /// rounding the on-disk writer applies**, which is what makes
    /// `train → save → load → query` bit-identical to
    /// `train → query` (pinned by `tests/serve_roundtrip.rs`).
    pub fn from_skipgram(model: &SkipGramModel, provenance: Provenance) -> Self {
        Self::from_model_file(ModelFile::from_skipgram(model, provenance))
    }

    /// Builds a vectors-only store from an `f64` embedding matrix (same
    /// rounding guarantee as [`EmbeddingStore::from_skipgram`]).
    pub fn from_dense(m: &DenseMatrix, provenance: Provenance) -> Self {
        Self::from_model_file(ModelFile::from_dense(m, provenance))
    }

    /// Builds a vectors-only store directly from f32 rows.
    pub fn from_f32(m: F32Matrix, provenance: Provenance) -> Self {
        Self {
            vectors: m,
            context: None,
            provenance,
        }
    }

    /// Number of served nodes.
    pub fn num_nodes(&self) -> usize {
        self.vectors.rows()
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.vectors.cols()
    }

    /// Provenance recorded at publication.
    pub fn provenance(&self) -> Provenance {
        self.provenance
    }

    /// The published vector of one node.
    #[inline]
    pub fn embedding(&self, node: u32) -> &[f32] {
        self.vectors.row(node as usize)
    }

    /// The full published matrix.
    pub fn vectors(&self) -> &F32Matrix {
        &self.vectors
    }

    /// Whether the store carries the context (`W_out`) matrix.
    pub fn has_context(&self) -> bool {
        self.context.is_some()
    }

    /// Validates a query vector's length against the store dimension.
    #[inline]
    pub fn check_dim(&self, query: &[f32]) -> Result<(), QueryError> {
        if query.len() == self.dim() {
            Ok(())
        } else {
            Err(QueryError::DimensionMismatch {
                expected: self.dim(),
                found: query.len(),
            })
        }
    }

    /// Validates a node id against the store's node count.
    #[inline]
    pub fn check_node(&self, node: u32) -> Result<(), QueryError> {
        if (node as usize) < self.num_nodes() {
            Ok(())
        } else {
            Err(QueryError::NodeOutOfRange {
                node,
                nodes: self.num_nodes(),
            })
        }
    }

    /// Inner-product score of `node` against an arbitrary query vector.
    ///
    /// # Panics
    /// Panics if `query.len() != self.dim()`.
    #[inline]
    pub fn score(&self, query: &[f32], node: u32) -> f32 {
        assert_eq!(query.len(), self.dim(), "query dimension mismatch");
        dot(query, self.embedding(node))
    }

    /// Link-probability score `σ(W_in[u] · W_out[v])` — the model's
    /// edge likelihood (Eq. 5's positive term). Falls back to the
    /// symmetric `σ(W_in[u] · W_in[v])` when the published file carried
    /// only the node vectors.
    ///
    /// # Panics
    /// Panics if either node is out of range; servers use
    /// [`EmbeddingStore::try_link_score`].
    pub fn link_score(&self, u: u32, v: u32) -> f32 {
        self.try_link_score(u, v).expect("node out of range")
    }

    /// [`EmbeddingStore::link_score`] with typed validation instead of
    /// a panic.
    pub fn try_link_score(&self, u: u32, v: u32) -> Result<f32, QueryError> {
        self.check_node(u)?;
        self.check_node(v)?;
        let ctx_row = match &self.context {
            Some(ctx) => ctx.row(v as usize),
            None => self.vectors.row(v as usize),
        };
        Ok(sigmoid(dot(self.embedding(u), ctx_row)))
    }

    /// **The exact oracle**: brute-force top-k by inner product over
    /// every node. Every approximate answer in the test suites is
    /// checked against this.
    ///
    /// # Panics
    /// Panics if `query.len() != self.dim()`; servers use
    /// [`EmbeddingStore::try_exact_top_k`].
    pub fn exact_top_k(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        self.try_exact_top_k(query, k)
            .expect("query dimension mismatch")
    }

    /// [`EmbeddingStore::exact_top_k`] with typed validation instead of
    /// a panic.
    pub fn try_exact_top_k(&self, query: &[f32], k: usize) -> Result<Vec<Neighbor>, QueryError> {
        self.check_dim(query)?;
        let mut top = TopK::new(k);
        for node in 0..self.num_nodes() as u32 {
            top.push(Neighbor {
                node,
                score: dot(query, self.vectors.row(node as usize)),
            });
        }
        Ok(top.into_sorted())
    }

    /// Exact top-k neighbours of a stored node (the node itself is
    /// excluded from its own answer).
    ///
    /// # Panics
    /// Panics if `node` is out of range; servers use
    /// [`EmbeddingStore::try_exact_top_k_node`].
    pub fn exact_top_k_node(&self, node: u32, k: usize) -> Vec<Neighbor> {
        self.try_exact_top_k_node(node, k)
            .expect("node out of range")
    }

    /// [`EmbeddingStore::exact_top_k_node`] with typed validation
    /// instead of a panic.
    pub fn try_exact_top_k_node(&self, node: u32, k: usize) -> Result<Vec<Neighbor>, QueryError> {
        self.check_node(node)?;
        let query = self.embedding(node).to_vec();
        let mut top = TopK::new(k + 1);
        for cand in 0..self.num_nodes() as u32 {
            if cand == node {
                continue;
            }
            top.push(Neighbor {
                node: cand,
                score: dot(&query, self.vectors.row(cand as usize)),
            });
        }
        let mut out = top.into_sorted();
        out.truncate(k);
        Ok(out)
    }
}

/// Fraction of the oracle's ids the approximate answer recovered —
/// `|approx ∩ exact| / |exact|` (1.0 when the oracle returns nothing).
pub fn recall_at_k(approx: &[Neighbor], exact: &[Neighbor]) -> f64 {
    if exact.is_empty() {
        return 1.0;
    }
    let hit = exact
        .iter()
        .filter(|e| approx.iter().any(|a| a.node == e.node))
        .count();
    hit as f64 / exact.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_store() -> EmbeddingStore {
        // 4 nodes in 2-d with hand-checkable inner products.
        let m = F32Matrix::from_vec(4, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0, -1.0, 0.0]);
        EmbeddingStore::from_f32(m, Provenance::non_private(1))
    }

    #[test]
    fn exact_top_k_orders_by_score_then_id() {
        let s = tiny_store();
        let got = s.exact_top_k(&[1.0, 0.0], 4);
        // Scores: n0=1, n1=0, n2=1, n3=-1 -> 0 before 2 on the tie.
        let ids: Vec<u32> = got.iter().map(|n| n.node).collect();
        assert_eq!(ids, vec![0, 2, 1, 3]);
        assert_eq!(got[0].score, 1.0);
        assert_eq!(got[3].score, -1.0);
    }

    #[test]
    fn top_k_truncates_and_k_zero_is_empty() {
        let s = tiny_store();
        assert_eq!(s.exact_top_k(&[1.0, 0.0], 2).len(), 2);
        assert!(s.exact_top_k(&[1.0, 0.0], 0).is_empty());
        // k beyond n returns everything, still ordered.
        assert_eq!(s.exact_top_k(&[1.0, 0.0], 99).len(), 4);
    }

    #[test]
    fn node_query_excludes_self() {
        let s = tiny_store();
        let got = s.exact_top_k_node(2, 4);
        assert!(got.iter().all(|n| n.node != 2));
        assert_eq!(got.len(), 3);
        // Node 2 = (1,1): best other node by inner product is 0 or 1
        // (both score 1) -> 0 wins the tie.
        assert_eq!(got[0].node, 0);
    }

    #[test]
    fn link_score_uses_context_when_present() {
        let mut rng = StdRng::seed_from_u64(3);
        let model = SkipGramModel::new(5, 4, &mut rng);
        let s = EmbeddingStore::from_skipgram(&model, Provenance::non_private(3));
        assert!(s.has_context());
        let expected = {
            let a: Vec<f32> = model.w_in.row(1).iter().map(|&v| v as f32).collect();
            let b: Vec<f32> = model.w_out.row(2).iter().map(|&v| v as f32).collect();
            sigmoid(dot(&a, &b))
        };
        assert_eq!(s.link_score(1, 2).to_bits(), expected.to_bits());
        // Vectors-only store: symmetric fallback.
        let sv = EmbeddingStore::from_dense(&model.w_in, Provenance::non_private(3));
        assert!(!sv.has_context());
        assert_eq!(sv.link_score(1, 2).to_bits(), sv.link_score(2, 1).to_bits());
    }

    #[test]
    fn recall_helper_counts_overlap() {
        let exact = vec![
            Neighbor {
                node: 1,
                score: 3.0,
            },
            Neighbor {
                node: 2,
                score: 2.0,
            },
            Neighbor {
                node: 3,
                score: 1.0,
            },
            Neighbor {
                node: 4,
                score: 0.5,
            },
        ];
        let approx = vec![
            Neighbor {
                node: 2,
                score: 2.0,
            },
            Neighbor {
                node: 9,
                score: 1.5,
            },
            Neighbor {
                node: 3,
                score: 1.0,
            },
            Neighbor {
                node: 8,
                score: 0.1,
            },
        ];
        assert_eq!(recall_at_k(&approx, &exact), 0.5);
        assert_eq!(recall_at_k(&approx, &[]), 1.0);
    }

    #[test]
    fn wrong_dimension_query_is_rejected_not_truncated() {
        // Regression: `dot` only debug_asserts lengths, so in release a
        // short query used to zip-truncate and come back with plausible
        // scores. The public boundary must reject it typed.
        let s = tiny_store();
        let err = s.try_exact_top_k(&[1.0], 4).unwrap_err();
        assert_eq!(
            err,
            QueryError::DimensionMismatch {
                expected: 2,
                found: 1
            }
        );
        let err = s.try_exact_top_k(&[1.0, 0.0, 3.0], 4).unwrap_err();
        assert!(matches!(
            err,
            QueryError::DimensionMismatch { found: 3, .. }
        ));
        assert!(err.to_string().contains("dimension"));
    }

    #[test]
    fn out_of_range_node_is_rejected_typed() {
        let s = tiny_store();
        assert_eq!(
            s.try_exact_top_k_node(4, 2).unwrap_err(),
            QueryError::NodeOutOfRange { node: 4, nodes: 4 }
        );
        assert!(s.try_link_score(0, 99).is_err());
        assert!(s.try_link_score(99, 0).is_err());
        assert_eq!(
            s.try_link_score(0, 1).unwrap().to_bits(),
            s.link_score(0, 1).to_bits()
        );
    }

    #[test]
    fn nan_scores_rank_deterministically() {
        let m = F32Matrix::from_vec(3, 1, vec![f32::NAN, 1.0, 2.0]);
        let s = EmbeddingStore::from_f32(m, Provenance::non_private(0));
        let a = s.exact_top_k(&[1.0], 3);
        let b = s.exact_top_k(&[1.0], 3);
        assert_eq!(
            a.iter()
                .map(|n| (n.node, n.score.to_bits()))
                .collect::<Vec<_>>(),
            b.iter()
                .map(|n| (n.node, n.score.to_bits()))
                .collect::<Vec<_>>(),
        );
        // total_cmp puts +NaN above +inf: the NaN row ranks first, and
        // the real scores keep their relative order after it.
        assert_eq!(a[0].node, 0);
        assert_eq!(a[1].node, 2);
        assert_eq!(a[2].node, 1);
    }
}
