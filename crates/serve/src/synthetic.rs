//! Seeded synthetic embeddings for serving benchmarks and recall
//! regression tests.
//!
//! Real published embeddings are clustered (communities end up in
//! cones of the embedding space — that is what makes IVF work), so the
//! stand-in plants `clusters` seeded centres and scatters nodes around
//! them. Generation is a pure function of the arguments: no `rand`
//! dependency, just a splitmix64 stream, so the bench harness and the
//! CI matrix reproduce identical stores everywhere.

use sp_model::F32Matrix;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform in `[-1, 1)` from the top 24 bits of a hash word.
fn unit(x: u64) -> f32 {
    ((x >> 40) as f32) / 8_388_608.0 - 1.0
}

/// `n x dim` matrix of `clusters` Gaussian-ish blobs: node `i` sits at
/// centre `i % clusters` plus small seeded jitter. Deterministic in
/// `(n, dim, clusters, seed)`.
pub fn clustered_embedding(n: usize, dim: usize, clusters: usize, seed: u64) -> F32Matrix {
    let clusters = clusters.max(1);
    let mut centres = vec![0.0f32; clusters * dim];
    for c in 0..clusters {
        for d in 0..dim {
            centres[c * dim + d] = unit(splitmix64(
                seed ^ (c as u64).wrapping_mul(0x9E37_79B9) ^ ((d as u64) << 32),
            ));
        }
    }
    let mut data = vec![0.0f32; n * dim];
    for i in 0..n {
        let c = i % clusters;
        for d in 0..dim {
            let jitter = unit(splitmix64(
                seed.wrapping_mul(0x2545_F491_4F6C_DD1D) ^ ((i as u64) << 20) ^ d as u64,
            ));
            data[i * dim + d] = centres[c * dim + d] + 0.15 * jitter;
        }
    }
    F32Matrix::from_vec(n, dim, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = clustered_embedding(50, 8, 5, 7);
        let b = clustered_embedding(50, 8, 5, 7);
        assert_eq!(
            a.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        );
        let c = clustered_embedding(50, 8, 5, 8);
        assert_ne!(a.as_slice(), c.as_slice(), "seed must matter");
    }

    #[test]
    fn clusters_are_tighter_than_the_space() {
        let m = clustered_embedding(200, 6, 4, 11);
        // Two nodes of the same cluster sit closer than two nodes of
        // different clusters, on average.
        let dist =
            |a: &[f32], b: &[f32]| -> f32 { a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum() };
        let same = dist(m.row(0), m.row(4));
        let cross = dist(m.row(0), m.row(1));
        assert!(same < cross, "intra {same} vs inter {cross}");
    }

    #[test]
    fn values_are_finite_and_bounded() {
        let m = clustered_embedding(100, 16, 8, 3);
        assert!(m.as_slice().iter().all(|v| v.is_finite() && v.abs() < 2.0));
    }
}
