//! Server-side observability: request counters, a lock-free latency
//! histogram, and per-generation hit counts — everything the `STATS`
//! protocol command reports.
//!
//! The histogram is log₂-bucketed in microseconds: recording is a
//! single relaxed atomic increment on the hot path, and quantiles are
//! read as the upper bound of the first bucket whose cumulative count
//! crosses the rank (an upper bound accurate to 2× — plenty for a
//! p50/p99 regression signal).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Number of log₂ latency buckets: bucket `i` holds samples in
/// `[2^(i-1), 2^i)` µs (bucket 0 holds sub-microsecond samples), so
/// the top bucket saturates at ~2³⁸ µs — days.
const LATENCY_BUCKETS: usize = 39;

/// The request kinds tracked per command.
pub(crate) const COMMAND_NAMES: [&str; 8] = [
    "topk", "topkn", "link", "info", "stats", "reload", "quit", "shutdown",
];

/// Index into the per-command counters for a protocol command name.
pub(crate) fn command_index(name: &str) -> usize {
    COMMAND_NAMES
        .iter()
        .position(|&c| c.eq_ignore_ascii_case(name))
        .expect("every Request maps to a counter")
}

/// Live counters of one running server. All methods are safe to call
/// from any number of connection threads concurrently.
#[derive(Debug)]
pub struct ServerMetrics {
    started: Instant,
    conns_total: AtomicU64,
    conns_active: AtomicU64,
    conns_rejected: AtomicU64,
    requests: AtomicU64,
    errors: AtomicU64,
    malformed: AtomicU64,
    reload_failed: AtomicU64,
    per_command: [AtomicU64; COMMAND_NAMES.len()],
    latency: [AtomicU64; LATENCY_BUCKETS],
    generation_hits: Mutex<BTreeMap<u64, u64>>,
}

impl Default for ServerMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServerMetrics {
    /// Fresh counters; the uptime clock starts now.
    pub fn new() -> Self {
        Self {
            started: Instant::now(),
            conns_total: AtomicU64::new(0),
            conns_active: AtomicU64::new(0),
            conns_rejected: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            malformed: AtomicU64::new(0),
            reload_failed: AtomicU64::new(0),
            per_command: std::array::from_fn(|_| AtomicU64::new(0)),
            latency: std::array::from_fn(|_| AtomicU64::new(0)),
            generation_hits: Mutex::new(BTreeMap::new()),
        }
    }

    /// Atomically claims a connection slot against `max_conns`.
    ///
    /// On success the connection counts as **accepted** (`conns_total`
    /// and `conns_active` advance; the caller must pair it with
    /// [`ServerMetrics::conn_closed`]). Over the bound nothing but
    /// `conns_rejected` advances — accepted and rejected connections
    /// are counted disjointly, so `conns_total` matches its
    /// documentation ("accepted over the server lifetime") by
    /// construction.
    pub(crate) fn try_accept(&self, max_conns: u64) -> bool {
        let active = self.conns_active.fetch_add(1, Ordering::Relaxed) + 1;
        if active > max_conns {
            self.conns_active.fetch_sub(1, Ordering::Relaxed);
            self.conns_rejected.fetch_add(1, Ordering::Relaxed);
            false
        } else {
            self.conns_total.fetch_add(1, Ordering::Relaxed);
            true
        }
    }

    /// A connection handler finished. Saturates at zero: a mismatched
    /// close (a bug, but one that must not poison `STATS`) leaves
    /// `conns_active` at 0 instead of wrapping to 2⁶⁴−1.
    pub(crate) fn conn_closed(&self) {
        let mut cur = self.conns_active.load(Ordering::Relaxed);
        while cur > 0 {
            match self.conns_active.compare_exchange_weak(
                cur,
                cur - 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// One request completed. `command` is a protocol command name,
    /// `generation` the model version that answered (query commands
    /// only), `ok` whether the response was an `OK`.
    pub(crate) fn record_request(
        &self,
        command: &str,
        micros: u64,
        generation: Option<u64>,
        ok: bool,
    ) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if !ok {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        self.per_command[command_index(command)].fetch_add(1, Ordering::Relaxed);
        self.latency[Self::bucket_of(micros)].fetch_add(1, Ordering::Relaxed);
        if let Some(version) = generation {
            let mut hits = self.generation_hits.lock().expect("metrics lock poisoned");
            *hits.entry(version).or_insert(0) += 1;
        }
    }

    /// A request that failed before it could be attributed to any
    /// command (parse error, oversized line, idle-timeout eviction).
    ///
    /// Counts into `requests`, `errors`, and the dedicated `malformed`
    /// counter — so `requests == Σ per_command + malformed` holds by
    /// construction. `micros` is `Some` only when a request line was
    /// actually read and timed (parse errors); timeout and oversize
    /// events pass `None` and contribute **no** latency sample — the
    /// old code recorded them as fabricated 0µs samples that dragged
    /// p50 down.
    pub(crate) fn record_malformed(&self, micros: Option<u64>) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.errors.fetch_add(1, Ordering::Relaxed);
        self.malformed.fetch_add(1, Ordering::Relaxed);
        if let Some(us) = micros {
            self.latency[Self::bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A `RELOAD` failed (missing, torn, or corrupt model file); the
    /// server kept answering from the last-good generation. Counted in
    /// addition to the request's normal `errors` attribution, so the
    /// `requests == Σ per_command + malformed` invariant is untouched —
    /// this is a dedicated degradation signal, not a request class.
    pub(crate) fn record_reload_failed(&self) {
        self.reload_failed.fetch_add(1, Ordering::Relaxed);
    }

    fn bucket_of(micros: u64) -> usize {
        ((64 - micros.leading_zeros()) as usize).min(LATENCY_BUCKETS - 1)
    }

    /// A point-in-time copy of every counter, for `STATS` and tests.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let latency: Vec<u64> = self
            .latency
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        MetricsSnapshot {
            uptime_ms: self.started.elapsed().as_millis() as u64,
            conns_total: self.conns_total.load(Ordering::Relaxed),
            conns_active: self.conns_active.load(Ordering::Relaxed),
            conns_rejected: self.conns_rejected.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            malformed: self.malformed.load(Ordering::Relaxed),
            reload_failed: self.reload_failed.load(Ordering::Relaxed),
            per_command: COMMAND_NAMES
                .iter()
                .zip(&self.per_command)
                .map(|(&name, c)| (name, c.load(Ordering::Relaxed)))
                .collect(),
            p50_us: quantile(&latency, 0.50),
            p99_us: quantile(&latency, 0.99),
            generation_hits: self
                .generation_hits
                .lock()
                .expect("metrics lock poisoned")
                .iter()
                .map(|(&v, &h)| (v, h))
                .collect(),
        }
    }
}

/// The upper bound (µs) of the first bucket whose cumulative count
/// reaches quantile `q`; 0 when nothing was recorded.
fn quantile(buckets: &[u64], q: f64) -> u64 {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return 0;
    }
    let rank = (q * total as f64).ceil() as u64;
    let mut seen = 0u64;
    for (i, &count) in buckets.iter().enumerate() {
        seen += count;
        if seen >= rank {
            return if i == 0 { 1 } else { 1u64 << i };
        }
    }
    1u64 << (buckets.len() - 1)
}

/// One consistent reading of the server counters.
#[derive(Clone, Debug)]
pub struct MetricsSnapshot {
    /// Milliseconds since the metrics (≈ the server) started.
    pub uptime_ms: u64,
    /// Connections accepted over the server lifetime.
    pub conns_total: u64,
    /// Connections currently open.
    pub conns_active: u64,
    /// Connections turned away at the `max_conns` limit.
    pub conns_rejected: u64,
    /// Requests handled. Invariant (held by construction):
    /// `requests == Σ per_command + malformed`.
    pub requests: u64,
    /// Requests answered with an `ERR` line (malformed ones included).
    pub errors: u64,
    /// Requests that could not be attributed to any command: parse
    /// errors, oversized lines, idle-timeout evictions.
    pub malformed: u64,
    /// `RELOAD` commands that failed (missing/torn/corrupt model file)
    /// while the server kept serving the last-good generation. A
    /// degradation signal on top of the request counters: each such
    /// request still counts once under `reload`/`errors`.
    pub reload_failed: u64,
    /// Requests per protocol command, `(name, count)` in fixed
    /// protocol order (`topk`, `topkn`, `link`, `info`, `stats`,
    /// `reload`, `quit`, `shutdown`). A bulk `TOPKN` counts as **one**
    /// request however many nodes it carries, so the STATS invariant
    /// `requests == Σ per_command + malformed` is unaffected by batch
    /// size.
    pub per_command: Vec<(&'static str, u64)>,
    /// Median request latency upper bound, microseconds.
    pub p50_us: u64,
    /// 99th-percentile request latency upper bound, microseconds.
    pub p99_us: u64,
    /// `(generation version, queries answered by it)`, ascending.
    pub generation_hits: Vec<(u64, u64)>,
}

impl MetricsSnapshot {
    /// The `STATS` response block: one `OK STATS` counter line,
    /// one `GEN <version> <hits>` line per generation, `END`.
    pub fn to_stats_block(&self) -> String {
        let mut out = format!(
            "OK STATS uptime_ms={} conns_total={} conns_active={} conns_rejected={} \
             requests={} errors={} malformed={} reload_failed={}",
            self.uptime_ms,
            self.conns_total,
            self.conns_active,
            self.conns_rejected,
            self.requests,
            self.errors,
            self.malformed,
            self.reload_failed
        );
        for &(name, count) in &self.per_command {
            out.push_str(&format!(" {name}={count}"));
        }
        out.push_str(&format!(" p50_us={} p99_us={}\n", self.p50_us, self.p99_us));
        for &(version, hits) in &self.generation_hits {
            out.push_str(&format!("GEN {version} {hits}\n"));
        }
        out.push_str("END\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let m = ServerMetrics::new();
        assert!(m.try_accept(2));
        assert!(m.try_accept(2));
        m.conn_closed();
        assert!(m.try_accept(2)); // the freed slot is reusable
        assert!(!m.try_accept(2)); // over the bound: rejected
        m.record_request("TOPK", 12, Some(1), true);
        m.record_request("TOPK", 700, Some(2), true);
        m.record_request("LINK", 3, Some(2), true);
        m.record_request("RELOAD", 9000, None, false);
        m.record_malformed(Some(1));
        let s = m.snapshot();
        assert_eq!(
            s.conns_total, 3,
            "rejected conns must not count as accepted"
        );
        assert_eq!(s.conns_active, 2);
        assert_eq!(s.conns_rejected, 1);
        assert_eq!(s.requests, 5);
        assert_eq!(s.errors, 2);
        assert_eq!(s.malformed, 1);
        assert_eq!(s.per_command[command_index("topk")], ("topk", 2));
        assert_eq!(s.per_command[command_index("link")], ("link", 1));
        assert_eq!(s.per_command[command_index("reload")], ("reload", 1));
        assert_eq!(s.generation_hits, vec![(1, 1), (2, 2)]);
        assert!(s.p50_us > 0 && s.p99_us >= s.p50_us);
    }

    #[test]
    fn requests_equal_per_command_plus_malformed() {
        // The STATS invariant the server relies on, exercised across
        // every recording path (attributed, parse error, unattributed
        // timeout/oversize with no latency sample).
        let m = ServerMetrics::new();
        m.record_request("TOPK", 10, Some(1), true);
        m.record_request("STATS", 5, None, true);
        m.record_malformed(Some(2)); // parse error: timed
        m.record_malformed(None); // idle timeout: no sample
        m.record_malformed(None); // oversized line: no sample
        let s = m.snapshot();
        let per_command_sum: u64 = s.per_command.iter().map(|&(_, c)| c).sum();
        assert_eq!(s.requests, per_command_sum + s.malformed);
        assert_eq!(s.malformed, 3);
    }

    #[test]
    fn unattributed_malformed_events_record_no_latency_sample() {
        // Regression: timeout/oversize used to inject fake 0µs samples
        // that dragged p50 toward zero. Now they leave the histogram
        // untouched.
        let m = ServerMetrics::new();
        for _ in 0..100 {
            m.record_malformed(None);
        }
        let s = m.snapshot();
        assert_eq!(s.malformed, 100);
        assert_eq!(s.p50_us, 0, "no samples means p50 stays 0");
        // Real samples are unaffected by interleaved timeouts.
        m.record_request("TOPK", 1000, None, true);
        m.record_malformed(None);
        let s = m.snapshot();
        assert!(s.p50_us >= 1000, "p50={} dragged down", s.p50_us);
    }

    #[test]
    fn conn_closed_saturates_at_zero() {
        let m = ServerMetrics::new();
        m.conn_closed(); // mismatched close on a fresh server
        assert_eq!(m.snapshot().conns_active, 0, "must not wrap to 2^64-1");
        assert!(m.try_accept(1));
        m.conn_closed();
        m.conn_closed(); // double close
        let s = m.snapshot();
        assert_eq!(s.conns_active, 0);
        assert_eq!(s.conns_total, 1);
    }

    #[test]
    fn bucket_of_boundaries() {
        // Bucket i holds [2^(i-1), 2^i) µs; bucket 0 is sub-µs.
        assert_eq!(ServerMetrics::bucket_of(0), 0);
        assert_eq!(ServerMetrics::bucket_of(1), 1);
        for k in 0..38u32 {
            let v = 1u64 << k;
            assert_eq!(
                ServerMetrics::bucket_of(v),
                (k as usize + 1).min(LATENCY_BUCKETS - 1),
                "2^{k}"
            );
            if v > 1 {
                assert_eq!(ServerMetrics::bucket_of(v - 1), k as usize, "2^{k}-1");
            }
        }
        // Everything at or beyond the top bucket saturates there.
        assert_eq!(ServerMetrics::bucket_of(1u64 << 62), LATENCY_BUCKETS - 1);
        assert_eq!(ServerMetrics::bucket_of(u64::MAX), LATENCY_BUCKETS - 1);
    }

    #[test]
    fn quantile_boundary_samples() {
        // 0µs and 1µs land in distinguishable buckets; u64::MAX lands
        // in (and reports) the saturated top bucket instead of
        // overflowing the shift.
        let m = ServerMetrics::new();
        m.record_request("INFO", 0, None, true);
        assert_eq!(m.snapshot().p50_us, 1, "bucket 0 reports 1µs upper bound");
        let m = ServerMetrics::new();
        m.record_request("INFO", u64::MAX, None, true);
        let s = m.snapshot();
        assert_eq!(s.p50_us, 1u64 << (LATENCY_BUCKETS - 1));
        assert_eq!(s.p99_us, s.p50_us);
    }

    #[test]
    fn quantile_upper_bounds_are_monotone() {
        // 100 samples at ~16us, 1 at ~4096us.
        let m = ServerMetrics::new();
        for _ in 0..100 {
            m.record_request("INFO", 16, None, true);
        }
        m.record_request("INFO", 4096, None, true);
        let s = m.snapshot();
        assert!(s.p50_us >= 16 && s.p50_us <= 32, "p50={}", s.p50_us);
        assert!(s.p99_us <= 8192, "p99={}", s.p99_us);
        assert!(s.p99_us >= s.p50_us);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let s = ServerMetrics::new().snapshot();
        assert_eq!(s.p50_us, 0);
        assert_eq!(s.p99_us, 0);
    }

    #[test]
    fn stats_block_is_end_terminated() {
        let m = ServerMetrics::new();
        m.record_request("TOPK", 5, Some(3), true);
        let block = m.snapshot().to_stats_block();
        let lines: Vec<&str> = block.lines().collect();
        assert!(lines[0].starts_with("OK STATS "));
        assert!(lines[0].contains("topk=1"));
        assert_eq!(lines[1], "GEN 3 1");
        assert_eq!(*lines.last().unwrap(), "END");
    }
}
