//! Atomic model republishing for continuously-updated serving.
//!
//! The dynamic pipeline retrains and republishes as the graph evolves;
//! the serving side must pick each new model up **without** pausing or
//! corrupting in-flight queries. The mechanism is generational: a
//! [`ServingStore`] holds an `Arc` to the current [`Generation`]
//! (store + optional index + version counter) behind an `RwLock` that
//! is only ever held long enough to clone or replace the `Arc`. A
//! query clones the `Arc` once and runs entirely against that
//! snapshot, so it observes one complete model — the old one or the
//! new one, never a torn mix (asserted under real thread interleaving
//! by the `sp_dynamic` republish suite).

use crate::ivf::IvfIndex;
use crate::store::{EmbeddingStore, Neighbor, QueryError};
use sp_model::ModelError;
use std::path::Path;
use std::sync::{Arc, RwLock};

/// One immutable published model generation.
#[derive(Clone, Debug)]
pub struct Generation {
    /// The embedding store of this generation.
    pub store: EmbeddingStore,
    /// Optional ANN index over the store.
    pub index: Option<IvfIndex>,
    /// Monotone publication counter (1 for the first generation).
    pub version: u64,
}

impl Generation {
    /// Top-k neighbours of `node` within this generation: through the
    /// index when one is attached, exact otherwise.
    ///
    /// # Panics
    /// Panics if `node` is out of range; servers use
    /// [`Generation::try_top_k_node`].
    pub fn top_k_node(&self, node: u32, k: usize) -> Vec<Neighbor> {
        self.try_top_k_node(node, k).expect("node out of range")
    }

    /// [`Generation::top_k_node`] with typed validation instead of a
    /// panic — the entry point the TCP front-end answers `TOPK` from.
    pub fn try_top_k_node(&self, node: u32, k: usize) -> Result<Vec<Neighbor>, QueryError> {
        self.store.check_node(node)?;
        Ok(match &self.index {
            Some(idx) => idx.top_k_node(&self.store, node, k, idx.nprobe_default()),
            None => self
                .store
                .try_exact_top_k_node(node, k)
                .expect("node validated above"),
        })
    }

    /// Link score within this generation, with typed validation — the
    /// entry point the TCP front-end answers `LINK` from.
    pub fn try_link_score(&self, u: u32, v: u32) -> Result<f32, QueryError> {
        self.store.try_link_score(u, v)
    }
}

/// The swap point between the republishing loop and concurrent query
/// threads.
#[derive(Debug)]
pub struct ServingStore {
    current: RwLock<Arc<Generation>>,
}

impl ServingStore {
    /// Serves an initial model (version 1).
    pub fn new(store: EmbeddingStore, index: Option<IvfIndex>) -> Self {
        Self {
            current: RwLock::new(Arc::new(Generation {
                store,
                index,
                version: 1,
            })),
        }
    }

    /// A consistent snapshot: queries against the returned generation
    /// never observe a concurrent republish.
    pub fn snapshot(&self) -> Arc<Generation> {
        self.current.read().expect("serving lock poisoned").clone()
    }

    /// Currently served version.
    pub fn version(&self) -> u64 {
        self.snapshot().version
    }

    /// Atomically replaces the served generation; returns the new
    /// version. In-flight queries keep their snapshot; new queries see
    /// the new model.
    pub fn publish(&self, store: EmbeddingStore, index: Option<IvfIndex>) -> u64 {
        let mut slot = self.current.write().expect("serving lock poisoned");
        let version = slot.version + 1;
        *slot = Arc::new(Generation {
            store,
            index,
            version,
        });
        version
    }

    /// Loads a published `.spm` file and swaps it in, optionally
    /// building an IVF index first (outside the lock — queries keep
    /// flowing against the old generation during the build).
    pub fn reload_from(
        &self,
        path: &Path,
        ivf: Option<crate::ivf::IvfConfig>,
        threads: Option<usize>,
    ) -> Result<u64, ModelError> {
        let store = EmbeddingStore::open(path)?;
        let index = ivf.map(|cfg| IvfIndex::build(&store, cfg, threads));
        Ok(self.publish(store, index))
    }

    /// Snapshot-consistent convenience query: `(version, top-k)`.
    pub fn top_k_node(&self, node: u32, k: usize) -> (u64, Vec<Neighbor>) {
        let generation = self.snapshot();
        (generation.version, generation.top_k_node(node, k))
    }

    /// Snapshot-consistent link score: `(version, score)`.
    pub fn link_score(&self, u: u32, v: u32) -> (u64, f32) {
        let generation = self.snapshot();
        (generation.version, generation.store.link_score(u, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_model::{F32Matrix, Provenance};

    fn constant_store(n: usize, dim: usize, value: f32) -> EmbeddingStore {
        EmbeddingStore::from_f32(
            F32Matrix::from_vec(n, dim, vec![value; n * dim]),
            Provenance::non_private(0),
        )
    }

    #[test]
    fn publish_bumps_version_and_swaps_content() {
        let serving = ServingStore::new(constant_store(4, 2, 1.0), None);
        assert_eq!(serving.version(), 1);
        let (v, s) = serving.link_score(0, 1);
        assert_eq!(v, 1);
        let first = s;
        let v2 = serving.publish(constant_store(4, 2, 2.0), None);
        assert_eq!(v2, 2);
        let (v, s) = serving.link_score(0, 1);
        assert_eq!(v, 2);
        assert!(s > first, "new model must be visible after publish");
    }

    #[test]
    fn snapshot_outlives_a_publish() {
        let serving = ServingStore::new(constant_store(3, 2, 1.0), None);
        let held = serving.snapshot();
        serving.publish(constant_store(3, 2, 5.0), None);
        // The held snapshot still answers from the old generation…
        assert_eq!(held.version, 1);
        assert_eq!(held.store.embedding(0)[0], 1.0);
        // …while fresh queries see the new one.
        assert_eq!(serving.snapshot().version, 2);
        assert_eq!(serving.snapshot().store.embedding(0)[0], 5.0);
    }

    #[test]
    fn reload_from_missing_file_is_typed_and_keeps_serving() {
        let serving = ServingStore::new(constant_store(3, 2, 1.0), None);
        let err = serving
            .reload_from(Path::new("/nonexistent/model.spm"), None, Some(1))
            .unwrap_err();
        assert!(matches!(err, ModelError::Io(_)));
        // A failed reload never tears down the current generation.
        assert_eq!(serving.version(), 1);
        assert_eq!(serving.top_k_node(0, 2).1.len(), 2);
    }
}
