//! Property tests for the `.spm` serialisation round trip.
//!
//! The format stores `f32` payloads as raw bit patterns, so the round
//! trip must be the identity on **bits**, not merely on values: NaNs
//! (any payload), signalling-bit patterns, subnormals, ±0, and the
//! infinities all come back exactly. Arbitrary shapes, seeds, and
//! (ε, δ) provenance ride along. These properties are what the serving
//! layer's bit-for-bit query parity rests on.

use proptest::prelude::*;
use sp_model::{F32Matrix, ModelError, ModelFile, ModelPayload, Provenance};

/// Full-range `f32` bit patterns: every draw is some valid `f32`,
/// including NaN payloads, subnormals, ±0 and ±∞. Special values are
/// over-sampled so small cases still exercise them.
fn f32_bits() -> impl Strategy<Value = u32> {
    (0u64..(1u64 << 32), 0u32..8).prop_map(|(bits, special)| match special {
        0 => 0x7FC0_0001, // quiet NaN with payload
        1 => 0xFFC0_0000, // negative NaN
        2 => 0x8000_0000, // -0.0
        3 => 0x0000_0001, // smallest positive subnormal
        4 => 0x7F80_0000, // +inf
        _ => bits as u32,
    })
}

/// Matrices with arbitrary shape and full-bit-range content. The stub
/// proptest has no `prop_flat_map`, so the payload is drawn at maximal
/// size and each case truncates it to its own shape.
fn matrix(max_rows: usize, max_cols: usize) -> impl Strategy<Value = F32Matrix> {
    let payload =
        proptest::collection::vec(f32_bits(), max_rows * max_cols..max_rows * max_cols + 1);
    (1..max_rows + 1, 1..max_cols + 1, payload).prop_map(|(r, c, bits)| {
        F32Matrix::from_vec(
            r,
            c,
            bits[..r * c].iter().map(|&b| f32::from_bits(b)).collect(),
        )
    })
}

fn provenance() -> impl Strategy<Value = Provenance> {
    (0u64..u64::MAX, 0.01f64..100.0, 0.0f64..0.1).prop_map(|(seed, epsilon, delta)| Provenance {
        seed,
        epsilon,
        delta,
    })
}

fn bits_of(m: &F32Matrix) -> Vec<u32> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #[test]
    fn dense_payload_roundtrips_bit_identically(
        m in matrix(24, 10),
        p in provenance(),
    ) {
        let file = ModelFile::dense(m, p);
        let back = ModelFile::from_bytes(&file.to_bytes()).unwrap();
        let (a, b) = (file.payload.vectors(), back.payload.vectors());
        prop_assert_eq!(a.rows(), b.rows());
        prop_assert_eq!(a.cols(), b.cols());
        // Bitwise, not value-wise: NaN != NaN under ==, so compare bits.
        prop_assert_eq!(bits_of(a), bits_of(b));
        prop_assert_eq!(back.provenance.seed, p.seed);
        prop_assert_eq!(back.provenance.epsilon.to_bits(), p.epsilon.to_bits());
        prop_assert_eq!(back.provenance.delta.to_bits(), p.delta.to_bits());
    }

    #[test]
    fn skipgram_payload_roundtrips_bit_identically(
        w_in in matrix(16, 8),
        p in provenance(),
    ) {
        // Context block with the same shape but independent content:
        // shift every bit pattern so the two blocks cannot be confused.
        let w_out = F32Matrix::from_vec(
            w_in.rows(),
            w_in.cols(),
            w_in.as_slice()
                .iter()
                .map(|v| f32::from_bits(v.to_bits().rotate_left(7)))
                .collect(),
        );
        let file = ModelFile {
            payload: ModelPayload::SkipGram {
                w_in: w_in.clone(),
                w_out: w_out.clone(),
            },
            provenance: p,
        };
        let back = ModelFile::from_bytes(&file.to_bytes()).unwrap();
        prop_assert_eq!(bits_of(back.payload.vectors()), bits_of(&w_in));
        let ctx = back.payload.context().expect("skip-gram keeps its context block");
        prop_assert_eq!(bits_of(ctx), bits_of(&w_out));
    }

    #[test]
    fn serialisation_is_deterministic(m in matrix(12, 6), p in provenance()) {
        let file = ModelFile::dense(m, p);
        prop_assert_eq!(file.to_bytes(), file.to_bytes());
    }

    #[test]
    fn any_single_payload_bit_flip_is_caught(
        m in matrix(8, 6),
        p in provenance(),
        flip_byte in 0usize..10_000,
        flip_bit in 0u32..8,
    ) {
        let mut bytes = ModelFile::dense(m, p).to_bytes();
        let len = bytes.len();
        // Flip one bit anywhere in payload or trailer (past the header):
        // the CRC must refuse it. Header flips are covered separately in
        // the failure-injection suite (they surface as other typed errors).
        let i = 64 + flip_byte % (len - 64);
        bytes[i] ^= 1 << flip_bit;
        match ModelFile::from_bytes(&bytes) {
            Err(ModelError::ChecksumMismatch { declared, actual }) => {
                prop_assert_ne!(declared, actual);
            }
            other => prop_assert!(false, "bit flip at {} accepted: {:?}", i, other.is_ok()),
        }
    }
}
