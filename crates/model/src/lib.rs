//! # sp-model
//!
//! The `.spm` binary format for *published* embedding models — the
//! durable artefact of a DP training run. Under the paper's threat
//! model a published model is pure post-processing (Theorem 2): it can
//! be stored, copied, and queried forever at zero marginal privacy
//! cost, so the format records the provenance of the spend (seed, ε,
//! δ) alongside the payload.
//!
//! ## Layout (version 1)
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"SPMB"
//! 4       2     format version (u16 LE) = 1
//! 6       2     payload kind (u16 LE): 1 = dense matrix, 2 = skip-gram pair
//! 8       8     rows (node count, u64 LE)
//! 16      8     cols (embedding dimension, u64 LE)
//! 24      8     provenance: training seed (u64 LE)
//! 32      8     provenance: epsilon spent (f64 bits LE)
//! 40      8     provenance: delta spent (f64 bits LE)
//! 48      8     reserved (must be 0)
//! 56      8     payload length in bytes (u64 LE)
//! 64      ...   payload: row-major f32 LE blocks
//!               kind 1: rows*cols values; kind 2: W_in then W_out
//! end-4   4     CRC32 (LE) over everything before it (header + payload)
//! ```
//!
//! The header is exactly 64 bytes, so on any page-aligned mapping the
//! f32 payload starts 64-byte aligned — the format is mmap-ready even
//! though this workspace's std-only readers bulk-read (`unsafe` is
//! forbidden workspace-wide and std has no mmap).
//!
//! Values are stored as **raw f32 bit patterns**: writers and readers
//! move `u32` bits, never converting through arithmetic, so NaN
//! payloads, signed zeros, and subnormals survive a round trip
//! bit-identically (property-tested in `tests/prop_roundtrip.rs`).
//! Publishing an `f64`-trained matrix rounds each entry to the nearest
//! f32 once, at write time — the documented publication precision.
//!
//! Every failure is a typed [`ModelError`] — truncation, version skew,
//! checksum mismatch — mirroring the `LoadError` discipline of the
//! dataset loaders. Readers never panic on malformed bytes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;

use sp_linalg::DenseMatrix;
use sp_skipgram::SkipGramModel;
use std::fmt;
use std::path::Path;

/// File magic: "Structure-Preference Model Binary".
pub const MAGIC: [u8; 4] = *b"SPMB";
/// The single format version this build reads and writes.
pub const FORMAT_VERSION: u16 = 1;
/// Header size in bytes; the f32 payload starts at this offset.
pub const HEADER_LEN: usize = 64;
/// Trailing checksum size in bytes.
pub const TRAILER_LEN: usize = 4;

const KIND_DENSE: u16 = 1;
const KIND_SKIPGRAM: u16 = 2;

/// Typed failure of any read or write of the `.spm` format. Readers
/// never panic on malformed bytes.
#[derive(Debug)]
pub enum ModelError {
    /// Filesystem failure (missing file, permissions, full disk, …).
    Io(std::io::Error),
    /// The byte stream ends before the declared content does.
    Truncated {
        /// Bytes the header (or the minimum header itself) requires.
        expected: usize,
        /// Bytes actually present.
        found: usize,
    },
    /// The first four bytes are not [`MAGIC`].
    BadMagic {
        /// The bytes found instead.
        found: [u8; 4],
    },
    /// A version this build does not understand (it only speaks
    /// [`FORMAT_VERSION`]).
    UnsupportedVersion {
        /// Version declared by the file.
        found: u16,
    },
    /// A payload-kind tag this build does not understand.
    UnknownKind {
        /// Kind tag declared by the file.
        found: u16,
    },
    /// Header fields that contradict each other or the byte count
    /// (e.g. a bit-flipped row count).
    Corrupt {
        /// What was inconsistent.
        reason: &'static str,
    },
    /// The CRC32 trailer does not match the header + payload bytes.
    ChecksumMismatch {
        /// Checksum declared by the trailer.
        declared: u32,
        /// Checksum of the bytes actually read.
        actual: u32,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Io(e) => write!(f, "i/o error: {e}"),
            ModelError::Truncated { expected, found } => {
                write!(
                    f,
                    "truncated model file: need {expected} bytes, have {found}"
                )
            }
            ModelError::BadMagic { found } => {
                write!(f, "not an .spm model file (magic {found:02x?})")
            }
            ModelError::UnsupportedVersion { found } => write!(
                f,
                "model format version {found} not supported (this build reads {FORMAT_VERSION})"
            ),
            ModelError::UnknownKind { found } => {
                write!(f, "unknown model payload kind {found}")
            }
            ModelError::Corrupt { reason } => write!(f, "corrupt model header: {reason}"),
            ModelError::ChecksumMismatch { declared, actual } => write!(
                f,
                "checksum mismatch: trailer {declared:#010x}, data {actual:#010x}"
            ),
        }
    }
}

impl std::error::Error for ModelError {}

impl From<std::io::Error> for ModelError {
    fn from(e: std::io::Error) -> Self {
        ModelError::Io(e)
    }
}

/// Training provenance carried in the header: which seeded run spent
/// which budget to produce this model. For non-private runs store
/// `epsilon: f64::INFINITY`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Provenance {
    /// RNG seed of the training run.
    pub seed: u64,
    /// ε spent by the run that produced the payload.
    pub epsilon: f64,
    /// δ spent by the run that produced the payload.
    pub delta: f64,
}

impl Provenance {
    /// Provenance of a non-private run (ε = ∞, δ = 0).
    pub fn non_private(seed: u64) -> Self {
        Self {
            seed,
            epsilon: f64::INFINITY,
            delta: 0.0,
        }
    }
}

/// A row-major `rows x cols` matrix of f32 — the in-memory mirror of
/// one payload block. Serving reads these directly; nothing upcasts
/// back to f64 on the query path.
#[derive(Clone, Debug, PartialEq)]
pub struct F32Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl F32Matrix {
    /// Builds from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "from_vec: buffer length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Rounds an `f64` matrix to publication precision (nearest f32,
    /// once). This is the exact conversion the writers apply, so a
    /// store built in memory from a trained model and one loaded back
    /// from disk hold bit-identical payloads.
    pub fn from_dense(m: &DenseMatrix) -> Self {
        Self {
            rows: m.rows(),
            cols: m.cols(),
            data: m.as_slice().iter().map(|&v| v as f32).collect(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The whole backing buffer, row-major.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Exact (bit-level) upcast to the workspace's `f64` matrix type,
    /// for feeding a loaded model back into evaluation code.
    pub fn to_dense(&self) -> DenseMatrix {
        DenseMatrix::from_vec(
            self.rows,
            self.cols,
            self.data.iter().map(|&v| v as f64).collect(),
        )
    }
}

/// The payload of one model file.
#[derive(Clone, Debug, PartialEq)]
pub enum ModelPayload {
    /// A single embedding matrix (`W_in` alone — the published node
    /// vectors).
    Dense(F32Matrix),
    /// Both skip-gram matrices, enabling directed link scores
    /// `σ(W_in[u] · W_out[v])` at serve time.
    SkipGram {
        /// Centre embeddings (the published node vectors).
        w_in: F32Matrix,
        /// Context embeddings.
        w_out: F32Matrix,
    },
}

impl ModelPayload {
    /// The published node-vector matrix (`W_in` for skip-gram pairs).
    pub fn vectors(&self) -> &F32Matrix {
        match self {
            ModelPayload::Dense(m) => m,
            ModelPayload::SkipGram { w_in, .. } => w_in,
        }
    }

    /// The context matrix, when the payload carries one.
    pub fn context(&self) -> Option<&F32Matrix> {
        match self {
            ModelPayload::Dense(_) => None,
            ModelPayload::SkipGram { w_out, .. } => Some(w_out),
        }
    }

    fn kind_tag(&self) -> u16 {
        match self {
            ModelPayload::Dense(_) => KIND_DENSE,
            ModelPayload::SkipGram { .. } => KIND_SKIPGRAM,
        }
    }

    fn blocks(&self) -> Vec<&F32Matrix> {
        match self {
            ModelPayload::Dense(m) => vec![m],
            ModelPayload::SkipGram { w_in, w_out } => vec![w_in, w_out],
        }
    }
}

/// One parsed (or to-be-written) model file: payload + provenance.
#[derive(Clone, Debug, PartialEq)]
pub struct ModelFile {
    /// The embedding payload.
    pub payload: ModelPayload,
    /// Training provenance from the header.
    pub provenance: Provenance,
}

impl ModelFile {
    /// Wraps a single published matrix.
    pub fn dense(m: F32Matrix, provenance: Provenance) -> Self {
        Self {
            payload: ModelPayload::Dense(m),
            provenance,
        }
    }

    /// Rounds a trained skip-gram model to publication precision.
    pub fn from_skipgram(model: &SkipGramModel, provenance: Provenance) -> Self {
        assert_eq!(
            model.w_in.shape(),
            model.w_out.shape(),
            "skip-gram matrices must share a shape"
        );
        Self {
            payload: ModelPayload::SkipGram {
                w_in: F32Matrix::from_dense(&model.w_in),
                w_out: F32Matrix::from_dense(&model.w_out),
            },
            provenance,
        }
    }

    /// Rounds a trained `f64` matrix to publication precision.
    pub fn from_dense(m: &DenseMatrix, provenance: Provenance) -> Self {
        Self::dense(F32Matrix::from_dense(m), provenance)
    }

    /// Node count.
    pub fn num_nodes(&self) -> usize {
        self.payload.vectors().rows()
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.payload.vectors().cols()
    }

    /// Serialises to the version-1 byte layout (header + payload +
    /// CRC32 trailer).
    pub fn to_bytes(&self) -> Vec<u8> {
        let blocks = self.payload.blocks();
        let rows = blocks[0].rows();
        let cols = blocks[0].cols();
        for b in &blocks {
            assert_eq!(
                (b.rows(), b.cols()),
                (rows, cols),
                "payload block shapes differ"
            );
        }
        let payload_len = blocks.len() * rows * cols * 4;
        let mut out = Vec::with_capacity(HEADER_LEN + payload_len + TRAILER_LEN);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.payload.kind_tag().to_le_bytes());
        out.extend_from_slice(&(rows as u64).to_le_bytes());
        out.extend_from_slice(&(cols as u64).to_le_bytes());
        out.extend_from_slice(&self.provenance.seed.to_le_bytes());
        out.extend_from_slice(&self.provenance.epsilon.to_bits().to_le_bytes());
        out.extend_from_slice(&self.provenance.delta.to_bits().to_le_bytes());
        out.extend_from_slice(&0u64.to_le_bytes()); // reserved
        out.extend_from_slice(&(payload_len as u64).to_le_bytes());
        debug_assert_eq!(out.len(), HEADER_LEN);
        for b in blocks {
            for &v in b.as_slice() {
                out.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parses and validates the version-1 byte layout.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ModelError> {
        let min = HEADER_LEN + TRAILER_LEN;
        if bytes.len() < min {
            return Err(ModelError::Truncated {
                expected: min,
                found: bytes.len(),
            });
        }
        let magic: [u8; 4] = bytes[0..4].try_into().expect("4-byte slice");
        if magic != MAGIC {
            return Err(ModelError::BadMagic { found: magic });
        }
        let version = u16::from_le_bytes(bytes[4..6].try_into().expect("2-byte slice"));
        if version != FORMAT_VERSION {
            return Err(ModelError::UnsupportedVersion { found: version });
        }
        let kind = u16::from_le_bytes(bytes[6..8].try_into().expect("2-byte slice"));
        let nblocks = match kind {
            KIND_DENSE => 1usize,
            KIND_SKIPGRAM => 2,
            other => return Err(ModelError::UnknownKind { found: other }),
        };
        let read_u64 =
            |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8-byte slice"));
        let rows = read_u64(8);
        let cols = read_u64(16);
        let provenance = Provenance {
            seed: read_u64(24),
            epsilon: f64::from_bits(read_u64(32)),
            delta: f64::from_bits(read_u64(40)),
        };
        if read_u64(48) != 0 {
            return Err(ModelError::Corrupt {
                reason: "reserved header field is non-zero",
            });
        }
        let payload_len = read_u64(56);
        // All size arithmetic is checked: a bit-flipped row count must
        // surface as a typed error, not an overflow panic or a huge
        // allocation attempt.
        let values = rows
            .checked_mul(cols)
            .and_then(|v| v.checked_mul(nblocks as u64))
            .ok_or(ModelError::Corrupt {
                reason: "rows * cols overflows",
            })?;
        let expected_payload = values.checked_mul(4).ok_or(ModelError::Corrupt {
            reason: "payload size overflows",
        })?;
        if payload_len != expected_payload {
            return Err(ModelError::Corrupt {
                reason: "declared payload length does not match rows * cols",
            });
        }
        if expected_payload > (usize::MAX - min) as u64 {
            return Err(ModelError::Corrupt {
                reason: "payload size exceeds the address space",
            });
        }
        let total = min + expected_payload as usize;
        if bytes.len() < total {
            return Err(ModelError::Truncated {
                expected: total,
                found: bytes.len(),
            });
        }
        if bytes.len() > total {
            return Err(ModelError::Corrupt {
                reason: "trailing bytes after the checksum",
            });
        }
        let declared = u32::from_le_bytes(bytes[total - 4..].try_into().expect("4-byte slice"));
        let actual = crc32(&bytes[..total - 4]);
        if declared != actual {
            return Err(ModelError::ChecksumMismatch { declared, actual });
        }
        let rows = rows as usize;
        let cols = cols as usize;
        let block_values = rows * cols;
        let mut blocks = Vec::with_capacity(nblocks);
        for b in 0..nblocks {
            let start = HEADER_LEN + b * block_values * 4;
            let data: Vec<f32> = bytes[start..start + block_values * 4]
                .chunks_exact(4)
                .map(|c| f32::from_bits(u32::from_le_bytes(c.try_into().expect("4-byte chunk"))))
                .collect();
            blocks.push(F32Matrix::from_vec(rows, cols, data));
        }
        let payload = match kind {
            KIND_DENSE => ModelPayload::Dense(blocks.pop().expect("one block")),
            _ => {
                let w_out = blocks.pop().expect("two blocks");
                let w_in = blocks.pop().expect("two blocks");
                ModelPayload::SkipGram { w_in, w_out }
            }
        };
        Ok(Self {
            payload,
            provenance,
        })
    }

    /// Reads and validates a model file from disk.
    pub fn read(path: &Path) -> Result<Self, ModelError> {
        Self::from_bytes(&std::fs::read(path)?)
    }

    /// Writes the serialised model to `path` **atomically**: the bytes
    /// land in a temporary sibling first and are renamed into place, so
    /// a concurrent reader (or a crashed writer) sees either the old
    /// complete file or the new complete file, never a torn prefix.
    /// This is the republish primitive of the dynamic pipeline.
    pub fn write_atomic(&self, path: &Path) -> Result<(), ModelError> {
        write_bytes_atomic(path, &self.to_bytes())
    }
}

/// Atomically replaces `path` with `bytes` via a temporary sibling file
/// and a rename (atomic on POSIX when both live in the same directory).
///
/// Durability: the temporary file is `fsync`ed **before** the rename —
/// otherwise a crash after the rename could persist the new directory
/// entry pointing at never-flushed contents, violating the "old
/// complete file or new complete file" contract. After the rename the
/// parent directory is synced best-effort so the entry itself survives
/// a crash (failure to sync the directory is not an error: the data
/// rename already succeeded, and some filesystems reject `fsync` on
/// directory handles).
///
/// Concurrency: the temporary name carries a process-global counter in
/// addition to the pid, so any number of threads in one process can
/// republish the same path simultaneously — each write lands in its
/// own temp file and the last rename wins with a complete payload.
pub fn write_bytes_atomic(path: &Path, bytes: &[u8]) -> Result<(), ModelError> {
    write_bytes_atomic_site(sp_fault::sites::MODEL_WRITE, path, bytes)
}

/// [`write_bytes_atomic`] with an explicit fault-injection site, so
/// checkpoint writes and model writes can be killed independently by a
/// fault plan. A no-op single atomic load when `SP_FAULT_PLAN` is
/// unset.
pub(crate) fn write_bytes_atomic_site(
    site: &str,
    path: &Path,
    bytes: &[u8],
) -> Result<(), ModelError> {
    use std::io::Write as _;
    use std::sync::atomic::{AtomicU64, Ordering};
    static WRITE_SEQ: AtomicU64 = AtomicU64::new(0);

    sp_fault::inject(site).map_err(std::io::Error::from)?;

    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path.file_name().ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "path has no file name")
    })?;
    let mut tmp_name = std::ffi::OsString::from(".");
    tmp_name.push(file_name);
    tmp_name.push(format!(
        ".tmp-{}-{}",
        std::process::id(),
        WRITE_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let tmp = match dir {
        Some(d) => d.join(&tmp_name),
        None => std::path::PathBuf::from(&tmp_name),
    };
    let write_and_sync = |tmp: &Path| -> std::io::Result<()> {
        let mut f = std::fs::File::create(tmp)?;
        f.write_all(bytes)?;
        f.sync_all()
    };
    if let Err(e) = write_and_sync(&tmp) {
        std::fs::remove_file(&tmp).ok();
        return Err(ModelError::Io(e));
    }
    match std::fs::rename(&tmp, path) {
        Ok(()) => {
            if let Some(d) = dir {
                if let Ok(dh) = std::fs::File::open(d) {
                    dh.sync_all().ok();
                }
            }
            Ok(())
        }
        Err(e) => {
            std::fs::remove_file(&tmp).ok();
            Err(ModelError::Io(e))
        }
    }
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE 802.3, the gzip polynomial) of `data` — the same
/// checksum the dataset inflater validates, reused here so one
/// well-tested primitive guards both ingestion and publication.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in data {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_provenance() -> Provenance {
        Provenance {
            seed: 0xD5EED,
            epsilon: 3.5,
            delta: 1e-5,
        }
    }

    fn sample_skipgram() -> SkipGramModel {
        let mut rng = StdRng::seed_from_u64(9);
        SkipGramModel::new(17, 6, &mut rng)
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn dense_round_trip_preserves_bits_and_provenance() {
        let m = F32Matrix::from_vec(3, 2, vec![1.5, -0.0, f32::MIN_POSITIVE, 2e-40, 7.25, -3.0]);
        let f = ModelFile::dense(m.clone(), sample_provenance());
        let bytes = f.to_bytes();
        assert_eq!(bytes.len(), HEADER_LEN + 6 * 4 + TRAILER_LEN);
        let back = ModelFile::from_bytes(&bytes).unwrap();
        assert_eq!(back.provenance, sample_provenance());
        let got = back.payload.vectors();
        assert_eq!(got.rows(), 3);
        assert_eq!(got.cols(), 2);
        let bits = |xs: &[f32]| xs.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(got.as_slice()), bits(m.as_slice()));
        assert!(back.payload.context().is_none());
    }

    #[test]
    fn skipgram_round_trip_keeps_both_matrices() {
        let model = sample_skipgram();
        let f = ModelFile::from_skipgram(&model, Provenance::non_private(42));
        let back = ModelFile::from_bytes(&f.to_bytes()).unwrap();
        assert_eq!(back.num_nodes(), 17);
        assert_eq!(back.dim(), 6);
        assert_eq!(back.provenance.seed, 42);
        assert!(back.provenance.epsilon.is_infinite());
        let w_in = back.payload.vectors();
        let w_out = back.payload.context().expect("skip-gram payload");
        for i in 0..17 {
            for d in 0..6 {
                assert_eq!(w_in.row(i)[d], model.w_in.get(i, d) as f32);
                assert_eq!(w_out.row(i)[d], model.w_out.get(i, d) as f32);
            }
        }
    }

    #[test]
    fn empty_matrix_round_trips() {
        let f = ModelFile::dense(
            F32Matrix::from_vec(0, 4, Vec::new()),
            Provenance::non_private(0),
        );
        let back = ModelFile::from_bytes(&f.to_bytes()).unwrap();
        assert_eq!(back.num_nodes(), 0);
        assert_eq!(back.dim(), 4);
    }

    #[test]
    fn to_dense_is_exact() {
        let m = F32Matrix::from_vec(2, 2, vec![0.1, -2.5, 3.0e-12, 1.0]);
        let d = m.to_dense();
        for (a, b) in m.as_slice().iter().zip(d.as_slice()) {
            assert_eq!(*a as f64, *b, "f32 -> f64 must be exact");
        }
    }

    #[test]
    fn atomic_write_then_read_round_trips() {
        let dir = std::env::temp_dir().join(format!("sp_model_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.spm");
        let f = ModelFile::from_skipgram(&sample_skipgram(), sample_provenance());
        f.write_atomic(&path).unwrap();
        let back = ModelFile::read(&path).unwrap();
        assert_eq!(back, f);
        // Republishing over an existing file also succeeds (rename
        // replaces on POSIX).
        f.write_atomic(&path).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_republish_same_path_never_corrupts() {
        // Regression for the shared-temp-file race: the temp name used
        // to be keyed only on the pid, so two threads republishing the
        // same path interleaved writes into ONE temp file and could
        // rename a torn mix into place. With the per-write counter,
        // every writer gets its own temp file: all writes succeed, all
        // concurrent reads parse complete checksum-valid models, and
        // no temp litter survives.
        let dir = std::env::temp_dir().join(format!("sp_model_race_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.spm");
        let make = |tag: u64| {
            ModelFile::dense(
                F32Matrix::from_vec(32, 8, vec![tag as f32; 32 * 8]),
                Provenance::non_private(tag),
            )
        };
        make(0).write_atomic(&path).unwrap();
        std::thread::scope(|scope| {
            let path = &path;
            let mut writers = Vec::new();
            for w in 0..4u64 {
                writers.push(scope.spawn(move || {
                    for i in 0..25u64 {
                        make(w * 1000 + i).write_atomic(path).unwrap();
                    }
                }));
            }
            let reader = scope.spawn(move || {
                for _ in 0..200 {
                    let f = ModelFile::read(path).expect("concurrent read must be complete");
                    // Payload and provenance always agree on one tag.
                    let tag = f.provenance.seed;
                    assert!(f
                        .payload
                        .vectors()
                        .as_slice()
                        .iter()
                        .all(|&v| v == tag as f32));
                }
            });
            for w in writers {
                w.join().unwrap();
            }
            reader.join().unwrap();
        });
        // Every temp file was renamed or cleaned up.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name())
            .filter(|n| n.to_string_lossy().contains(".tmp-"))
            .collect();
        assert!(leftovers.is_empty(), "temp litter: {leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn atomic_write_survives_stale_temp_garbage() {
        // A writer killed mid-write leaves a stale temp file behind.
        // Later publishes must neither trip over it nor publish it.
        let dir = std::env::temp_dir().join(format!("sp_model_stale_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.spm");
        std::fs::write(dir.join(".model.spm.tmp-99999-0"), b"torn garbage").unwrap();
        let f = ModelFile::dense(
            F32Matrix::from_vec(2, 2, vec![1.0; 4]),
            Provenance::non_private(7),
        );
        f.write_atomic(&path).unwrap();
        assert_eq!(ModelFile::read(&path).unwrap(), f);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_typed_io() {
        let err = ModelFile::read(Path::new("/nonexistent/sp_model.spm")).unwrap_err();
        assert!(matches!(err, ModelError::Io(_)));
    }

    #[test]
    fn error_display_is_informative() {
        let s = ModelError::ChecksumMismatch {
            declared: 1,
            actual: 2,
        }
        .to_string();
        assert!(s.contains("checksum"), "{s}");
        let s = ModelError::UnsupportedVersion { found: 9 }.to_string();
        assert!(s.contains('9') && s.contains('1'), "{s}");
    }
}
