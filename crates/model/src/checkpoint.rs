//! The `.spc` binary format for crash-safe **training checkpoints**,
//! plus the orchestration that drives a checkpointed run.
//!
//! A checkpoint serialises a [`TrainerState`] — the trainer's full loop
//! state at a step boundary (counters, RNG, noise spare, loss
//! accumulator, both matrices at **full `f64` precision**, and the raw
//! RDP curve). Unlike the published `.spm` artefact, which rounds to
//! f32 once at publication, a checkpoint must restore the exact bits
//! the loop would have carried forward, so everything here is stored as
//! raw `f64`/`u64` bit patterns.
//!
//! ## Layout (version 1)
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"SPCK"
//! 4       2     format version (u16 LE) = 1
//! 6       2     flags (u16 LE): bit 0 = noise spare present,
//!                               bit 1 = accountant present
//! 8       8     config/graph fingerprint (u64 LE)
//! 16      8     steps_run (u64 LE)
//! 24      8     epochs_run (u64 LE)
//! 32      8     step_in_epoch (u64 LE)
//! 40      32    run RNG state (4 × u64 LE, xoshiro256++)
//! 72      8     noise spare (f64 bits LE; 0 when absent)
//! 80      8     loss sum (f64 bits LE)
//! 88      8     loss count (u64 LE)
//! 96      8     rows (node count, u64 LE)
//! 104     8     cols (embedding dimension, u64 LE)
//! 112     8     accountant max order (u64 LE; 0 when non-private)
//! 120     8     accountant steps (u64 LE)
//! 128     8     payload length in bytes (u64 LE)
//! 136     ...   payload, all f64 bits LE:
//!               RDP curve (max_order - 1 values when present),
//!               then W_in (rows×cols), then W_out (rows×cols)
//! end-4   4     CRC32 (LE) over everything before it
//! ```
//!
//! Writes go through [`crate::write_bytes_atomic`]'s temp + fsync +
//! rename discipline under the `checkpoint.write` fault-injection site,
//! so a crash mid-write leaves the previous checkpoint untouched; and
//! [`latest_valid_checkpoint`] skips torn or corrupt files, so resume
//! falls back to the newest checkpoint that validates.

use crate::{crc32, write_bytes_atomic_site, ModelError, TRAILER_LEN};
use sp_graph::Graph;
use sp_linalg::DenseMatrix;
use sp_proximity::EdgeProximity;
use sp_skipgram::trainer::TrainerState;
use sp_skipgram::{SkipGramModel, TrainReport, Trainer};
use std::path::{Path, PathBuf};

/// File magic: "Structure-Preference ChecKpoint".
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"SPCK";
/// The single checkpoint format version this build reads and writes.
pub const CHECKPOINT_VERSION: u16 = 1;
/// Header size in bytes; the f64 payload starts at this offset.
pub const CHECKPOINT_HEADER_LEN: usize = 136;
/// Checkpoint files newer generations keep around: the current one
/// plus its predecessor, so a torn newest file always leaves a valid
/// fallback on disk.
pub const KEEP_CHECKPOINTS: usize = 2;

const FLAG_SPARE: u16 = 1 << 0;
const FLAG_ACCOUNTANT: u16 = 1 << 1;

/// Canonical file name of the checkpoint taken after `steps` completed
/// steps. Zero-padded so lexicographic directory order equals step
/// order.
pub fn checkpoint_file_name(steps: u64) -> String {
    format!("ckpt-{steps:020}.spc")
}

fn parse_checkpoint_name(name: &str) -> Option<u64> {
    name.strip_prefix("ckpt-")?
        .strip_suffix(".spc")?
        .parse()
        .ok()
}

/// Serialises a [`TrainerState`] into `.spc` bytes.
pub fn checkpoint_to_bytes(st: &TrainerState) -> Vec<u8> {
    let rows = st.w_in.rows();
    let cols = st.w_in.cols();
    debug_assert_eq!(rows, st.w_out.rows());
    debug_assert_eq!(cols, st.w_out.cols());
    let has_accountant = st.accountant_orders_max != 0;
    let payload_words = st.accountant_rdp.len() + 2 * rows * cols;
    let payload_len = payload_words * 8;

    let mut flags = 0u16;
    if st.noise_spare.is_some() {
        flags |= FLAG_SPARE;
    }
    if has_accountant {
        flags |= FLAG_ACCOUNTANT;
    }

    let mut out = Vec::with_capacity(CHECKPOINT_HEADER_LEN + payload_len + TRAILER_LEN);
    out.extend_from_slice(&CHECKPOINT_MAGIC);
    out.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
    out.extend_from_slice(&flags.to_le_bytes());
    out.extend_from_slice(&st.fingerprint.to_le_bytes());
    out.extend_from_slice(&st.steps_run.to_le_bytes());
    out.extend_from_slice(&st.epochs_run.to_le_bytes());
    out.extend_from_slice(&st.step_in_epoch.to_le_bytes());
    for word in st.rng {
        out.extend_from_slice(&word.to_le_bytes());
    }
    out.extend_from_slice(&st.noise_spare.unwrap_or(0.0).to_bits().to_le_bytes());
    out.extend_from_slice(&st.loss_sum.to_bits().to_le_bytes());
    out.extend_from_slice(&st.loss_count.to_le_bytes());
    out.extend_from_slice(&(rows as u64).to_le_bytes());
    out.extend_from_slice(&(cols as u64).to_le_bytes());
    out.extend_from_slice(&st.accountant_orders_max.to_le_bytes());
    out.extend_from_slice(&st.accountant_steps.to_le_bytes());
    out.extend_from_slice(&(payload_len as u64).to_le_bytes());
    debug_assert_eq!(out.len(), CHECKPOINT_HEADER_LEN);
    for &v in &st.accountant_rdp {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    for &v in st.w_in.as_slice() {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    for &v in st.w_out.as_slice() {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    let checksum = crc32(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

fn read_u64(bytes: &[u8], offset: usize) -> u64 {
    u64::from_le_bytes(bytes[offset..offset + 8].try_into().expect("8 bytes"))
}

/// Parses `.spc` bytes back into a [`TrainerState`]. Never panics on
/// malformed input — every failure is a typed [`ModelError`], matching
/// the `.spm` reader's discipline.
pub fn checkpoint_from_bytes(bytes: &[u8]) -> Result<TrainerState, ModelError> {
    let min = CHECKPOINT_HEADER_LEN + TRAILER_LEN;
    if bytes.len() < min {
        return Err(ModelError::Truncated {
            expected: min,
            found: bytes.len(),
        });
    }
    let mut magic = [0u8; 4];
    magic.copy_from_slice(&bytes[0..4]);
    if magic != CHECKPOINT_MAGIC {
        return Err(ModelError::BadMagic { found: magic });
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().expect("2 bytes"));
    if version != CHECKPOINT_VERSION {
        return Err(ModelError::UnsupportedVersion { found: version });
    }
    let flags = u16::from_le_bytes(bytes[6..8].try_into().expect("2 bytes"));
    if flags & !(FLAG_SPARE | FLAG_ACCOUNTANT) != 0 {
        return Err(ModelError::Corrupt {
            reason: "unknown checkpoint flags",
        });
    }
    let fingerprint = read_u64(bytes, 8);
    let steps_run = read_u64(bytes, 16);
    let epochs_run = read_u64(bytes, 24);
    let step_in_epoch = read_u64(bytes, 32);
    let rng = [
        read_u64(bytes, 40),
        read_u64(bytes, 48),
        read_u64(bytes, 56),
        read_u64(bytes, 64),
    ];
    let spare_bits = read_u64(bytes, 72);
    let loss_sum = f64::from_bits(read_u64(bytes, 80));
    let loss_count = read_u64(bytes, 88);
    let rows = read_u64(bytes, 96);
    let cols = read_u64(bytes, 104);
    let accountant_orders_max = read_u64(bytes, 112);
    let accountant_steps = read_u64(bytes, 120);
    let payload_len = read_u64(bytes, 128);

    let has_accountant = flags & FLAG_ACCOUNTANT != 0;
    if !has_accountant && (accountant_orders_max != 0 || accountant_steps != 0) {
        return Err(ModelError::Corrupt {
            reason: "accountant fields set without the accountant flag",
        });
    }
    if has_accountant && accountant_orders_max < 2 {
        return Err(ModelError::Corrupt {
            reason: "accountant grid needs max order >= 2",
        });
    }
    let rdp_words = if has_accountant {
        accountant_orders_max - 1
    } else {
        0
    };
    let matrix_words = rows
        .checked_mul(cols)
        .and_then(|w| w.checked_mul(2))
        .ok_or(ModelError::Corrupt {
            reason: "matrix shape overflows",
        })?;
    let expected_payload = rdp_words
        .checked_add(matrix_words)
        .and_then(|w| w.checked_mul(8))
        .ok_or(ModelError::Corrupt {
            reason: "payload length overflows",
        })?;
    if payload_len != expected_payload {
        return Err(ModelError::Corrupt {
            reason: "payload length does not match declared shape",
        });
    }
    let expected_total = CHECKPOINT_HEADER_LEN as u64 + payload_len + TRAILER_LEN as u64;
    if (bytes.len() as u64) < expected_total {
        return Err(ModelError::Truncated {
            expected: expected_total as usize,
            found: bytes.len(),
        });
    }
    if bytes.len() as u64 != expected_total {
        return Err(ModelError::Corrupt {
            reason: "trailing bytes after checksum",
        });
    }
    let body_len = bytes.len() - TRAILER_LEN;
    let declared = u32::from_le_bytes(bytes[body_len..].try_into().expect("4 bytes"));
    let actual = crc32(&bytes[..body_len]);
    if declared != actual {
        return Err(ModelError::ChecksumMismatch { declared, actual });
    }

    let mut offset = CHECKPOINT_HEADER_LEN;
    let mut take_f64s = |n: usize| -> Vec<f64> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(f64::from_bits(read_u64(bytes, offset)));
            offset += 8;
        }
        out
    };
    let accountant_rdp = take_f64s(rdp_words as usize);
    let per_matrix = (rows * cols) as usize;
    let w_in = DenseMatrix::from_vec(rows as usize, cols as usize, take_f64s(per_matrix));
    let w_out = DenseMatrix::from_vec(rows as usize, cols as usize, take_f64s(per_matrix));

    Ok(TrainerState {
        fingerprint,
        steps_run,
        epochs_run,
        step_in_epoch,
        rng,
        noise_spare: (flags & FLAG_SPARE != 0).then_some(f64::from_bits(spare_bits)),
        loss_sum,
        loss_count,
        w_in,
        w_out,
        accountant_orders_max,
        accountant_rdp,
        accountant_steps,
    })
}

/// Writes a checkpoint with the same atomic temp + fsync + rename
/// discipline as model publication, under the `checkpoint.write` fault
/// site: an injected (or real) crash mid-write never damages the
/// previous checkpoint at `path`.
pub fn write_checkpoint_atomic(path: &Path, st: &TrainerState) -> Result<(), ModelError> {
    write_bytes_atomic_site(
        sp_fault::sites::CHECKPOINT_WRITE,
        path,
        &checkpoint_to_bytes(st),
    )
}

/// Reads and validates one checkpoint file (fault site
/// `checkpoint.read`).
pub fn read_checkpoint(path: &Path) -> Result<TrainerState, ModelError> {
    sp_fault::inject(sp_fault::sites::CHECKPOINT_READ).map_err(std::io::Error::from)?;
    checkpoint_from_bytes(&std::fs::read(path)?)
}

/// Finds the newest checkpoint in `dir` that parses and validates,
/// scanning `ckpt-*.spc` files in descending step order and **skipping**
/// torn, corrupt, or unreadable ones — resume falls back to the best
/// surviving checkpoint rather than failing on a damaged newest file.
///
/// Returns `Ok(None)` when the directory does not exist or holds no
/// valid checkpoint. Only a directory-listing failure is an error.
pub fn latest_valid_checkpoint(dir: &Path) -> Result<Option<(PathBuf, TrainerState)>, ModelError> {
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(ModelError::Io(e)),
    };
    let mut candidates: Vec<(u64, PathBuf)> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(ModelError::Io)?;
        let name = entry.file_name();
        if let Some(steps) = name.to_str().and_then(parse_checkpoint_name) {
            candidates.push((steps, entry.path()));
        }
    }
    candidates.sort_by_key(|c| std::cmp::Reverse(c.0));
    for (_, path) in candidates {
        if let Ok(state) = read_checkpoint(&path) {
            return Ok(Some((path, state)));
        }
    }
    Ok(None)
}

/// Best-effort retention: deletes all but the newest
/// [`KEEP_CHECKPOINTS`] checkpoint files in `dir`. Deletion failures
/// are ignored — stale checkpoints are harmless, only missing ones
/// would hurt.
pub fn prune_checkpoints(dir: &Path) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut files: Vec<(u64, PathBuf)> = entries
        .flatten()
        .filter_map(|e| {
            let steps = e.file_name().to_str().and_then(parse_checkpoint_name)?;
            Some((steps, e.path()))
        })
        .collect();
    files.sort_by_key(|f| std::cmp::Reverse(f.0));
    for (_, path) in files.into_iter().skip(KEEP_CHECKPOINTS) {
        std::fs::remove_file(path).ok();
    }
}

/// The result of a checkpointed (possibly resumed) training run.
#[derive(Clone, Debug)]
pub struct CheckpointedRun {
    /// The trained model.
    pub model: SkipGramModel,
    /// The training report; bit-identical to an uninterrupted run's.
    pub report: TrainReport,
    /// The checkpoint the run resumed from, when there was one.
    pub resumed_from: Option<PathBuf>,
}

/// Drives a crash-safe training run: resumes from the newest valid
/// checkpoint in `TrainConfig::checkpoint_dir` (when `resume` is set
/// and one exists), trains with a sink that persists a `.spc` every
/// `TrainConfig::checkpoint_every` steps, and prunes old checkpoints
/// after each successful write.
///
/// A checkpoint write failure aborts the run and surfaces as the
/// underlying [`ModelError`]: a run that cannot meet its durability
/// contract must not pretend to. A resume whose snapshot does not
/// match the config/graph fingerprint fails with `InvalidData` rather
/// than silently cold-starting — half of a different run's trajectory
/// is worse than an explicit error.
///
/// # Errors
/// `Io(InvalidInput)` when `checkpoint_dir` is unset; otherwise
/// checkpoint IO and resume-validation failures.
pub fn train_with_checkpoints(
    trainer: &Trainer,
    g: &Graph,
    prox: &EdgeProximity,
    initial: Option<SkipGramModel>,
    resume: bool,
) -> Result<CheckpointedRun, ModelError> {
    let cfg = trainer.config();
    let dir = cfg.checkpoint_dir.clone().ok_or_else(|| {
        ModelError::Io(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "TrainConfig::checkpoint_dir is not set",
        ))
    })?;
    std::fs::create_dir_all(&dir)?;
    let resumed = if resume {
        latest_valid_checkpoint(&dir)?
    } else {
        None
    };
    let resumed_from = resumed.as_ref().map(|(path, _)| path.clone());

    // The trainer's sink speaks io::Error; keep the typed ModelError on
    // the side so checksum/corruption detail survives the round trip.
    let mut write_err: Option<ModelError> = None;
    let mut sink = |st: &TrainerState| -> std::io::Result<()> {
        let path = dir.join(checkpoint_file_name(st.steps_run));
        match write_checkpoint_atomic(&path, st) {
            Ok(()) => {
                prune_checkpoints(&dir);
                Ok(())
            }
            Err(e) => {
                let err = std::io::Error::other(format!("checkpoint write failed: {e}"));
                write_err = Some(e);
                Err(err)
            }
        }
    };
    match trainer.train_checkpointed(
        g,
        prox,
        initial,
        resumed.as_ref().map(|(_, st)| st),
        &mut sink,
    ) {
        Ok((model, report)) => Ok(CheckpointedRun {
            model,
            report,
            resumed_from,
        }),
        Err(e) => Err(match write_err {
            Some(typed) => typed,
            None => ModelError::Io(e),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_state() -> TrainerState {
        TrainerState {
            fingerprint: 0xDEAD_BEEF_1234_5678,
            steps_run: 42,
            epochs_run: 3,
            step_in_epoch: 6,
            rng: [1, 2, 3, u64::MAX],
            noise_spare: Some(-0.75),
            loss_sum: 12.5,
            loss_count: 480,
            w_in: DenseMatrix::from_vec(2, 3, vec![0.1, -0.2, 0.3, f64::MIN_POSITIVE, 0.0, -0.0]),
            w_out: DenseMatrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, f64::NAN]),
            accountant_orders_max: 8,
            accountant_rdp: vec![0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07],
            accountant_steps: 42,
        }
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let st = tiny_state();
        let bytes = checkpoint_to_bytes(&st);
        let back = checkpoint_from_bytes(&bytes).unwrap();
        assert_eq!(back.fingerprint, st.fingerprint);
        assert_eq!(back.steps_run, st.steps_run);
        assert_eq!(back.epochs_run, st.epochs_run);
        assert_eq!(back.step_in_epoch, st.step_in_epoch);
        assert_eq!(back.rng, st.rng);
        assert_eq!(
            back.noise_spare.map(f64::to_bits),
            st.noise_spare.map(f64::to_bits)
        );
        assert_eq!(back.loss_sum.to_bits(), st.loss_sum.to_bits());
        assert_eq!(back.loss_count, st.loss_count);
        let bits = |m: &DenseMatrix| m.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&back.w_in), bits(&st.w_in), "NaN/−0.0 must survive");
        assert_eq!(bits(&back.w_out), bits(&st.w_out));
        assert_eq!(back.accountant_orders_max, st.accountant_orders_max);
        assert_eq!(back.accountant_rdp, st.accountant_rdp);
        assert_eq!(back.accountant_steps, st.accountant_steps);
    }

    #[test]
    fn roundtrip_without_accountant_or_spare() {
        let mut st = tiny_state();
        st.noise_spare = None;
        st.accountant_orders_max = 0;
        st.accountant_rdp = Vec::new();
        st.accountant_steps = 0;
        let back = checkpoint_from_bytes(&checkpoint_to_bytes(&st)).unwrap();
        assert_eq!(back.noise_spare, None);
        assert_eq!(back.accountant_orders_max, 0);
        assert!(back.accountant_rdp.is_empty());
    }

    #[test]
    fn file_names_sort_by_step() {
        let mut names = [
            checkpoint_file_name(100),
            checkpoint_file_name(2),
            checkpoint_file_name(30),
        ];
        names.sort();
        assert_eq!(parse_checkpoint_name(&names[0]), Some(2));
        assert_eq!(parse_checkpoint_name(&names[2]), Some(100));
        assert_eq!(parse_checkpoint_name("model.spm"), None);
        assert_eq!(parse_checkpoint_name("ckpt-x.spc"), None);
    }

    #[test]
    fn latest_valid_skips_missing_directory() {
        let missing = std::env::temp_dir().join("spc-definitely-missing-dir-xyz");
        assert!(latest_valid_checkpoint(&missing).unwrap().is_none());
    }
}
