//! # sp-attack
//!
//! Empirical privacy auditing for published graph embeddings,
//! instantiating the paper's threat model (§III-A): a **white-box
//! adversary** holds the published model (`Θ = {W_in, W_out}` or just
//! the embedding matrix), knows the training procedure, and wants to
//! infer whether a target record (an edge, or a node's entire
//! adjacency) was present in the training graph.
//!
//! Two attacks:
//!
//! - [`edge_membership`]: scores candidate node pairs by the
//!   embedding's own link statistic (`v_i · v_j`); the attack AUC over
//!   (train-edge, non-edge) candidates measures how much edge
//!   membership leaks through the embedding. For a well-trained
//!   *non-private* skip-gram this is far above chance by construction
//!   — the objective literally fits that statistic — and the DP noise
//!   should push it toward 1/2.
//! - [`node_membership`]: a shadow-statistic attack on node presence —
//!   the adversary compares a target node's embedding-neighbourhood
//!   coherence (mean similarity to the embeddings of its known
//!   neighbours) against the same statistic for nodes it knows are
//!   absent-equivalent (random pairings).
//!
//! These attacks are *audits*, not upper bounds: low attack AUC does
//! not prove privacy, but attack AUC ≈ ½ across seeds is the standard
//! sanity evidence that a DP implementation is not catastrophically
//! broken, and the gap non-private-vs-private is the paper's
//! motivation made measurable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::Rng;
use sp_eval::auc_from_scores;
use sp_graph::{Graph, NodeId};
use sp_linalg::{vector, DenseMatrix};

/// Result of a membership-inference audit.
#[derive(Clone, Copy, Debug)]
pub struct AttackReport {
    /// Attack AUC: 0.5 = no leakage signal, 1.0 = full leakage.
    pub auc: f64,
    /// Positive (member) candidates scored.
    pub members: usize,
    /// Negative (non-member) candidates scored.
    pub non_members: usize,
}

/// Advantage over random guessing: `2·|AUC − ½|` (in `[0, 1]`).
impl AttackReport {
    /// Attack advantage `2|AUC - 0.5|`.
    pub fn advantage(&self) -> f64 {
        (self.auc - 0.5).abs() * 2.0
    }
}

/// Edge-membership inference with a caller-supplied score: the most
/// general white-box form — the adversary may combine *everything*
/// that was published (for skip-gram, both `W_in` and `W_out`:
/// `score(u,v) = v_u·w_v + v_v·w_u`, the statistic the objective
/// literally fit).
pub fn edge_membership_scored<R, F>(
    g: &Graph,
    score: F,
    n_candidates: usize,
    rng: &mut R,
) -> AttackReport
where
    R: Rng + ?Sized,
    F: Fn(NodeId, NodeId) -> f64,
{
    assert!(g.num_edges() > 0, "no edges to attack");
    let n = n_candidates.min(g.num_edges());
    let member_idx = rand::seq::index::sample(rng, g.num_edges(), n);
    let members: Vec<f64> = member_idx
        .iter()
        .map(|e| {
            let (u, v) = g.edges()[e];
            score(u, v)
        })
        .collect();
    let non_edges = sp_eval::sample_non_edges(g, n, rng);
    let non_members: Vec<f64> = non_edges.iter().map(|&(u, v)| score(u, v)).collect();
    AttackReport {
        auc: auc_from_scores(&members, &non_members).unwrap_or(0.5),
        members: members.len(),
        non_members: non_members.len(),
    }
}

/// Edge-membership inference against a single embedding matrix,
/// scoring candidates by the inner product of the endpoint rows.
///
/// # Panics
/// Panics if the graph has no edges or the embedding shape mismatches.
pub fn edge_membership<R: Rng + ?Sized>(
    g: &Graph,
    emb: &DenseMatrix,
    n_candidates: usize,
    rng: &mut R,
) -> AttackReport {
    assert_eq!(emb.rows(), g.num_nodes(), "embedding shape mismatch");
    edge_membership_scored(
        g,
        |u, v| vector::dot(emb.row(u as usize), emb.row(v as usize)),
        n_candidates,
        rng,
    )
}

/// Node-membership inference via neighbourhood coherence: for each
/// probed node, the statistic is the mean cosine similarity between
/// its embedding and its (adversary-known) neighbours' embeddings;
/// the negative class pairs each probed node with an equal number of
/// random non-neighbours.
pub fn node_membership<R: Rng + ?Sized>(
    g: &Graph,
    emb: &DenseMatrix,
    n_probes: usize,
    rng: &mut R,
) -> AttackReport {
    assert_eq!(emb.rows(), g.num_nodes(), "embedding shape mismatch");
    let candidates: Vec<NodeId> = (0..g.num_nodes() as NodeId)
        .filter(|&v| g.degree(v) >= 1)
        .collect();
    assert!(!candidates.is_empty(), "no non-isolated nodes to probe");
    let mut members = Vec::new();
    let mut non_members = Vec::new();
    for _ in 0..n_probes {
        let v = candidates[rng.gen_range(0..candidates.len())];
        members.push(neighborhood_coherence(g, emb, v, true, rng));
        non_members.push(neighborhood_coherence(g, emb, v, false, rng));
    }
    AttackReport {
        auc: auc_from_scores(&members, &non_members).unwrap_or(0.5),
        members: members.len(),
        non_members: non_members.len(),
    }
}

/// Mean cosine similarity between `v` and either its true neighbours
/// (`real = true`) or an equal number of random distinct non-
/// neighbours (`real = false`).
fn neighborhood_coherence<R: Rng + ?Sized>(
    g: &Graph,
    emb: &DenseMatrix,
    v: NodeId,
    real: bool,
    rng: &mut R,
) -> f64 {
    let deg = g.degree(v).max(1);
    let mut acc = 0.0;
    let mut count = 0usize;
    if real {
        for &u in g.neighbors(v) {
            acc += cosine(emb.row(v as usize), emb.row(u as usize));
            count += 1;
        }
    } else {
        while count < deg {
            if let Some(u) = g.random_non_neighbor(v, rng) {
                acc += cosine(emb.row(v as usize), emb.row(u as usize));
                count += 1;
            } else {
                break;
            }
        }
    }
    if count == 0 {
        0.0
    } else {
        acc / count as f64
    }
}

fn cosine(a: &[f64], b: &[f64]) -> f64 {
    let na = vector::norm2(a);
    let nb = vector::norm2(b);
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    vector::dot(a, b) / (na * nb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sp_datasets::generators;

    fn graph() -> Graph {
        let mut rng = StdRng::seed_from_u64(1);
        generators::barabasi_albert(150, 4, &mut rng)
    }

    /// Oracle embedding that memorises adjacency exactly: rows of
    /// `A + I`. Inner products of edges are >= 2, non-edges usually 0.
    fn oracle_embedding(g: &Graph) -> DenseMatrix {
        let n = g.num_nodes();
        let mut m = DenseMatrix::zeros(n, n);
        for &(u, v) in g.edges() {
            m.set(u as usize, v as usize, 1.0);
            m.set(v as usize, u as usize, 1.0);
        }
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    #[test]
    fn edge_attack_breaks_memorising_embedding() {
        let g = graph();
        let emb = oracle_embedding(&g);
        let mut rng = StdRng::seed_from_u64(2);
        let rep = edge_membership(&g, &emb, 300, &mut rng);
        // Non-edges in a dense BA graph often share common neighbours, so
        // the oracle's AUC sits in the low .9s rather than at 1.0; the
        // assertion checks "strong leak", not a specific draw.
        assert!(rep.auc > 0.9, "oracle should leak: AUC {}", rep.auc);
        assert!(rep.advantage() > 0.8);
    }

    #[test]
    fn edge_attack_near_chance_on_random_embedding() {
        let g = graph();
        let mut rng = StdRng::seed_from_u64(3);
        let emb = DenseMatrix::uniform(g.num_nodes(), 16, -1.0, 1.0, &mut rng);
        let rep = edge_membership(&g, &emb, 300, &mut rng);
        assert!(
            (rep.auc - 0.5).abs() < 0.12,
            "random embedding should not leak: AUC {}",
            rep.auc
        );
    }

    #[test]
    fn node_attack_breaks_memorising_embedding() {
        let g = graph();
        let emb = oracle_embedding(&g);
        let mut rng = StdRng::seed_from_u64(4);
        let rep = node_membership(&g, &emb, 150, &mut rng);
        assert!(rep.auc > 0.9, "oracle node attack AUC {}", rep.auc);
    }

    #[test]
    fn node_attack_near_chance_on_random_embedding() {
        let g = graph();
        let mut rng = StdRng::seed_from_u64(5);
        let emb = DenseMatrix::uniform(g.num_nodes(), 16, -1.0, 1.0, &mut rng);
        let rep = node_membership(&g, &emb, 150, &mut rng);
        assert!((rep.auc - 0.5).abs() < 0.12, "AUC {}", rep.auc);
    }

    #[test]
    fn attack_counts_are_reported() {
        let g = graph();
        let emb = oracle_embedding(&g);
        let mut rng = StdRng::seed_from_u64(6);
        let rep = edge_membership(&g, &emb, 50, &mut rng);
        assert_eq!(rep.members, 50);
        assert_eq!(rep.non_members, 50);
    }

    #[test]
    fn dp_training_reduces_edge_leakage_vs_nonprivate() {
        use se_privgemb::{PerturbStrategy, ProximityKind, SePrivGEmb};
        let g = graph();
        // White-box attack: the adversary holds Θ = {W_in, W_out} and
        // scores pairs with the exact statistic the objective fitted.
        let attack = |strategy: PerturbStrategy, sigma: f64| {
            let mut b = SePrivGEmb::builder()
                .dim(32)
                .epochs(300)
                .learning_rate(0.3)
                .strategy(strategy)
                .proximity(ProximityKind::deepwalk_default())
                .seed(7);
            if strategy.is_private() {
                b = b.sigma(sigma).epsilon(3.5);
            }
            let result = b.build().fit(&g);
            let model = &result.model;
            let mut rng = StdRng::seed_from_u64(8);
            edge_membership_scored(
                &g,
                |u, v| model.inner(u, v) + model.inner(v, u),
                300,
                &mut rng,
            )
            .auc
        };
        let leak_nonpriv = attack(PerturbStrategy::None, 0.0);
        let leak_priv = attack(PerturbStrategy::NonZero, 8.0);
        assert!(
            leak_nonpriv > leak_priv,
            "DP noise should reduce attack AUC: {leak_nonpriv} vs {leak_priv}"
        );
        assert!(
            leak_nonpriv > 0.7,
            "non-private skip-gram must leak edges strongly through Θ: {leak_nonpriv}"
        );
    }
}
