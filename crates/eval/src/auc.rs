//! Area under the ROC curve via the Mann–Whitney U statistic.
//!
//! `AUC = P(score(positive) > score(negative)) + ½·P(tie)` — computed
//! exactly by ranking the pooled scores with midrank tie handling,
//! `O((m+n) log(m+n))`. This is the standard estimator and matches
//! `sklearn.roc_auc_score` to floating-point precision.

/// Computes AUC from positive- and negative-class scores.
///
/// Returns `None` when either class is empty.
pub fn auc_from_scores(pos: &[f64], neg: &[f64]) -> Option<f64> {
    if pos.is_empty() || neg.is_empty() {
        return None;
    }
    let m = pos.len();
    let n = neg.len();
    // Pool with labels, sort ascending by score.
    let mut pooled: Vec<(f64, bool)> = pos
        .iter()
        .map(|&s| (s, true))
        .chain(neg.iter().map(|&s| (s, false)))
        .collect();
    pooled.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("scores must not be NaN"));

    // Midranks with tie groups.
    let mut rank_sum_pos = 0.0f64;
    let mut i = 0usize;
    while i < pooled.len() {
        let mut j = i;
        while j + 1 < pooled.len() && pooled[j + 1].0 == pooled[i].0 {
            j += 1;
        }
        // Ranks are 1-based: group spans ranks i+1 ..= j+1.
        let midrank = (i + 1 + j + 1) as f64 / 2.0;
        for item in &pooled[i..=j] {
            if item.1 {
                rank_sum_pos += midrank;
            }
        }
        i = j + 1;
    }
    let u = rank_sum_pos - m as f64 * (m as f64 + 1.0) / 2.0;
    Some(u / (m as f64 * n as f64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation_is_one() {
        let auc = auc_from_scores(&[0.9, 0.8, 0.7], &[0.3, 0.2, 0.1]).unwrap();
        assert_eq!(auc, 1.0);
    }

    #[test]
    fn reversed_separation_is_zero() {
        let auc = auc_from_scores(&[0.1, 0.2], &[0.8, 0.9]).unwrap();
        assert_eq!(auc, 0.0);
    }

    #[test]
    fn identical_scores_give_half() {
        let auc = auc_from_scores(&[0.5, 0.5, 0.5], &[0.5, 0.5]).unwrap();
        assert!((auc - 0.5).abs() < 1e-12);
    }

    #[test]
    fn known_hand_computed_value() {
        // pos = [3, 1], neg = [2]. Pairs: (3>2)=1, (1<2)=0 ⇒ AUC = 0.5.
        let auc = auc_from_scores(&[3.0, 1.0], &[2.0]).unwrap();
        assert!((auc - 0.5).abs() < 1e-12);
    }

    #[test]
    fn partial_ties_use_midranks() {
        // pos = [2, 1], neg = [2, 0].
        // Pairs: (2 vs 2)=0.5, (2 vs 0)=1, (1 vs 2)=0, (1 vs 0)=1
        // ⇒ AUC = 2.5/4 = 0.625.
        let auc = auc_from_scores(&[2.0, 1.0], &[2.0, 0.0]).unwrap();
        assert!((auc - 0.625).abs() < 1e-12);
    }

    #[test]
    fn agrees_with_naive_pair_counting() {
        // Pseudorandom fixed scores; compare with the O(mn) definition.
        let pos: Vec<f64> = (0..40)
            .map(|i| ((i * 37 + 11) % 97) as f64 / 97.0)
            .collect();
        let neg: Vec<f64> = (0..60)
            .map(|i| ((i * 53 + 29) % 89) as f64 / 89.0)
            .collect();
        let fast = auc_from_scores(&pos, &neg).unwrap();
        let mut acc = 0.0;
        for &p in &pos {
            for &n in &neg {
                acc += if p > n {
                    1.0
                } else if p == n {
                    0.5
                } else {
                    0.0
                };
            }
        }
        let naive = acc / (pos.len() * neg.len()) as f64;
        assert!((fast - naive).abs() < 1e-12, "fast {fast} vs naive {naive}");
    }

    #[test]
    fn empty_classes_are_none() {
        assert_eq!(auc_from_scores(&[], &[1.0]), None);
        assert_eq!(auc_from_scores(&[1.0], &[]), None);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_scores_panic() {
        auc_from_scores(&[f64::NAN], &[0.0]);
    }
}
