//! Embedding-quality diagnostics.
//!
//! Quantities that explain *why* an embedding scores the way it does
//! on the headline metrics — chiefly the norm/degree correlation that
//! drives the degree-norm artifact analysed in EXPERIMENTS.md, plus
//! precision@k for the link-prediction task.

use sp_graph::{Graph, NodeId};
use sp_linalg::{stats, vector, DenseMatrix};

/// Pearson correlation between each node's embedding norm and its
/// degree. Near 1 means the embedding encodes degree in its norms —
/// legitimate signal in skip-gram (frequent nodes grow longer
/// vectors), but under DP noise it also grows mechanically with touch
/// counts; see `ablation_theory`.
pub fn norm_degree_correlation(g: &Graph, emb: &DenseMatrix) -> Option<f64> {
    assert_eq!(emb.rows(), g.num_nodes(), "embedding shape mismatch");
    let norms: Vec<f64> = (0..emb.rows()).map(|r| vector::norm2(emb.row(r))).collect();
    let degrees: Vec<f64> = (0..g.num_nodes())
        .map(|v| g.degree(v as NodeId) as f64)
        .collect();
    stats::pearson(&norms, &degrees)
}

/// Mean and standard deviation of the row norms.
pub fn norm_summary(emb: &DenseMatrix) -> (f64, f64) {
    let norms: Vec<f64> = (0..emb.rows()).map(|r| vector::norm2(emb.row(r))).collect();
    (stats::mean(&norms), stats::std_dev(&norms))
}

/// Precision@k for link prediction: among the `k` highest-scored
/// candidate pairs (union of test positives and negatives, scored by
/// inner product), the fraction that are true positives.
///
/// Returns `None` when `k == 0` or there are no candidates.
pub fn precision_at_k(
    emb: &DenseMatrix,
    test_pos: &[(NodeId, NodeId)],
    test_neg: &[(NodeId, NodeId)],
    k: usize,
) -> Option<f64> {
    if k == 0 || (test_pos.is_empty() && test_neg.is_empty()) {
        return None;
    }
    let mut scored: Vec<(f64, bool)> = Vec::with_capacity(test_pos.len() + test_neg.len());
    for &(u, v) in test_pos {
        scored.push((vector::dot(emb.row(u as usize), emb.row(v as usize)), true));
    }
    for &(u, v) in test_neg {
        scored.push((vector::dot(emb.row(u as usize), emb.row(v as usize)), false));
    }
    scored.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("scores must not be NaN"));
    let k = k.min(scored.len());
    let hits = scored[..k].iter().filter(|(_, pos)| *pos).count();
    Some(hits as f64 / k as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sp_graph::Graph;

    #[test]
    fn norm_degree_correlation_detects_planted_signal() {
        let g = Graph::from_edges(6, [(0, 1), (0, 2), (0, 3), (0, 4), (0, 5), (1, 2)]);
        let mut rng = StdRng::seed_from_u64(1);
        let mut emb = DenseMatrix::zeros(6, 4);
        for v in 0..6 {
            let target = (g.degree(v as u32) as f64).sqrt();
            let row = emb.row_mut(v);
            for x in row.iter_mut() {
                *x = rng.gen_range(-1.0..1.0);
            }
            let n = vector::norm2(row);
            vector::scale(target / n, row);
        }
        let r = norm_degree_correlation(&g, &emb).unwrap();
        assert!(r > 0.9, "planted degree-norm signal not detected: {r}");
    }

    #[test]
    fn norm_degree_correlation_none_for_constant_norms() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
        let mut emb = DenseMatrix::zeros(3, 2);
        for v in 0..3 {
            emb.set(v, 0, 1.0); // every row has norm 1
        }
        assert_eq!(norm_degree_correlation(&g, &emb), None);
    }

    #[test]
    fn norm_summary_values() {
        let emb = DenseMatrix::from_vec(2, 2, vec![3.0, 4.0, 0.0, 0.0]);
        let (mean, sd) = norm_summary(&emb);
        assert!((mean - 2.5).abs() < 1e-12);
        assert!(sd > 0.0);
    }

    #[test]
    fn precision_at_k_perfect_and_inverted() {
        // Embedding where positives score high.
        let emb = DenseMatrix::from_vec(4, 1, vec![1.0, 1.0, -1.0, 1.0]);
        let pos = [(0u32, 1u32)]; // score 1
        let neg = [(0u32, 2u32)]; // score -1
        assert_eq!(precision_at_k(&emb, &pos, &neg, 1), Some(1.0));
        // Inverted labels: top-1 is a negative.
        assert_eq!(precision_at_k(&emb, &neg, &pos, 1), Some(0.0));
    }

    #[test]
    fn precision_at_k_caps_at_candidate_count() {
        let emb = DenseMatrix::from_vec(3, 1, vec![1.0, 1.0, 1.0]);
        let pos = [(0u32, 1u32)];
        let neg = [(0u32, 2u32)];
        // k larger than candidates: uses all, half are positive.
        assert_eq!(precision_at_k(&emb, &pos, &neg, 10), Some(0.5));
        assert_eq!(precision_at_k(&emb, &pos, &neg, 0), None);
        assert_eq!(precision_at_k(&emb, &[], &[], 3), None);
    }
}
