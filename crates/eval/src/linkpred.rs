//! Link-prediction task (§VI-A, following Zhang & Chen \[31\]).
//!
//! Protocol: the edge set is split 90/10 into train/test; the model
//! trains on the graph induced by the training edges; an equal number
//! of uniformly sampled *non-edges* (absent from the full graph) forms
//! the negative test set; each candidate pair is scored by the inner
//! product of its two embedding rows; AUC over
//! positives-vs-negatives is the reported metric. (The paper also
//! samples negative *training* pairs for classifier-based baselines;
//! inner-product scoring needs none, and all eight compared methods
//! are scored identically here.)

use rand::seq::SliceRandom;
use rand::Rng;
use sp_graph::{Graph, NodeId};
use sp_linalg::{vector, DenseMatrix};

/// A train/test split of a graph's edges for link prediction.
#[derive(Clone, Debug)]
pub struct LinkSplit {
    /// Graph containing only the training edges (same node set).
    pub train: Graph,
    /// Held-out true edges.
    pub test_pos: Vec<(NodeId, NodeId)>,
    /// Sampled non-edges, one per held-out edge.
    pub test_neg: Vec<(NodeId, NodeId)>,
}

impl LinkSplit {
    /// Splits `g` holding out `test_fraction` of the edges (at least
    /// one), sampling an equal number of non-edges as negatives.
    ///
    /// # Panics
    /// Panics if `g` has fewer than 2 edges, or `test_fraction` is
    /// outside `(0, 1)`, or the graph is too dense to sample enough
    /// distinct non-edges.
    pub fn new<R: Rng + ?Sized>(g: &Graph, test_fraction: f64, rng: &mut R) -> Self {
        assert!(
            test_fraction > 0.0 && test_fraction < 1.0,
            "test_fraction must be in (0,1)"
        );
        assert!(g.num_edges() >= 2, "need at least two edges to split");
        let mut edges: Vec<(NodeId, NodeId)> = g.edges().to_vec();
        edges.shuffle(rng);
        let n_test =
            ((edges.len() as f64 * test_fraction).round() as usize).clamp(1, edges.len() - 1);
        let test_pos: Vec<_> = edges[..n_test].to_vec();
        let train_edges: Vec<_> = edges[n_test..].to_vec();
        let train = g.with_edges(&train_edges);
        let test_neg = sample_non_edges(g, n_test, rng);
        Self {
            train,
            test_pos,
            test_neg,
        }
    }

    /// Evaluates an embedding with inner-product scoring; returns AUC.
    ///
    /// Returns `None` if AUC is undefined (empty test sets — cannot
    /// happen for splits built by [`LinkSplit::new`]).
    pub fn auc(&self, emb: &DenseMatrix) -> Option<f64> {
        let pos: Vec<f64> = self
            .test_pos
            .iter()
            .map(|&(u, v)| score_dot(emb, u, v))
            .collect();
        let neg: Vec<f64> = self
            .test_neg
            .iter()
            .map(|&(u, v)| score_dot(emb, u, v))
            .collect();
        crate::auc::auc_from_scores(&pos, &neg)
    }
}

/// Inner-product score of a candidate pair.
#[inline]
pub fn score_dot(emb: &DenseMatrix, u: NodeId, v: NodeId) -> f64 {
    vector::dot(emb.row(u as usize), emb.row(v as usize))
}

/// Uniformly samples `count` distinct node pairs that are *not* edges
/// of `g` (and not self-pairs).
///
/// # Panics
/// Panics when the graph has too few non-edges (near-complete graphs)
/// — after `100 × count` rejected draws the sampler gives up.
pub fn sample_non_edges<R: Rng + ?Sized>(
    g: &Graph,
    count: usize,
    rng: &mut R,
) -> Vec<(NodeId, NodeId)> {
    let n = g.num_nodes() as NodeId;
    assert!(n >= 2, "need at least two nodes");
    let mut out = Vec::with_capacity(count);
    let mut seen = std::collections::HashSet::with_capacity(count * 2);
    let mut rejects = 0usize;
    while out.len() < count {
        assert!(
            rejects < 100 * count.max(100),
            "graph too dense to sample {count} distinct non-edges"
        );
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v {
            rejects += 1;
            continue;
        }
        let key = (u.min(v), u.max(v));
        if g.has_edge(key.0, key.1) || !seen.insert(key) {
            rejects += 1;
            continue;
        }
        out.push(key);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn grid_graph() -> Graph {
        // 10x10 grid: 100 nodes, 180 edges.
        let idx = |r: u32, c: u32| r * 10 + c;
        let mut edges = Vec::new();
        for r in 0..10u32 {
            for c in 0..10u32 {
                if c + 1 < 10 {
                    edges.push((idx(r, c), idx(r, c + 1)));
                }
                if r + 1 < 10 {
                    edges.push((idx(r, c), idx(r + 1, c)));
                }
            }
        }
        Graph::from_edges(100, edges)
    }

    #[test]
    fn split_sizes_are_correct() {
        let g = grid_graph();
        let mut rng = StdRng::seed_from_u64(1);
        let split = LinkSplit::new(&g, 0.1, &mut rng);
        assert_eq!(split.test_pos.len(), 18);
        assert_eq!(split.test_neg.len(), 18);
        assert_eq!(split.train.num_edges(), 162);
        assert_eq!(split.train.num_nodes(), 100);
    }

    #[test]
    fn test_edges_are_absent_from_train() {
        let g = grid_graph();
        let mut rng = StdRng::seed_from_u64(2);
        let split = LinkSplit::new(&g, 0.1, &mut rng);
        for &(u, v) in &split.test_pos {
            assert!(g.has_edge(u, v), "test positive must be a real edge");
            assert!(!split.train.has_edge(u, v), "leaked into train");
        }
    }

    #[test]
    fn negatives_are_true_non_edges_and_distinct() {
        let g = grid_graph();
        let mut rng = StdRng::seed_from_u64(3);
        let split = LinkSplit::new(&g, 0.1, &mut rng);
        let mut seen = std::collections::HashSet::new();
        for &(u, v) in &split.test_neg {
            assert!(!g.has_edge(u, v));
            assert_ne!(u, v);
            assert!(seen.insert((u, v)), "duplicate negative");
        }
    }

    #[test]
    fn oracle_embedding_scores_high_auc() {
        // Embedding = dense adjacency rows of the *full* graph: a pair
        // sharing neighbours scores high; grid positives always share
        // structure. AUC should beat 0.9.
        let g = grid_graph();
        let n = g.num_nodes();
        let mut emb = DenseMatrix::zeros(n, n);
        for &(u, v) in g.edges() {
            emb.set(u as usize, v as usize, 1.0);
            emb.set(v as usize, u as usize, 1.0);
        }
        let mut rng = StdRng::seed_from_u64(4);
        let split = LinkSplit::new(&g, 0.1, &mut rng);
        // score(u,v) = |N(u) ∩ N(v)|; on a grid adjacent nodes share 0
        // neighbours... use A + I rows instead so edges score directly.
        for i in 0..n {
            emb.set(i, i, 1.0);
        }
        let auc = split.auc(&emb).unwrap();
        assert!(auc > 0.9, "oracle AUC {auc}");
    }

    #[test]
    fn random_embedding_is_near_chance() {
        let g = grid_graph();
        let mut rng = StdRng::seed_from_u64(5);
        let emb = DenseMatrix::uniform(100, 8, -1.0, 1.0, &mut rng);
        let split = LinkSplit::new(&g, 0.2, &mut rng);
        let auc = split.auc(&emb).unwrap();
        assert!(
            (auc - 0.5).abs() < 0.25,
            "random AUC {auc} wildly off chance"
        );
    }

    #[test]
    fn deterministic_split_under_seed() {
        let g = grid_graph();
        let s1 = LinkSplit::new(&g, 0.1, &mut StdRng::seed_from_u64(7));
        let s2 = LinkSplit::new(&g, 0.1, &mut StdRng::seed_from_u64(7));
        assert_eq!(s1.test_pos, s2.test_pos);
        assert_eq!(s1.test_neg, s2.test_neg);
    }

    #[test]
    #[should_panic(expected = "too dense")]
    fn dense_graph_negative_sampling_gives_up() {
        // K5 has zero non-edges.
        let g = Graph::from_edges(5, (0..5u32).flat_map(|i| ((i + 1)..5).map(move |j| (i, j))));
        let mut rng = StdRng::seed_from_u64(8);
        sample_non_edges(&g, 3, &mut rng);
    }

    #[test]
    #[should_panic(expected = "test_fraction")]
    fn rejects_bad_fraction() {
        let g = grid_graph();
        let mut rng = StdRng::seed_from_u64(9);
        LinkSplit::new(&g, 1.5, &mut rng);
    }
}
