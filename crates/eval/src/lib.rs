//! # sp-eval
//!
//! The paper's two downstream tasks (§VI-A):
//!
//! - [`strucequ`]: **structural equivalence** — the Pearson
//!   correlation between adjacency-row distances and embedding-row
//!   distances over node pairs
//!   (`StrucEqu = pearson(dist(A_i, A_j), dist(Y_i, Y_j))`, Euclidean);
//! - [`linkpred`]: **link prediction** — 90/10 edge split, equal-size
//!   non-edge negatives, inner-product scoring, area under the ROC
//!   curve computed by the Mann–Whitney rank statistic;
//! - [`auc`]: the rank-based AUC kernel, shared by any scorer.
//!
//! Both metrics take any `|V| × r` embedding matrix, so the same
//! harness evaluates SE-PrivGEmb and every baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod auc;
pub mod diagnostics;
pub mod linkpred;
pub mod strucequ;

pub use auc::auc_from_scores;
pub use linkpred::{sample_non_edges, score_dot, LinkSplit};
pub use strucequ::{struc_equ, PairSelection};

use sp_linalg::{vector, DenseMatrix};

/// Returns a copy of `emb` with every row scaled to unit ℓ2 norm
/// (zero rows stay zero).
///
/// The experiment harness evaluates **all** methods on row-normalised
/// embeddings. Rationale: under noisy training, a node's embedding
/// norm grows with how often its row was touched — i.e. with its
/// degree — so *raw* Euclidean distances let any DP method score on
/// accumulated noise magnitude alone, an artifact rather than learned
/// structure (cosine-style evaluation is the node-embedding
/// literature's standard guard against exactly this). See
/// EXPERIMENTS.md for the ablation.
pub fn normalize_rows(emb: &DenseMatrix) -> DenseMatrix {
    let mut out = emb.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let n = vector::norm2(row);
        if n > 0.0 {
            vector::scale(1.0 / n, row);
        }
    }
    out
}

#[cfg(test)]
mod normalize_tests {
    use super::*;

    #[test]
    fn rows_become_unit_norm() {
        let m = DenseMatrix::from_vec(3, 2, vec![3.0, 4.0, 0.0, 0.0, -5.0, 12.0]);
        let n = normalize_rows(&m);
        assert!((vector::norm2(n.row(0)) - 1.0).abs() < 1e-12);
        assert_eq!(n.row(1), &[0.0, 0.0], "zero rows preserved");
        assert!((vector::norm2(n.row(2)) - 1.0).abs() < 1e-12);
        // Direction preserved.
        assert!((n.get(0, 0) - 0.6).abs() < 1e-12);
        assert!((n.get(0, 1) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn degree_norm_artifact_is_removed() {
        // Construct an "embedding" that is pure noise with norms
        // proportional to sqrt(node degree) on a star graph: raw
        // StrucEqu is high (artifact), normalised StrucEqu collapses.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        use sp_graph::Graph;
        let n = 60usize;
        let g = Graph::from_edges(
            n,
            (1..n as u32)
                .map(|i| (0u32, i))
                .chain((1..(n as u32 - 1)).map(|i| (i, i + 1))),
        );
        let mut rng = StdRng::seed_from_u64(5);
        let mut emb = DenseMatrix::zeros(n, 16);
        for v in 0..n {
            let norm = (g.degree(v as u32) as f64).sqrt();
            let row = emb.row_mut(v);
            for x in row.iter_mut() {
                *x = rng.gen_range(-1.0..1.0);
            }
            let cur = vector::norm2(row);
            vector::scale(norm / cur, row);
        }
        let raw = struc_equ(&g, &emb, PairSelection::All).unwrap();
        let norm = struc_equ(&g, &normalize_rows(&emb), PairSelection::All).unwrap_or(0.0);
        assert!(
            raw > 0.5,
            "the artifact should inflate raw StrucEqu, got {raw}"
        );
        assert!(
            norm < raw / 2.0,
            "normalisation should collapse it: raw {raw} vs normalised {norm}"
        );
    }
}
