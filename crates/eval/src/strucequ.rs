//! The StrucEqu metric.
//!
//! Two nodes are structurally equivalent when they have identical
//! neighbourhoods; an embedding "recovers" structural equivalence when
//! embedding distance tracks neighbourhood distance. The paper
//! quantifies this as the Pearson correlation, over node pairs, of
//!
//! - `dist(A_i, A_j)`: Euclidean distance between the adjacency rows,
//!   which for 0/1 rows equals `√(d_i + d_j - 2·|N(i) ∩ N(j)|)`
//!   (the symmetric-difference size — computed via the sorted-merge
//!   common-neighbour count, never materialising dense rows);
//! - `dist(Y_i, Y_j)`: Euclidean distance between the embedding rows.
//!
//! All `|V|(|V|-1)/2` pairs is quadratic; beyond a threshold we score
//! a seeded uniform sample of pairs. Table/figure runs use the paper's
//! graph sizes where sampling error on a correlation with ~2·10⁵ pairs
//! is far below the across-run SD the paper itself reports.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sp_graph::{algo, Graph, NodeId};
use sp_linalg::{stats, vector, DenseMatrix};

/// How node pairs are chosen for the correlation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PairSelection {
    /// Every unordered pair — exact, `O(|V|²)`.
    All,
    /// A seeded uniform sample of unordered pairs.
    Sampled {
        /// Number of pairs to draw.
        pairs: usize,
        /// RNG seed for reproducibility.
        seed: u64,
    },
    /// `All` below `auto_threshold()` nodes, else `Sampled` with
    /// 200 000 pairs and the given seed.
    Auto {
        /// RNG seed used if sampling kicks in.
        seed: u64,
    },
}

/// Node-count threshold below which `Auto` scores all pairs
/// (2000² / 2 = 2M distance evaluations, well under a second).
pub fn auto_threshold() -> usize {
    2000
}

/// Computes `StrucEqu = pearson(dist(A_i,A_j), dist(Y_i,Y_j))`.
///
/// Returns `None` when the correlation is undefined (fewer than two
/// pairs, or zero variance on either side — e.g. a regular graph
/// where all adjacency distances coincide).
///
/// # Panics
/// Panics if `emb` has a row count different from `g.num_nodes()`.
pub fn struc_equ(g: &Graph, emb: &DenseMatrix, selection: PairSelection) -> Option<f64> {
    assert_eq!(
        emb.rows(),
        g.num_nodes(),
        "embedding rows must match node count"
    );
    let n = g.num_nodes();
    if n < 2 {
        return None;
    }
    let mut adj_d: Vec<f64> = Vec::new();
    let mut emb_d: Vec<f64> = Vec::new();
    let mut push_pair = |i: NodeId, j: NodeId| {
        let cn = algo::common_neighbor_count(g, i, j) as f64;
        let sq = g.degree(i) as f64 + g.degree(j) as f64 - 2.0 * cn;
        adj_d.push(sq.max(0.0).sqrt());
        emb_d.push(vector::dist2(emb.row(i as usize), emb.row(j as usize)));
    };

    match resolve(selection, n) {
        Resolved::All => {
            for i in 0..n as NodeId {
                for j in (i + 1)..n as NodeId {
                    push_pair(i, j);
                }
            }
        }
        Resolved::Sampled { pairs, seed } => {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut drawn = 0usize;
            while drawn < pairs {
                let i = rng.gen_range(0..n as NodeId);
                let j = rng.gen_range(0..n as NodeId);
                if i == j {
                    continue;
                }
                push_pair(i.min(j), i.max(j));
                drawn += 1;
            }
        }
    }
    stats::pearson(&adj_d, &emb_d)
}

enum Resolved {
    All,
    Sampled { pairs: usize, seed: u64 },
}

fn resolve(selection: PairSelection, n: usize) -> Resolved {
    match selection {
        PairSelection::All => Resolved::All,
        PairSelection::Sampled { pairs, seed } => Resolved::Sampled { pairs, seed },
        PairSelection::Auto { seed } => {
            if n <= auto_threshold() {
                Resolved::All
            } else {
                Resolved::Sampled {
                    pairs: 200_000,
                    seed,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Adjacency rows as an explicit dense matrix, for cross-checking
    /// the merge-based distance against the definition.
    fn dense_adjacency(g: &Graph) -> DenseMatrix {
        let n = g.num_nodes();
        let mut m = DenseMatrix::zeros(n, n);
        for &(u, v) in g.edges() {
            m.set(u as usize, v as usize, 1.0);
            m.set(v as usize, u as usize, 1.0);
        }
        m
    }

    #[test]
    fn adjacency_distance_matches_definition() {
        let g = Graph::from_edges(6, [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (4, 5), (2, 5)]);
        let dense = dense_adjacency(&g);
        for i in 0..6u32 {
            for j in (i + 1)..6 {
                let cn = algo::common_neighbor_count(&g, i, j) as f64;
                let sq = g.degree(i) as f64 + g.degree(j) as f64 - 2.0 * cn;
                let direct = vector::dist2(dense.row(i as usize), dense.row(j as usize));
                assert!(
                    (sq.sqrt() - direct).abs() < 1e-12,
                    "pair ({i},{j}): merge {} vs dense {direct}",
                    sq.sqrt()
                );
            }
        }
    }

    #[test]
    fn perfect_embedding_scores_one() {
        // Use the adjacency rows themselves as the embedding: then the
        // two distance vectors are identical and Pearson = 1.
        let g = Graph::from_edges(6, [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let emb = dense_adjacency(&g);
        let r = struc_equ(&g, &emb, PairSelection::All).unwrap();
        assert!(
            (r - 1.0).abs() < 1e-12,
            "StrucEqu of adjacency itself = {r}"
        );
    }

    #[test]
    fn constant_embedding_is_undefined() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let emb = DenseMatrix::zeros(4, 8);
        assert_eq!(struc_equ(&g, &emb, PairSelection::All), None);
    }

    #[test]
    fn sampled_tracks_exact_on_medium_graph() {
        // Random-ish deterministic graph, random-ish embedding.
        let mut edges = Vec::new();
        for i in 0..200u32 {
            edges.push((i, (i * 7 + 1) % 200));
            edges.push((i, (i * 13 + 5) % 200));
        }
        let g = Graph::from_edges(200, edges);
        let mut rng = StdRng::seed_from_u64(3);
        let emb = DenseMatrix::uniform(200, 16, -1.0, 1.0, &mut rng);
        let exact = struc_equ(&g, &emb, PairSelection::All).unwrap();
        let sampled = struc_equ(
            &g,
            &emb,
            PairSelection::Sampled {
                pairs: 30_000,
                seed: 9,
            },
        )
        .unwrap();
        assert!(
            (exact - sampled).abs() < 0.05,
            "exact {exact} vs sampled {sampled}"
        );
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let g = Graph::from_edges(50, (0..49).map(|i| (i as u32, i as u32 + 1)));
        let mut rng = StdRng::seed_from_u64(1);
        let emb = DenseMatrix::uniform(50, 4, -1.0, 1.0, &mut rng);
        let sel = PairSelection::Sampled {
            pairs: 500,
            seed: 4,
        };
        assert_eq!(struc_equ(&g, &emb, sel), struc_equ(&g, &emb, sel));
    }

    #[test]
    fn auto_switches_on_size() {
        assert!(matches!(
            resolve(PairSelection::Auto { seed: 1 }, 100),
            Resolved::All
        ));
        assert!(matches!(
            resolve(PairSelection::Auto { seed: 1 }, 50_000),
            Resolved::Sampled { .. }
        ));
    }

    #[test]
    #[should_panic(expected = "match node count")]
    fn shape_mismatch_panics() {
        let g = Graph::from_edges(4, [(0, 1)]);
        let emb = DenseMatrix::zeros(3, 2);
        struc_equ(&g, &emb, PairSelection::All);
    }
}
