//! Flat slice kernels.
//!
//! These functions sit in the innermost loops of skip-gram training
//! (`dot` + `axpy` per positive/negative sample per step), so they are
//! written as straight indexed loops that LLVM auto-vectorises, with
//! debug-only shape assertions.

/// Inner product of two equal-length slices.
///
/// # Panics
/// Panics in debug builds if the lengths differ.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len(), "dot: length mismatch");
    let mut acc = 0.0;
    for i in 0..x.len().min(y.len()) {
        acc += x[i] * y[i];
    }
    acc
}

/// `y += alpha * x` (the BLAS `axpy` kernel).
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    let n = x.len().min(y.len());
    for i in 0..n {
        y[i] += alpha * x[i];
    }
}

/// `x *= alpha` in place.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for v in x.iter_mut() {
        *v *= alpha;
    }
}

/// Squared Euclidean norm.
#[inline]
pub fn norm2_sq(x: &[f64]) -> f64 {
    dot(x, x)
}

/// Euclidean norm.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    norm2_sq(x).sqrt()
}

/// Squared Euclidean distance between two equal-length slices.
#[inline]
pub fn dist2_sq(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len(), "dist2_sq: length mismatch");
    let mut acc = 0.0;
    for i in 0..x.len().min(y.len()) {
        let d = x[i] - y[i];
        acc += d * d;
    }
    acc
}

/// Euclidean distance between two equal-length slices.
#[inline]
pub fn dist2(x: &[f64], y: &[f64]) -> f64 {
    dist2_sq(x, y).sqrt()
}

/// Numerically-stable logistic sigmoid `1 / (1 + e^{-x})`.
///
/// For large `|x|` the naive expression overflows `exp`; the two-branch
/// form never evaluates `exp` on a positive argument.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        let z = (-x).exp();
        1.0 / (1.0 + z)
    } else {
        let z = x.exp();
        z / (1.0 + z)
    }
}

/// `log(sigmoid(x))` computed without intermediate overflow/underflow.
///
/// Used by the skip-gram loss: `log σ(x) = -log(1 + e^{-x})` for
/// `x >= 0` and `x - log(1 + e^{x})` otherwise (the "softplus" trick).
#[inline]
pub fn log_sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        -(-x).exp().ln_1p()
    } else {
        x - x.exp().ln_1p()
    }
}

/// Rescales `x` so that its Euclidean norm is at most `max_norm`
/// (the DPSGD clipping kernel). Returns the scaling factor applied
/// (`1.0` when no clipping happened).
#[inline]
pub fn clip_norm(x: &mut [f64], max_norm: f64) -> f64 {
    assert!(max_norm > 0.0, "clip_norm: max_norm must be positive");
    let n = norm2(x);
    if n > max_norm {
        let f = max_norm / n;
        scale(f, x);
        f
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn scale_in_place() {
        let mut x = vec![1.0, -2.0];
        scale(-3.0, &mut x);
        assert_eq!(x, vec![-3.0, 6.0]);
    }

    #[test]
    fn norms() {
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(norm2_sq(&[3.0, 4.0]), 25.0);
        assert_eq!(norm2(&[]), 0.0);
    }

    #[test]
    fn distances() {
        assert_eq!(dist2(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(dist2_sq(&[1.0], &[4.0]), 9.0);
    }

    #[test]
    fn sigmoid_symmetry_and_range() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-15);
        for &x in &[-50.0, -3.0, -0.1, 0.1, 3.0, 50.0] {
            let s = sigmoid(x);
            // Note sigmoid(50) rounds to exactly 1.0 in f64; only the
            // closed interval is guaranteed at the extremes.
            assert!((0.0..=1.0).contains(&s), "sigmoid({x}) = {s} out of [0,1]");
            assert!((s + sigmoid(-x) - 1.0).abs() < 1e-12);
        }
        for &x in &[-3.0, -0.1, 0.1, 3.0] {
            let s = sigmoid(x);
            assert!(
                s > 0.0 && s < 1.0,
                "sigmoid({x}) = {s} not strictly interior"
            );
        }
    }

    #[test]
    fn sigmoid_extremes_do_not_overflow() {
        assert!((sigmoid(1000.0) - 1.0).abs() < 1e-12);
        assert!(sigmoid(-1000.0) >= 0.0);
        assert!(sigmoid(-1000.0) < 1e-12);
    }

    #[test]
    fn log_sigmoid_matches_naive_in_safe_range() {
        for &x in &[-20.0, -1.0, 0.0, 1.0, 20.0] {
            let naive = sigmoid(x).ln();
            assert!(
                (log_sigmoid(x) - naive).abs() < 1e-10,
                "x={x}: {} vs {}",
                log_sigmoid(x),
                naive
            );
        }
        // And stays finite where the naive form underflows to ln(0).
        assert!(log_sigmoid(-800.0).is_finite());
        assert!((log_sigmoid(-800.0) - (-800.0)).abs() < 1e-6);
    }

    #[test]
    fn clip_norm_clips_only_above_threshold() {
        let mut x = vec![3.0, 4.0];
        let f = clip_norm(&mut x, 10.0);
        assert_eq!(f, 1.0);
        assert_eq!(x, vec![3.0, 4.0]);

        let f = clip_norm(&mut x, 1.0);
        assert!((f - 0.2).abs() < 1e-15);
        assert!((norm2(&x) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "max_norm must be positive")]
    fn clip_norm_rejects_nonpositive_threshold() {
        let mut x = vec![1.0];
        clip_norm(&mut x, 0.0);
    }
}
